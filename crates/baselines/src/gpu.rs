//! Analytical A100 GPU baseline running vLLM-style serving.
//!
//! Substitutes the paper's measured 4×A100 testbed (see DESIGN.md): a
//! roofline + memory-capacity model that reproduces the *shapes* the paper
//! reports — throughput plateaus versus batch size (Figure 1), saturation at
//! smaller batches for longer contexts, prefill compute-bound vs decode
//! memory-bound behaviour, ~21% compute utilization (Figure 2b), and
//! TDP-throttled power (Figure 15b).

use cent_model::ModelConfig;
use cent_types::{ByteSize, Power, Time};

/// One GPU's specification (NVIDIA A100 80 GB SXM).
#[derive(Debug, Clone, Copy)]
pub struct GpuSpec {
    /// Peak BF16 tensor throughput, FLOP/s.
    pub peak_flops: f64,
    /// HBM2e bandwidth, bytes/s.
    pub mem_bw: f64,
    /// HBM capacity.
    pub memory: ByteSize,
    /// Thermal design power.
    pub tdp: Power,
    /// Maximum SM clock in MHz.
    pub max_clock_mhz: f64,
}

impl GpuSpec {
    /// A100 80 GB SXM.
    pub fn a100() -> Self {
        GpuSpec {
            peak_flops: 312.0e12,
            mem_bw: 2.039e12,
            memory: ByteSize::gib(80),
            tdp: Power::watts(300.0),
            max_clock_mhz: 1410.0,
        }
    }
}

/// Empirical efficiency factors for the vLLM serving stack (calibrated so
/// the Figure 1 plateau lands at the paper's measured level, ~600-800
/// tokens/s for Llama2-70B at 4K context on 4×A100).
#[derive(Debug, Clone, Copy)]
pub struct ServingEfficiency {
    /// Achievable fraction of peak FLOPs in large GEMMs (prefill).
    pub gemm_efficiency: f64,
    /// *End-to-end* effective fraction of peak bandwidth during decode —
    /// folds in tensor-parallel synchronisation, paged-attention gather
    /// inefficiency and kernel launch gaps, which is why it sits well below
    /// a single kernel's achievable bandwidth.
    pub mem_efficiency: f64,
    /// Per-batch-step serving overhead (scheduler + NVLink all-reduces).
    pub per_token_overhead: Time,
}

impl Default for ServingEfficiency {
    fn default() -> Self {
        Self::for_gpus(4)
    }
}

impl ServingEfficiency {
    /// Efficiency for an `n`-GPU tensor-parallel deployment: the effective
    /// bandwidth fraction degrades with GPU count because NVLink all-reduces
    /// and kernel-launch skew grow with the shard count (0.45 on one GPU
    /// down to 0.16 on four, matching the paper's measured plateau levels).
    pub fn for_gpus(n: usize) -> Self {
        ServingEfficiency {
            gemm_efficiency: 0.52,
            mem_efficiency: 0.45 / (1.0 + 0.6 * (n.saturating_sub(1)) as f64),
            per_token_overhead: Time::from_us(2_000),
        }
    }
}

/// A multi-GPU serving deployment.
#[derive(Debug, Clone, Copy)]
pub struct GpuSystem {
    /// Per-GPU spec.
    pub spec: GpuSpec,
    /// GPUs in the server (NVLink-connected; near-linear scaling assumed
    /// for these model sizes, matching the paper's measured baseline).
    pub gpus: usize,
    /// Serving-stack efficiencies.
    pub eff: ServingEfficiency,
}

impl GpuSystem {
    /// The paper's baseline: 4×A100 80 GB.
    pub fn a100x(gpus: usize) -> Self {
        GpuSystem { spec: GpuSpec::a100(), gpus, eff: ServingEfficiency::for_gpus(gpus) }
    }

    /// Total HBM capacity.
    pub fn total_memory(&self) -> ByteSize {
        ByteSize::bytes(self.spec.memory.as_bytes() * self.gpus as u64)
    }

    /// Largest batch that fits weights + KV caches at `context` (Figure 1's
    /// capacity wall).
    pub fn max_batch(&self, cfg: &ModelConfig, context: usize) -> usize {
        let capacity = self.total_memory().as_bytes() as f64 * 0.92; // runtime reserve
        let weights = (cfg.total_params() * 2) as f64;
        if weights >= capacity {
            return 0;
        }
        let per_query = cfg.kv_bytes_per_query(context).as_bytes() as f64;
        ((capacity - weights) / per_query).floor() as usize
    }

    /// Decode throughput (tokens/s across the batch) at `batch`, `context`.
    ///
    /// Decode is bandwidth-bound: every token reads all weights once per
    /// batch plus each query's KV cache; FC reads amortise over the batch,
    /// attention reads do not (§2's non-linear batching effect).
    pub fn decode_tokens_per_s(&self, cfg: &ModelConfig, batch: usize, context: usize) -> f64 {
        if batch == 0 {
            return 0.0;
        }
        let bw = self.spec.mem_bw * self.gpus as f64 * self.eff.mem_efficiency;
        let weight_bytes = (cfg.total_params() * 2) as f64;
        let kv_bytes_per_query = cfg.kv_bytes_per_query(context / 2).as_bytes() as f64; // average growth
        let bytes_per_step = weight_bytes + kv_bytes_per_query * batch as f64;
        // Compute ceiling (GEMM efficiency improves with batch).
        let flops_per_step = cfg.decode_flops_per_token(context / 2) as f64 * batch as f64;
        let compute = self.spec.peak_flops * self.gpus as f64 * self.eff.gemm_efficiency;
        let t_mem = bytes_per_step / bw;
        let t_compute = flops_per_step / compute;
        let t_overhead = self.eff.per_token_overhead.as_secs();
        batch as f64 / (t_mem.max(t_compute) + t_overhead)
    }

    /// Prefill throughput (prompt tokens/s) — compute-bound GEMMs.
    pub fn prefill_tokens_per_s(&self, cfg: &ModelConfig, batch: usize, prompt: usize) -> f64 {
        let compute = self.spec.peak_flops * self.gpus as f64 * self.eff.gemm_efficiency;
        let flops = cfg.prefill_flops(prompt) as f64 * batch as f64;
        let bw = self.spec.mem_bw * self.gpus as f64 * self.eff.mem_efficiency;
        let bytes = (cfg.total_params() * 2) as f64; // weights stream once per layer pass
        let t = (flops / compute).max(bytes / bw);
        (batch * prompt) as f64 / t
    }

    /// Per-query latency for `prefill` + `decode` tokens at `batch`.
    pub fn query_latency(
        &self,
        cfg: &ModelConfig,
        batch: usize,
        context: usize,
        prefill: usize,
        decode: usize,
    ) -> Time {
        let p = self.prefill_tokens_per_s(cfg, batch, prefill).max(1e-9);
        let d = self.decode_tokens_per_s(cfg, batch, context).max(1e-9);
        let secs = (batch * prefill) as f64 / p + (batch * decode) as f64 / d * 1.0;
        Time::from_secs_f64(secs)
    }

    /// Compute utilization during decode (Figure 2b: ~21% for Llama2-70B).
    pub fn decode_utilization(&self, cfg: &ModelConfig, batch: usize, context: usize) -> f64 {
        let tokens = self.decode_tokens_per_s(cfg, batch, context);
        let flops = tokens * cfg.decode_flops_per_token(context / 2) as f64;
        flops / (self.spec.peak_flops * self.gpus as f64)
    }

    /// Average board power: near TDP whenever the GPU is streaming
    /// (Figure 15a/b: both phases run close to the 300 W limit).
    pub fn avg_power(&self, utilization_hint: f64) -> Power {
        let idle = Power::watts(85.0);
        let dynamic = (self.spec.tdp.as_watts() - 85.0) * utilization_hint.clamp(0.0, 1.0);
        Power::watts(idle.as_watts() + dynamic) * self.gpus as f64
    }
}

/// A point of the Figure 15(b) clock/power throttling trace.
#[derive(Debug, Clone, Copy)]
pub struct ThrottlePoint {
    /// Time into the run, milliseconds.
    pub t_ms: f64,
    /// SM clock, MHz.
    pub sm_clock_mhz: f64,
    /// Board power, watts.
    pub board_power_w: f64,
}

/// Synthesises the vLLM init → prefill → decode throttling trace of
/// Figure 15(b): max clock while idle, clock throttled to hold TDP during
/// prefill, clock recovering during decode with power still near TDP.
pub fn throttle_trace(spec: &GpuSpec, samples: usize) -> Vec<ThrottlePoint> {
    let mut out = Vec::with_capacity(samples);
    let init_end = samples / 5;
    let prefill_end = samples / 3;
    for i in 0..samples {
        let t_ms = i as f64 * 100.0;
        let (clock, power) = if i < init_end {
            // Initialization: low load, max clock, modest power.
            (spec.max_clock_mhz, 120.0 + 15.0 * ((i % 7) as f64 / 7.0))
        } else if i < prefill_end {
            // Prefill: high SM utilization → throttle to hold TDP.
            let dip = 1.0 - 0.22 * (((i - init_end) % 5) as f64 / 5.0 + 0.6).min(1.0);
            (spec.max_clock_mhz * dip, spec.tdp.as_watts() - 4.0)
        } else {
            // Decode: lower SM utilization → clock climbs back, power ~TDP.
            let rise = 0.88 + 0.12 * (((i - prefill_end) as f64) / (samples / 3) as f64).min(1.0);
            (spec.max_clock_mhz * rise, spec.tdp.as_watts() - 10.0)
        };
        out.push(ThrottlePoint { t_ms, sm_clock_mhz: clock, board_power_w: power });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn llama70b() -> ModelConfig {
        ModelConfig::llama2_70b()
    }

    #[test]
    fn figure1_capacity_wall() {
        let sys = GpuSystem::a100x(4);
        let cfg = llama70b();
        // Figure 1: throughput saturates near batch 128 at 4K, batch 16 at 32K.
        let b4k = sys.max_batch(&cfg, 4096);
        assert!((96..200).contains(&b4k), "4K max batch {b4k}");
        let cfg32 = ModelConfig::llama2_70b_long(32_768);
        let b32k = sys.max_batch(&cfg32, 32_768);
        assert!((8..32).contains(&b32k), "32K max batch {b32k}");
        assert!(b32k < b4k / 4);
    }

    #[test]
    fn figure1_throughput_plateaus() {
        let sys = GpuSystem::a100x(4);
        let cfg = llama70b();
        let t32 = sys.decode_tokens_per_s(&cfg, 32, 4096);
        let t128 = sys.decode_tokens_per_s(&cfg, 128, 4096);
        let t256 = sys.decode_tokens_per_s(&cfg, 256, 4096);
        assert!(t128 > t32 * 1.5, "batching helps: {t32} → {t128}");
        // Diminishing returns past the saturation batch.
        assert!(t256 < t128 * 1.6, "plateau: {t128} → {t256}");
        // Figure 1 reports several hundred tokens/s at the plateau.
        assert!((300.0..1500.0).contains(&t128), "plateau level {t128}");
    }

    #[test]
    fn figure2b_low_decode_utilization() {
        let sys = GpuSystem::a100x(4);
        let util = sys.decode_utilization(&llama70b(), 128, 4096);
        // Paper: 21% for Llama2-70B.
        assert!((0.08..0.40).contains(&util), "utilization {util}");
    }

    #[test]
    fn prefill_is_much_faster_per_token_than_decode() {
        let sys = GpuSystem::a100x(4);
        let cfg = llama70b();
        let prefill = sys.prefill_tokens_per_s(&cfg, 128, 512);
        let decode = sys.decode_tokens_per_s(&cfg, 128, 4096);
        // §2: decoding a token takes 3.4× longer than encoding one.
        assert!(prefill > decode * 2.0, "prefill {prefill} vs decode {decode}");
    }

    #[test]
    fn power_is_near_tdp_under_load() {
        let sys = GpuSystem::a100x(4);
        let p = sys.avg_power(0.95);
        assert!((1_100.0..1_220.0).contains(&p.as_watts()), "{p}");
    }

    #[test]
    fn throttle_trace_shape() {
        let trace = throttle_trace(&GpuSpec::a100(), 60);
        assert_eq!(trace.len(), 60);
        // Init at max clock.
        assert_eq!(trace[0].sm_clock_mhz, 1410.0);
        // Prefill throttles below decode's recovered clock.
        let prefill_clock = trace[15].sm_clock_mhz;
        let decode_clock = trace[55].sm_clock_mhz;
        assert!(prefill_clock < decode_clock);
        // Power near TDP in both loaded phases.
        assert!(trace[15].board_power_w > 280.0);
        assert!(trace[55].board_power_w > 280.0);
    }
}
