//! Analytical models of the PIM/PNM baselines of §7.3: Samsung CXL-PNM,
//! AttAcc and NeuPIM, plus the Table 1 industrial-prototype spec sheet.

use cent_model::ModelConfig;
use cent_types::{ByteSize, Dollars, Power};

/// One row of Table 1 (hardware system comparison).
#[derive(Debug, Clone, Copy)]
pub struct HwSpec {
    /// System name.
    pub name: &'static str,
    /// Memory organisation description.
    pub mem_units: &'static str,
    /// External bandwidth, TB/s.
    pub external_bw_tbs: f64,
    /// Internal bandwidth, TB/s (None for GPUs).
    pub internal_bw_tbs: Option<f64>,
    /// Capacity, GB.
    pub capacity_gb: f64,
    /// Compute throughput, TFLOPS (TOPS for UPMEM).
    pub tflops: f64,
    /// Operational intensity balance point, Ops/Byte.
    pub ops_per_byte: f64,
    /// Memory density vs conventional parts (1.0 for GPUs).
    pub mem_density: &'static str,
}

/// Table 1 of the paper.
pub fn table1() -> Vec<HwSpec> {
    vec![
        HwSpec {
            name: "UPMEM",
            mem_units: "8 DIMMs",
            external_bw_tbs: 0.15,
            internal_bw_tbs: Some(1.0),
            capacity_gb: 64.0,
            tflops: 0.5,
            ops_per_byte: 0.5,
            mem_density: "25%-50%",
        },
        HwSpec {
            name: "AiM",
            mem_units: "32 channels",
            external_bw_tbs: 1.0,
            internal_bw_tbs: Some(16.0),
            capacity_gb: 16.0,
            tflops: 16.0,
            ops_per_byte: 1.0,
            mem_density: "75%",
        },
        HwSpec {
            name: "FIMDRAM",
            mem_units: "5 stacks",
            external_bw_tbs: 1.5,
            internal_bw_tbs: Some(12.3),
            capacity_gb: 30.0,
            tflops: 6.2,
            ops_per_byte: 0.5,
            mem_density: "75%",
        },
        HwSpec {
            name: "A100",
            mem_units: "5 stacks",
            external_bw_tbs: 2.0,
            internal_bw_tbs: None,
            capacity_gb: 80.0,
            tflops: 312.0,
            ops_per_byte: 156.0,
            mem_density: "-",
        },
    ]
}

/// A bandwidth/compute/capacity-parameterised inference node, used for the
/// CXL-PNM, AttAcc and NeuPIM comparisons (Figures 17-18). Throughput is
/// roofline-composed exactly like the GPU model, but with the device's own
/// bandwidth hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct PimNode {
    /// Name for reporting.
    pub name: &'static str,
    /// Effective compute, FLOP/s.
    pub flops: f64,
    /// Bandwidth usable by FC layers, bytes/s.
    pub fc_bw: f64,
    /// Bandwidth usable by attention, bytes/s.
    pub attn_bw: f64,
    /// Memory capacity.
    pub capacity: ByteSize,
    /// Average power.
    pub power: Power,
    /// Hardware cost.
    pub cost: Dollars,
}

impl PimNode {
    /// Samsung CXL-PNM: one device = 8.2 TFLOPS, 1.1 TB/s LPDDR5X, 512 GB
    /// (Figure 17b).
    pub fn cxl_pnm(devices: usize) -> PimNode {
        let d = devices as f64;
        PimNode {
            name: "CXL-PNM",
            flops: 8.2e12 * d,
            fc_bw: 1.1e12 * 0.75 * d,
            attn_bw: 1.1e12 * 0.75 * d,
            capacity: ByteSize::gib(512 * devices as u64),
            power: Power::watts(92.0) * d,
            cost: Dollars::new(7_100.0) * d,
        }
    }

    /// CENT as a [`PimNode`] for apples-to-apples Figure 17/18 composition
    /// (16 TFLOPS PIM + internal 16 TB/s per device, §6).
    pub fn cent(devices: usize) -> PimNode {
        let d = devices as f64;
        PimNode {
            name: "CENT",
            flops: (16.0e12 + 3.0e12) * d,
            // Row-cycle efficiency of lockstep streaming (~64/110).
            fc_bw: 16.0e12 * 0.58 * d,
            attn_bw: 16.0e12 * 0.58 * d,
            capacity: ByteSize::gib(16 * devices as u64),
            power: Power::watts(32.4) * d,
            cost: Dollars::new(14_873.0 / 32.0) * d,
        }
    }

    /// AttAcc: 8×A100(HBM3) + 8 HBM-PIM devices; prefill/FC on GPUs,
    /// attention in PIM (Figure 16c).
    pub fn attacc() -> PimNode {
        PimNode {
            name: "AttAcc",
            flops: 8.0 * 390.0e12 * 0.5,
            fc_bw: 8.0 * 3.35e12 * 0.65,
            attn_bw: 8.0 * 13.6e12 * 0.6,
            capacity: ByteSize::gib(8 * 80 + 8 * 80),
            power: Power::watts(8.0 * 300.0 + 8.0 * 116.0),
            // 8 GPUs + 8 HBM-PIM (10× HBM price) + host; TCO 3.5× CENT (§7.3).
            cost: Dollars::new(8.0 * 10_000.0 + 8.0 * 4_800.0 + 2_128.0),
        }
    }

    /// NeuPIM: 8×A100 + 8 NeuPIM devices (TPUv4-like NPU + dual-row-buffer
    /// PIM), Figure 16d.
    pub fn neupim() -> PimNode {
        PimNode {
            name: "NeuPIM",
            flops: 8.0 * 275.0e12 * 0.55,
            fc_bw: 8.0 * 2.4e12 * 0.65,
            attn_bw: 8.0 * 9.6e12 * 0.6,
            capacity: ByteSize::gib(8 * 80 + 8 * 64),
            power: Power::watts(8.0 * 300.0 + 8.0 * 95.0),
            cost: Dollars::new(8.0 * 10_000.0 + 8.0 * 3_400.0 + 2_128.0),
        }
    }

    /// Largest batch that fits `cfg` at `context`.
    pub fn max_batch(&self, cfg: &ModelConfig, context: usize) -> usize {
        let capacity = self.capacity.as_bytes() as f64 * 0.92;
        let weights = (cfg.total_params() * 2) as f64;
        if weights >= capacity {
            return 0;
        }
        ((capacity - weights) / cfg.kv_bytes_per_query(context).as_bytes() as f64).floor() as usize
    }

    /// Decode throughput at `batch`, `context` (roofline over the split
    /// FC/attention bandwidth hierarchy).
    pub fn decode_tokens_per_s(&self, cfg: &ModelConfig, batch: usize, context: usize) -> f64 {
        if batch == 0 {
            return 0.0;
        }
        let weights = (cfg.total_params() * 2) as f64;
        let kv = cfg.kv_bytes_per_query(context / 2).as_bytes() as f64;
        let t_fc = weights / self.fc_bw;
        let t_attn = kv * batch as f64 / self.attn_bw;
        let flops = cfg.decode_flops_per_token(context / 2) as f64 * batch as f64;
        let t_compute = flops / self.flops;
        batch as f64 / (t_fc + t_attn).max(t_compute)
    }

    /// Tokens per dollar over a 3-year ownership window.
    pub fn tokens_per_dollar(&self, tokens_per_s: f64) -> f64 {
        let hours = 3.0 * 365.0 * 24.0;
        let energy = self.power.as_watts() / 1000.0 * crate::KWH_PRICE_LOCAL * hours;
        let total = self.cost.amount() + energy;
        tokens_per_s * 3600.0 * hours / total
    }
}

pub(crate) const KWH_PRICE_LOCAL: f64 = 0.139;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_the_four_systems() {
        let t = table1();
        assert_eq!(t.len(), 4);
        let aim = &t[1];
        assert_eq!(aim.name, "AiM");
        assert_eq!(aim.internal_bw_tbs, Some(16.0));
        // GPUs have no internal-bandwidth advantage.
        assert!(t[3].internal_bw_tbs.is_none());
    }

    #[test]
    fn figure17_cent_beats_cxl_pnm_on_opt66b() {
        let cfg = ModelConfig::opt_66b();
        let ctx = 64 + 1024;
        let pnm = PimNode::cxl_pnm(8);
        let cent = PimNode::cent(24);
        let pnm_batch = pnm.max_batch(&cfg, ctx).min(256);
        let cent_batch = cent.max_batch(&cfg, ctx).min(256);
        let pnm_tps = pnm.decode_tokens_per_s(&cfg, pnm_batch, ctx);
        let cent_tps = cent.decode_tokens_per_s(&cfg, cent_batch, ctx);
        // §7.3: 4.5× higher throughput at max supported batches.
        let ratio = cent_tps / pnm_tps;
        assert!(ratio > 2.0, "CENT/CXL-PNM ratio {ratio:.2}");
    }

    #[test]
    fn figure18_cent_wins_tokens_per_dollar() {
        let cfg = ModelConfig::gpt3_175b();
        let ctx = 2048 + 128;
        let attacc = PimNode::attacc();
        let cent = PimNode::cent(96); // power-neutral: 12 devices per GPU-PIM node
        let ab = attacc.max_batch(&cfg, ctx);
        let cb = cent.max_batch(&cfg, ctx);
        let at = attacc.decode_tokens_per_s(&cfg, ab, ctx);
        let ct = cent.decode_tokens_per_s(&cfg, cb, ctx);
        let ratio = cent.tokens_per_dollar(ct) / attacc.tokens_per_dollar(at);
        // Paper: 1.8-3.7× more tokens per dollar than AttAcc.
        assert!(ratio > 1.3, "tokens/$ ratio {ratio:.2}");
        // Raw throughput is comparable (0.5-1.1×).
        let raw = ct / at;
        assert!((0.3..2.0).contains(&raw), "raw ratio {raw:.2}");
    }

    #[test]
    fn neupim_model_is_consistent() {
        let n = PimNode::neupim();
        assert!(n.power.as_watts() > 2_000.0);
        let cfg = ModelConfig::gpt3_175b();
        assert!(n.max_batch(&cfg, 2048) > 0);
    }
}
