//! Analytical baselines for the CENT evaluation (§2, §7).
//!
//! The paper measures a real 4×A100 server and models three PIM/PNM
//! systems; this crate substitutes calibrated analytical models (see the
//! substitution table in DESIGN.md):
//!
//! * [`GpuSystem`] — A100 roofline + vLLM batching/capacity model
//!   (Figures 1, 2, 13-15) with the TDP [`throttle_trace`] of Figure 15b;
//! * [`PimNode`] — CXL-PNM, AttAcc and NeuPIM comparators (Figures 17-18);
//! * [`table1`] — the industrial PIM prototype spec sheet;
//! * [`encoder_utilization`] — BERT/ResNet compute utilization (Figure 2b);
//! * [`sharegpt_lengths`] — the synthetic ShareGPT-like length distribution
//!   for the NeuPIM comparison.

#![forbid(unsafe_code)]

mod gpu;
mod pim_systems;

pub use gpu::{throttle_trace, GpuSpec, GpuSystem, ServingEfficiency, ThrottlePoint};
pub(crate) use pim_systems::KWH_PRICE_LOCAL;
pub use pim_systems::{table1, HwSpec, PimNode};

use cent_types::Rng64;

/// GPU compute utilization of high-operational-intensity models
/// (Figure 2b: BERT ≈ 43%, ResNet-152 ≈ 80%; Llama2-70B ≈ 21%).
pub fn encoder_utilization(model: &str) -> f64 {
    match model {
        "BERT" => 0.43,
        "ResNet-152" => 0.80,
        _ => 0.21,
    }
}

/// Synthetic ShareGPT-like (input, output) length pairs: log-normal fits to
/// the published dataset statistics (mean input ≈ 160, mean output ≈ 210,
/// heavy tail), seeded for reproducibility.
pub fn sharegpt_lengths(n: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = Rng64::seed(seed);
    let mut sample = |mu: f64, sigma: f64, cap: usize| -> usize {
        let z = rng.normal();
        ((mu + sigma * z).exp() as usize).clamp(4, cap)
    };
    (0..n).map(|_| (sample(4.6, 1.0, 2048), sample(5.0, 0.9, 2048))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_ordering_matches_figure2b() {
        assert!(encoder_utilization("ResNet-152") > encoder_utilization("BERT"));
        assert!(encoder_utilization("BERT") > encoder_utilization("Llama2-70B"));
    }

    #[test]
    fn sharegpt_lengths_are_plausible_and_reproducible() {
        let a = sharegpt_lengths(500, 7);
        let b = sharegpt_lengths(500, 7);
        assert_eq!(a, b);
        let mean_in: f64 = a.iter().map(|(i, _)| *i as f64).sum::<f64>() / 500.0;
        let mean_out: f64 = a.iter().map(|(_, o)| *o as f64).sum::<f64>() / 500.0;
        assert!((60.0..400.0).contains(&mean_in), "mean in {mean_in}");
        assert!((80.0..500.0).contains(&mean_out), "mean out {mean_out}");
        assert!(a.iter().all(|(i, o)| *i <= 2048 && *o <= 2048));
    }
}
