//! The fixed-function PNM accelerators: accumulators, reduction trees and
//! exponent units (Figure 7b).

use cent_types::consts::{PNM_ACCUMULATORS, PNM_CLOCK_PERIOD, PNM_EXP_UNITS, PNM_REDUCTION_TREES};
use cent_types::{Bf16, CentResult, SbSlot, Time, ZERO_BEAT};

use crate::shared_buffer::SharedBuffer;

/// Activity counters for the PNM units (power model input).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PnmStats {
    /// Beats processed by the accumulators.
    pub acc_beats: u64,
    /// Beats processed by the reduction trees.
    pub red_beats: u64,
    /// Beats processed by the exponent units.
    pub exp_beats: u64,
    /// RISC-V instructions retired across all cores.
    pub riscv_instructions: u64,
}

impl PnmStats {
    /// Merges counters from another window.
    pub fn merge(&mut self, other: &PnmStats) {
        self.acc_beats += other.acc_beats;
        self.red_beats += other.red_beats;
        self.exp_beats += other.exp_beats;
        self.riscv_instructions += other.riscv_instructions;
    }
}

/// Computes `e^x` the way the exponent accelerator does: an order-10 Taylor
/// expansion with power-of-two range reduction (`e^x = 2^k · e^r`,
/// `r ∈ [-ln2/2, ln2/2]`), all in f32 like the unit's internal datapath.
///
/// Softmax scores reach tens of magnitude before normalisation, where a raw
/// Taylor series would diverge; range reduction is the standard hardware
/// companion to the paper's "10-order Taylor series approximation".
pub fn exp_taylor(x: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    // Clamp to the BF16-relevant magnitude to avoid pow2 overflow games.
    let x = x.clamp(-88.0, 88.0);
    const LN2: f32 = core::f32::consts::LN_2;
    let k = (x / LN2).round();
    let r = x - k * LN2;
    // Order-10 Taylor of e^r (Horner form).
    let mut acc = 1.0f32;
    for i in (1..=10).rev() {
        acc = 1.0 + acc * r / i as f32;
    }
    acc * f32::powi(2.0, k as i32)
}

/// The pool of fixed-function PNM units operating on the Shared Buffer.
///
/// Timing: each of the 32 unit instances of a kind accepts one beat per
/// 2 GHz cycle once its pipeline is full; an operation over `OPsize` beats
/// therefore takes `ceil(OPsize / 32)` cycles plus a small pipeline fill.
#[derive(Debug, Clone, Default)]
pub struct PnmUnits {
    stats: PnmStats,
}

/// Pipeline depth of the fixed-function units, in PNM cycles.
const PIPELINE_FILL: u64 = 2;

impl PnmUnits {
    /// Creates the unit pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Activity counters.
    pub fn stats(&self) -> &PnmStats {
        &self.stats
    }

    /// Merges externally-collected RISC-V retirement counts.
    pub fn note_riscv_instructions(&mut self, retired: u64) {
        self.stats.riscv_instructions += retired;
    }

    fn unit_time(&self, beats: usize, units: usize) -> Time {
        let cycles = (beats as u64).div_ceil(units as u64) + PIPELINE_FILL;
        PNM_CLOCK_PERIOD.times(cycles)
    }

    /// `ACC OPsize Rd Rs`: lane-wise BF16 accumulation of `opsize` beats:
    /// `sb[rd+i][l] += sb[rs+i][l]`.
    ///
    /// # Errors
    ///
    /// Returns an error if either slot range is out of bounds.
    pub fn acc(
        &mut self,
        sb: &mut SharedBuffer,
        rd: SbSlot,
        rs: SbSlot,
        opsize: usize,
    ) -> CentResult<Time> {
        for i in 0..opsize {
            let src = sb.read(rs.offset(i as u16))?;
            let mut dst = sb.read(rd.offset(i as u16))?;
            for lane in 0..16 {
                dst[lane] += src[lane];
            }
            sb.write(rd.offset(i as u16), &dst)?;
        }
        self.stats.acc_beats += opsize as u64;
        Ok(self.unit_time(opsize, PNM_ACCUMULATORS))
    }

    /// `RED OPsize Rd Rs`: reduces the 16 BF16 lanes of each source beat to a
    /// single value stored in lane 0 of the destination beat (other lanes
    /// zeroed), mirroring "the result is stored into the first 16-bit element
    /// in a 256-bit Shared Buffer slot".
    ///
    /// # Errors
    ///
    /// Returns an error if either slot range is out of bounds.
    pub fn red(
        &mut self,
        sb: &mut SharedBuffer,
        rd: SbSlot,
        rs: SbSlot,
        opsize: usize,
    ) -> CentResult<Time> {
        for i in 0..opsize {
            let src = sb.read(rs.offset(i as u16))?;
            // The tree reduces pairwise in wider precision; model as f32 sum.
            let sum: f32 = src.iter().map(|v| v.to_f32()).sum();
            let mut dst = ZERO_BEAT;
            dst[0] = Bf16::from_f32(sum);
            sb.write(rd.offset(i as u16), &dst)?;
        }
        self.stats.red_beats += opsize as u64;
        Ok(self.unit_time(opsize, PNM_REDUCTION_TREES))
    }

    /// `EXP OPsize Rd Rs`: lane-wise exponential over `opsize` beats using
    /// the order-10 Taylor pipeline.
    ///
    /// # Errors
    ///
    /// Returns an error if either slot range is out of bounds.
    pub fn exp(
        &mut self,
        sb: &mut SharedBuffer,
        rd: SbSlot,
        rs: SbSlot,
        opsize: usize,
    ) -> CentResult<Time> {
        for i in 0..opsize {
            let src = sb.read(rs.offset(i as u16))?;
            let mut dst = ZERO_BEAT;
            for lane in 0..16 {
                dst[lane] = Bf16::from_f32(exp_taylor(src[lane].to_f32()));
            }
            sb.write(rd.offset(i as u16), &dst)?;
        }
        self.stats.exp_beats += opsize as u64;
        // The Taylor pipeline is deeper than the accumulators.
        let cycles = (opsize as u64).div_ceil(PNM_EXP_UNITS as u64) + 10;
        Ok(PNM_CLOCK_PERIOD.times(cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beat_of(values: &[f32]) -> cent_types::Beat {
        let mut b = ZERO_BEAT;
        for (i, v) in values.iter().enumerate() {
            b[i] = Bf16::from_f32(*v);
        }
        b
    }

    #[test]
    fn acc_adds_lanewise() {
        let mut sb = SharedBuffer::new();
        let mut units = PnmUnits::new();
        sb.write(SbSlot(0), &beat_of(&[1.0; 16])).unwrap();
        sb.write(SbSlot(10), &beat_of(&[2.0; 16])).unwrap();
        let t = units.acc(&mut sb, SbSlot(0), SbSlot(10), 1).unwrap();
        assert_eq!(sb.read(SbSlot(0)).unwrap()[5].to_f32(), 3.0);
        assert!(t.as_ns() > 0.0);
        assert_eq!(units.stats().acc_beats, 1);
    }

    #[test]
    fn red_sums_sixteen_lanes_into_lane_zero() {
        let mut sb = SharedBuffer::new();
        let mut units = PnmUnits::new();
        let v: Vec<f32> = (1..=16).map(|i| i as f32).collect();
        sb.write(SbSlot(3), &beat_of(&v)).unwrap();
        units.red(&mut sb, SbSlot(4), SbSlot(3), 1).unwrap();
        let out = sb.read(SbSlot(4)).unwrap();
        assert_eq!(out[0].to_f32(), 136.0);
        assert_eq!(out[1].to_f32(), 0.0);
    }

    #[test]
    fn exp_matches_reference_within_bf16() {
        let mut sb = SharedBuffer::new();
        let mut units = PnmUnits::new();
        let inputs = [-30.0f32, -8.0, -2.0, -0.5, 0.0, 0.5, 2.0, 5.0];
        sb.write(SbSlot(0), &beat_of(&inputs)).unwrap();
        units.exp(&mut sb, SbSlot(1), SbSlot(0), 1).unwrap();
        let out = sb.read(SbSlot(1)).unwrap();
        for (i, x) in inputs.iter().enumerate() {
            let expect = x.exp();
            let got = out[i].to_f32();
            let tol = (expect * 0.02).abs().max(1e-12);
            assert!((got - expect).abs() <= tol, "exp({x}): got {got}, want {expect}");
        }
    }

    #[test]
    fn exp_taylor_handles_extremes() {
        assert!(exp_taylor(f32::NAN).is_nan());
        assert_eq!(exp_taylor(-1000.0), exp_taylor(-88.0));
        assert!(exp_taylor(-88.0) >= 0.0);
        assert!((exp_taylor(0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn throughput_scales_with_unit_count() {
        let mut sb = SharedBuffer::new();
        let mut units = PnmUnits::new();
        // 64 beats over 32 accumulators = 2 + fill cycles at 0.5 ns.
        let t = units.acc(&mut sb, SbSlot(0), SbSlot(100), 64).unwrap();
        assert_eq!(t.as_ns(), (2 + 2) as f64 * 0.5);
        // 256 beats: 8 + 2 cycles.
        let t = units.acc(&mut sb, SbSlot(0), SbSlot(100), 256).unwrap();
        assert_eq!(t.as_ns(), 5.0);
    }
}
