//! Canned RISC-V routines for the PNM cores.
//!
//! These are the "less common operations" §4.2 assigns to the BOOM cores:
//! square roots and inversions (RMSNorm, softmax normalisation) and the
//! complex/real transforms of rotary embedding (§5.4, Figure 10e). Programs
//! receive Shared Buffer *byte offsets* in `a0..a5` and use the 16-bit
//! load/store protocol the paper describes.
//!
//! BF16 values travel as the high half of an f32 (`bits << 16`), are
//! processed in the core FPU at single precision and truncated back — the
//! same path a BOOM core with an F unit takes.

/// `RSQRT(a0: in_off, a1: out_off)`: `out = 1 / sqrt(in)`.
pub const RSQRT: &str = "
    li   t0, 0x10000000
    add  t1, t0, a0
    lhu  t2, 0(t1)
    slli t2, t2, 16
    fmv.w.x f0, t2
    fsqrt.s f1, f0
    li   t3, 0x3f800000
    fmv.w.x f2, t3
    fdiv.s  f3, f2, f1
    fmv.x.w t4, f3
    srli t4, t4, 16
    add  t5, t0, a1
    sh   t4, 0(t5)
    ecall
";

/// `RECIP(a0: in_off, a1: out_off)`: `out = 1 / in` (softmax normaliser).
pub const RECIP: &str = "
    li   t0, 0x10000000
    add  t1, t0, a0
    lhu  t2, 0(t1)
    slli t2, t2, 16
    fmv.w.x f0, t2
    li   t3, 0x3f800000
    fmv.w.x f1, t3
    fdiv.s  f2, f1, f0
    fmv.x.w t4, f2
    srli t4, t4, 16
    add  t5, t0, a1
    sh   t4, 0(t5)
    ecall
";

/// `RMSNORM_SCALE(a0: sumsq_off, a1: n, a2: out_off)`:
/// `out = 1 / sqrt(sumsq / n + 1e-5)` — the scalar the RMSNorm layer
/// broadcasts back to the PIM channels (Figure 10b).
pub const RMSNORM_SCALE: &str = "
    li   t0, 0x10000000
    add  t1, t0, a0
    lhu  t2, 0(t1)
    slli t2, t2, 16
    fmv.w.x f0, t2          # sum of squares
    fcvt.s.w f1, a1         # n
    fdiv.s  f2, f0, f1      # mean square
    li   t3, 0x3727c5ac     # 1e-5f epsilon
    fmv.w.x f3, t3
    fadd.s  f2, f2, f3
    fsqrt.s f4, f2
    li   t4, 0x3f800000
    fmv.w.x f5, t4
    fdiv.s  f6, f5, f4
    fmv.x.w t5, f6
    srli t5, t5, 16
    add  t6, t0, a2
    sh   t5, 0(t6)
    ecall
";

/// `ROPE_COMBINE(a0: ac_off, a1: bs_off, a2: as_off, a3: bc_off, a4: out_off,
/// a5: n_pairs)`: combines the four element-wise products the PIM channels
/// produced into the rotated head:
/// `out[2i] = ac[i] - bs[i]`, `out[2i+1] = as[i] + bc[i]`
/// — i.e. `(a + jb)·(cos + j·sin)` written back in real interleaved form.
pub const ROPE_COMBINE: &str = "
    li   t0, 0x10000000
    add  a0, a0, t0
    add  a1, a1, t0
    add  a2, a2, t0
    add  a3, a3, t0
    add  a4, a4, t0
    li   t1, 0
loop:
    bge  t1, a5, done
    slli t2, t1, 1
    add  t3, a0, t2
    lhu  t4, 0(t3)
    slli t4, t4, 16
    fmv.w.x f0, t4          # a*cos
    add  t3, a1, t2
    lhu  t4, 0(t3)
    slli t4, t4, 16
    fmv.w.x f1, t4          # b*sin
    fsub.s f2, f0, f1       # real part
    add  t3, a2, t2
    lhu  t4, 0(t3)
    slli t4, t4, 16
    fmv.w.x f3, t4          # a*sin
    add  t3, a3, t2
    lhu  t4, 0(t3)
    slli t4, t4, 16
    fmv.w.x f4, t4          # b*cos
    fadd.s f5, f3, f4       # imaginary part
    slli t5, t1, 2
    add  t3, a4, t5
    fmv.x.w t4, f2
    srli t4, t4, 16
    sh   t4, 0(t3)
    fmv.x.w t4, f5
    srli t4, t4, 16
    sh   t4, 2(t3)
    addi t1, t1, 1
    j    loop
done:
    ecall
";

/// `VEC_ADD(a0: a_off, a1: b_off, a2: out_off, a3: n)`: element-wise BF16
/// vector addition — the residual-connection fallback path when the
/// accumulators are busy (Figure 10a marks residuals as PNM work).
pub const VEC_ADD: &str = "
    li   t0, 0x10000000
    add  a0, a0, t0
    add  a1, a1, t0
    add  a2, a2, t0
    li   t1, 0
loop:
    bge  t1, a3, done
    slli t2, t1, 1
    add  t3, a0, t2
    lhu  t4, 0(t3)
    slli t4, t4, 16
    fmv.w.x f0, t4
    add  t3, a1, t2
    lhu  t4, 0(t3)
    slli t4, t4, 16
    fmv.w.x f1, t4
    fadd.s f2, f0, f1
    add  t3, a2, t2
    fmv.x.w t4, f2
    srli t4, t4, 16
    sh   t4, 0(t3)
    addi t1, t1, 1
    j    loop
done:
    ecall
";

/// `VEC_SCALE(a0: in_off, a1: scalar_off, a2: out_off, a3: n)`: multiplies a
/// BF16 vector by a scalar held in the Shared Buffer (softmax `1/Σ`,
/// RMSNorm `1/rms`, attention `1/sqrt(d)` scaling).
pub const VEC_SCALE: &str = "
    li   t0, 0x10000000
    add  t1, t0, a1
    lhu  t2, 0(t1)
    slli t2, t2, 16
    fmv.w.x f7, t2          # scalar
    add  a0, a0, t0
    add  a2, a2, t0
    li   t1, 0
loop:
    bge  t1, a3, done
    slli t2, t1, 1
    add  t3, a0, t2
    lhu  t4, 0(t3)
    slli t4, t4, 16
    fmv.w.x f0, t4
    fmul.s f1, f0, f7
    add  t3, a2, t2
    fmv.x.w t4, f1
    srli t4, t4, 16
    sh   t4, 0(t3)
    addi t1, t1, 1
    j    loop
done:
    ecall
";

/// `DEINTERLEAVE(a0: in_off, a1: out_off, a2: n_pairs)`: splits an
/// interleaved head `[a0, b0, a1, b1, ...]` into `[a... | b...]` — the
/// complex-number regrouping the RISC-V cores perform before the PIM
/// channels multiply by the rotary weights (§5.4: "[a, b, c, d] to
/// [(a + jb), (c + jd)]").
pub const DEINTERLEAVE: &str = "
    li   t0, 0x10000000
    add  a0, a0, t0
    add  a1, a1, t0
    slli t5, a2, 1          # byte length of one half (n_pairs * 2)
    li   t1, 0
loop:
    bge  t1, a2, done
    slli t2, t1, 2          # input byte offset of pair i
    add  t3, a0, t2
    lhu  t4, 0(t3)          # a_i
    slli t6, t1, 1
    add  t3, a1, t6
    sh   t4, 0(t3)
    add  t3, a0, t2
    lhu  t4, 2(t3)          # b_i
    add  t3, a1, t6
    add  t3, t3, t5
    sh   t4, 0(t3)
    addi t1, t1, 1
    j    loop
done:
    ecall
";

/// `SUB_COUNT(a0: in_off, a1: count, a2: out_off)`: `out = in - count`.
/// Corrects the softmax denominator for padded key slots, which contribute
/// `exp(0) = 1` each when the context is not a multiple of 16 (the key
/// banks are zero there).
pub const SUB_COUNT: &str = "
    li   t0, 0x10000000
    add  t1, t0, a0
    lhu  t2, 0(t1)
    slli t2, t2, 16
    fmv.w.x f0, t2
    fcvt.s.w f1, a1
    fsub.s  f2, f0, f1
    fmv.x.w t3, f2
    srli t3, t3, 16
    add  t4, t0, a2
    sh   t3, 0(t4)
    ecall
";

/// `ZERO_TAIL(a0: beat_off, a1: start_lane)`: zeroes lanes
/// `[start_lane, 16)` of one Shared Buffer beat. Used to clear the padded
/// score lanes of the final attention segment so `exp(0) = 1` padding never
/// pollutes the softmax denominator.
pub const ZERO_TAIL: &str = "
    li   t0, 0x10000000
    add  a0, a0, t0
    li   t1, 16
loop:
    bge  a1, t1, done
    slli t2, a1, 1
    add  t3, a0, t2
    sh   x0, 0(t3)
    addi a1, a1, 1
    j    loop
done:
    ecall
";

#[cfg(test)]
mod tests {
    use crate::core::PnmCore;
    use crate::shared_buffer::SharedBuffer;
    use cent_types::{Bf16, SbSlot};

    fn write_scalars(sb: &mut SharedBuffer, byte_off: u32, values: &[f32]) {
        for (i, v) in values.iter().enumerate() {
            sb.write_u16(byte_off + 2 * i as u32, Bf16::from_f32(*v).to_bits()).unwrap();
        }
    }

    fn read_scalar(sb: &SharedBuffer, byte_off: u32) -> f32 {
        Bf16::from_bits(sb.read_u16(byte_off).unwrap()).to_f32()
    }

    #[test]
    fn rsqrt_of_quarter() {
        let mut sb = SharedBuffer::new();
        write_scalars(&mut sb, 0, &[0.25]);
        PnmCore::new().run(&mut sb, super::RSQRT, &[0, 32]).unwrap();
        assert_eq!(read_scalar(&sb, 32), 2.0);
    }

    #[test]
    fn recip_matches() {
        let mut sb = SharedBuffer::new();
        write_scalars(&mut sb, 10 * 32, &[8.0]);
        PnmCore::new().run(&mut sb, super::RECIP, &[10 * 32, 11 * 32]).unwrap();
        assert_eq!(read_scalar(&sb, 11 * 32), 0.125);
    }

    #[test]
    fn rmsnorm_scale_formula() {
        let mut sb = SharedBuffer::new();
        // sum of squares = 64 over n = 16 → mean 4 → 1/sqrt(4 + eps) ≈ 0.5.
        write_scalars(&mut sb, 0, &[64.0]);
        PnmCore::new().run(&mut sb, super::RMSNORM_SCALE, &[0, 16, 64]).unwrap();
        let got = read_scalar(&sb, 64);
        assert!((got - 0.5).abs() < 1e-2, "got {got}");
    }

    #[test]
    fn rope_combine_rotates_pairs() {
        let mut sb = SharedBuffer::new();
        // One pair: a=1, b=0, cos=0, sin=1 → rotated = (1+0j)(0+1j) = 0 + 1j.
        // products: ac=0, bs=0, as=1, bc=0.
        write_scalars(&mut sb, 0, &[0.0]); // ac
        write_scalars(&mut sb, 32, &[0.0]); // bs
        write_scalars(&mut sb, 64, &[1.0]); // as
        write_scalars(&mut sb, 96, &[0.0]); // bc
        PnmCore::new().run(&mut sb, super::ROPE_COMBINE, &[0, 32, 64, 96, 128, 1]).unwrap();
        assert_eq!(read_scalar(&sb, 128), 0.0); // real
        assert_eq!(read_scalar(&sb, 130), 1.0); // imag
    }

    #[test]
    fn rope_combine_many_pairs() {
        let mut sb = SharedBuffer::new();
        let n = 8;
        let ac: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let bs: Vec<f32> = (0..n).map(|i| 0.5 * i as f32).collect();
        let as_: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
        let bc: Vec<f32> = (0..n).map(|_| 1.0).collect();
        write_scalars(&mut sb, 0, &ac);
        write_scalars(&mut sb, 64, &bs);
        write_scalars(&mut sb, 128, &as_);
        write_scalars(&mut sb, 192, &bc);
        PnmCore::new()
            .run(&mut sb, super::ROPE_COMBINE, &[0, 64, 128, 192, 256, n as u32])
            .unwrap();
        for i in 0..n {
            let real = read_scalar(&sb, 256 + 4 * i as u32);
            let imag = read_scalar(&sb, 258 + 4 * i as u32);
            assert_eq!(real, 0.5 * i as f32, "pair {i} real");
            assert_eq!(imag, 2.0 * i as f32 + 1.0, "pair {i} imag");
        }
    }

    #[test]
    fn vec_add_accumulates_residual() {
        let mut sb = SharedBuffer::new();
        write_scalars(&mut sb, 0, &[1.0, 2.0, 3.0, 4.0]);
        write_scalars(&mut sb, 128, &[10.0, 20.0, 30.0, 40.0]);
        PnmCore::new().run(&mut sb, super::VEC_ADD, &[0, 128, 256, 4]).unwrap();
        let out = sb.read(SbSlot(8)).unwrap();
        assert_eq!(out[0].to_f32(), 11.0);
        assert_eq!(out[3].to_f32(), 44.0);
    }

    #[test]
    fn vec_scale_multiplies_by_shared_scalar() {
        let mut sb = SharedBuffer::new();
        write_scalars(&mut sb, 0, &[2.0, 4.0, 8.0]);
        write_scalars(&mut sb, 512, &[0.25]);
        PnmCore::new().run(&mut sb, super::VEC_SCALE, &[0, 512, 1024, 3]).unwrap();
        assert_eq!(read_scalar(&sb, 1024), 0.5);
        assert_eq!(read_scalar(&sb, 1028), 2.0);
    }

    #[test]
    fn deinterleave_splits_pairs() {
        let mut sb = SharedBuffer::new();
        write_scalars(&mut sb, 0, &[1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]);
        PnmCore::new().run(&mut sb, super::DEINTERLEAVE, &[0, 256, 4]).unwrap();
        for i in 0..4u32 {
            assert_eq!(read_scalar(&sb, 256 + 2 * i), (i + 1) as f32, "a[{i}]");
            assert_eq!(read_scalar(&sb, 256 + 8 + 2 * i), 10.0 * (i + 1) as f32, "b[{i}]");
        }
    }

    #[test]
    fn sub_count_corrects_denominator() {
        let mut sb = SharedBuffer::new();
        write_scalars(&mut sb, 0, &[20.0]);
        PnmCore::new().run(&mut sb, super::SUB_COUNT, &[0, 7, 64]).unwrap();
        assert_eq!(read_scalar(&sb, 64), 13.0);
    }

    #[test]
    fn zero_tail_clears_pad_lanes() {
        let mut sb = SharedBuffer::new();
        write_scalars(&mut sb, 0, &[9.0; 16]);
        PnmCore::new().run(&mut sb, super::ZERO_TAIL, &[0, 3]).unwrap();
        assert_eq!(read_scalar(&sb, 4), 9.0); // lane 2 kept
        assert_eq!(read_scalar(&sb, 6), 0.0); // lane 3 zeroed
        assert_eq!(read_scalar(&sb, 30), 0.0); // lane 15 zeroed
    }
}
