//! PNM (processing-near-memory) units of a CENT CXL device.
//!
//! Implements Figure 7(b) of the paper: the 64 KB Shared Buffer that PIM
//! channels and accelerators view as a 256-bit register file, 32 BF16
//! accumulators, 32 reduction trees, 32 exponent accelerators (order-10
//! Taylor pipelines) and eight BOOM-2wide RISC-V cores running real RV32IMF
//! programs (assembled by `cent-riscv`) for square roots, inversions and the
//! rotary-embedding complex/real transforms.
//!
//! * [`SharedBuffer`] — dual-view device buffer;
//! * [`PnmUnits`] — the fixed-function accelerators with timing;
//! * [`PnmCore`] — one RISC-V core with its 64 KB local buffer;
//! * [`programs`] — the canned PNM routines.

#![forbid(unsafe_code)]

mod core;
pub mod programs;
mod shared_buffer;
mod units;

pub use crate::core::{PnmCore, RiscvRun, LOCAL_SIZE, SB_WINDOW_BASE, SB_WINDOW_SIZE};
pub use shared_buffer::SharedBuffer;
pub use units::{exp_taylor, PnmStats, PnmUnits};
