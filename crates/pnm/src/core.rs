//! The PNM RISC-V cores and their memory map.
//!
//! Each of the eight BOOM-2wide cores has a 64 KB local buffer (program +
//! scratch, initialised by the host through CXL writes) and sees the device
//! Shared Buffer as byte-addressable memory in a dedicated 64 KB region
//! (§4.2). Memory map used here:
//!
//! ```text
//! 0x0000_0000 .. 0x0001_0000   core-local buffer (instructions + stack)
//! 0x1000_0000 .. 0x1001_0000   Shared Buffer window (16-bit accesses)
//! ```

use cent_riscv::{assemble, BoomTimingModel, Bus, Cpu, Halt};
use cent_types::{CentError, CentResult, Time};

use crate::shared_buffer::SharedBuffer;

/// Base address of the Shared Buffer window in the core's address space.
pub const SB_WINDOW_BASE: u32 = 0x1000_0000;

/// Size of the Shared Buffer window (64 KB).
pub const SB_WINDOW_SIZE: u32 = 64 * 1024;

/// Size of the core-local buffer (64 KB).
pub const LOCAL_SIZE: u32 = 64 * 1024;

/// Bus implementation connecting a core to its local buffer and the Shared
/// Buffer window.
struct PnmBus<'a> {
    local: &'a mut [u8],
    sb: &'a mut SharedBuffer,
}

impl Bus for PnmBus<'_> {
    fn load8(&mut self, addr: u32) -> CentResult<u8> {
        if addr < LOCAL_SIZE {
            return Ok(self.local[addr as usize]);
        }
        if (SB_WINDOW_BASE..SB_WINDOW_BASE + SB_WINDOW_SIZE).contains(&addr) {
            // Byte access into a halfword lane.
            let off = addr - SB_WINDOW_BASE;
            let half = self.sb.read_u16(off & !1)?;
            return Ok(if off.is_multiple_of(2) { half as u8 } else { (half >> 8) as u8 });
        }
        Err(CentError::RiscvTrap(format!("load fault at {addr:#010x}")))
    }

    fn store8(&mut self, addr: u32, value: u8) -> CentResult<()> {
        if addr < LOCAL_SIZE {
            self.local[addr as usize] = value;
            return Ok(());
        }
        if (SB_WINDOW_BASE..SB_WINDOW_BASE + SB_WINDOW_SIZE).contains(&addr) {
            let off = addr - SB_WINDOW_BASE;
            let mut half = self.sb.read_u16(off & !1)?;
            if off.is_multiple_of(2) {
                half = (half & 0xFF00) | u16::from(value);
            } else {
                half = (half & 0x00FF) | (u16::from(value) << 8);
            }
            return self.sb.write_u16(off & !1, half);
        }
        Err(CentError::RiscvTrap(format!("store fault at {addr:#010x}")))
    }
}

/// Result of one RISC-V routine invocation.
#[derive(Debug, Clone, Copy)]
pub struct RiscvRun {
    /// Modelled wall-clock time on the BOOM-2wide core.
    pub latency: Time,
    /// Instructions retired.
    pub retired: u64,
    /// Value left in `a0` at the `ecall`.
    pub a0: u32,
}

/// A PNM RISC-V core: CPU state plus its 64 KB local buffer.
///
/// # Examples
///
/// ```
/// use cent_pnm::{PnmCore, SharedBuffer};
/// use cent_types::{Bf16, SbSlot, ZERO_BEAT};
///
/// # fn main() -> Result<(), cent_types::CentError> {
/// let mut sb = SharedBuffer::new();
/// let mut beat = ZERO_BEAT;
/// beat[0] = Bf16::from_f32(16.0);
/// sb.write(SbSlot(0), &beat)?;
///
/// // Compute 1/sqrt(x) of slot 0 lane 0, writing slot 1 lane 0.
/// let mut core = PnmCore::new();
/// let run = core.run(&mut sb, cent_pnm::programs::RSQRT, &[0, 32])?;
/// assert!(run.latency.as_ns() > 0.0);
/// assert_eq!(sb.read(SbSlot(1))?[0].to_f32(), 0.25);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PnmCore {
    local: Vec<u8>,
    timing: BoomTimingModel,
}

impl Default for PnmCore {
    fn default() -> Self {
        Self::new()
    }
}

impl PnmCore {
    /// Creates a core with an empty local buffer.
    pub fn new() -> Self {
        PnmCore { local: vec![0; LOCAL_SIZE as usize], timing: BoomTimingModel::default() }
    }

    /// Runs `source` (RISC-V assembly) to completion with `args` preloaded
    /// into registers `a0..a5`. Shared Buffer *byte offsets* are the natural
    /// argument currency; programs add [`SB_WINDOW_BASE`] themselves.
    ///
    /// # Errors
    ///
    /// Returns assembly errors, traps, or a trap-equivalent error if the
    /// program exceeds its fuel (10M instructions).
    pub fn run(
        &mut self,
        sb: &mut SharedBuffer,
        source: &str,
        args: &[u32],
    ) -> CentResult<RiscvRun> {
        let words = assemble(source)?;
        if words.len() * 4 > LOCAL_SIZE as usize / 2 {
            return Err(CentError::InvalidConfig(format!(
                "program of {} words exceeds the 32 KB text budget",
                words.len()
            )));
        }
        let mut cpu = Cpu::new();
        let mut bus = PnmBus { local: &mut self.local, sb };
        cpu.load_program(&mut bus, 0, &words)?;
        // Stack at the top of the local buffer.
        cpu.set_x(2, LOCAL_SIZE - 16);
        for (i, &arg) in args.iter().enumerate().take(6) {
            cpu.set_x(10 + i, arg);
        }
        match cpu.run(&mut bus, 10_000_000)? {
            Halt::Ecall | Halt::Ebreak => {}
            Halt::OutOfFuel => {
                return Err(CentError::RiscvTrap("program exceeded instruction budget".into()))
            }
        }
        Ok(RiscvRun {
            latency: self.timing.latency(cpu.stats()),
            retired: cpu.stats().retired,
            a0: cpu.x(10),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cent_types::{Bf16, SbSlot, ZERO_BEAT};

    #[test]
    fn core_reads_and_writes_shared_buffer() {
        let mut sb = SharedBuffer::new();
        let mut beat = ZERO_BEAT;
        beat[0] = Bf16::from_f32(3.0);
        sb.write(SbSlot(2), &beat).unwrap();

        // Double lane 0 of slot 2 in place: load bf16, shift to f32, add, store.
        let src = "li t0, 0x10000000
                   lhu t1, 64(t0)        # slot 2 = byte 64
                   slli t1, t1, 16
                   fmv.w.x f0, t1
                   fadd.s f1, f0, f0
                   fmv.x.w t2, f1
                   srli t2, t2, 16
                   sh t2, 64(t0)
                   ecall";
        let mut core = PnmCore::new();
        let run = core.run(&mut sb, src, &[]).unwrap();
        assert!(run.retired > 5);
        assert_eq!(sb.read(SbSlot(2)).unwrap()[0].to_f32(), 6.0);
    }

    #[test]
    fn args_arrive_in_a_registers() {
        let mut sb = SharedBuffer::new();
        let mut core = PnmCore::new();
        let run = core.run(&mut sb, "add a0, a0, a1\necall", &[40, 2]).unwrap();
        assert_eq!(run.a0, 42);
    }

    #[test]
    fn runaway_program_is_cut_off() {
        let mut sb = SharedBuffer::new();
        let mut core = PnmCore::new();
        let err = core.run(&mut sb, "loop: j loop", &[]).unwrap_err();
        assert!(err.to_string().contains("instruction budget"));
    }

    #[test]
    fn faulting_access_traps() {
        let mut sb = SharedBuffer::new();
        let mut core = PnmCore::new();
        let err = core.run(&mut sb, "li t0, 0x20000000\nlw a0, 0(t0)\necall", &[]).unwrap_err();
        assert!(err.to_string().contains("load fault"));
    }
}
