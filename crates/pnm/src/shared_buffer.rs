//! The 64 KB Shared Buffer of a CENT CXL device.
//!
//! The Shared Buffer (Figure 5) is the rendezvous point of the device:
//! PIM channels and PNM accelerators see it as a file of 2048 × 256-bit
//! registers, while the RISC-V cores see it as byte-addressable memory
//! accessed with 16-bit loads/stores in a dedicated 64 KB region (§4.2).

use cent_types::consts::SHARED_BUFFER_SLOTS;
use cent_types::{Beat, Bf16, CentError, CentResult, SbSlot, ZERO_BEAT};

/// The device Shared Buffer: both a 256-bit register file and a byte
/// addressable 64 KB memory.
///
/// # Examples
///
/// ```
/// use cent_pnm::SharedBuffer;
/// use cent_types::{Bf16, SbSlot, ZERO_BEAT};
///
/// let mut sb = SharedBuffer::new();
/// let mut beat = ZERO_BEAT;
/// beat[3] = Bf16::from_f32(2.5);
/// sb.write(SbSlot(7), &beat).unwrap();
/// // Lane 3 of slot 7 is bytes 7*32 + 3*2 in the byte view.
/// assert_eq!(sb.read_u16(7 * 32 + 6).unwrap(), Bf16::from_f32(2.5).to_bits());
/// ```
#[derive(Debug, Clone)]
pub struct SharedBuffer {
    slots: Vec<Beat>,
}

impl Default for SharedBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedBuffer {
    /// Creates a zeroed Shared Buffer.
    pub fn new() -> Self {
        SharedBuffer { slots: vec![ZERO_BEAT; SHARED_BUFFER_SLOTS] }
    }

    /// Number of 256-bit slots (2048).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    fn check(&self, slot: SbSlot) -> CentResult<()> {
        if slot.index() >= self.slots.len() {
            return Err(CentError::AddressOutOfRange(format!("shared buffer {slot}")));
        }
        Ok(())
    }

    /// Reads a 256-bit slot.
    ///
    /// # Errors
    ///
    /// Returns an error if `slot` is out of range.
    pub fn read(&self, slot: SbSlot) -> CentResult<Beat> {
        self.check(slot)?;
        Ok(self.slots[slot.index()])
    }

    /// Writes a 256-bit slot.
    ///
    /// # Errors
    ///
    /// Returns an error if `slot` is out of range.
    pub fn write(&mut self, slot: SbSlot, beat: &Beat) -> CentResult<()> {
        self.check(slot)?;
        self.slots[slot.index()] = *beat;
        Ok(())
    }

    /// Reads `n` consecutive slots starting at `slot` as a flat BF16 vector.
    ///
    /// # Errors
    ///
    /// Returns an error if the range exceeds the buffer.
    pub fn read_vec(&self, slot: SbSlot, n: usize) -> CentResult<Vec<Bf16>> {
        let mut out = Vec::with_capacity(n * 16);
        for i in 0..n {
            out.extend_from_slice(&self.read(slot.offset(i as u16))?);
        }
        Ok(out)
    }

    /// Writes a flat BF16 vector into consecutive slots starting at `slot`,
    /// zero-padding the final beat.
    ///
    /// # Errors
    ///
    /// Returns an error if the vector does not fit.
    pub fn write_vec(&mut self, slot: SbSlot, values: &[Bf16]) -> CentResult<usize> {
        let beats = values.len().div_ceil(16);
        for i in 0..beats {
            let mut beat = ZERO_BEAT;
            for (lane, out) in beat.iter_mut().enumerate() {
                if let Some(v) = values.get(i * 16 + lane) {
                    *out = *v;
                }
            }
            self.write(slot.offset(i as u16), &beat)?;
        }
        Ok(beats)
    }

    /// 16-bit load at byte address `addr` (RISC-V view).
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range or misaligned addresses.
    pub fn read_u16(&self, addr: u32) -> CentResult<u16> {
        if !addr.is_multiple_of(2) {
            return Err(CentError::AddressOutOfRange(format!(
                "misaligned shared-buffer halfword access at {addr:#x}"
            )));
        }
        let slot = (addr / 32) as usize;
        let lane = ((addr % 32) / 2) as usize;
        if slot >= self.slots.len() {
            return Err(CentError::AddressOutOfRange(format!("shared buffer byte {addr:#x}")));
        }
        Ok(self.slots[slot][lane].to_bits())
    }

    /// 16-bit store at byte address `addr` (RISC-V view).
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range or misaligned addresses.
    pub fn write_u16(&mut self, addr: u32, value: u16) -> CentResult<()> {
        if !addr.is_multiple_of(2) {
            return Err(CentError::AddressOutOfRange(format!(
                "misaligned shared-buffer halfword access at {addr:#x}"
            )));
        }
        let slot = (addr / 32) as usize;
        let lane = ((addr % 32) / 2) as usize;
        if slot >= self.slots.len() {
            return Err(CentError::AddressOutOfRange(format!("shared buffer byte {addr:#x}")));
        }
        self.slots[slot][lane] = Bf16::from_bits(value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_and_byte_views_alias() {
        let mut sb = SharedBuffer::new();
        sb.write_u16(0, Bf16::from_f32(1.5).to_bits()).unwrap();
        sb.write_u16(2, Bf16::from_f32(-2.0).to_bits()).unwrap();
        let beat = sb.read(SbSlot(0)).unwrap();
        assert_eq!(beat[0].to_f32(), 1.5);
        assert_eq!(beat[1].to_f32(), -2.0);
    }

    #[test]
    fn vector_round_trip_with_padding() {
        let mut sb = SharedBuffer::new();
        let v: Vec<Bf16> = (0..20).map(|i| Bf16::from_f32(i as f32)).collect();
        let beats = sb.write_vec(SbSlot(4), &v).unwrap();
        assert_eq!(beats, 2);
        let back = sb.read_vec(SbSlot(4), 2).unwrap();
        assert_eq!(back[19].to_f32(), 19.0);
        assert_eq!(back[20].to_f32(), 0.0); // padding
    }

    #[test]
    fn bounds_are_enforced() {
        let mut sb = SharedBuffer::new();
        assert!(sb.read(SbSlot(2048)).is_err());
        assert!(sb.write_u16(64 * 1024, 0).is_err());
        assert!(sb.read_u16(1).is_err()); // misaligned
    }

    #[test]
    fn capacity_matches_paper() {
        let sb = SharedBuffer::new();
        assert_eq!(sb.slot_count() * 32, 64 * 1024);
    }
}
