//! Timing approximation for the BOOM-2wide cores.
//!
//! The paper does not simulate the cores cycle-accurately either — they are
//! small contributors to the latency budget (Figure 14c shows PNM as a thin
//! slice). We use a deterministic per-instruction-class cost model for a
//! 2-wide out-of-order core at the 2 GHz PNM clock:
//!
//! * base throughput 2 instructions/cycle (cost 0.5 cycles each);
//! * loads/stores limited by the single Shared Buffer port (1 cycle);
//! * taken branches cost a front-end redirect (3 cycles, amortised view of
//!   BOOM's mispredict penalty times a typical taken-branch mispredict rate);
//! * integer multiply 3 cycles, divide 12 cycles (unpipelined);
//! * FP add/mul/convert 1 cycle effective, FP divide/sqrt 10 cycles.

use cent_types::{consts, Time};

use crate::cpu::ExecStats;

/// Per-class cycle costs for the BOOM-2wide model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoomTimingModel {
    /// Cycles per plain ALU instruction (2-wide issue → 0.5).
    pub alu: f64,
    /// Cycles per load/store.
    pub mem: f64,
    /// Extra cycles per taken branch.
    pub taken_branch: f64,
    /// Cycles per integer multiply.
    pub mul: f64,
    /// Cycles per integer divide.
    pub div: f64,
    /// Cycles per short FP op.
    pub fp: f64,
    /// Cycles per FP divide or square root.
    pub fp_div_sqrt: f64,
    /// Core clock frequency in Hz.
    pub clock_hz: f64,
}

impl Default for BoomTimingModel {
    fn default() -> Self {
        BoomTimingModel {
            alu: 0.5,
            mem: 1.0,
            taken_branch: 3.0,
            mul: 3.0,
            div: 12.0,
            fp: 1.0,
            fp_div_sqrt: 10.0,
            clock_hz: consts::PNM_CLOCK_HZ,
        }
    }
}

impl BoomTimingModel {
    /// Estimated cycles to retire the given instruction mix.
    pub fn cycles(&self, stats: &ExecStats) -> f64 {
        let special = stats.mem_ops + stats.muls + stats.divs + stats.fp_ops + stats.fp_div_sqrt;
        let plain = stats.retired.saturating_sub(special) as f64;
        plain * self.alu
            + stats.mem_ops as f64 * self.mem
            + stats.taken_branches as f64 * self.taken_branch
            + stats.muls as f64 * self.mul
            + stats.divs as f64 * self.div
            + stats.fp_ops as f64 * self.fp
            + stats.fp_div_sqrt as f64 * self.fp_div_sqrt
    }

    /// Estimated wall-clock time to retire the given instruction mix.
    pub fn latency(&self, stats: &ExecStats) -> Time {
        Time::from_secs_f64(self.cycles(stats) / self.clock_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_code_runs_at_two_wide() {
        let stats = ExecStats { retired: 100, ..Default::default() };
        let model = BoomTimingModel::default();
        assert_eq!(model.cycles(&stats), 50.0);
        // 50 cycles at 2 GHz = 25 ns.
        assert_eq!(model.latency(&stats).as_ns(), 25.0);
    }

    #[test]
    fn long_latency_ops_dominate() {
        let stats = ExecStats { retired: 10, divs: 10, ..Default::default() };
        let model = BoomTimingModel::default();
        assert_eq!(model.cycles(&stats), 120.0);
    }

    #[test]
    fn mixed_workload() {
        let stats = ExecStats {
            retired: 20,
            mem_ops: 4,
            taken_branches: 2,
            muls: 1,
            divs: 0,
            fp_ops: 3,
            fp_div_sqrt: 1,
        };
        let model = BoomTimingModel::default();
        // plain = 20 - (4+1+3+1) = 11 → 5.5 + mem 4 + branch 6 + mul 3 + fp 3 + fds 10
        assert!((model.cycles(&stats) - 31.5).abs() < 1e-12);
    }
}
