//! RV32IMF instruction definitions and decoder.
//!
//! The PNM units of a CENT device embed eight BOOM-2wide RISC-V cores
//! (§4.2). The cores execute "less common operations (such as square root and
//! inversion)" on Shared Buffer data. We model them with the RV32I base ISA,
//! the M extension (the cores address-compute over buffer slots) and the
//! single-precision F extension (sqrt/div/reciprocal run on hardware FPUs in
//! BOOM).

use cent_types::{CentError, CentResult};

/// A decoded RV32IMF instruction.
///
/// `rd`/`rs1`/`rs2` index the integer register file for integer ops and the
/// floating-point register file for F-extension ops (disambiguated by the
/// variant). Immediates are sign-extended at decode time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields mirror the RISC-V spec names
pub enum Inst {
    // ---- RV32I ----
    Lui { rd: u8, imm: i32 },
    Auipc { rd: u8, imm: i32 },
    Jal { rd: u8, imm: i32 },
    Jalr { rd: u8, rs1: u8, imm: i32 },
    Beq { rs1: u8, rs2: u8, imm: i32 },
    Bne { rs1: u8, rs2: u8, imm: i32 },
    Blt { rs1: u8, rs2: u8, imm: i32 },
    Bge { rs1: u8, rs2: u8, imm: i32 },
    Bltu { rs1: u8, rs2: u8, imm: i32 },
    Bgeu { rs1: u8, rs2: u8, imm: i32 },
    Lb { rd: u8, rs1: u8, imm: i32 },
    Lh { rd: u8, rs1: u8, imm: i32 },
    Lw { rd: u8, rs1: u8, imm: i32 },
    Lbu { rd: u8, rs1: u8, imm: i32 },
    Lhu { rd: u8, rs1: u8, imm: i32 },
    Sb { rs1: u8, rs2: u8, imm: i32 },
    Sh { rs1: u8, rs2: u8, imm: i32 },
    Sw { rs1: u8, rs2: u8, imm: i32 },
    Addi { rd: u8, rs1: u8, imm: i32 },
    Slti { rd: u8, rs1: u8, imm: i32 },
    Sltiu { rd: u8, rs1: u8, imm: i32 },
    Xori { rd: u8, rs1: u8, imm: i32 },
    Ori { rd: u8, rs1: u8, imm: i32 },
    Andi { rd: u8, rs1: u8, imm: i32 },
    Slli { rd: u8, rs1: u8, shamt: u8 },
    Srli { rd: u8, rs1: u8, shamt: u8 },
    Srai { rd: u8, rs1: u8, shamt: u8 },
    Add { rd: u8, rs1: u8, rs2: u8 },
    Sub { rd: u8, rs1: u8, rs2: u8 },
    Sll { rd: u8, rs1: u8, rs2: u8 },
    Slt { rd: u8, rs1: u8, rs2: u8 },
    Sltu { rd: u8, rs1: u8, rs2: u8 },
    Xor { rd: u8, rs1: u8, rs2: u8 },
    Srl { rd: u8, rs1: u8, rs2: u8 },
    Sra { rd: u8, rs1: u8, rs2: u8 },
    Or { rd: u8, rs1: u8, rs2: u8 },
    And { rd: u8, rs1: u8, rs2: u8 },
    Fence,
    Ecall,
    Ebreak,
    // ---- M ----
    Mul { rd: u8, rs1: u8, rs2: u8 },
    Mulh { rd: u8, rs1: u8, rs2: u8 },
    Mulhsu { rd: u8, rs1: u8, rs2: u8 },
    Mulhu { rd: u8, rs1: u8, rs2: u8 },
    Div { rd: u8, rs1: u8, rs2: u8 },
    Divu { rd: u8, rs1: u8, rs2: u8 },
    Rem { rd: u8, rs1: u8, rs2: u8 },
    Remu { rd: u8, rs1: u8, rs2: u8 },
    // ---- F (single precision) ----
    Flw { rd: u8, rs1: u8, imm: i32 },
    Fsw { rs1: u8, rs2: u8, imm: i32 },
    FaddS { rd: u8, rs1: u8, rs2: u8 },
    FsubS { rd: u8, rs1: u8, rs2: u8 },
    FmulS { rd: u8, rs1: u8, rs2: u8 },
    FdivS { rd: u8, rs1: u8, rs2: u8 },
    FsqrtS { rd: u8, rs1: u8 },
    FsgnjS { rd: u8, rs1: u8, rs2: u8 },
    FsgnjnS { rd: u8, rs1: u8, rs2: u8 },
    FsgnjxS { rd: u8, rs1: u8, rs2: u8 },
    FminS { rd: u8, rs1: u8, rs2: u8 },
    FmaxS { rd: u8, rs1: u8, rs2: u8 },
    FcvtWS { rd: u8, rs1: u8 },
    FcvtWuS { rd: u8, rs1: u8 },
    FmvXW { rd: u8, rs1: u8 },
    FeqS { rd: u8, rs1: u8, rs2: u8 },
    FltS { rd: u8, rs1: u8, rs2: u8 },
    FleS { rd: u8, rs1: u8, rs2: u8 },
    FcvtSW { rd: u8, rs1: u8 },
    FcvtSWu { rd: u8, rs1: u8 },
    FmvWX { rd: u8, rs1: u8 },
}

impl Inst {
    /// Whether this instruction reads or writes data memory.
    pub fn is_mem(self) -> bool {
        matches!(
            self,
            Inst::Lb { .. }
                | Inst::Lh { .. }
                | Inst::Lw { .. }
                | Inst::Lbu { .. }
                | Inst::Lhu { .. }
                | Inst::Sb { .. }
                | Inst::Sh { .. }
                | Inst::Sw { .. }
                | Inst::Flw { .. }
                | Inst::Fsw { .. }
        )
    }

    /// Whether this instruction may redirect the PC.
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            Inst::Jal { .. }
                | Inst::Jalr { .. }
                | Inst::Beq { .. }
                | Inst::Bne { .. }
                | Inst::Blt { .. }
                | Inst::Bge { .. }
                | Inst::Bltu { .. }
                | Inst::Bgeu { .. }
        )
    }
}

fn bits(word: u32, hi: u32, lo: u32) -> u32 {
    (word >> lo) & ((1 << (hi - lo + 1)) - 1)
}

fn sext(value: u32, width: u32) -> i32 {
    let shift = 32 - width;
    ((value << shift) as i32) >> shift
}

fn imm_i(w: u32) -> i32 {
    sext(bits(w, 31, 20), 12)
}

fn imm_s(w: u32) -> i32 {
    sext((bits(w, 31, 25) << 5) | bits(w, 11, 7), 12)
}

fn imm_b(w: u32) -> i32 {
    sext(
        (bits(w, 31, 31) << 12)
            | (bits(w, 7, 7) << 11)
            | (bits(w, 30, 25) << 5)
            | (bits(w, 11, 8) << 1),
        13,
    )
}

fn imm_u(w: u32) -> i32 {
    (w & 0xFFFF_F000) as i32
}

fn imm_j(w: u32) -> i32 {
    sext(
        (bits(w, 31, 31) << 20)
            | (bits(w, 19, 12) << 12)
            | (bits(w, 20, 20) << 11)
            | (bits(w, 30, 21) << 1),
        21,
    )
}

/// Decodes a 32-bit instruction word.
///
/// # Errors
///
/// Returns [`CentError::RiscvTrap`] for encodings outside the supported
/// RV32IMF subset (the hardware would raise an illegal-instruction trap).
pub fn decode(w: u32) -> CentResult<Inst> {
    let opcode = bits(w, 6, 0);
    let rd = bits(w, 11, 7) as u8;
    let rs1 = bits(w, 19, 15) as u8;
    let rs2 = bits(w, 24, 20) as u8;
    let funct3 = bits(w, 14, 12);
    let funct7 = bits(w, 31, 25);
    let illegal = || CentError::RiscvTrap(format!("illegal instruction {w:#010x}"));

    let inst = match opcode {
        0b0110111 => Inst::Lui { rd, imm: imm_u(w) },
        0b0010111 => Inst::Auipc { rd, imm: imm_u(w) },
        0b1101111 => Inst::Jal { rd, imm: imm_j(w) },
        0b1100111 if funct3 == 0 => Inst::Jalr { rd, rs1, imm: imm_i(w) },
        0b1100011 => {
            let imm = imm_b(w);
            match funct3 {
                0b000 => Inst::Beq { rs1, rs2, imm },
                0b001 => Inst::Bne { rs1, rs2, imm },
                0b100 => Inst::Blt { rs1, rs2, imm },
                0b101 => Inst::Bge { rs1, rs2, imm },
                0b110 => Inst::Bltu { rs1, rs2, imm },
                0b111 => Inst::Bgeu { rs1, rs2, imm },
                _ => return Err(illegal()),
            }
        }
        0b0000011 => {
            let imm = imm_i(w);
            match funct3 {
                0b000 => Inst::Lb { rd, rs1, imm },
                0b001 => Inst::Lh { rd, rs1, imm },
                0b010 => Inst::Lw { rd, rs1, imm },
                0b100 => Inst::Lbu { rd, rs1, imm },
                0b101 => Inst::Lhu { rd, rs1, imm },
                _ => return Err(illegal()),
            }
        }
        0b0100011 => {
            let imm = imm_s(w);
            match funct3 {
                0b000 => Inst::Sb { rs1, rs2, imm },
                0b001 => Inst::Sh { rs1, rs2, imm },
                0b010 => Inst::Sw { rs1, rs2, imm },
                _ => return Err(illegal()),
            }
        }
        0b0010011 => {
            let imm = imm_i(w);
            let shamt = rs2;
            match funct3 {
                0b000 => Inst::Addi { rd, rs1, imm },
                0b010 => Inst::Slti { rd, rs1, imm },
                0b011 => Inst::Sltiu { rd, rs1, imm },
                0b100 => Inst::Xori { rd, rs1, imm },
                0b110 => Inst::Ori { rd, rs1, imm },
                0b111 => Inst::Andi { rd, rs1, imm },
                0b001 if funct7 == 0 => Inst::Slli { rd, rs1, shamt },
                0b101 if funct7 == 0 => Inst::Srli { rd, rs1, shamt },
                0b101 if funct7 == 0b0100000 => Inst::Srai { rd, rs1, shamt },
                _ => return Err(illegal()),
            }
        }
        0b0110011 => match (funct7, funct3) {
            (0b0000000, 0b000) => Inst::Add { rd, rs1, rs2 },
            (0b0100000, 0b000) => Inst::Sub { rd, rs1, rs2 },
            (0b0000000, 0b001) => Inst::Sll { rd, rs1, rs2 },
            (0b0000000, 0b010) => Inst::Slt { rd, rs1, rs2 },
            (0b0000000, 0b011) => Inst::Sltu { rd, rs1, rs2 },
            (0b0000000, 0b100) => Inst::Xor { rd, rs1, rs2 },
            (0b0000000, 0b101) => Inst::Srl { rd, rs1, rs2 },
            (0b0100000, 0b101) => Inst::Sra { rd, rs1, rs2 },
            (0b0000000, 0b110) => Inst::Or { rd, rs1, rs2 },
            (0b0000000, 0b111) => Inst::And { rd, rs1, rs2 },
            (0b0000001, 0b000) => Inst::Mul { rd, rs1, rs2 },
            (0b0000001, 0b001) => Inst::Mulh { rd, rs1, rs2 },
            (0b0000001, 0b010) => Inst::Mulhsu { rd, rs1, rs2 },
            (0b0000001, 0b011) => Inst::Mulhu { rd, rs1, rs2 },
            (0b0000001, 0b100) => Inst::Div { rd, rs1, rs2 },
            (0b0000001, 0b101) => Inst::Divu { rd, rs1, rs2 },
            (0b0000001, 0b110) => Inst::Rem { rd, rs1, rs2 },
            (0b0000001, 0b111) => Inst::Remu { rd, rs1, rs2 },
            _ => return Err(illegal()),
        },
        0b0001111 => Inst::Fence,
        0b1110011 => match bits(w, 31, 20) {
            0 => Inst::Ecall,
            1 => Inst::Ebreak,
            _ => return Err(illegal()),
        },
        0b0000111 if funct3 == 0b010 => Inst::Flw { rd, rs1, imm: imm_i(w) },
        0b0100111 if funct3 == 0b010 => Inst::Fsw { rs1, rs2, imm: imm_s(w) },
        0b1010011 => match funct7 {
            0b0000000 => Inst::FaddS { rd, rs1, rs2 },
            0b0000100 => Inst::FsubS { rd, rs1, rs2 },
            0b0001000 => Inst::FmulS { rd, rs1, rs2 },
            0b0001100 => Inst::FdivS { rd, rs1, rs2 },
            0b0101100 if rs2 == 0 => Inst::FsqrtS { rd, rs1 },
            0b0010000 => match funct3 {
                0b000 => Inst::FsgnjS { rd, rs1, rs2 },
                0b001 => Inst::FsgnjnS { rd, rs1, rs2 },
                0b010 => Inst::FsgnjxS { rd, rs1, rs2 },
                _ => return Err(illegal()),
            },
            0b0010100 => match funct3 {
                0b000 => Inst::FminS { rd, rs1, rs2 },
                0b001 => Inst::FmaxS { rd, rs1, rs2 },
                _ => return Err(illegal()),
            },
            0b1100000 => match rs2 {
                0 => Inst::FcvtWS { rd, rs1 },
                1 => Inst::FcvtWuS { rd, rs1 },
                _ => return Err(illegal()),
            },
            0b1110000 if rs2 == 0 && funct3 == 0 => Inst::FmvXW { rd, rs1 },
            0b1010000 => match funct3 {
                0b010 => Inst::FeqS { rd, rs1, rs2 },
                0b001 => Inst::FltS { rd, rs1, rs2 },
                0b000 => Inst::FleS { rd, rs1, rs2 },
                _ => return Err(illegal()),
            },
            0b1101000 => match rs2 {
                0 => Inst::FcvtSW { rd, rs1 },
                1 => Inst::FcvtSWu { rd, rs1 },
                _ => return Err(illegal()),
            },
            0b1111000 if rs2 == 0 && funct3 == 0 => Inst::FmvWX { rd, rs1 },
            _ => return Err(illegal()),
        },
        _ => return Err(illegal()),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_addi() {
        // addi x1, x2, 10  ->  imm=10 rs1=2 funct3=000 rd=1 opcode=0010011
        let w = (10 << 20) | (2 << 15) | (1 << 7) | 0b0010011;
        assert_eq!(decode(w).unwrap(), Inst::Addi { rd: 1, rs1: 2, imm: 10 });
    }

    #[test]
    fn decode_negative_immediate() {
        // addi x1, x0, -1
        let w = (0xFFFu32 << 20) | (1 << 7) | 0b0010011;
        assert_eq!(decode(w).unwrap(), Inst::Addi { rd: 1, rs1: 0, imm: -1 });
    }

    #[test]
    fn decode_branch_immediate_reassembly() {
        // beq x0, x0, -4 : B-imm of -4.
        // imm[12]=1 imm[10:5]=111111 imm[4:1]=1110 imm[11]=1
        let w = (1 << 31) | (0b111111 << 25) | (0b1110 << 8) | (1 << 7) | 0b1100011;
        assert_eq!(decode(w).unwrap(), Inst::Beq { rs1: 0, rs2: 0, imm: -4 });
    }

    #[test]
    fn decode_mul_div() {
        let mul = (1 << 25) | (3 << 20) | (2 << 15) | (1 << 7) | 0b0110011;
        assert_eq!(decode(mul).unwrap(), Inst::Mul { rd: 1, rs1: 2, rs2: 3 });
        let div = (1 << 25) | (0b100 << 12) | (3 << 20) | (2 << 15) | (1 << 7) | 0b0110011;
        assert_eq!(decode(div).unwrap(), Inst::Div { rd: 1, rs1: 2, rs2: 3 });
    }

    #[test]
    fn decode_fsqrt() {
        let w = (0b0101100 << 25) | (2 << 15) | (1 << 7) | 0b1010011;
        assert_eq!(decode(w).unwrap(), Inst::FsqrtS { rd: 1, rs1: 2 });
    }

    #[test]
    fn illegal_instruction_traps() {
        assert!(decode(0xFFFF_FFFF).is_err());
        assert!(decode(0).is_err());
    }

    #[test]
    fn classification() {
        assert!(Inst::Lw { rd: 1, rs1: 0, imm: 0 }.is_mem());
        assert!(Inst::Jal { rd: 0, imm: 8 }.is_branch());
        assert!(!Inst::Add { rd: 1, rs1: 2, rs2: 3 }.is_branch());
    }
}
