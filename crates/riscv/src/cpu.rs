//! RV32IMF functional core with a pluggable memory bus.

use cent_types::{CentError, CentResult};

use crate::inst::{decode, Inst};

/// Data-memory interface seen by the core.
///
/// The PNM crate implements this over the device Shared Buffer plus core-local
/// scratch RAM; tests use the plain [`Ram`]. Functions take `&mut self`
/// because MMIO reads may have side effects.
pub trait Bus {
    /// Loads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`CentError::RiscvTrap`] on access faults.
    fn load8(&mut self, addr: u32) -> CentResult<u8>;

    /// Stores one byte.
    ///
    /// # Errors
    ///
    /// Returns [`CentError::RiscvTrap`] on access faults.
    fn store8(&mut self, addr: u32, value: u8) -> CentResult<()>;

    /// Loads a little-endian halfword.
    ///
    /// # Errors
    ///
    /// Returns [`CentError::RiscvTrap`] on access faults.
    fn load16(&mut self, addr: u32) -> CentResult<u16> {
        Ok(u16::from(self.load8(addr)?) | (u16::from(self.load8(addr + 1)?) << 8))
    }

    /// Stores a little-endian halfword.
    ///
    /// # Errors
    ///
    /// Returns [`CentError::RiscvTrap`] on access faults.
    fn store16(&mut self, addr: u32, value: u16) -> CentResult<()> {
        self.store8(addr, value as u8)?;
        self.store8(addr + 1, (value >> 8) as u8)
    }

    /// Loads a little-endian word.
    ///
    /// # Errors
    ///
    /// Returns [`CentError::RiscvTrap`] on access faults.
    fn load32(&mut self, addr: u32) -> CentResult<u32> {
        Ok(u32::from(self.load16(addr)?) | (u32::from(self.load16(addr + 2)?) << 16))
    }

    /// Stores a little-endian word.
    ///
    /// # Errors
    ///
    /// Returns [`CentError::RiscvTrap`] on access faults.
    fn store32(&mut self, addr: u32, value: u32) -> CentResult<()> {
        self.store16(addr, value as u16)?;
        self.store16(addr + 2, (value >> 16) as u16)
    }
}

/// A flat little-endian RAM for tests and standalone programs.
#[derive(Debug, Clone)]
pub struct Ram {
    data: Vec<u8>,
}

impl Ram {
    /// Creates a zero-filled RAM of `size` bytes.
    pub fn new(size: usize) -> Self {
        Ram { data: vec![0; size] }
    }

    /// Raw contents.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw contents.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl Bus for Ram {
    fn load8(&mut self, addr: u32) -> CentResult<u8> {
        self.data
            .get(addr as usize)
            .copied()
            .ok_or_else(|| CentError::RiscvTrap(format!("load fault at {addr:#010x}")))
    }

    fn store8(&mut self, addr: u32, value: u8) -> CentResult<()> {
        match self.data.get_mut(addr as usize) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(CentError::RiscvTrap(format!("store fault at {addr:#010x}"))),
        }
    }
}

/// Why [`Cpu::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Halt {
    /// The program executed `ecall` (CENT convention: program done).
    Ecall,
    /// The program executed `ebreak`.
    Ebreak,
    /// The instruction budget was exhausted before the program halted.
    OutOfFuel,
}

/// Dynamic instruction-mix counters, consumed by the BOOM timing model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total instructions retired.
    pub retired: u64,
    /// Loads and stores (integer + float).
    pub mem_ops: u64,
    /// Taken branches and jumps (pipeline redirects).
    pub taken_branches: u64,
    /// Integer multiplies.
    pub muls: u64,
    /// Integer divides/remainders.
    pub divs: u64,
    /// FP add/sub/mul/compare/convert ops.
    pub fp_ops: u64,
    /// FP divide and square-root ops (long latency).
    pub fp_div_sqrt: u64,
}

/// The RV32IMF core state.
///
/// # Examples
///
/// ```
/// use cent_riscv::{assemble, Cpu, Halt, Ram};
///
/// # fn main() -> Result<(), cent_types::CentError> {
/// let program = assemble(
///     "li a0, 6
///      li a1, 7
///      mul a0, a0, a1
///      ecall",
/// )?;
/// let mut ram = Ram::new(4096);
/// let mut cpu = Cpu::new();
/// cpu.load_program(&mut ram, 0, &program)?;
/// assert_eq!(cpu.run(&mut ram, 1000)?, Halt::Ecall);
/// assert_eq!(cpu.x(10), 42); // a0
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cpu {
    x: [u32; 32],
    f: [f32; 32],
    /// Program counter.
    pub pc: u32,
    stats: ExecStats,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// Creates a core with all registers zeroed and `pc = 0`.
    pub fn new() -> Self {
        Cpu { x: [0; 32], f: [0.0; 32], pc: 0, stats: ExecStats::default() }
    }

    /// Reads integer register `i` (x0 is always 0).
    #[inline]
    pub fn x(&self, i: usize) -> u32 {
        if i == 0 {
            0
        } else {
            self.x[i]
        }
    }

    /// Writes integer register `i` (writes to x0 are ignored).
    #[inline]
    pub fn set_x(&mut self, i: usize, value: u32) {
        if i != 0 {
            self.x[i] = value;
        }
    }

    /// Reads float register `i`.
    #[inline]
    pub fn fr(&self, i: usize) -> f32 {
        self.f[i]
    }

    /// Writes float register `i`.
    #[inline]
    pub fn set_f(&mut self, i: usize, value: f32) {
        self.f[i] = value;
    }

    /// Instruction-mix statistics accumulated so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Copies `words` into memory at `base` and sets `pc = base`.
    ///
    /// # Errors
    ///
    /// Propagates bus store faults.
    pub fn load_program<B: Bus>(
        &mut self,
        bus: &mut B,
        base: u32,
        words: &[u32],
    ) -> CentResult<()> {
        for (i, &w) in words.iter().enumerate() {
            bus.store32(base + (i as u32) * 4, w)?;
        }
        self.pc = base;
        Ok(())
    }

    /// Executes a single instruction.
    ///
    /// Returns `Some(halt)` if the instruction was `ecall`/`ebreak`.
    ///
    /// # Errors
    ///
    /// Returns [`CentError::RiscvTrap`] on illegal instructions, misaligned
    /// jumps or bus faults.
    pub fn step<B: Bus>(&mut self, bus: &mut B) -> CentResult<Option<Halt>> {
        let word = bus.load32(self.pc)?;
        let inst = decode(word)?;
        let mut next_pc = self.pc.wrapping_add(4);
        self.stats.retired += 1;
        if inst.is_mem() {
            self.stats.mem_ops += 1;
        }

        macro_rules! rr {
            ($rd:expr, $v:expr) => {
                self.set_x($rd as usize, $v)
            };
        }
        macro_rules! branch {
            ($cond:expr, $imm:expr) => {
                if $cond {
                    next_pc = self.pc.wrapping_add($imm as u32);
                    self.stats.taken_branches += 1;
                }
            };
        }

        match inst {
            Inst::Lui { rd, imm } => rr!(rd, imm as u32),
            Inst::Auipc { rd, imm } => rr!(rd, self.pc.wrapping_add(imm as u32)),
            Inst::Jal { rd, imm } => {
                rr!(rd, next_pc);
                next_pc = self.pc.wrapping_add(imm as u32);
                self.stats.taken_branches += 1;
            }
            Inst::Jalr { rd, rs1, imm } => {
                let target = self.x(rs1 as usize).wrapping_add(imm as u32) & !1;
                rr!(rd, next_pc);
                next_pc = target;
                self.stats.taken_branches += 1;
            }
            Inst::Beq { rs1, rs2, imm } => {
                branch!(self.x(rs1 as usize) == self.x(rs2 as usize), imm)
            }
            Inst::Bne { rs1, rs2, imm } => {
                branch!(self.x(rs1 as usize) != self.x(rs2 as usize), imm)
            }
            Inst::Blt { rs1, rs2, imm } => {
                branch!((self.x(rs1 as usize) as i32) < (self.x(rs2 as usize) as i32), imm)
            }
            Inst::Bge { rs1, rs2, imm } => {
                branch!((self.x(rs1 as usize) as i32) >= (self.x(rs2 as usize) as i32), imm)
            }
            Inst::Bltu { rs1, rs2, imm } => {
                branch!(self.x(rs1 as usize) < self.x(rs2 as usize), imm)
            }
            Inst::Bgeu { rs1, rs2, imm } => {
                branch!(self.x(rs1 as usize) >= self.x(rs2 as usize), imm)
            }
            Inst::Lb { rd, rs1, imm } => {
                let a = self.x(rs1 as usize).wrapping_add(imm as u32);
                rr!(rd, bus.load8(a)? as i8 as i32 as u32);
            }
            Inst::Lh { rd, rs1, imm } => {
                let a = self.x(rs1 as usize).wrapping_add(imm as u32);
                rr!(rd, bus.load16(a)? as i16 as i32 as u32);
            }
            Inst::Lw { rd, rs1, imm } => {
                let a = self.x(rs1 as usize).wrapping_add(imm as u32);
                rr!(rd, bus.load32(a)?);
            }
            Inst::Lbu { rd, rs1, imm } => {
                let a = self.x(rs1 as usize).wrapping_add(imm as u32);
                rr!(rd, u32::from(bus.load8(a)?));
            }
            Inst::Lhu { rd, rs1, imm } => {
                let a = self.x(rs1 as usize).wrapping_add(imm as u32);
                rr!(rd, u32::from(bus.load16(a)?));
            }
            Inst::Sb { rs1, rs2, imm } => {
                let a = self.x(rs1 as usize).wrapping_add(imm as u32);
                bus.store8(a, self.x(rs2 as usize) as u8)?;
            }
            Inst::Sh { rs1, rs2, imm } => {
                let a = self.x(rs1 as usize).wrapping_add(imm as u32);
                bus.store16(a, self.x(rs2 as usize) as u16)?;
            }
            Inst::Sw { rs1, rs2, imm } => {
                let a = self.x(rs1 as usize).wrapping_add(imm as u32);
                bus.store32(a, self.x(rs2 as usize))?;
            }
            Inst::Addi { rd, rs1, imm } => rr!(rd, self.x(rs1 as usize).wrapping_add(imm as u32)),
            Inst::Slti { rd, rs1, imm } => {
                rr!(rd, u32::from((self.x(rs1 as usize) as i32) < imm))
            }
            Inst::Sltiu { rd, rs1, imm } => rr!(rd, u32::from(self.x(rs1 as usize) < imm as u32)),
            Inst::Xori { rd, rs1, imm } => rr!(rd, self.x(rs1 as usize) ^ imm as u32),
            Inst::Ori { rd, rs1, imm } => rr!(rd, self.x(rs1 as usize) | imm as u32),
            Inst::Andi { rd, rs1, imm } => rr!(rd, self.x(rs1 as usize) & imm as u32),
            Inst::Slli { rd, rs1, shamt } => rr!(rd, self.x(rs1 as usize) << shamt),
            Inst::Srli { rd, rs1, shamt } => rr!(rd, self.x(rs1 as usize) >> shamt),
            Inst::Srai { rd, rs1, shamt } => {
                rr!(rd, ((self.x(rs1 as usize) as i32) >> shamt) as u32)
            }
            Inst::Add { rd, rs1, rs2 } => {
                rr!(rd, self.x(rs1 as usize).wrapping_add(self.x(rs2 as usize)))
            }
            Inst::Sub { rd, rs1, rs2 } => {
                rr!(rd, self.x(rs1 as usize).wrapping_sub(self.x(rs2 as usize)))
            }
            Inst::Sll { rd, rs1, rs2 } => {
                rr!(rd, self.x(rs1 as usize) << (self.x(rs2 as usize) & 31))
            }
            Inst::Slt { rd, rs1, rs2 } => {
                rr!(rd, u32::from((self.x(rs1 as usize) as i32) < (self.x(rs2 as usize) as i32)))
            }
            Inst::Sltu { rd, rs1, rs2 } => {
                rr!(rd, u32::from(self.x(rs1 as usize) < self.x(rs2 as usize)))
            }
            Inst::Xor { rd, rs1, rs2 } => rr!(rd, self.x(rs1 as usize) ^ self.x(rs2 as usize)),
            Inst::Srl { rd, rs1, rs2 } => {
                rr!(rd, self.x(rs1 as usize) >> (self.x(rs2 as usize) & 31))
            }
            Inst::Sra { rd, rs1, rs2 } => {
                rr!(rd, ((self.x(rs1 as usize) as i32) >> (self.x(rs2 as usize) & 31)) as u32)
            }
            Inst::Or { rd, rs1, rs2 } => rr!(rd, self.x(rs1 as usize) | self.x(rs2 as usize)),
            Inst::And { rd, rs1, rs2 } => rr!(rd, self.x(rs1 as usize) & self.x(rs2 as usize)),
            Inst::Fence => {}
            Inst::Ecall => return Ok(Some(Halt::Ecall)),
            Inst::Ebreak => return Ok(Some(Halt::Ebreak)),
            Inst::Mul { rd, rs1, rs2 } => {
                self.stats.muls += 1;
                rr!(rd, self.x(rs1 as usize).wrapping_mul(self.x(rs2 as usize)));
            }
            Inst::Mulh { rd, rs1, rs2 } => {
                self.stats.muls += 1;
                let p = (self.x(rs1 as usize) as i32 as i64) * (self.x(rs2 as usize) as i32 as i64);
                rr!(rd, (p >> 32) as u32);
            }
            Inst::Mulhsu { rd, rs1, rs2 } => {
                self.stats.muls += 1;
                let p = (self.x(rs1 as usize) as i32 as i64) * (self.x(rs2 as usize) as i64);
                rr!(rd, (p >> 32) as u32);
            }
            Inst::Mulhu { rd, rs1, rs2 } => {
                self.stats.muls += 1;
                let p = (self.x(rs1 as usize) as u64) * (self.x(rs2 as usize) as u64);
                rr!(rd, (p >> 32) as u32);
            }
            Inst::Div { rd, rs1, rs2 } => {
                self.stats.divs += 1;
                let (a, b) = (self.x(rs1 as usize) as i32, self.x(rs2 as usize) as i32);
                let q = if b == 0 {
                    -1
                } else if a == i32::MIN && b == -1 {
                    a
                } else {
                    a.wrapping_div(b)
                };
                rr!(rd, q as u32);
            }
            Inst::Divu { rd, rs1, rs2 } => {
                self.stats.divs += 1;
                let (a, b) = (self.x(rs1 as usize), self.x(rs2 as usize));
                rr!(rd, a.checked_div(b).unwrap_or(u32::MAX));
            }
            Inst::Rem { rd, rs1, rs2 } => {
                self.stats.divs += 1;
                let (a, b) = (self.x(rs1 as usize) as i32, self.x(rs2 as usize) as i32);
                let r = if b == 0 {
                    a
                } else if a == i32::MIN && b == -1 {
                    0
                } else {
                    a.wrapping_rem(b)
                };
                rr!(rd, r as u32);
            }
            Inst::Remu { rd, rs1, rs2 } => {
                self.stats.divs += 1;
                let (a, b) = (self.x(rs1 as usize), self.x(rs2 as usize));
                rr!(rd, if b == 0 { a } else { a % b });
            }
            Inst::Flw { rd, rs1, imm } => {
                let a = self.x(rs1 as usize).wrapping_add(imm as u32);
                self.f[rd as usize] = f32::from_bits(bus.load32(a)?);
            }
            Inst::Fsw { rs1, rs2, imm } => {
                let a = self.x(rs1 as usize).wrapping_add(imm as u32);
                bus.store32(a, self.f[rs2 as usize].to_bits())?;
            }
            Inst::FaddS { rd, rs1, rs2 } => {
                self.stats.fp_ops += 1;
                self.f[rd as usize] = self.f[rs1 as usize] + self.f[rs2 as usize];
            }
            Inst::FsubS { rd, rs1, rs2 } => {
                self.stats.fp_ops += 1;
                self.f[rd as usize] = self.f[rs1 as usize] - self.f[rs2 as usize];
            }
            Inst::FmulS { rd, rs1, rs2 } => {
                self.stats.fp_ops += 1;
                self.f[rd as usize] = self.f[rs1 as usize] * self.f[rs2 as usize];
            }
            Inst::FdivS { rd, rs1, rs2 } => {
                self.stats.fp_div_sqrt += 1;
                self.f[rd as usize] = self.f[rs1 as usize] / self.f[rs2 as usize];
            }
            Inst::FsqrtS { rd, rs1 } => {
                self.stats.fp_div_sqrt += 1;
                self.f[rd as usize] = self.f[rs1 as usize].sqrt();
            }
            Inst::FsgnjS { rd, rs1, rs2 } => {
                self.stats.fp_ops += 1;
                self.f[rd as usize] = copysign_bits(self.f[rs1 as usize], self.f[rs2 as usize]);
            }
            Inst::FsgnjnS { rd, rs1, rs2 } => {
                self.stats.fp_ops += 1;
                self.f[rd as usize] = copysign_bits(self.f[rs1 as usize], -self.f[rs2 as usize]);
            }
            Inst::FsgnjxS { rd, rs1, rs2 } => {
                self.stats.fp_ops += 1;
                let sign =
                    (self.f[rs1 as usize].to_bits() ^ self.f[rs2 as usize].to_bits()) & 0x8000_0000;
                self.f[rd as usize] =
                    f32::from_bits((self.f[rs1 as usize].to_bits() & 0x7FFF_FFFF) | sign);
            }
            Inst::FminS { rd, rs1, rs2 } => {
                self.stats.fp_ops += 1;
                self.f[rd as usize] = self.f[rs1 as usize].min(self.f[rs2 as usize]);
            }
            Inst::FmaxS { rd, rs1, rs2 } => {
                self.stats.fp_ops += 1;
                self.f[rd as usize] = self.f[rs1 as usize].max(self.f[rs2 as usize]);
            }
            Inst::FcvtWS { rd, rs1 } => {
                self.stats.fp_ops += 1;
                rr!(rd, (self.f[rs1 as usize].round_ties_even() as i32) as u32);
            }
            Inst::FcvtWuS { rd, rs1 } => {
                self.stats.fp_ops += 1;
                rr!(rd, self.f[rs1 as usize].round_ties_even() as u32);
            }
            Inst::FmvXW { rd, rs1 } => rr!(rd, self.f[rs1 as usize].to_bits()),
            Inst::FeqS { rd, rs1, rs2 } => {
                self.stats.fp_ops += 1;
                rr!(rd, u32::from(self.f[rs1 as usize] == self.f[rs2 as usize]));
            }
            Inst::FltS { rd, rs1, rs2 } => {
                self.stats.fp_ops += 1;
                rr!(rd, u32::from(self.f[rs1 as usize] < self.f[rs2 as usize]));
            }
            Inst::FleS { rd, rs1, rs2 } => {
                self.stats.fp_ops += 1;
                rr!(rd, u32::from(self.f[rs1 as usize] <= self.f[rs2 as usize]));
            }
            Inst::FcvtSW { rd, rs1 } => {
                self.stats.fp_ops += 1;
                self.f[rd as usize] = self.x(rs1 as usize) as i32 as f32;
            }
            Inst::FcvtSWu { rd, rs1 } => {
                self.stats.fp_ops += 1;
                self.f[rd as usize] = self.x(rs1 as usize) as f32;
            }
            Inst::FmvWX { rd, rs1 } => {
                self.f[rd as usize] = f32::from_bits(self.x(rs1 as usize));
            }
        }
        self.pc = next_pc;
        Ok(None)
    }

    /// Runs until the program halts or `fuel` instructions retire.
    ///
    /// # Errors
    ///
    /// Propagates traps from [`Self::step`].
    pub fn run<B: Bus>(&mut self, bus: &mut B, fuel: u64) -> CentResult<Halt> {
        for _ in 0..fuel {
            if let Some(halt) = self.step(bus)? {
                return Ok(halt);
            }
        }
        Ok(Halt::OutOfFuel)
    }
}

fn copysign_bits(magnitude: f32, sign: f32) -> f32 {
    f32::from_bits((magnitude.to_bits() & 0x7FFF_FFFF) | (sign.to_bits() & 0x8000_0000))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_program(src: &str) -> Cpu {
        let words = assemble(src).expect("assembly failed");
        let mut ram = Ram::new(64 * 1024);
        let mut cpu = Cpu::new();
        cpu.load_program(&mut ram, 0, &words).unwrap();
        assert_eq!(cpu.run(&mut ram, 100_000).unwrap(), Halt::Ecall);
        cpu
    }

    #[test]
    fn arithmetic_loop_sums_one_to_ten() {
        let cpu = run_program(
            "li a0, 0
             li t0, 1
             li t1, 11
             loop:
             add a0, a0, t0
             addi t0, t0, 1
             bne t0, t1, loop
             ecall",
        );
        assert_eq!(cpu.x(10), 55);
    }

    #[test]
    fn memory_round_trip() {
        let cpu = run_program(
            "li t0, 0x1000
             li t1, 0xABCD
             sh t1, 0(t0)
             lhu a0, 0(t0)
             lh a1, 0(t0)
             ecall",
        );
        assert_eq!(cpu.x(10), 0xABCD);
        assert_eq!(cpu.x(11), 0xFFFF_ABCD); // sign-extended
    }

    #[test]
    fn mul_div_semantics() {
        let cpu = run_program(
            "li a0, -7
             li a1, 2
             div a2, a0, a1
             rem a3, a0, a1
             mul a4, a0, a1
             ecall",
        );
        assert_eq!(cpu.x(12) as i32, -3);
        assert_eq!(cpu.x(13) as i32, -1);
        assert_eq!(cpu.x(14) as i32, -14);
    }

    #[test]
    fn div_by_zero_follows_spec() {
        let cpu = run_program(
            "li a0, 42
             li a1, 0
             div a2, a0, a1
             rem a3, a0, a1
             divu a4, a0, a1
             ecall",
        );
        assert_eq!(cpu.x(12) as i32, -1);
        assert_eq!(cpu.x(13), 42);
        assert_eq!(cpu.x(14), u32::MAX);
    }

    #[test]
    fn float_sqrt_and_div() {
        let cpu = run_program(
            "li t0, 0x41100000   # 9.0f
             fmv.w.x f0, t0
             fsqrt.s f1, f0      # 3.0
             li t1, 0x3f800000   # 1.0f
             fmv.w.x f2, t1
             fdiv.s f3, f2, f1   # 1/3
             fmv.x.w a0, f1
             fmv.x.w a1, f3
             ecall",
        );
        assert_eq!(f32::from_bits(cpu.x(10)), 3.0);
        assert!((f32::from_bits(cpu.x(11)) - 1.0 / 3.0).abs() < 1e-7);
    }

    #[test]
    fn float_convert_and_compare() {
        let cpu = run_program(
            "li t0, 5
             fcvt.s.w f0, t0
             li t1, 3
             fcvt.s.w f1, t1
             flt.s a0, f1, f0
             fle.s a1, f0, f1
             fcvt.w.s a2, f0
             ecall",
        );
        assert_eq!(cpu.x(10), 1);
        assert_eq!(cpu.x(11), 0);
        assert_eq!(cpu.x(12), 5);
    }

    #[test]
    fn function_call_and_return() {
        let cpu = run_program(
            "li a0, 20
             jal ra, double
             ecall
             double:
             slli a0, a0, 1
             jalr x0, ra, 0",
        );
        assert_eq!(cpu.x(10), 40);
    }

    #[test]
    fn stats_track_instruction_mix() {
        let cpu = run_program(
            "li t0, 6
             li t1, 7
             mul t2, t0, t1
             div t3, t2, t0
             lw t4, 0(x0)
             ecall",
        );
        let s = cpu.stats();
        assert_eq!(s.muls, 1);
        assert_eq!(s.divs, 1);
        assert_eq!(s.mem_ops, 1);
        assert!(s.retired >= 6);
    }

    #[test]
    fn out_of_fuel() {
        let words = assemble("loop: j loop").unwrap();
        let mut ram = Ram::new(1024);
        let mut cpu = Cpu::new();
        cpu.load_program(&mut ram, 0, &words).unwrap();
        assert_eq!(cpu.run(&mut ram, 10).unwrap(), Halt::OutOfFuel);
    }

    #[test]
    fn bus_fault_traps() {
        let words = assemble("lw a0, 0(x0)").unwrap();
        let mut ram = Ram::new(2); // too small even for the fetch
        let mut cpu = Cpu::new();
        assert!(cpu.load_program(&mut ram, 0, &words).is_err());
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let cpu = run_program(
            "li t0, 99
             add x0, t0, t0
             add a0, x0, x0
             ecall",
        );
        assert_eq!(cpu.x(10), 0);
    }
}
