//! RV32IMF interpreter, assembler and BOOM timing model for CENT's PNM cores.
//!
//! Each CENT CXL device integrates eight BOOM-2wide RISC-V cores that execute
//! "less common operations (such as square root and inversion)" over the
//! device's Shared Buffer (§4.2 of the paper). This crate is the substrate
//! standing in for those cores:
//!
//! * [`Cpu`] — a functional RV32IMF core over a pluggable [`Bus`];
//! * [`assemble`] — a two-pass assembler so PNM routines can be written as
//!   readable assembly in `cent-pnm`;
//! * [`BoomTimingModel`] — a deterministic instruction-class cost model for
//!   the 2-wide core at the 2 GHz PNM clock.
//!
//! # Examples
//!
//! ```
//! use cent_riscv::{assemble, BoomTimingModel, Cpu, Halt, Ram};
//!
//! # fn main() -> Result<(), cent_types::CentError> {
//! let program = assemble(
//!     "li t0, 0x40800000    # 4.0f
//!      fmv.w.x f0, t0
//!      fsqrt.s f1, f0
//!      fmv.x.w a0, f1
//!      ecall",
//! )?;
//! let mut ram = Ram::new(4096);
//! let mut cpu = Cpu::new();
//! cpu.load_program(&mut ram, 0, &program)?;
//! assert_eq!(cpu.run(&mut ram, 100)?, Halt::Ecall);
//! assert_eq!(f32::from_bits(cpu.x(10)), 2.0);
//!
//! // And how long would the BOOM-2wide core take?
//! let t = BoomTimingModel::default().latency(cpu.stats());
//! assert!(t.as_ns() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod asm;
mod cpu;
mod inst;
mod timing;

pub use asm::assemble;
pub use cpu::{Bus, Cpu, ExecStats, Halt, Ram};
pub use inst::{decode, Inst};
pub use timing::BoomTimingModel;
