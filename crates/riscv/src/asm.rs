//! A two-pass assembler for the RV32IMF subset used by the PNM programs.
//!
//! Supports labels, `#`/`;` comments, the register ABI names, and the
//! pseudo-instructions `li`, `mv`, `nop`, `j`, `ret`, `call` and
//! `fmv.s`. The output is a vector of little-endian instruction words that
//! [`crate::Cpu::load_program`] can place into a core's 64 KB instruction
//! buffer (matching how the host initialises the buffers through CXL writes,
//! §4.2).

use std::collections::BTreeMap;

use cent_types::{CentError, CentResult};

fn err(line_no: usize, msg: impl std::fmt::Display) -> CentError {
    CentError::InvalidInstruction(format!("line {}: {msg}", line_no + 1))
}

/// Parses an integer or floating-point register name.
fn parse_reg(token: &str, line_no: usize) -> CentResult<u8> {
    let t = token.trim().trim_end_matches(',');
    let named = |s: &str| -> Option<u8> {
        Some(match s {
            "zero" => 0,
            "ra" => 1,
            "sp" => 2,
            "gp" => 3,
            "tp" => 4,
            "t0" => 5,
            "t1" => 6,
            "t2" => 7,
            "s0" | "fp" => 8,
            "s1" => 9,
            "a0" => 10,
            "a1" => 11,
            "a2" => 12,
            "a3" => 13,
            "a4" => 14,
            "a5" => 15,
            "a6" => 16,
            "a7" => 17,
            "s2" => 18,
            "s3" => 19,
            "s4" => 20,
            "s5" => 21,
            "s6" => 22,
            "s7" => 23,
            "s8" => 24,
            "s9" => 25,
            "s10" => 26,
            "s11" => 27,
            "t3" => 28,
            "t4" => 29,
            "t5" => 30,
            "t6" => 31,
            _ => return None,
        })
    };
    if let Some(r) = named(t) {
        return Ok(r);
    }
    // fa0-fa7 / ft0-ft11 / fs0-fs11 float ABI names.
    let fnamed = |s: &str| -> Option<u8> {
        Some(match s {
            "ft0" => 0,
            "ft1" => 1,
            "ft2" => 2,
            "ft3" => 3,
            "ft4" => 4,
            "ft5" => 5,
            "ft6" => 6,
            "ft7" => 7,
            "fs0" => 8,
            "fs1" => 9,
            "fa0" => 10,
            "fa1" => 11,
            "fa2" => 12,
            "fa3" => 13,
            "fa4" => 14,
            "fa5" => 15,
            "fa6" => 16,
            "fa7" => 17,
            "fs2" => 18,
            "fs3" => 19,
            "fs4" => 20,
            "fs5" => 21,
            "fs6" => 22,
            "fs7" => 23,
            "fs8" => 24,
            "fs9" => 25,
            "fs10" => 26,
            "fs11" => 27,
            "ft8" => 28,
            "ft9" => 29,
            "ft10" => 30,
            "ft11" => 31,
            _ => return None,
        })
    };
    if let Some(r) = fnamed(t) {
        return Ok(r);
    }
    if let Some(rest) = t.strip_prefix('x').or_else(|| t.strip_prefix('f')) {
        if let Ok(n) = rest.parse::<u8>() {
            if n < 32 {
                return Ok(n);
            }
        }
    }
    Err(err(line_no, format!("unknown register '{t}'")))
}

fn parse_imm(token: &str, line_no: usize) -> CentResult<i64> {
    let t = token.trim().trim_end_matches(',');
    let (neg, body) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else if let Some(bin) = body.strip_prefix("0b") {
        i64::from_str_radix(bin, 2)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| err(line_no, format!("bad immediate '{t}'")))?;
    Ok(if neg { -value } else { value })
}

/// Parses `imm(reg)` memory operands.
fn parse_mem(token: &str, line_no: usize) -> CentResult<(i64, u8)> {
    let t = token.trim().trim_end_matches(',');
    let open = t.find('(').ok_or_else(|| err(line_no, format!("expected imm(reg), got '{t}'")))?;
    let close = t.find(')').ok_or_else(|| err(line_no, format!("expected imm(reg), got '{t}'")))?;
    let imm = if open == 0 { 0 } else { parse_imm(&t[..open], line_no)? };
    let reg = parse_reg(&t[open + 1..close], line_no)?;
    Ok((imm, reg))
}

// Encoders for each instruction format.
fn enc_r(funct7: u32, rs2: u8, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    (funct7 << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((rd as u32) << 7)
        | opcode
}

fn enc_i(imm: i64, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    (((imm as u32) & 0xFFF) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((rd as u32) << 7)
        | opcode
}

fn enc_s(imm: i64, rs2: u8, rs1: u8, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    (((imm >> 5) & 0x7F) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((imm & 0x1F) << 7)
        | opcode
}

fn enc_b(imm: i64, rs2: u8, rs1: u8, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3F) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xF) << 8)
        | (((imm >> 11) & 1) << 7)
        | opcode
}

fn enc_u(imm: i64, rd: u8, opcode: u32) -> u32 {
    ((imm as u32) & 0xFFFF_F000) | ((rd as u32) << 7) | opcode
}

fn enc_j(imm: i64, rd: u8, opcode: u32) -> u32 {
    let imm = imm as u32;
    (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xFF) << 12)
        | ((rd as u32) << 7)
        | opcode
}

struct PendingInst<'a> {
    mnemonic: &'a str,
    operands: Vec<&'a str>,
    line_no: usize,
    addr: u32,
}

/// Assembles RV32IMF source into instruction words.
///
/// # Errors
///
/// Returns [`CentError::InvalidInstruction`] with the offending line number
/// for syntax errors, unknown mnemonics, undefined labels or out-of-range
/// immediates.
///
/// # Examples
///
/// ```
/// use cent_riscv::assemble;
///
/// let words = assemble("li a0, 1\necall").unwrap();
/// assert_eq!(words.len(), 2);
/// ```
pub fn assemble(source: &str) -> CentResult<Vec<u32>> {
    // Pass 1: strip comments, collect labels, expand pseudo sizes.
    let mut labels: BTreeMap<&str, u32> = BTreeMap::new();
    let mut insts: Vec<PendingInst> = Vec::new();
    let mut addr: u32 = 0;

    for (line_no, raw) in source.lines().enumerate() {
        let line = raw.split(['#', ';']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut rest = line;
        // Labels may share a line with an instruction: "loop: addi ..."
        while let Some(colon) = rest.find(':') {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            if labels.insert(label, addr).is_some() {
                return Err(err(line_no, format!("duplicate label '{label}'")));
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let mut parts = rest.split_whitespace();
        let mnemonic = parts.next().expect("non-empty");
        let operands: Vec<&str> =
            rest[mnemonic.len()..].split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
        // `li` with a large immediate expands to lui+addi; everything else is
        // one word. Reserve conservatively so labels stay correct.
        let words = match mnemonic {
            "li" => {
                let imm = parse_imm(operands.get(1).copied().unwrap_or("0"), line_no)?;
                if (-2048..2048).contains(&imm) {
                    1
                } else {
                    2
                }
            }
            "call" => 1,
            _ => 1,
        };
        insts.push(PendingInst { mnemonic, operands, line_no, addr });
        addr += 4 * words;
    }

    // Pass 2: encode.
    let mut out = Vec::with_capacity(insts.len());
    for inst in &insts {
        encode_inst(inst, &labels, &mut out)?;
    }
    Ok(out)
}

fn resolve_target(
    token: &str,
    labels: &BTreeMap<&str, u32>,
    pc: u32,
    line_no: usize,
) -> CentResult<i64> {
    if let Some(&target) = labels.get(token.trim()) {
        Ok(i64::from(target) - i64::from(pc))
    } else {
        parse_imm(token, line_no)
    }
}

fn encode_inst(
    inst: &PendingInst<'_>,
    labels: &BTreeMap<&str, u32>,
    out: &mut Vec<u32>,
) -> CentResult<()> {
    let n = inst.line_no;
    let ops = &inst.operands;
    let op = |i: usize| -> CentResult<&str> {
        ops.get(i).copied().ok_or_else(|| err(n, "missing operand"))
    };
    let reg = |i: usize| -> CentResult<u8> { parse_reg(op(i)?, n) };
    let imm = |i: usize| -> CentResult<i64> { parse_imm(op(i)?, n) };

    macro_rules! rtype {
        ($f7:expr, $f3:expr, $opc:expr) => {
            out.push(enc_r($f7, reg(2)?, reg(1)?, $f3, reg(0)?, $opc))
        };
    }
    macro_rules! itype {
        ($f3:expr, $opc:expr) => {
            out.push(enc_i(imm(2)?, reg(1)?, $f3, reg(0)?, $opc))
        };
    }

    match inst.mnemonic {
        "lui" => out.push(enc_u(imm(1)? << 12, reg(0)?, 0b0110111)),
        "auipc" => out.push(enc_u(imm(1)? << 12, reg(0)?, 0b0010111)),
        "jal" => {
            let (rd, target) = if ops.len() == 1 { (1u8, 0) } else { (reg(0)?, 1) };
            let offset = resolve_target(op(target)?, labels, inst.addr, n)?;
            out.push(enc_j(offset, rd, 0b1101111));
        }
        "jalr" => out.push(enc_i(imm(2)?, reg(1)?, 0, reg(0)?, 0b1100111)),
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            let f3 = match inst.mnemonic {
                "beq" => 0b000,
                "bne" => 0b001,
                "blt" => 0b100,
                "bge" => 0b101,
                "bltu" => 0b110,
                _ => 0b111,
            };
            let offset = resolve_target(op(2)?, labels, inst.addr, n)?;
            out.push(enc_b(offset, reg(1)?, reg(0)?, f3, 0b1100011));
        }
        "lb" | "lh" | "lw" | "lbu" | "lhu" => {
            let f3 = match inst.mnemonic {
                "lb" => 0b000,
                "lh" => 0b001,
                "lw" => 0b010,
                "lbu" => 0b100,
                _ => 0b101,
            };
            let (offset, base) = parse_mem(op(1)?, n)?;
            out.push(enc_i(offset, base, f3, reg(0)?, 0b0000011));
        }
        "sb" | "sh" | "sw" => {
            let f3 = match inst.mnemonic {
                "sb" => 0b000,
                "sh" => 0b001,
                _ => 0b010,
            };
            let (offset, base) = parse_mem(op(1)?, n)?;
            out.push(enc_s(offset, reg(0)?, base, f3, 0b0100011));
        }
        "addi" => itype!(0b000, 0b0010011),
        "slti" => itype!(0b010, 0b0010011),
        "sltiu" => itype!(0b011, 0b0010011),
        "xori" => itype!(0b100, 0b0010011),
        "ori" => itype!(0b110, 0b0010011),
        "andi" => itype!(0b111, 0b0010011),
        "slli" => out.push(enc_r(0, imm(2)? as u8, reg(1)?, 0b001, reg(0)?, 0b0010011)),
        "srli" => out.push(enc_r(0, imm(2)? as u8, reg(1)?, 0b101, reg(0)?, 0b0010011)),
        "srai" => out.push(enc_r(0b0100000, imm(2)? as u8, reg(1)?, 0b101, reg(0)?, 0b0010011)),
        "add" => rtype!(0, 0b000, 0b0110011),
        "sub" => rtype!(0b0100000, 0b000, 0b0110011),
        "sll" => rtype!(0, 0b001, 0b0110011),
        "slt" => rtype!(0, 0b010, 0b0110011),
        "sltu" => rtype!(0, 0b011, 0b0110011),
        "xor" => rtype!(0, 0b100, 0b0110011),
        "srl" => rtype!(0, 0b101, 0b0110011),
        "sra" => rtype!(0b0100000, 0b101, 0b0110011),
        "or" => rtype!(0, 0b110, 0b0110011),
        "and" => rtype!(0, 0b111, 0b0110011),
        "mul" => rtype!(1, 0b000, 0b0110011),
        "mulh" => rtype!(1, 0b001, 0b0110011),
        "mulhsu" => rtype!(1, 0b010, 0b0110011),
        "mulhu" => rtype!(1, 0b011, 0b0110011),
        "div" => rtype!(1, 0b100, 0b0110011),
        "divu" => rtype!(1, 0b101, 0b0110011),
        "rem" => rtype!(1, 0b110, 0b0110011),
        "remu" => rtype!(1, 0b111, 0b0110011),
        "fence" => out.push(0b0001111),
        "ecall" => out.push(0b1110011),
        "ebreak" => out.push((1 << 20) | 0b1110011),
        "flw" => {
            let (offset, base) = parse_mem(op(1)?, n)?;
            out.push(enc_i(offset, base, 0b010, reg(0)?, 0b0000111));
        }
        "fsw" => {
            let (offset, base) = parse_mem(op(1)?, n)?;
            out.push(enc_s(offset, reg(0)?, base, 0b010, 0b0100111));
        }
        "fadd.s" => rtype!(0b0000000, 0b000, 0b1010011),
        "fsub.s" => rtype!(0b0000100, 0b000, 0b1010011),
        "fmul.s" => rtype!(0b0001000, 0b000, 0b1010011),
        "fdiv.s" => rtype!(0b0001100, 0b000, 0b1010011),
        "fsqrt.s" => out.push(enc_r(0b0101100, 0, reg(1)?, 0, reg(0)?, 0b1010011)),
        "fsgnj.s" => rtype!(0b0010000, 0b000, 0b1010011),
        "fsgnjn.s" => rtype!(0b0010000, 0b001, 0b1010011),
        "fsgnjx.s" => rtype!(0b0010000, 0b010, 0b1010011),
        "fmin.s" => rtype!(0b0010100, 0b000, 0b1010011),
        "fmax.s" => rtype!(0b0010100, 0b001, 0b1010011),
        "fcvt.w.s" => out.push(enc_r(0b1100000, 0, reg(1)?, 0, reg(0)?, 0b1010011)),
        "fcvt.wu.s" => out.push(enc_r(0b1100000, 1, reg(1)?, 0, reg(0)?, 0b1010011)),
        "fmv.x.w" => out.push(enc_r(0b1110000, 0, reg(1)?, 0, reg(0)?, 0b1010011)),
        "feq.s" => rtype!(0b1010000, 0b010, 0b1010011),
        "flt.s" => rtype!(0b1010000, 0b001, 0b1010011),
        "fle.s" => rtype!(0b1010000, 0b000, 0b1010011),
        "fcvt.s.w" => out.push(enc_r(0b1101000, 0, reg(1)?, 0, reg(0)?, 0b1010011)),
        "fcvt.s.wu" => out.push(enc_r(0b1101000, 1, reg(1)?, 0, reg(0)?, 0b1010011)),
        "fmv.w.x" => out.push(enc_r(0b1111000, 0, reg(1)?, 0, reg(0)?, 0b1010011)),
        // ---- pseudo-instructions ----
        "nop" => out.push(enc_i(0, 0, 0, 0, 0b0010011)),
        "mv" => out.push(enc_i(0, reg(1)?, 0, reg(0)?, 0b0010011)),
        "fmv.s" => out.push(enc_r(0b0010000, reg(1)?, reg(1)?, 0, reg(0)?, 0b1010011)),
        "li" => {
            let rd = reg(0)?;
            let value = imm(1)?;
            if (-2048..2048).contains(&value) {
                out.push(enc_i(value, 0, 0, rd, 0b0010011));
            } else {
                // lui + addi with carry correction for the sign-extended low part.
                let value = value as i32;
                let low = (value << 20) >> 20;
                let high = value.wrapping_sub(low);
                out.push(enc_u(i64::from(high), rd, 0b0110111));
                out.push(enc_i(i64::from(low), rd, 0, rd, 0b0010011));
            }
        }
        "j" => {
            let offset = resolve_target(op(0)?, labels, inst.addr, n)?;
            out.push(enc_j(offset, 0, 0b1101111));
        }
        "call" => {
            let offset = resolve_target(op(0)?, labels, inst.addr, n)?;
            out.push(enc_j(offset, 1, 0b1101111));
        }
        "ret" => out.push(enc_i(0, 1, 0, 0, 0b1100111)),
        other => return Err(err(n, format!("unknown mnemonic '{other}'"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{decode, Inst};

    #[test]
    fn assembles_and_decodes_alu_ops() {
        let words = assemble("add x1, x2, x3\nsub a0, a1, a2\nxor t0, t1, t2").unwrap();
        assert_eq!(decode(words[0]).unwrap(), Inst::Add { rd: 1, rs1: 2, rs2: 3 });
        assert_eq!(decode(words[1]).unwrap(), Inst::Sub { rd: 10, rs1: 11, rs2: 12 });
        assert_eq!(decode(words[2]).unwrap(), Inst::Xor { rd: 5, rs1: 6, rs2: 7 });
    }

    #[test]
    fn li_small_and_large() {
        let words = assemble("li a0, 100\nli a1, 0x12345").unwrap();
        assert_eq!(words.len(), 3);
        assert_eq!(decode(words[0]).unwrap(), Inst::Addi { rd: 10, rs1: 0, imm: 100 });
        assert_eq!(decode(words[1]).unwrap(), Inst::Lui { rd: 11, imm: 0x12000 });
        assert_eq!(decode(words[2]).unwrap(), Inst::Addi { rd: 11, rs1: 11, imm: 0x345 });
    }

    #[test]
    fn li_with_high_low_carry() {
        // 0x12FFF has a low part of -1 after sign extension (0xFFF), so the
        // lui part must compensate: lui 0x13 then addi -1.
        let words = assemble("li a0, 0x12FFF").unwrap();
        assert_eq!(decode(words[0]).unwrap(), Inst::Lui { rd: 10, imm: 0x13000 });
        assert_eq!(decode(words[1]).unwrap(), Inst::Addi { rd: 10, rs1: 10, imm: -1 });
    }

    #[test]
    fn labels_resolve_backwards_and_forwards() {
        let words = assemble(
            "start: addi x1, x1, 1
             beq x1, x2, end
             j start
             end: ecall",
        )
        .unwrap();
        assert_eq!(decode(words[1]).unwrap(), Inst::Beq { rs1: 1, rs2: 2, imm: 8 });
        assert_eq!(decode(words[2]).unwrap(), Inst::Jal { rd: 0, imm: -8 });
    }

    #[test]
    fn memory_operands() {
        let words = assemble("lw a0, 8(sp)\nsw a0, -4(s0)\nflw f1, 0(a1)").unwrap();
        assert_eq!(decode(words[0]).unwrap(), Inst::Lw { rd: 10, rs1: 2, imm: 8 });
        assert_eq!(decode(words[1]).unwrap(), Inst::Sw { rs1: 8, rs2: 10, imm: -4 });
        assert_eq!(decode(words[2]).unwrap(), Inst::Flw { rd: 1, rs1: 11, imm: 0 });
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let words = assemble(
            "# full line comment
             addi x1, x0, 1   # trailing comment

             ; alt comment style
             ecall",
        )
        .unwrap();
        assert_eq!(words.len(), 2);
    }

    #[test]
    fn float_mnemonics_round_trip() {
        let src = "fadd.s f1, f2, f3\nfsqrt.s f4, f5\nfcvt.s.w f6, a0\nfmv.x.w a1, f7";
        let words = assemble(src).unwrap();
        assert_eq!(decode(words[0]).unwrap(), Inst::FaddS { rd: 1, rs1: 2, rs2: 3 });
        assert_eq!(decode(words[1]).unwrap(), Inst::FsqrtS { rd: 4, rs1: 5 });
        assert_eq!(decode(words[2]).unwrap(), Inst::FcvtSW { rd: 6, rs1: 10 });
        assert_eq!(decode(words[3]).unwrap(), Inst::FmvXW { rd: 11, rs1: 7 });
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("addi x1, x0, 1\nbogus x1").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
        let e = assemble("addi x99, x0, 1").unwrap_err();
        assert!(e.to_string().contains("unknown register"), "{e}");
        let e = assemble("dup: nop\ndup: nop").unwrap_err();
        assert!(e.to_string().contains("duplicate label"), "{e}");
    }

    #[test]
    fn every_encoded_word_decodes() {
        // A kitchen-sink program covering each format.
        let src = "lui x1, 0x10
                   auipc x2, 0
                   jal ra, target
                   target: jalr x0, ra, 0
                   blt x1, x2, target
                   lw a0, 0(x1)
                   sw a0, 4(x1)
                   srai x3, x3, 5
                   mulhu x4, x5, x6
                   fmin.s f0, f1, f2
                   ebreak";
        for w in assemble(src).unwrap() {
            decode(w).unwrap();
        }
    }
}
