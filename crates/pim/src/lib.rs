//! GDDR6-PIM channel model for CENT: near-bank PUs with MAC reduction trees.
//!
//! Implements Figure 7(a) of the paper: a GDDR6-PIM channel with
//!
//! * 16 banks × 32 MB, each with a near-bank PU;
//! * a 16-lane BF16 MAC reduction tree per PU, fed by the local bank and
//!   either the Global Buffer broadcast or the neighbouring bank;
//! * 32 accumulation registers per PU;
//! * activation functions via DRAM-resident lookup tables with linear
//!   interpolation;
//! * a 2 KB Global Buffer broadcasting 256-bit beats to all PUs.
//!
//! Every operation simultaneously computes real BF16 values (functional mode)
//! and advances the `cent-dram` timing model, so correctness and latency come
//! from one code path. See [`PimChannel`].

#![forbid(unsafe_code)]

mod af;
mod channel;

pub use af::{ActivationFunction, AfLut, LUT_RANGE, LUT_SEGMENTS};
pub use channel::{Beat, MacSource, PimChannel, ZERO_BEAT};
