//! Activation functions evaluated by the near-bank PUs.
//!
//! Per §4.2 of the paper, "the activation function (AF) leverages lookup
//! tables stored within the DRAM bank and linear interpolation", and §7.5
//! explains that GeLU/Swish/GLU variants decompose into sigmoid and tanh
//! lookups. We model a 512-entry piecewise-linear table over the input range
//! `[-8, 8]`, which keeps the interpolation error well below one BF16 ULP for
//! the supported functions.

use cent_types::Bf16;

/// Activation functions implemented in the PU lookup tables (`AFid` in the
/// CENT ISA).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivationFunction {
    /// Logistic sigmoid `1 / (1 + e^-x)`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Natural exponent (clamped table; the PNM exponent units handle the
    /// high-accuracy softmax path).
    Exp,
    /// Gaussian error linear unit (tanh approximation, as deployed models use).
    Gelu,
    /// Sigmoid linear unit `x * sigmoid(x)` (a.k.a. Swish/SiLU).
    Silu,
}

impl ActivationFunction {
    /// All supported functions, in `AFid` encoding order.
    pub const ALL: [ActivationFunction; 5] = [
        ActivationFunction::Sigmoid,
        ActivationFunction::Tanh,
        ActivationFunction::Exp,
        ActivationFunction::Gelu,
        ActivationFunction::Silu,
    ];

    /// The `AFid` encoding used in CENT instructions.
    pub fn id(self) -> u8 {
        match self {
            ActivationFunction::Sigmoid => 0,
            ActivationFunction::Tanh => 1,
            ActivationFunction::Exp => 2,
            ActivationFunction::Gelu => 3,
            ActivationFunction::Silu => 4,
        }
    }

    /// Decodes an `AFid`.
    pub fn from_id(id: u8) -> Option<ActivationFunction> {
        Self::ALL.get(id as usize).copied()
    }

    /// Reference (infinite-precision) evaluation.
    pub fn exact(self, x: f32) -> f32 {
        match self {
            ActivationFunction::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            ActivationFunction::Tanh => x.tanh(),
            ActivationFunction::Exp => x.exp(),
            ActivationFunction::Gelu => {
                // tanh-form GeLU used by GPT-class models.
                let inner = 0.797_884_6 * (x + 0.044_715 * x * x * x);
                0.5 * x * (1.0 + inner.tanh())
            }
            ActivationFunction::Silu => x / (1.0 + (-x).exp()),
        }
    }
}

/// Number of segments in the hardware lookup table.
pub const LUT_SEGMENTS: usize = 512;

/// Input range covered by the table; inputs outside are clamped.
pub const LUT_RANGE: f32 = 8.0;

/// A piecewise-linear lookup table as materialised in a DRAM bank.
///
/// # Examples
///
/// ```
/// use cent_pim::{ActivationFunction, AfLut};
///
/// let lut = AfLut::new(ActivationFunction::Sigmoid);
/// let y = lut.eval(0.0);
/// assert!((y - 0.5).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct AfLut {
    function: ActivationFunction,
    /// `LUT_SEGMENTS + 1` knot values, BF16-quantised as stored in DRAM.
    knots: Vec<Bf16>,
}

impl AfLut {
    /// Builds the table for `function`.
    pub fn new(function: ActivationFunction) -> Self {
        let knots = (0..=LUT_SEGMENTS)
            .map(|i| {
                let x = -LUT_RANGE + 2.0 * LUT_RANGE * (i as f32) / (LUT_SEGMENTS as f32);
                Bf16::from_f32(function.exact(x))
            })
            .collect();
        AfLut { function, knots }
    }

    /// The function this table implements.
    pub fn function(&self) -> ActivationFunction {
        self.function
    }

    /// Evaluates with table lookup + linear interpolation, as the PU does.
    pub fn eval(&self, x: f32) -> f32 {
        if x.is_nan() {
            return x;
        }
        let clamped = x.clamp(-LUT_RANGE, LUT_RANGE);
        let pos = (clamped + LUT_RANGE) / (2.0 * LUT_RANGE) * (LUT_SEGMENTS as f32);
        let idx = (pos.floor() as usize).min(LUT_SEGMENTS - 1);
        let frac = pos - idx as f32;
        let y0 = self.knots[idx].to_f32();
        let y1 = self.knots[idx + 1].to_f32();
        let mut y = y0 + (y1 - y0) * frac;
        // Outside the table the hardware extends the boundary behaviour:
        // saturating functions hold their asymptote; exp extrapolates by
        // repeated squaring in the PNM units (not the PU path), so clamping
        // is the faithful PU behaviour.
        if self.function == ActivationFunction::Silu && x > LUT_RANGE {
            // SiLU is ~identity for large x; the PU special-cases the linear tail.
            y = x;
        }
        if self.function == ActivationFunction::Gelu && x > LUT_RANGE {
            y = x;
        }
        y
    }

    /// Table size in bytes as stored in a DRAM row (BF16 knots).
    pub fn storage_bytes(&self) -> usize {
        self.knots.len() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut_matches_exact_within_tolerance() {
        for f in ActivationFunction::ALL {
            let lut = AfLut::new(f);
            for i in -700..=700 {
                let x = i as f32 / 100.0;
                let exact = f.exact(x);
                let approx = lut.eval(x);
                let tol = 1e-2_f32.max(exact.abs() * 2.0 / 256.0);
                assert!((approx - exact).abs() <= tol, "{f:?}({x}) = {exact}, lut gave {approx}");
            }
        }
    }

    #[test]
    fn saturating_tails() {
        let sig = AfLut::new(ActivationFunction::Sigmoid);
        assert!((sig.eval(100.0) - 1.0).abs() < 1e-2);
        assert!(sig.eval(-100.0).abs() < 1e-2);
        let silu = AfLut::new(ActivationFunction::Silu);
        assert_eq!(silu.eval(50.0), 50.0);
    }

    #[test]
    fn nan_propagates() {
        let lut = AfLut::new(ActivationFunction::Tanh);
        assert!(lut.eval(f32::NAN).is_nan());
    }

    #[test]
    fn id_round_trip() {
        for f in ActivationFunction::ALL {
            assert_eq!(ActivationFunction::from_id(f.id()), Some(f));
        }
        assert_eq!(ActivationFunction::from_id(99), None);
    }

    #[test]
    fn table_fits_in_one_dram_row_pair() {
        // 513 BF16 knots ≈ 1KB — fits in a 2KB DRAM row as the paper implies.
        let lut = AfLut::new(ActivationFunction::Gelu);
        assert!(lut.storage_bytes() <= 2048);
    }

    #[test]
    fn gelu_matches_reference_points() {
        let f = ActivationFunction::Gelu;
        assert!((f.exact(0.0)).abs() < 1e-6);
        assert!((f.exact(1.0) - 0.841_192).abs() < 1e-3);
        assert!((f.exact(-1.0) + 0.158_808).abs() < 1e-3);
    }
}
