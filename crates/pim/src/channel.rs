//! Functional + timing model of one GDDR6-PIM channel with near-bank PUs.
//!
//! The channel (Figure 7a of the paper) contains 16 banks of 32 MB, each
//! paired with a PU holding a 16-lane BF16 MAC reduction tree and 32
//! accumulation registers, plus a 2 KB Global Buffer that can broadcast a
//! 256-bit beat to all PUs in one cycle.
//!
//! Every operation both *computes* (when the channel is in functional mode)
//! and *advances the DRAM timing model* by issuing the command sequence the
//! PIM controller would generate, so one code path produces verified values
//! and cycle counts.

use std::collections::BTreeMap;

use cent_dram::{ActivityCounters, DramCommand, PimChannelTiming};
use cent_types::consts::{BANKS_PER_CHANNEL, COLS_PER_ROW, LANES_PER_BEAT, ROWS_PER_BANK};
use cent_types::{AccRegId, BankId, Bf16, CentError, CentResult, ColAddr, RowAddr, Time};

use crate::af::{ActivationFunction, AfLut};

pub use cent_types::{Beat, ZERO_BEAT};

/// Source of the second MAC operand (Figure 7a: "16-bit data from either the
/// Global Buffer or its neighboring bank").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacSource {
    /// Broadcast from the Global Buffer (GEMV mode).
    GlobalBuffer {
        /// First Global Buffer slot; micro-op expansion walks subsequent slots.
        slot: usize,
    },
    /// The neighbouring bank's beat (vector dot-product mode; only the even
    /// PUs produce results).
    NeighbourBank,
}

/// BF16 elements per DRAM row (2 KB / 2 B).
const ELEMS_PER_ROW: usize = COLS_PER_ROW * LANES_PER_BEAT;

/// Functional storage for one bank: rows are allocated lazily since model
/// weights only touch a fraction of the 32 MB in small tests.
#[derive(Debug, Clone, Default)]
struct BankStorage {
    // Row-ordered: lazily allocated, and any future sweep (dump, checksum)
    // must see rows in address order, not hasher order.
    rows: BTreeMap<u32, Box<[Bf16]>>,
}

impl BankStorage {
    fn row_mut(&mut self, row: RowAddr) -> &mut [Bf16] {
        self.rows.entry(row.0).or_insert_with(|| vec![Bf16::ZERO; ELEMS_PER_ROW].into_boxed_slice())
    }

    fn read_beat(&self, row: RowAddr, col: ColAddr) -> Beat {
        let mut beat = ZERO_BEAT;
        if let Some(r) = self.rows.get(&row.0) {
            let base = col.index() * LANES_PER_BEAT;
            beat.copy_from_slice(&r[base..base + LANES_PER_BEAT]);
        }
        beat
    }

    fn write_beat(&mut self, row: RowAddr, col: ColAddr, beat: &Beat) {
        let base = col.index() * LANES_PER_BEAT;
        self.row_mut(row)[base..base + LANES_PER_BEAT].copy_from_slice(beat);
    }

    fn write_element(&mut self, row: RowAddr, elem: usize, value: Bf16) {
        self.row_mut(row)[elem] = value;
    }
}

/// State of one near-bank PU.
#[derive(Debug, Clone)]
struct PuState {
    /// Accumulation registers; the hardware accumulates wider than BF16 and
    /// rounds on read-out, modelled as f32.
    acc: [f32; 32],
}

impl Default for PuState {
    fn default() -> Self {
        PuState { acc: [0.0; 32] }
    }
}

/// One GDDR6-PIM channel: 16 banks + 16 PUs + Global Buffer + timing model.
///
/// # Examples
///
/// A 16×16 GEMV tile computed entirely in the channel:
///
/// ```
/// use cent_pim::{MacSource, PimChannel, ZERO_BEAT};
/// use cent_types::{AccRegId, BankId, Bf16, ColAddr, RowAddr};
///
/// # fn main() -> Result<(), cent_types::CentError> {
/// let mut ch = PimChannel::functional();
/// // Matrix row p lives in bank p; vector lives in the Global Buffer.
/// for bank in 0..16 {
///     let mut beat = ZERO_BEAT;
///     for lane in 0..16 {
///         beat[lane] = Bf16::from_f32(if lane == bank { 2.0 } else { 0.0 });
///     }
///     ch.write_beat(BankId(bank as u16), RowAddr(0), ColAddr(0), &beat)?;
/// }
/// let vector: Vec<Bf16> = (0..16).map(|i| Bf16::from_f32(i as f32)).collect();
/// ch.write_gb(0, &vector.clone().try_into().unwrap());
/// ch.write_bias(AccRegId::new(0), &ZERO_BEAT);
/// ch.mac_abk(RowAddr(0), ColAddr(0), 1, AccRegId::new(0), MacSource::GlobalBuffer { slot: 0 })?;
/// let (result, _t) = ch.read_mac(AccRegId::new(0));
/// // Row p of the (2·identity) matrix dotted with [0..16) = 2p.
/// assert_eq!(result[5].to_f32(), 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PimChannel {
    functional: bool,
    banks: Vec<BankStorage>,
    pus: Vec<PuState>,
    /// 2 KB Global Buffer = 64 beats.
    global_buffer: Vec<Beat>,
    open_row: Option<RowAddr>,
    timing: PimChannelTiming,
    // Keyed by activation-function id; BTreeMap keeps any sweep ordered.
    luts: BTreeMap<u8, AfLut>,
}

impl PimChannel {
    /// Creates a channel that carries real data *and* timing.
    pub fn functional() -> Self {
        Self::new(true)
    }

    /// Creates a timing-only channel (no data storage; large-model latency
    /// studies).
    pub fn timing_only() -> Self {
        Self::new(false)
    }

    fn new(functional: bool) -> Self {
        PimChannel {
            functional,
            banks: vec![BankStorage::default(); BANKS_PER_CHANNEL],
            pus: vec![PuState::default(); BANKS_PER_CHANNEL],
            global_buffer: vec![ZERO_BEAT; cent_types::consts::GLOBAL_BUFFER_SLOTS],
            open_row: None,
            timing: PimChannelTiming::new(),
            luts: BTreeMap::new(),
        }
    }

    /// Whether the channel carries functional data.
    pub fn is_functional(&self) -> bool {
        self.functional
    }

    /// Completion time of all issued work.
    pub fn busy_until(&self) -> Time {
        self.timing.busy_until()
    }

    /// DRAM activity counters (for the power model).
    pub fn activity(&self) -> &ActivityCounters {
        self.timing.stats()
    }

    /// Advances channel time to at least `t` (cross-unit dependencies).
    pub fn advance_to(&mut self, t: Time) {
        self.timing.advance_to(t);
    }

    fn check_addr(&self, bank: BankId, row: RowAddr, col: ColAddr) -> CentResult<()> {
        if bank.index() >= BANKS_PER_CHANNEL {
            return Err(CentError::AddressOutOfRange(format!("bank {bank}")));
        }
        if row.index() >= ROWS_PER_BANK {
            return Err(CentError::AddressOutOfRange(format!("row {row}")));
        }
        if col.index() >= COLS_PER_ROW {
            return Err(CentError::AddressOutOfRange(format!("col {col}")));
        }
        Ok(())
    }

    /// Ensures `row` is open in all banks, issuing PREab/ACTab as needed.
    fn open_all(&mut self, row: RowAddr) -> CentResult<()> {
        if self.open_row == Some(row) {
            return Ok(());
        }
        if self.open_row.is_some() {
            self.timing.issue(DramCommand::PreAb)?;
        }
        self.timing.issue(DramCommand::ActAb { row })?;
        self.open_row = Some(row);
        Ok(())
    }

    /// Closes any open row (PREab).
    ///
    /// # Errors
    ///
    /// Propagates timing-model protocol violations.
    pub fn precharge_all(&mut self) -> CentResult<()> {
        if self.open_row.take().is_some() {
            self.timing.issue(DramCommand::PreAb)?;
        }
        Ok(())
    }

    // ---------------------------------------------------------------- data

    /// Writes one beat into a bank **without advancing timing** — used to
    /// preload model weights, which happens once before serving and is not
    /// part of inference latency (§5.6).
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range addresses.
    pub fn preload_beat(
        &mut self,
        bank: BankId,
        row: RowAddr,
        col: ColAddr,
        beat: &Beat,
    ) -> CentResult<()> {
        self.check_addr(bank, row, col)?;
        if self.functional {
            self.banks[bank.index()].write_beat(row, col, beat);
        }
        Ok(())
    }

    /// Writes one beat into a bank (`WR_SBK` data path). Returns issue time.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range addresses.
    pub fn write_beat(
        &mut self,
        bank: BankId,
        row: RowAddr,
        col: ColAddr,
        beat: &Beat,
    ) -> CentResult<Time> {
        self.check_addr(bank, row, col)?;
        // Single-bank accesses use the per-bank path: close lockstep row if
        // it differs (the controller serialises these around PIM bursts).
        self.open_all(row)?;
        let t = self.timing.issue(DramCommand::Wr { bank, col })?;
        if self.functional {
            self.banks[bank.index()].write_beat(row, col, beat);
        }
        Ok(t)
    }

    /// Reads one beat from a bank (`RD_SBK` data path).
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range addresses.
    pub fn read_beat(
        &mut self,
        bank: BankId,
        row: RowAddr,
        col: ColAddr,
    ) -> CentResult<(Beat, Time)> {
        self.check_addr(bank, row, col)?;
        self.open_all(row)?;
        let t = self.timing.issue(DramCommand::Rd { bank, col })?;
        let beat =
            if self.functional { self.banks[bank.index()].read_beat(row, col) } else { ZERO_BEAT };
        Ok((beat, t))
    }

    /// `WR_ABK`: scatters the 16 lanes of `beat` across all banks — lane `p`
    /// is stored as the 16-bit element at position `elem` of `row` in bank
    /// `p`. Used to lay out per-bank operands (e.g. dot-product inputs) in
    /// one command.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range addresses.
    pub fn write_element_all_banks(
        &mut self,
        row: RowAddr,
        elem: usize,
        beat: &Beat,
    ) -> CentResult<Time> {
        if elem >= ELEMS_PER_ROW {
            return Err(CentError::AddressOutOfRange(format!("element {elem}")));
        }
        self.open_all(row)?;
        let col = ColAddr((elem / LANES_PER_BEAT) as u32);
        // One write beat issued to all banks in lockstep; timing-wise this is
        // a single column write slot (the paper counts it as one instruction).
        let t = self.timing.issue(DramCommand::Wr { bank: BankId(0), col })?;
        if self.functional {
            for (p, bank) in self.banks.iter_mut().enumerate() {
                bank.write_element(row, elem, beat[p]);
            }
        }
        Ok(t)
    }

    /// `WR_GB`: places a beat into a Global Buffer slot (from the Shared
    /// Buffer). The GB is SRAM next to the banks; the transfer costs one PU
    /// cycle on the channel's internal bus.
    ///
    /// # Panics
    ///
    /// Panics if `slot` exceeds the 64-slot Global Buffer.
    pub fn write_gb(&mut self, slot: usize, beat: &Beat) -> Time {
        assert!(slot < self.global_buffer.len(), "GB has 64 slots, got {slot}");
        if self.functional {
            self.global_buffer[slot] = *beat;
        }
        let t = self.timing.now();
        self.timing.advance_to(t + cent_types::consts::PU_CLOCK_PERIOD);
        t
    }

    /// Reads a Global Buffer slot (debug/verification).
    pub fn gb(&self, slot: usize) -> &Beat {
        &self.global_buffer[slot]
    }

    /// `COPY_BKGB`: copies `n` beats from `bank` starting at (`row`, `col`)
    /// into the Global Buffer starting at `gb_slot`.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range addresses or GB overflow.
    pub fn copy_bank_to_gb(
        &mut self,
        bank: BankId,
        row: RowAddr,
        col: ColAddr,
        gb_slot: usize,
        n: usize,
    ) -> CentResult<Time> {
        if gb_slot + n > self.global_buffer.len() {
            return Err(CentError::AddressOutOfRange(format!(
                "GB copy of {n} beats at slot {gb_slot}"
            )));
        }
        let mut last = Time::ZERO;
        let mut r = row;
        let mut c = col.index();
        for i in 0..n {
            if c >= COLS_PER_ROW {
                r = r.next();
                c = 0;
            }
            self.check_addr(bank, r, ColAddr(c as u32))?;
            self.open_all(r)?;
            last = self.timing.issue(DramCommand::Rd { bank, col: ColAddr(c as u32) })?;
            if self.functional {
                self.global_buffer[gb_slot + i] =
                    self.banks[bank.index()].read_beat(r, ColAddr(c as u32));
            }
            c += 1;
        }
        Ok(last)
    }

    /// `COPY_GBBK`: copies `n` beats from the Global Buffer into `bank`.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range addresses or GB overflow.
    pub fn copy_gb_to_bank(
        &mut self,
        bank: BankId,
        row: RowAddr,
        col: ColAddr,
        gb_slot: usize,
        n: usize,
    ) -> CentResult<Time> {
        if gb_slot + n > self.global_buffer.len() {
            return Err(CentError::AddressOutOfRange(format!(
                "GB copy of {n} beats at slot {gb_slot}"
            )));
        }
        let mut last = Time::ZERO;
        let mut r = row;
        let mut c = col.index();
        for i in 0..n {
            if c >= COLS_PER_ROW {
                r = r.next();
                c = 0;
            }
            self.check_addr(bank, r, ColAddr(c as u32))?;
            self.open_all(r)?;
            last = self.timing.issue(DramCommand::Wr { bank, col: ColAddr(c as u32) })?;
            if self.functional {
                let beat = self.global_buffer[gb_slot + i];
                self.banks[bank.index()].write_beat(r, ColAddr(c as u32), &beat);
            }
            c += 1;
        }
        Ok(last)
    }

    // ------------------------------------------------------------- compute

    /// `WR_BIAS`: loads accumulation register `reg` of PU `p` with lane `p`
    /// of `beat` (converted to the wide accumulator format).
    pub fn write_bias(&mut self, reg: AccRegId, beat: &Beat) {
        for (p, pu) in self.pus.iter_mut().enumerate() {
            pu.acc[reg.index()] = beat[p].to_f32();
        }
        let t = self.timing.now();
        self.timing.advance_to(t + cent_types::consts::PU_CLOCK_PERIOD);
    }

    /// `MAC_ABK`: streams `n_beats` all-bank MAC beats starting at
    /// (`row`, `col`). PU `p` accumulates
    /// `dot16(bank_p[row][col+i], operand_i)` into register `reg`.
    ///
    /// With [`MacSource::GlobalBuffer`] the operand beats walk consecutive GB
    /// slots; with [`MacSource::NeighbourBank`] the even PU `2k` consumes the
    /// beat of bank `2k+1` as its second operand (vector dot-product mode).
    ///
    /// Beats past the end of the row wrap to the next row, with the
    /// ACTab/PREab row switch the PIM controller would insert.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range addresses.
    pub fn mac_abk(
        &mut self,
        row: RowAddr,
        col: ColAddr,
        n_beats: usize,
        reg: AccRegId,
        source: MacSource,
    ) -> CentResult<Time> {
        let mut last = Time::ZERO;
        let mut r = row;
        let mut c = col.index();
        for i in 0..n_beats {
            if c >= COLS_PER_ROW {
                r = r.next();
                c = 0;
            }
            self.check_addr(BankId(0), r, ColAddr(c as u32))?;
            self.open_all(r)?;
            last = self.timing.issue(DramCommand::MacAb { col: ColAddr(c as u32) })?;
            if self.functional {
                match source {
                    MacSource::GlobalBuffer { slot } => {
                        let operand = self.global_buffer[(slot + i) % self.global_buffer.len()];
                        for (p, pu) in self.pus.iter_mut().enumerate() {
                            let a = self.banks[p].read_beat(r, ColAddr(c as u32));
                            let dot: f32 = a
                                .iter()
                                .zip(operand.iter())
                                .map(|(x, y)| x.to_f32() * y.to_f32())
                                .sum();
                            pu.acc[reg.index()] += dot;
                        }
                    }
                    MacSource::NeighbourBank => {
                        for k in 0..BANKS_PER_CHANNEL / 2 {
                            let a = self.banks[2 * k].read_beat(r, ColAddr(c as u32));
                            let b = self.banks[2 * k + 1].read_beat(r, ColAddr(c as u32));
                            let dot: f32 =
                                a.iter().zip(b.iter()).map(|(x, y)| x.to_f32() * y.to_f32()).sum();
                            self.pus[2 * k].acc[reg.index()] += dot;
                        }
                    }
                }
            }
            c += 1;
        }
        Ok(last)
    }

    /// `EW_MUL`: element-wise multiply within each bank group. For group `g`,
    /// bank `4g+2` receives the product of the beats of banks `4g` and
    /// `4g+1`, for `n_beats` consecutive columns starting at (`row`, `col`).
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range addresses.
    pub fn ew_mul(&mut self, row: RowAddr, col: ColAddr, n_beats: usize) -> CentResult<Time> {
        let mut last = Time::ZERO;
        let mut r = row;
        let mut c = col.index();
        for _ in 0..n_beats {
            if c >= COLS_PER_ROW {
                r = r.next();
                c = 0;
            }
            self.check_addr(BankId(0), r, ColAddr(c as u32))?;
            self.open_all(r)?;
            last = self.timing.issue(DramCommand::EwMulAb { col: ColAddr(c as u32) })?;
            if self.functional {
                for g in 0..cent_types::consts::BANK_GROUPS_PER_CHANNEL {
                    let a = self.banks[4 * g].read_beat(r, ColAddr(c as u32));
                    let b = self.banks[4 * g + 1].read_beat(r, ColAddr(c as u32));
                    let mut out = ZERO_BEAT;
                    for lane in 0..LANES_PER_BEAT {
                        out[lane] = a[lane] * b[lane];
                    }
                    self.banks[4 * g + 2].write_beat(r, ColAddr(c as u32), &out);
                }
            }
            c += 1;
        }
        Ok(last)
    }

    /// `AF`: applies activation function `af` to accumulation register `reg`
    /// of every PU, via the DRAM-resident lookup table + linear interpolation.
    ///
    /// Timing: the LUT row is activated and two knot beats are fetched (the
    /// interpolation endpoints), then the row is released.
    ///
    /// # Errors
    ///
    /// Propagates timing-model protocol violations.
    pub fn af(&mut self, reg: AccRegId, af: ActivationFunction) -> CentResult<Time> {
        // LUT lives in reserved high rows of each bank; activating it evicts
        // the current lockstep row.
        let lut_row = RowAddr((ROWS_PER_BANK - 1 - af.id() as usize) as u32);
        self.open_all(lut_row)?;
        self.timing.issue(DramCommand::Rd { bank: BankId(0), col: ColAddr(0) })?;
        let t = self.timing.issue(DramCommand::Rd { bank: BankId(0), col: ColAddr(1) })?;
        self.precharge_all()?;
        if self.functional {
            let lut = self.luts.entry(af.id()).or_insert_with(|| AfLut::new(af));
            for pu in &mut self.pus {
                pu.acc[reg.index()] = lut.eval(pu.acc[reg.index()]);
            }
        }
        Ok(t)
    }

    /// `RD_MAC`: reads accumulation register `reg` of all 16 PUs as one beat
    /// (lane `p` = PU `p`), rounding the wide accumulators to BF16.
    pub fn read_mac(&mut self, reg: AccRegId) -> (Beat, Time) {
        let mut beat = ZERO_BEAT;
        for (p, pu) in self.pus.iter().enumerate() {
            beat[p] = Bf16::from_f32(pu.acc[reg.index()]);
        }
        let t = self.timing.now();
        self.timing.advance_to(t + cent_types::consts::PU_CLOCK_PERIOD);
        (beat, t)
    }

    /// Direct accumulator inspection for tests.
    pub fn acc(&self, pu: usize, reg: AccRegId) -> f32 {
        self.pus[pu].acc[reg.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beat_of(values: &[f32]) -> Beat {
        let mut beat = ZERO_BEAT;
        for (i, v) in values.iter().enumerate() {
            beat[i] = Bf16::from_f32(*v);
        }
        beat
    }

    #[test]
    fn gemv_one_beat_per_bank() {
        let mut ch = PimChannel::functional();
        // Bank p row: all ones. Vector: 0..16. Expected dot = sum(0..16)=120.
        let ones = beat_of(&[1.0; 16]);
        for p in 0..16 {
            ch.write_beat(BankId(p), RowAddr(0), ColAddr(0), &ones).unwrap();
        }
        let v: Vec<f32> = (0..16).map(|i| i as f32).collect();
        ch.write_gb(0, &beat_of(&v));
        ch.write_bias(AccRegId::new(0), &ZERO_BEAT);
        ch.mac_abk(
            RowAddr(0),
            ColAddr(0),
            1,
            AccRegId::new(0),
            MacSource::GlobalBuffer { slot: 0 },
        )
        .unwrap();
        let (out, _) = ch.read_mac(AccRegId::new(0));
        for (p, o) in out.iter().enumerate() {
            assert_eq!(o.to_f32(), 120.0, "pu {p}");
        }
    }

    #[test]
    fn mac_accumulates_across_beats_and_rows() {
        let mut ch = PimChannel::functional();
        let ones = beat_of(&[1.0; 16]);
        // 2 beats at end of row 0 and 1 beat at row 1 (wrap).
        ch.write_beat(BankId(0), RowAddr(0), ColAddr(62), &ones).unwrap();
        ch.write_beat(BankId(0), RowAddr(0), ColAddr(63), &ones).unwrap();
        ch.write_beat(BankId(0), RowAddr(1), ColAddr(0), &ones).unwrap();
        for s in 0..3 {
            ch.write_gb(s, &beat_of(&[2.0; 16]));
        }
        ch.write_bias(AccRegId::new(3), &ZERO_BEAT);
        ch.mac_abk(
            RowAddr(0),
            ColAddr(62),
            3,
            AccRegId::new(3),
            MacSource::GlobalBuffer { slot: 0 },
        )
        .unwrap();
        // 3 beats × 16 lanes × 1.0 × 2.0 = 96 for PU 0.
        assert_eq!(ch.acc(0, AccRegId::new(3)), 96.0);
        // The writes opened rows 0 and 1 (32 bank-acts) and the MAC stream
        // re-opened both rows during the wrap (another 32).
        assert_eq!(ch.activity().acts, 64);
    }

    #[test]
    fn bias_preloads_accumulator() {
        let mut ch = PimChannel::functional();
        let bias: Vec<f32> = (0..16).map(|p| p as f32 * 10.0).collect();
        ch.write_bias(AccRegId::new(1), &beat_of(&bias));
        assert_eq!(ch.acc(7, AccRegId::new(1)), 70.0);
        let (out, _) = ch.read_mac(AccRegId::new(1));
        assert_eq!(out[7].to_f32(), 70.0);
    }

    #[test]
    fn neighbour_bank_dot_product() {
        let mut ch = PimChannel::functional();
        let a = beat_of(&[3.0; 16]);
        let b = beat_of(&[0.5; 16]);
        ch.write_beat(BankId(0), RowAddr(0), ColAddr(0), &a).unwrap();
        ch.write_beat(BankId(1), RowAddr(0), ColAddr(0), &b).unwrap();
        ch.write_bias(AccRegId::new(0), &ZERO_BEAT);
        ch.mac_abk(RowAddr(0), ColAddr(0), 1, AccRegId::new(0), MacSource::NeighbourBank).unwrap();
        // dot = 16 × 1.5 = 24 lands in even PU 0; odd PU untouched.
        assert_eq!(ch.acc(0, AccRegId::new(0)), 24.0);
        assert_eq!(ch.acc(1, AccRegId::new(0)), 0.0);
    }

    #[test]
    fn ew_mul_writes_third_bank_of_each_group() {
        let mut ch = PimChannel::functional();
        let a = beat_of(&[2.0; 16]);
        let b = beat_of(&[4.0; 16]);
        for g in 0..4u16 {
            ch.write_beat(BankId(4 * g), RowAddr(2), ColAddr(5), &a).unwrap();
            ch.write_beat(BankId(4 * g + 1), RowAddr(2), ColAddr(5), &b).unwrap();
        }
        ch.ew_mul(RowAddr(2), ColAddr(5), 1).unwrap();
        for g in 0..4u16 {
            let (out, _) = ch.read_beat(BankId(4 * g + 2), RowAddr(2), ColAddr(5)).unwrap();
            assert_eq!(out[0].to_f32(), 8.0, "group {g}");
        }
    }

    #[test]
    fn af_applies_lut_sigmoid() {
        let mut ch = PimChannel::functional();
        ch.write_bias(AccRegId::new(0), &beat_of(&[0.0; 16]));
        ch.af(AccRegId::new(0), ActivationFunction::Sigmoid).unwrap();
        assert!((ch.acc(3, AccRegId::new(0)) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn gb_round_trip_through_bank() {
        let mut ch = PimChannel::functional();
        let data = beat_of(&[1.0, 2.0, 3.0, 4.0]);
        ch.write_gb(10, &data);
        ch.copy_gb_to_bank(BankId(5), RowAddr(9), ColAddr(0), 10, 1).unwrap();
        ch.copy_bank_to_gb(BankId(5), RowAddr(9), ColAddr(0), 20, 1).unwrap();
        assert_eq!(ch.gb(20)[1].to_f32(), 2.0);
    }

    #[test]
    fn write_element_all_banks_scatters_lanes() {
        let mut ch = PimChannel::functional();
        let lanes: Vec<f32> = (0..16).map(|p| p as f32 + 1.0).collect();
        ch.write_element_all_banks(RowAddr(0), 17, &beat_of(&lanes)).unwrap();
        // Element 17 falls in beat 1, lane 1.
        let (beat, _) = ch.read_beat(BankId(6), RowAddr(0), ColAddr(1)).unwrap();
        assert_eq!(beat[1].to_f32(), 7.0);
    }

    #[test]
    fn timing_advances_with_work() {
        let mut ch = PimChannel::timing_only();
        ch.write_gb(0, &ZERO_BEAT);
        ch.mac_abk(
            RowAddr(0),
            ColAddr(0),
            64,
            AccRegId::new(0),
            MacSource::GlobalBuffer { slot: 0 },
        )
        .unwrap();
        // 18 ns tRCD + 64 beats ≈ 82 ns minimum.
        assert!(ch.busy_until().as_ns() >= 82.0);
        assert_eq!(ch.activity().mac_beats, 64 * 16);
    }

    #[test]
    fn out_of_range_addresses_rejected() {
        let mut ch = PimChannel::functional();
        assert!(ch.write_beat(BankId(0), RowAddr(1_000_000), ColAddr(0), &ZERO_BEAT).is_err());
        assert!(ch.write_beat(BankId(0), RowAddr(0), ColAddr(64), &ZERO_BEAT).is_err());
        assert!(ch.copy_bank_to_gb(BankId(0), RowAddr(0), ColAddr(0), 60, 10).is_err());
    }

    #[test]
    fn timing_only_channel_reads_zero() {
        let mut ch = PimChannel::timing_only();
        let (beat, _) = ch.read_beat(BankId(0), RowAddr(0), ColAddr(0)).unwrap();
        assert_eq!(beat, ZERO_BEAT);
        assert!(!ch.is_functional());
    }
}
