//! The CENT CXL device: decoder + 32 PIM channels + PNM units + CXL port.
//!
//! A device executes CENT instruction traces in order (the decoder dispatches
//! one instruction per 2 GHz cycle). PIM channels keep their own DRAM clocks
//! and run ahead of the dispatch stream; the device clock only synchronises
//! with a channel when an instruction *consumes* channel results (`RD_MAC`,
//! `RD_SBK`, `COPY_BKGB`), which mirrors the queued PIM-controller design of
//! §4.2. PNM instructions execute on the device clock; CXL receives stall
//! until delivery.

use cent_cxl::CommunicationEngine;
use cent_dram::ActivityCounters;
use cent_isa::{Instruction, MacOperand};
use cent_pim::{ActivationFunction, MacSource, PimChannel};
use cent_pnm::PnmStats;
use cent_pnm::{programs, PnmCore, PnmUnits, SharedBuffer};
use cent_types::consts::{CHANNELS_PER_DEVICE, PNM_CLOCK_PERIOD, PNM_RISCV_CORES};
use cent_types::{Beat, CentError, CentResult, ChannelId, DeviceId, SbSlot, Time};

use crate::breakdown::LatencyBreakdown;

/// Well-known start PCs of the canned PNM RISC-V routines (the host loads
/// these into the cores' 64 KB buffers at boot, §4.2).
pub mod riscv_pc {
    /// `1/sqrt(x)` of one scalar.
    pub const RSQRT: u32 = 0x100;
    /// `1/x` of one scalar.
    pub const RECIP: u32 = 0x200;
    /// RMSNorm scale `1/sqrt(sum/n + eps)`.
    pub const RMSNORM_SCALE: u32 = 0x300;
    /// Rotary-embedding combine of four product arrays.
    pub const ROPE_COMBINE: u32 = 0x400;
    /// Element-wise vector addition (residual connections).
    pub const VEC_ADD: u32 = 0x500;
    /// Vector × scalar scaling.
    pub const VEC_SCALE: u32 = 0x600;
    /// Even/odd deinterleave (RoPE complex regrouping).
    pub const DEINTERLEAVE: u32 = 0x700;
    /// Scalar minus a count (softmax padding correction).
    pub const SUB_COUNT: u32 = 0x800;
    /// Zero the tail lanes of one beat (softmax pad clearing).
    pub const ZERO_TAIL: u32 = 0x900;
}

/// Configuration of one CXL device model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceConfig {
    /// PIM channels to instantiate (32 in the paper; tests use fewer).
    pub channels: usize,
    /// Whether channels carry functional data.
    pub functional: bool,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig { channels: CHANNELS_PER_DEVICE, functional: true }
    }
}

impl DeviceConfig {
    /// Timing-only device with the full 32 channels.
    pub fn timing_only() -> Self {
        DeviceConfig { channels: CHANNELS_PER_DEVICE, functional: false }
    }

    /// Functional device with a reduced channel count (fast tests).
    pub fn functional_small(channels: usize) -> Self {
        DeviceConfig { channels, functional: true }
    }
}

/// One CENT CXL device.
///
/// # Examples
///
/// Run a miniature GEMV trace and read the result:
///
/// ```
/// use cent_device::{CxlDevice, DeviceConfig};
/// use cent_isa::{Instruction, MacOperand};
/// use cent_types::*;
///
/// # fn main() -> Result<(), cent_types::CentError> {
/// let mut dev = CxlDevice::new(DeviceId(0), DeviceConfig::functional_small(1));
/// // Preload a 16×16 all-ones tile in channel 0 (row 0, one beat per bank).
/// for bank in 0..16u16 {
///     dev.preload_beat(ChannelId(0), BankId(bank), RowAddr(0), ColAddr(0), &[Bf16::ONE; 16])?;
/// }
/// // The input vector sits in Shared Buffer slot 0.
/// dev.shared_buffer_mut().write_vec(SbSlot(0), &[Bf16::from_f32(2.0); 16])?;
/// let trace = [
///     Instruction::WrGb { chmask: ChannelMask(1), opsize: 1, gb_slot: 0, rs: SbSlot(0) },
///     Instruction::WrBias { chmask: ChannelMask(1), rs: SbSlot(1), reg: AccRegId::new(0) },
///     Instruction::MacAbk {
///         chmask: ChannelMask(1), opsize: 1, row: RowAddr(0), col: ColAddr(0),
///         reg: AccRegId::new(0), operand: MacOperand::GlobalBuffer { slot: 0 },
///     },
///     Instruction::RdMac { chmask: ChannelMask(1), rd: SbSlot(2), reg: AccRegId::new(0) },
/// ];
/// for inst in &trace {
///     dev.execute(inst, None)?;
/// }
/// // Each PU row of ones · vector of twos = 32.
/// assert_eq!(dev.shared_buffer().read(SbSlot(2))?[0].to_f32(), 32.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CxlDevice {
    id: DeviceId,
    config: DeviceConfig,
    channels: Vec<PimChannel>,
    sb: SharedBuffer,
    pnm: PnmUnits,
    cores: Vec<PnmCore>,
    next_core: usize,
    now: Time,
    breakdown: LatencyBreakdown,
    instructions_executed: u64,
}

impl CxlDevice {
    /// Creates a device.
    pub fn new(id: DeviceId, config: DeviceConfig) -> Self {
        let channels = (0..config.channels)
            .map(|_| {
                if config.functional {
                    PimChannel::functional()
                } else {
                    PimChannel::timing_only()
                }
            })
            .collect();
        CxlDevice {
            id,
            config,
            channels,
            sb: SharedBuffer::new(),
            pnm: PnmUnits::new(),
            cores: (0..PNM_RISCV_CORES).map(|_| PnmCore::new()).collect(),
            next_core: 0,
            now: Time::ZERO,
            breakdown: LatencyBreakdown::ZERO,
            instructions_executed: 0,
        }
    }

    /// This device's fabric identity.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Current device (decoder) clock.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Completion time across decoder and all channels.
    pub fn busy_until(&self) -> Time {
        self.channels.iter().map(PimChannel::busy_until).fold(self.now, Time::max)
    }

    /// Latency attribution so far.
    pub fn breakdown(&self) -> LatencyBreakdown {
        let mut b = self.breakdown;
        // Outstanding channel work counts as PIM time.
        b.pim += self.busy_until().saturating_sub(self.now);
        b
    }

    /// Instructions executed so far.
    pub fn instructions_executed(&self) -> u64 {
        self.instructions_executed
    }

    /// Aggregated DRAM activity across channels (power model input).
    pub fn dram_activity(&self) -> ActivityCounters {
        let mut total = ActivityCounters::default();
        for ch in &self.channels {
            total.merge(ch.activity());
        }
        total
    }

    /// PNM activity (power model input).
    pub fn pnm_activity(&self) -> &PnmStats {
        self.pnm.stats()
    }

    /// Shared Buffer access (functional verification).
    pub fn shared_buffer(&self) -> &SharedBuffer {
        &self.sb
    }

    /// Mutable Shared Buffer access (host writes via CXL).
    pub fn shared_buffer_mut(&mut self) -> &mut SharedBuffer {
        &mut self.sb
    }

    /// Direct channel access for inspection.
    pub fn channel(&self, ch: ChannelId) -> CentResult<&PimChannel> {
        self.channels.get(ch.index()).ok_or_else(|| {
            CentError::config(format!("device has {} channels", self.channels.len()))
        })
    }

    /// Preloads one beat into a bank without advancing timing — model
    /// weights are loaded once before serving and are not part of inference
    /// latency (§5.6).
    ///
    /// # Errors
    ///
    /// Returns address errors from the channel.
    pub fn preload_beat(
        &mut self,
        ch: ChannelId,
        bank: cent_types::BankId,
        row: cent_types::RowAddr,
        col: cent_types::ColAddr,
        beat: &Beat,
    ) -> CentResult<()> {
        let channel = self
            .channels
            .get_mut(ch.index())
            .ok_or_else(|| CentError::config(format!("channel {ch} not present")))?;
        // Use a scratch clone of the timing-free path: write the beat, then
        // cancel the timing effect by treating preload as time-zero state.
        channel.preload_beat(bank, row, col, beat)
    }

    fn channel_mut(&mut self, idx: usize) -> CentResult<&mut PimChannel> {
        let n = self.channels.len();
        self.channels
            .get_mut(idx)
            .ok_or_else(|| CentError::config(format!("channel {idx} of {n} not present")))
    }

    /// Executes one instruction. `comm` is required for CXL instructions and
    /// may be `None` for single-device runs.
    ///
    /// # Errors
    ///
    /// Propagates address, protocol and trap errors from the units.
    pub fn execute(
        &mut self,
        inst: &Instruction,
        mut comm: Option<&mut CommunicationEngine>,
    ) -> CentResult<()> {
        self.instructions_executed += 1;
        // One decoder slot per instruction.
        self.now += PNM_CLOCK_PERIOD;
        match *inst {
            Instruction::WrGb { chmask, opsize, gb_slot, rs } => {
                let beats: Vec<Beat> = (0..opsize)
                    .map(|i| self.sb.read(rs.offset(i as u16)))
                    .collect::<CentResult<_>>()?;
                let now = self.now;
                for ch in chmask.iter() {
                    let channel = self.channel_mut(ch.index())?;
                    channel.advance_to(now);
                    for (i, beat) in beats.iter().enumerate() {
                        channel.write_gb(gb_slot as usize + i, beat);
                    }
                }
            }
            Instruction::WrBias { chmask, rs, reg } => {
                let beat = self.sb.read(rs)?;
                let now = self.now;
                for ch in chmask.iter() {
                    let channel = self.channel_mut(ch.index())?;
                    channel.advance_to(now);
                    channel.write_bias(reg, &beat);
                }
            }
            Instruction::MacAbk { chmask, opsize, row, col, reg, operand } => {
                let source = match operand {
                    MacOperand::GlobalBuffer { slot } => {
                        MacSource::GlobalBuffer { slot: slot as usize }
                    }
                    MacOperand::NeighbourBank => MacSource::NeighbourBank,
                };
                let now = self.now;
                for ch in chmask.iter() {
                    let channel = self.channel_mut(ch.index())?;
                    channel.advance_to(now);
                    channel.mac_abk(row, col, opsize as usize, reg, source)?;
                }
            }
            Instruction::EwMul { chmask, opsize, row, col } => {
                let now = self.now;
                for ch in chmask.iter() {
                    let channel = self.channel_mut(ch.index())?;
                    channel.advance_to(now);
                    channel.ew_mul(row, col, opsize as usize)?;
                }
            }
            Instruction::Af { chmask, af_id, reg } => {
                let af = ActivationFunction::from_id(af_id).ok_or_else(|| {
                    CentError::InvalidInstruction(format!("unknown AFid {af_id}"))
                })?;
                let now = self.now;
                for ch in chmask.iter() {
                    let channel = self.channel_mut(ch.index())?;
                    channel.advance_to(now);
                    channel.af(reg, af)?;
                }
            }
            Instruction::RdMac { chmask, rd, reg } => {
                // Consuming results: sync with each channel's completion.
                let mut slot = rd;
                for ch in chmask.iter() {
                    let busy = self.channels[ch.index()].busy_until();
                    self.sync_pim(busy);
                    let channel = self.channel_mut(ch.index())?;
                    let (beat, _) = channel.read_mac(reg);
                    self.sb.write(slot, &beat)?;
                    slot = slot.offset(1);
                }
            }
            Instruction::WrSbk { ch, opsize, bank, row, col, rs } => {
                let now = self.now;
                let beats: Vec<Beat> = (0..opsize)
                    .map(|i| self.sb.read(rs.offset(i as u16)))
                    .collect::<CentResult<_>>()?;
                let channel = self.channel_mut(ch.index())?;
                channel.advance_to(now);
                let mut r = row;
                let mut c = col.index();
                for beat in &beats {
                    if c >= cent_types::consts::COLS_PER_ROW {
                        r = r.next();
                        c = 0;
                    }
                    channel.write_beat(bank, r, cent_types::ColAddr(c as u32), beat)?;
                    c += 1;
                }
            }
            Instruction::RdSbk { ch, opsize, bank, row, col, rd } => {
                let now = self.now;
                let channel = self.channel_mut(ch.index())?;
                channel.advance_to(now);
                let mut beats = Vec::with_capacity(opsize as usize);
                let mut r = row;
                let mut c = col.index();
                for _ in 0..opsize {
                    if c >= cent_types::consts::COLS_PER_ROW {
                        r = r.next();
                        c = 0;
                    }
                    let (beat, _) = channel.read_beat(bank, r, cent_types::ColAddr(c as u32))?;
                    beats.push(beat);
                    c += 1;
                }
                let busy = self.channels[ch.index()].busy_until();
                self.sync_pim(busy);
                for (i, beat) in beats.iter().enumerate() {
                    self.sb.write(rd.offset(i as u16), beat)?;
                }
            }
            Instruction::WrAbk { ch, row, elem, rs } => {
                let beat = self.sb.read(rs)?;
                let now = self.now;
                let channel = self.channel_mut(ch.index())?;
                channel.advance_to(now);
                channel.write_element_all_banks(row, elem as usize, &beat)?;
            }
            Instruction::CopyBkGb { chmask, opsize, bank, row, col, gb_slot } => {
                let now = self.now;
                for ch in chmask.iter() {
                    let channel = self.channel_mut(ch.index())?;
                    channel.advance_to(now);
                    channel.copy_bank_to_gb(bank, row, col, gb_slot as usize, opsize as usize)?;
                }
            }
            Instruction::CopyGbBk { chmask, opsize, bank, row, col, gb_slot } => {
                let now = self.now;
                for ch in chmask.iter() {
                    let channel = self.channel_mut(ch.index())?;
                    channel.advance_to(now);
                    channel.copy_gb_to_bank(bank, row, col, gb_slot as usize, opsize as usize)?;
                }
            }
            Instruction::Exp { opsize, rd, rs } => {
                let t = self.pnm.exp(&mut self.sb, rd, rs, opsize as usize)?;
                self.now += t;
                self.breakdown.pnm += t;
            }
            Instruction::Red { opsize, rd, rs } => {
                let t = self.pnm.red(&mut self.sb, rd, rs, opsize as usize)?;
                self.now += t;
                self.breakdown.pnm += t;
            }
            Instruction::Acc { opsize, rd, rs } => {
                let t = self.pnm.acc(&mut self.sb, rd, rs, opsize as usize)?;
                self.now += t;
                self.breakdown.pnm += t;
            }
            Instruction::Riscv { opsize, pc, rd, rs } => {
                let t = self.run_riscv(pc, rd, rs, opsize)?;
                self.now += t;
                self.breakdown.pnm += t;
            }
            Instruction::SendCxl { dv, rs, rd, opsize } => {
                let comm = comm.as_deref_mut().ok_or_else(|| {
                    CentError::ProtocolViolation("SEND_CXL without a fabric".into())
                })?;
                let beats: Vec<Beat> = (0..opsize)
                    .map(|i| self.sb.read(rs.offset(i as u16)))
                    .collect::<CentResult<_>>()?;
                comm.send_to_slot(self.id, dv, rd, beats, self.now)?;
                // SEND_CXL is non-blocking (§4.1).
            }
            Instruction::RecvCxl { opsize: _ } => {
                let comm = comm.as_deref_mut().ok_or_else(|| {
                    CentError::ProtocolViolation("RECV_CXL without a fabric".into())
                })?;
                let msg = comm.recv(self.id)?;
                // Blocking: stall until delivery.
                if msg.delivered_at > self.now {
                    self.breakdown.cxl += msg.delivered_at - self.now;
                    self.now = msg.delivered_at;
                }
                let base = SbSlot(msg.dst_slot);
                for (i, beat) in msg.beats.iter().enumerate() {
                    self.sb.write(base.offset(i as u16), beat)?;
                }
            }
            Instruction::BcastCxl { dv_count, rs, rd, opsize } => {
                let comm = comm.ok_or_else(|| {
                    CentError::ProtocolViolation("BCAST_CXL without a fabric".into())
                })?;
                let beats: Vec<Beat> = (0..opsize)
                    .map(|i| self.sb.read(rs.offset(i as u16)))
                    .collect::<CentResult<_>>()?;
                let targets: Vec<DeviceId> =
                    (1..=u16::from(dv_count)).map(|i| DeviceId(self.id.0 + i)).collect();
                comm.broadcast_to_slot(self.id, &targets, rd, beats, self.now)?;
            }
        }
        Ok(())
    }

    fn sync_pim(&mut self, busy: Time) {
        if busy > self.now {
            self.breakdown.pim += busy - self.now;
            self.now = busy;
        }
    }

    /// Runs a whole trace in order.
    ///
    /// # Errors
    ///
    /// Propagates the first execution error.
    pub fn run_trace(
        &mut self,
        trace: &[Instruction],
        mut comm: Option<&mut CommunicationEngine>,
    ) -> CentResult<Time> {
        for inst in trace {
            self.execute(inst, comm.as_deref_mut())?;
        }
        // A trace is complete when every channel has drained.
        let busy = self.busy_until();
        self.sync_pim(busy);
        Ok(self.now)
    }

    fn run_riscv(&mut self, pc: u32, rd: SbSlot, rs: SbSlot, opsize: u32) -> CentResult<Time> {
        let n = opsize;
        // Multi-array routines use exact packed strides of n elements
        // (2n bytes) between consecutive arrays.
        let stride = n * 2;
        let (program, args): (&str, Vec<u32>) = match pc {
            riscv_pc::RSQRT => (programs::RSQRT, vec![rs.byte_addr(), rd.byte_addr()]),
            riscv_pc::RECIP => (programs::RECIP, vec![rs.byte_addr(), rd.byte_addr()]),
            riscv_pc::RMSNORM_SCALE => {
                (programs::RMSNORM_SCALE, vec![rs.byte_addr(), n, rd.byte_addr()])
            }
            riscv_pc::ROPE_COMBINE => (
                programs::ROPE_COMBINE,
                vec![
                    rs.byte_addr(),
                    rs.byte_addr() + stride,
                    rs.byte_addr() + 2 * stride,
                    rs.byte_addr() + 3 * stride,
                    rd.byte_addr(),
                    n,
                ],
            ),
            riscv_pc::VEC_ADD => (
                programs::VEC_ADD,
                vec![rs.byte_addr(), rs.byte_addr() + stride, rd.byte_addr(), n],
            ),
            riscv_pc::VEC_SCALE => (
                programs::VEC_SCALE,
                vec![rs.byte_addr(), rs.byte_addr() + stride, rd.byte_addr(), n],
            ),
            riscv_pc::DEINTERLEAVE => {
                (programs::DEINTERLEAVE, vec![rs.byte_addr(), rd.byte_addr(), n])
            }
            riscv_pc::SUB_COUNT => (programs::SUB_COUNT, vec![rs.byte_addr(), n, rd.byte_addr()]),
            riscv_pc::ZERO_TAIL => (programs::ZERO_TAIL, vec![rd.byte_addr(), n]),
            other => {
                return Err(CentError::InvalidInstruction(format!(
                    "no RISC-V routine registered at pc {other:#x}"
                )))
            }
        };
        // Round-robin over the 8 cores.
        let core_idx = self.next_core;
        self.next_core = (self.next_core + 1) % self.cores.len();
        let run = self.cores[core_idx].run(&mut self.sb, program, &args)?;
        self.pnm.note_riscv_instructions(run.retired);
        Ok(run.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cent_cxl::FabricConfig;
    use cent_types::{AccRegId, BankId, Bf16, ChannelMask, ColAddr, RowAddr};

    fn small_device(id: u16) -> CxlDevice {
        CxlDevice::new(DeviceId(id), DeviceConfig::functional_small(2))
    }

    #[test]
    fn gemv_trace_on_two_channels() {
        let mut dev = small_device(0);
        // Channel 0 holds rows of ones, channel 1 rows of twos.
        for ch in 0..2u16 {
            let value = Bf16::from_f32(ch as f32 + 1.0);
            for bank in 0..16u16 {
                dev.preload_beat(ChannelId(ch), BankId(bank), RowAddr(0), ColAddr(0), &[value; 16])
                    .unwrap();
            }
        }
        dev.shared_buffer_mut().write_vec(SbSlot(0), &[Bf16::ONE; 16]).unwrap();
        let trace = [
            Instruction::WrGb { chmask: ChannelMask(0b11), opsize: 1, gb_slot: 0, rs: SbSlot(0) },
            Instruction::WrBias { chmask: ChannelMask(0b11), rs: SbSlot(4), reg: AccRegId::new(0) },
            Instruction::MacAbk {
                chmask: ChannelMask(0b11),
                opsize: 1,
                row: RowAddr(0),
                col: ColAddr(0),
                reg: AccRegId::new(0),
                operand: MacOperand::GlobalBuffer { slot: 0 },
            },
            Instruction::RdMac { chmask: ChannelMask(0b11), rd: SbSlot(8), reg: AccRegId::new(0) },
        ];
        dev.run_trace(&trace, None).unwrap();
        // Channel 0 result in slot 8 (16 ones · ones), channel 1 in slot 9.
        assert_eq!(dev.shared_buffer().read(SbSlot(8)).unwrap()[0].to_f32(), 16.0);
        assert_eq!(dev.shared_buffer().read(SbSlot(9)).unwrap()[3].to_f32(), 32.0);
        assert!(dev.now() > Time::ZERO);
        assert_eq!(dev.instructions_executed(), 4);
    }

    #[test]
    fn pnm_softmax_pipeline() {
        let mut dev = small_device(0);
        // Scores in slot 0: [0, ln2, 0, ...] -> exp = [1, 2, 1 ...].
        let scores =
            vec![Bf16::from_f32(0.0), Bf16::from_f32(core::f32::consts::LN_2), Bf16::from_f32(0.0)];
        dev.shared_buffer_mut().write_vec(SbSlot(0), &scores).unwrap();
        let trace = [
            Instruction::Exp { opsize: 1, rd: SbSlot(1), rs: SbSlot(0) },
            Instruction::Red { opsize: 1, rd: SbSlot(2), rs: SbSlot(1) },
            Instruction::Riscv { opsize: 1, pc: riscv_pc::RECIP, rd: SbSlot(3), rs: SbSlot(2) },
        ];
        dev.run_trace(&trace, None).unwrap();
        // exp sums: 1 + 2 + 1 + 13 zeros' exp(0)=1 each... note: zero lanes
        // also exponentiate to 1, so the beat-wide sum is 1+2+1 + 13 = 17.
        let sum = dev.shared_buffer().read(SbSlot(2)).unwrap()[0].to_f32();
        assert!((sum - 17.0).abs() < 0.2, "sum {sum}");
        let recip = dev.shared_buffer().read(SbSlot(3)).unwrap()[0].to_f32();
        assert!((recip - 1.0 / sum).abs() < 1e-3);
        assert!(dev.breakdown().pnm > Time::ZERO);
    }

    #[test]
    fn cxl_send_recv_between_devices() {
        let mut comm = CommunicationEngine::new(FabricConfig::cent(2));
        let mut a = small_device(0);
        let mut b = small_device(1);
        a.shared_buffer_mut().write_vec(SbSlot(0), &[Bf16::from_f32(9.0); 16]).unwrap();
        a.execute(
            &Instruction::SendCxl { dv: DeviceId(1), rs: SbSlot(0), rd: SbSlot(100), opsize: 1 },
            Some(&mut comm),
        )
        .unwrap();
        b.execute(&Instruction::RecvCxl { opsize: 1 }, Some(&mut comm)).unwrap();
        assert_eq!(b.shared_buffer().read(SbSlot(100)).unwrap()[0].to_f32(), 9.0);
        // The receiver stalled on the fabric: CXL time attributed.
        assert!(b.breakdown().cxl > Time::ZERO);
    }

    #[test]
    fn broadcast_from_master_device() {
        let mut comm = CommunicationEngine::new(FabricConfig::cent(4));
        let mut master = small_device(0);
        master.shared_buffer_mut().write_vec(SbSlot(0), &[Bf16::from_f32(3.5); 32]).unwrap();
        master
            .execute(
                &Instruction::BcastCxl { dv_count: 3, rs: SbSlot(0), rd: SbSlot(0), opsize: 2 },
                Some(&mut comm),
            )
            .unwrap();
        for i in 1..4u16 {
            let mut d = small_device(i);
            d.execute(&Instruction::RecvCxl { opsize: 2 }, Some(&mut comm)).unwrap();
            assert_eq!(d.shared_buffer().read(SbSlot(1)).unwrap()[15].to_f32(), 3.5);
        }
    }

    #[test]
    fn riscv_rmsnorm_scale_via_isa() {
        let mut dev = small_device(0);
        // Sum of squares = 1024 over n=256 -> 1/sqrt(4) = 0.5.
        dev.shared_buffer_mut().write_vec(SbSlot(0), &[Bf16::from_f32(1024.0)]).unwrap();
        dev.execute(
            &Instruction::Riscv {
                opsize: 256,
                pc: riscv_pc::RMSNORM_SCALE,
                rd: SbSlot(1),
                rs: SbSlot(0),
            },
            None,
        )
        .unwrap();
        let got = dev.shared_buffer().read(SbSlot(1)).unwrap()[0].to_f32();
        assert!((got - 0.5).abs() < 1e-2, "got {got}");
    }

    #[test]
    fn cxl_instruction_without_fabric_fails() {
        let mut dev = small_device(0);
        let err = dev.execute(&Instruction::RecvCxl { opsize: 1 }, None).unwrap_err();
        assert!(err.to_string().contains("without a fabric"));
    }

    #[test]
    fn unknown_riscv_pc_rejected() {
        let mut dev = small_device(0);
        let err = dev
            .execute(
                &Instruction::Riscv { opsize: 1, pc: 0x999, rd: SbSlot(0), rs: SbSlot(0) },
                None,
            )
            .unwrap_err();
        assert!(err.to_string().contains("no RISC-V routine"));
    }

    #[test]
    fn dram_activity_aggregates_channels() {
        let mut dev = small_device(0);
        dev.shared_buffer_mut().write_vec(SbSlot(0), &[Bf16::ONE; 16]).unwrap();
        dev.run_trace(
            &[
                Instruction::WrGb {
                    chmask: ChannelMask(0b11),
                    opsize: 1,
                    gb_slot: 0,
                    rs: SbSlot(0),
                },
                Instruction::MacAbk {
                    chmask: ChannelMask(0b11),
                    opsize: 4,
                    row: RowAddr(0),
                    col: ColAddr(0),
                    reg: AccRegId::new(0),
                    operand: MacOperand::GlobalBuffer { slot: 0 },
                },
            ],
            None,
        )
        .unwrap();
        let act = dev.dram_activity();
        // 2 channels × 4 beats × 16 banks.
        assert_eq!(act.mac_beats, 2 * 4 * 16);
        assert_eq!(act.acts, 2 * 16);
    }

    #[test]
    fn ew_mul_through_isa() {
        let mut dev = small_device(0);
        for g in 0..4u16 {
            dev.preload_beat(
                ChannelId(0),
                BankId(4 * g),
                RowAddr(1),
                ColAddr(0),
                &[Bf16::from_f32(3.0); 16],
            )
            .unwrap();
            dev.preload_beat(
                ChannelId(0),
                BankId(4 * g + 1),
                RowAddr(1),
                ColAddr(0),
                &[Bf16::from_f32(2.0); 16],
            )
            .unwrap();
        }
        dev.run_trace(
            &[
                Instruction::EwMul {
                    chmask: ChannelMask(1),
                    opsize: 1,
                    row: RowAddr(1),
                    col: ColAddr(0),
                },
                Instruction::RdSbk {
                    ch: ChannelId(0),
                    opsize: 1,
                    bank: BankId(2),
                    row: RowAddr(1),
                    col: ColAddr(0),
                    rd: SbSlot(50),
                },
            ],
            None,
        )
        .unwrap();
        assert_eq!(dev.shared_buffer().read(SbSlot(50)).unwrap()[7].to_f32(), 6.0);
    }
}
