//! The CENT CXL device model: decoder, PIM controllers, PNM units and the
//! device side of the CXL port.
//!
//! A [`CxlDevice`] executes CENT instruction traces (see `cent-isa`) over
//! the substrates: 32 `cent-pim` channels, the `cent-pnm` Shared
//! Buffer/accelerators/RISC-V cores, and a `cent-cxl` fabric for SEND/RECV/
//! BCAST. Execution is simultaneously functional (BF16 data) and timed
//! (DRAM command timing + PNM unit pipelines), and produces the per-unit
//! [`LatencyBreakdown`] used for Figure 14(c) of the paper.

#![forbid(unsafe_code)]

mod breakdown;
mod device;

pub use breakdown::LatencyBreakdown;
pub use device::{riscv_pc, CxlDevice, DeviceConfig};
