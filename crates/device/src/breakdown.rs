//! Per-unit latency attribution, feeding Figure 14(c) of the paper.

use core::iter::Sum;
use core::ops::{Add, AddAssign};

use cent_types::Time;

/// How much of a trace's wall-clock a device spent waiting on each unit.
///
/// The sum of the components equals the device-visible execution time of the
/// trace; "host" time (instruction dispatch, top-k sampling) is added by the
/// system simulator on top.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Stalls waiting for PIM channels (dominant per the paper).
    pub pim: Time,
    /// Time in PNM accelerators and RISC-V cores.
    pub pnm: Time,
    /// Stalls waiting for CXL deliveries/acknowledgements.
    pub cxl: Time,
    /// Host-attributed time (dispatch, sampling) — filled by `cent-sim`.
    pub host: Time,
}

impl LatencyBreakdown {
    /// Zero breakdown.
    pub const ZERO: LatencyBreakdown =
        LatencyBreakdown { pim: Time::ZERO, pnm: Time::ZERO, cxl: Time::ZERO, host: Time::ZERO };

    /// Total across all components.
    pub fn total(&self) -> Time {
        self.pim + self.pnm + self.cxl + self.host
    }

    /// Fraction of the total attributed to PIM.
    pub fn pim_fraction(&self) -> f64 {
        let total = self.total().as_ps();
        if total == 0 {
            return 0.0;
        }
        self.pim.as_ps() as f64 / total as f64
    }

    /// Scales every component (e.g. one block → whole model).
    pub fn scaled(&self, factor: f64) -> LatencyBreakdown {
        let s = |t: Time| Time::from_ps((t.as_ps() as f64 * factor).round() as u64);
        LatencyBreakdown {
            pim: s(self.pim),
            pnm: s(self.pnm),
            cxl: s(self.cxl),
            host: s(self.host),
        }
    }
}

impl Add for LatencyBreakdown {
    type Output = LatencyBreakdown;
    fn add(self, rhs: LatencyBreakdown) -> LatencyBreakdown {
        LatencyBreakdown {
            pim: self.pim + rhs.pim,
            pnm: self.pnm + rhs.pnm,
            cxl: self.cxl + rhs.cxl,
            host: self.host + rhs.host,
        }
    }
}

impl AddAssign for LatencyBreakdown {
    fn add_assign(&mut self, rhs: LatencyBreakdown) {
        *self = *self + rhs;
    }
}

impl Sum for LatencyBreakdown {
    fn sum<I: Iterator<Item = LatencyBreakdown>>(iter: I) -> LatencyBreakdown {
        iter.fold(LatencyBreakdown::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let b = LatencyBreakdown {
            pim: Time::from_us(90),
            pnm: Time::from_us(5),
            cxl: Time::from_us(4),
            host: Time::from_us(1),
        };
        assert_eq!(b.total(), Time::from_us(100));
        assert!((b.pim_fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn scaling_and_sum() {
        let b = LatencyBreakdown { pim: Time::from_us(10), ..LatencyBreakdown::ZERO };
        let doubled = b.scaled(2.0);
        assert_eq!(doubled.pim, Time::from_us(20));
        let total: LatencyBreakdown = [b, b, b].into_iter().sum();
        assert_eq!(total.pim, Time::from_us(30));
    }
}
