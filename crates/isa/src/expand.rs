//! Micro-op expansion and trace analysis.
//!
//! The PIM decoder "generates OPsize micro-ops from a single instruction,
//! targeting subsequent Shared Buffer slots and DRAM column addresses"
//! (§4.3). [`micro_op_count`] exposes that expansion factor, and
//! [`TraceStats`] aggregates the FLOP mix of a trace — the quantity behind
//! the paper's claim that MACs are >99% of arithmetic operations (§2), which
//! justifies the hierarchical PIM-PNM split.

use std::collections::BTreeMap;

use cent_types::consts::{BANKS_PER_CHANNEL, LANES_PER_BEAT};

use crate::inst::Instruction;

/// Number of micro-ops the decoder emits for `inst`.
pub fn micro_op_count(inst: &Instruction) -> u64 {
    let per_channel = u64::from(inst.opsize());
    match inst {
        // Channel-broadcast instructions issue one micro-op stream per
        // selected channel.
        Instruction::MacAbk { chmask, .. }
        | Instruction::EwMul { chmask, .. }
        | Instruction::CopyBkGb { chmask, .. }
        | Instruction::CopyGbBk { chmask, .. }
        | Instruction::WrGb { chmask, .. } => per_channel * u64::from(chmask.count()),
        Instruction::Af { chmask, .. }
        | Instruction::WrBias { chmask, .. }
        | Instruction::RdMac { chmask, .. } => u64::from(chmask.count()),
        _ => per_channel,
    }
}

/// Floating-point operations implied by `inst` (multiply and add counted
/// separately, matching how the paper quotes TFLOPS).
pub fn flop_count(inst: &Instruction) -> u64 {
    let lanes = LANES_PER_BEAT as u64;
    match inst {
        Instruction::MacAbk { chmask, opsize, .. } => {
            // Each beat: 16 banks × 16 lanes × (mul + add).
            u64::from(*opsize) * u64::from(chmask.count()) * BANKS_PER_CHANNEL as u64 * lanes * 2
        }
        Instruction::EwMul { chmask, opsize, .. } => {
            // Each beat: 4 bank groups × 16 lanes × 1 multiply.
            u64::from(*opsize) * u64::from(chmask.count()) * 4 * lanes
        }
        Instruction::Af { chmask, .. } => {
            // Interpolation: one multiply + two adds per PU.
            u64::from(chmask.count()) * BANKS_PER_CHANNEL as u64 * 3
        }
        Instruction::Exp { opsize, .. } => {
            // Order-10 Taylor ≈ 10 muls + 10 adds per lane.
            u64::from(*opsize) * lanes * 20
        }
        Instruction::Red { opsize, .. } => u64::from(*opsize) * (lanes - 1),
        Instruction::Acc { opsize, .. } => u64::from(*opsize) * lanes,
        // Scalar RISC-V work: opsize elements, a handful of FLOPs each.
        Instruction::Riscv { opsize, .. } => u64::from(*opsize) * 4,
        _ => 0,
    }
}

/// Aggregate statistics of a CENT trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Instruction count per mnemonic.
    pub by_mnemonic: BTreeMap<&'static str, u64>,
    /// Total instructions.
    pub instructions: u64,
    /// Total micro-ops after expansion.
    pub micro_ops: u64,
    /// FLOPs performed by near-bank MAC trees.
    pub mac_flops: u64,
    /// FLOPs performed by all other units (EW_MUL, AF, PNM).
    pub other_flops: u64,
    /// Instructions dispatched to PIM controllers.
    pub pim_instructions: u64,
    /// Instructions dispatched to PNM units.
    pub pnm_instructions: u64,
    /// Instructions crossing the CXL fabric.
    pub cxl_instructions: u64,
}

impl TraceStats {
    /// Fraction of all arithmetic FLOPs performed by the MAC trees — the
    /// paper's ">99%" justification for domain-specific near-bank PUs.
    pub fn mac_flop_fraction(&self) -> f64 {
        let total = self.mac_flops + self.other_flops;
        if total == 0 {
            return 0.0;
        }
        self.mac_flops as f64 / total as f64
    }
}

/// Analyses a trace.
pub fn analyze(trace: &[Instruction]) -> TraceStats {
    let mut stats = TraceStats::default();
    for inst in trace {
        *stats.by_mnemonic.entry(inst.mnemonic()).or_default() += 1;
        stats.instructions += 1;
        stats.micro_ops += micro_op_count(inst);
        let flops = flop_count(inst);
        if matches!(inst, Instruction::MacAbk { .. }) {
            stats.mac_flops += flops;
        } else {
            stats.other_flops += flops;
        }
        if inst.is_pim() {
            stats.pim_instructions += 1;
        } else if inst.is_cxl() {
            stats.cxl_instructions += 1;
        } else {
            stats.pnm_instructions += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use cent_types::{AccRegId, ChannelMask, ColAddr, RowAddr, SbSlot};

    use crate::inst::MacOperand;

    #[test]
    fn expansion_multiplies_opsize_by_channels() {
        let inst = Instruction::MacAbk {
            chmask: ChannelMask::range(0, 8),
            opsize: 64,
            row: RowAddr(0),
            col: ColAddr(0),
            reg: AccRegId::new(0),
            operand: MacOperand::GlobalBuffer { slot: 0 },
        };
        assert_eq!(micro_op_count(&inst), 64 * 8);
    }

    #[test]
    fn mac_flops_dominate_a_realistic_block_mix() {
        // Roughly the instruction mix of one attention + FFN block: large
        // GEMV MAC streams, a softmax's worth of EXP/RED/ACC, a few AFs.
        let mut trace = Vec::new();
        for _ in 0..100 {
            trace.push(Instruction::MacAbk {
                chmask: ChannelMask::range(0, 10),
                opsize: 4096,
                row: RowAddr(0),
                col: ColAddr(0),
                reg: AccRegId::new(0),
                operand: MacOperand::GlobalBuffer { slot: 0 },
            });
        }
        trace.push(Instruction::Exp { opsize: 256, rd: SbSlot(0), rs: SbSlot(256) });
        trace.push(Instruction::Red { opsize: 256, rd: SbSlot(0), rs: SbSlot(256) });
        trace.push(Instruction::Acc { opsize: 256, rd: SbSlot(0), rs: SbSlot(256) });
        trace.push(Instruction::Af {
            chmask: ChannelMask::range(0, 10),
            af_id: 0,
            reg: AccRegId::new(0),
        });
        let stats = analyze(&trace);
        assert!(stats.mac_flop_fraction() > 0.99, "got {}", stats.mac_flop_fraction());
    }

    #[test]
    fn unit_attribution() {
        let trace = vec![
            Instruction::RecvCxl { opsize: 1 },
            Instruction::Exp { opsize: 1, rd: SbSlot(0), rs: SbSlot(1) },
            Instruction::WrGb { chmask: ChannelMask(1), opsize: 1, gb_slot: 0, rs: SbSlot(0) },
        ];
        let stats = analyze(&trace);
        assert_eq!(stats.cxl_instructions, 1);
        assert_eq!(stats.pnm_instructions, 1);
        assert_eq!(stats.pim_instructions, 1);
        assert_eq!(stats.instructions, 3);
        assert_eq!(stats.by_mnemonic["EXP"], 1);
    }

    #[test]
    fn empty_trace_is_benign() {
        let stats = analyze(&[]);
        assert_eq!(stats.mac_flop_fraction(), 0.0);
        assert_eq!(stats.micro_ops, 0);
    }
}
