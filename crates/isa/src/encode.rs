//! Binary encoding of CENT instructions.
//!
//! Instructions are packed into fixed 16-byte words — the granularity at
//! which the host streams traces into each device's 2 MB instruction buffer
//! (so one buffer holds 128 K instructions, comfortably a full transformer
//! block per §4.2).

use cent_types::{
    AccRegId, BankId, CentError, CentResult, ChannelId, ChannelMask, ColAddr, DeviceId, RowAddr,
    SbSlot,
};

use crate::inst::{Instruction, MacOperand};

/// Size of one encoded instruction.
pub const INST_BYTES: usize = 16;

struct Writer {
    buf: [u8; INST_BYTES],
    pos: usize,
}

impl Writer {
    fn new(opcode: u8) -> Self {
        let mut w = Writer { buf: [0; INST_BYTES], pos: 0 };
        w.u8(opcode);
        w
    }

    fn u8(&mut self, v: u8) {
        self.buf[self.pos] = v;
        self.pos += 1;
    }

    fn u16(&mut self, v: u16) {
        self.buf[self.pos..self.pos + 2].copy_from_slice(&v.to_le_bytes());
        self.pos += 2;
    }

    fn u32(&mut self, v: u32) {
        self.buf[self.pos..self.pos + 4].copy_from_slice(&v.to_le_bytes());
        self.pos += 4;
    }

    fn done(self) -> [u8; INST_BYTES] {
        self.buf
    }
}

struct Reader<'a> {
    buf: &'a [u8; INST_BYTES],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8; INST_BYTES]) -> (u8, Self) {
        let opcode = buf[0];
        (opcode, Reader { buf, pos: 1 })
    }

    fn u8(&mut self) -> u8 {
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    fn u16(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.buf[self.pos..self.pos + 2].try_into().expect("2 bytes"));
        self.pos += 2;
        v
    }

    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().expect("4 bytes"));
        self.pos += 4;
        v
    }
}

const OP_MAC_ABK: u8 = 0x01;
const OP_EW_MUL: u8 = 0x02;
const OP_AF: u8 = 0x03;
const OP_EXP: u8 = 0x04;
const OP_RED: u8 = 0x05;
const OP_ACC: u8 = 0x06;
const OP_RISCV: u8 = 0x07;
const OP_SEND_CXL: u8 = 0x10;
const OP_RECV_CXL: u8 = 0x11;
const OP_BCAST_CXL: u8 = 0x12;
const OP_WR_SBK: u8 = 0x20;
const OP_RD_SBK: u8 = 0x21;
const OP_WR_ABK: u8 = 0x22;
const OP_COPY_BKGB: u8 = 0x23;
const OP_COPY_GBBK: u8 = 0x24;
const OP_WR_BIAS: u8 = 0x25;
const OP_RD_MAC: u8 = 0x26;
const OP_WR_GB: u8 = 0x27;

/// Encodes one instruction into its 16-byte word.
pub fn encode(inst: &Instruction) -> [u8; INST_BYTES] {
    match *inst {
        Instruction::MacAbk { chmask, opsize, row, col, reg, operand } => {
            let mut w = Writer::new(OP_MAC_ABK);
            w.u32(chmask.0);
            w.u32(opsize);
            w.u16(row.0 as u16);
            w.u8(col.0 as u8);
            w.u8(reg.0);
            match operand {
                MacOperand::GlobalBuffer { slot } => {
                    w.u8(0);
                    w.u8(slot);
                }
                MacOperand::NeighbourBank => {
                    w.u8(1);
                    w.u8(0);
                }
            }
            w.done()
        }
        Instruction::EwMul { chmask, opsize, row, col } => {
            let mut w = Writer::new(OP_EW_MUL);
            w.u32(chmask.0);
            w.u32(opsize);
            w.u16(row.0 as u16);
            w.u8(col.0 as u8);
            w.done()
        }
        Instruction::Af { chmask, af_id, reg } => {
            let mut w = Writer::new(OP_AF);
            w.u32(chmask.0);
            w.u8(af_id);
            w.u8(reg.0);
            w.done()
        }
        Instruction::Exp { opsize, rd, rs } => {
            let mut w = Writer::new(OP_EXP);
            w.u32(opsize);
            w.u16(rd.0);
            w.u16(rs.0);
            w.done()
        }
        Instruction::Red { opsize, rd, rs } => {
            let mut w = Writer::new(OP_RED);
            w.u32(opsize);
            w.u16(rd.0);
            w.u16(rs.0);
            w.done()
        }
        Instruction::Acc { opsize, rd, rs } => {
            let mut w = Writer::new(OP_ACC);
            w.u32(opsize);
            w.u16(rd.0);
            w.u16(rs.0);
            w.done()
        }
        Instruction::Riscv { opsize, pc, rd, rs } => {
            let mut w = Writer::new(OP_RISCV);
            w.u32(opsize);
            w.u32(pc);
            w.u16(rd.0);
            w.u16(rs.0);
            w.done()
        }
        Instruction::SendCxl { dv, rs, rd, opsize } => {
            let mut w = Writer::new(OP_SEND_CXL);
            w.u16(dv.0);
            w.u16(rs.0);
            w.u16(rd.0);
            w.u32(opsize);
            w.done()
        }
        Instruction::RecvCxl { opsize } => {
            let mut w = Writer::new(OP_RECV_CXL);
            w.u32(opsize);
            w.done()
        }
        Instruction::BcastCxl { dv_count, rs, rd, opsize } => {
            let mut w = Writer::new(OP_BCAST_CXL);
            w.u8(dv_count);
            w.u16(rs.0);
            w.u16(rd.0);
            w.u32(opsize);
            w.done()
        }
        Instruction::WrSbk { ch, opsize, bank, row, col, rs } => {
            let mut w = Writer::new(OP_WR_SBK);
            w.u8(ch.0 as u8);
            w.u32(opsize);
            w.u8(bank.0 as u8);
            w.u16(row.0 as u16);
            w.u8(col.0 as u8);
            w.u16(rs.0);
            w.done()
        }
        Instruction::RdSbk { ch, opsize, bank, row, col, rd } => {
            let mut w = Writer::new(OP_RD_SBK);
            w.u8(ch.0 as u8);
            w.u32(opsize);
            w.u8(bank.0 as u8);
            w.u16(row.0 as u16);
            w.u8(col.0 as u8);
            w.u16(rd.0);
            w.done()
        }
        Instruction::WrAbk { ch, row, elem, rs } => {
            let mut w = Writer::new(OP_WR_ABK);
            w.u8(ch.0 as u8);
            w.u16(row.0 as u16);
            w.u32(elem);
            w.u16(rs.0);
            w.done()
        }
        Instruction::CopyBkGb { chmask, opsize, bank, row, col, gb_slot } => {
            let mut w = Writer::new(OP_COPY_BKGB);
            w.u32(chmask.0);
            w.u32(opsize);
            w.u8(bank.0 as u8);
            w.u16(row.0 as u16);
            w.u8(col.0 as u8);
            w.u8(gb_slot);
            w.done()
        }
        Instruction::CopyGbBk { chmask, opsize, bank, row, col, gb_slot } => {
            let mut w = Writer::new(OP_COPY_GBBK);
            w.u32(chmask.0);
            w.u32(opsize);
            w.u8(bank.0 as u8);
            w.u16(row.0 as u16);
            w.u8(col.0 as u8);
            w.u8(gb_slot);
            w.done()
        }
        Instruction::WrBias { chmask, rs, reg } => {
            let mut w = Writer::new(OP_WR_BIAS);
            w.u32(chmask.0);
            w.u16(rs.0);
            w.u8(reg.0);
            w.done()
        }
        Instruction::RdMac { chmask, rd, reg } => {
            let mut w = Writer::new(OP_RD_MAC);
            w.u32(chmask.0);
            w.u16(rd.0);
            w.u8(reg.0);
            w.done()
        }
        Instruction::WrGb { chmask, opsize, gb_slot, rs } => {
            let mut w = Writer::new(OP_WR_GB);
            w.u32(chmask.0);
            w.u32(opsize);
            w.u8(gb_slot);
            w.u16(rs.0);
            w.done()
        }
    }
}

/// Decodes one 16-byte word back into an instruction.
///
/// # Errors
///
/// Returns [`CentError::InvalidInstruction`] on unknown opcodes.
pub fn decode(word: &[u8; INST_BYTES]) -> CentResult<Instruction> {
    let (opcode, mut r) = Reader::new(word);
    Ok(match opcode {
        OP_MAC_ABK => {
            let chmask = ChannelMask(r.u32());
            let opsize = r.u32();
            let row = RowAddr(u32::from(r.u16()));
            let col = ColAddr(u32::from(r.u8()));
            let reg = AccRegId::new(r.u8());
            let operand = if r.u8() == 0 {
                MacOperand::GlobalBuffer { slot: r.u8() }
            } else {
                MacOperand::NeighbourBank
            };
            Instruction::MacAbk { chmask, opsize, row, col, reg, operand }
        }
        OP_EW_MUL => Instruction::EwMul {
            chmask: ChannelMask(r.u32()),
            opsize: r.u32(),
            row: RowAddr(u32::from(r.u16())),
            col: ColAddr(u32::from(r.u8())),
        },
        OP_AF => Instruction::Af {
            chmask: ChannelMask(r.u32()),
            af_id: r.u8(),
            reg: AccRegId::new(r.u8()),
        },
        OP_EXP => Instruction::Exp { opsize: r.u32(), rd: SbSlot(r.u16()), rs: SbSlot(r.u16()) },
        OP_RED => Instruction::Red { opsize: r.u32(), rd: SbSlot(r.u16()), rs: SbSlot(r.u16()) },
        OP_ACC => Instruction::Acc { opsize: r.u32(), rd: SbSlot(r.u16()), rs: SbSlot(r.u16()) },
        OP_RISCV => Instruction::Riscv {
            opsize: r.u32(),
            pc: r.u32(),
            rd: SbSlot(r.u16()),
            rs: SbSlot(r.u16()),
        },
        OP_SEND_CXL => Instruction::SendCxl {
            dv: DeviceId(r.u16()),
            rs: SbSlot(r.u16()),
            rd: SbSlot(r.u16()),
            opsize: r.u32(),
        },
        OP_RECV_CXL => Instruction::RecvCxl { opsize: r.u32() },
        OP_BCAST_CXL => Instruction::BcastCxl {
            dv_count: r.u8(),
            rs: SbSlot(r.u16()),
            rd: SbSlot(r.u16()),
            opsize: r.u32(),
        },
        OP_WR_SBK => Instruction::WrSbk {
            ch: ChannelId(u16::from(r.u8())),
            opsize: r.u32(),
            bank: BankId(u16::from(r.u8())),
            row: RowAddr(u32::from(r.u16())),
            col: ColAddr(u32::from(r.u8())),
            rs: SbSlot(r.u16()),
        },
        OP_RD_SBK => Instruction::RdSbk {
            ch: ChannelId(u16::from(r.u8())),
            opsize: r.u32(),
            bank: BankId(u16::from(r.u8())),
            row: RowAddr(u32::from(r.u16())),
            col: ColAddr(u32::from(r.u8())),
            rd: SbSlot(r.u16()),
        },
        OP_WR_ABK => Instruction::WrAbk {
            ch: ChannelId(u16::from(r.u8())),
            row: RowAddr(u32::from(r.u16())),
            elem: r.u32(),
            rs: SbSlot(r.u16()),
        },
        OP_COPY_BKGB => Instruction::CopyBkGb {
            chmask: ChannelMask(r.u32()),
            opsize: r.u32(),
            bank: BankId(u16::from(r.u8())),
            row: RowAddr(u32::from(r.u16())),
            col: ColAddr(u32::from(r.u8())),
            gb_slot: r.u8(),
        },
        OP_COPY_GBBK => Instruction::CopyGbBk {
            chmask: ChannelMask(r.u32()),
            opsize: r.u32(),
            bank: BankId(u16::from(r.u8())),
            row: RowAddr(u32::from(r.u16())),
            col: ColAddr(u32::from(r.u8())),
            gb_slot: r.u8(),
        },
        OP_WR_BIAS => Instruction::WrBias {
            chmask: ChannelMask(r.u32()),
            rs: SbSlot(r.u16()),
            reg: AccRegId::new(r.u8()),
        },
        OP_RD_MAC => Instruction::RdMac {
            chmask: ChannelMask(r.u32()),
            rd: SbSlot(r.u16()),
            reg: AccRegId::new(r.u8()),
        },
        OP_WR_GB => Instruction::WrGb {
            chmask: ChannelMask(r.u32()),
            opsize: r.u32(),
            gb_slot: r.u8(),
            rs: SbSlot(r.u16()),
        },
        other => return Err(CentError::InvalidInstruction(format!("unknown opcode {other:#04x}"))),
    })
}

/// Encodes a whole trace into the byte stream the host writes into the
/// device instruction buffer.
pub fn encode_trace(trace: &[Instruction]) -> Vec<u8> {
    let mut out = Vec::with_capacity(trace.len() * INST_BYTES);
    for inst in trace {
        out.extend_from_slice(&encode(inst));
    }
    out
}

/// Decodes an instruction-buffer byte stream back into a trace.
///
/// # Errors
///
/// Fails if the stream length is not a multiple of [`INST_BYTES`] or any
/// word has an unknown opcode.
pub fn decode_trace(bytes: &[u8]) -> CentResult<Vec<Instruction>> {
    if !bytes.len().is_multiple_of(INST_BYTES) {
        return Err(CentError::InvalidInstruction(format!(
            "trace of {} bytes is not a multiple of {INST_BYTES}",
            bytes.len()
        )));
    }
    bytes
        .chunks_exact(INST_BYTES)
        .map(|chunk| decode(chunk.try_into().expect("exact chunk")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exemplars() -> Vec<Instruction> {
        vec![
            Instruction::MacAbk {
                chmask: ChannelMask(0xDEADBEEF),
                opsize: 4096,
                row: RowAddr(16383),
                col: ColAddr(63),
                reg: AccRegId::new(31),
                operand: MacOperand::GlobalBuffer { slot: 63 },
            },
            Instruction::MacAbk {
                chmask: ChannelMask(1),
                opsize: 1,
                row: RowAddr(0),
                col: ColAddr(0),
                reg: AccRegId::new(0),
                operand: MacOperand::NeighbourBank,
            },
            Instruction::EwMul {
                chmask: ChannelMask(0xFF),
                opsize: 128,
                row: RowAddr(7),
                col: ColAddr(3),
            },
            Instruction::Af { chmask: ChannelMask::ALL, af_id: 4, reg: AccRegId::new(2) },
            Instruction::Exp { opsize: 256, rd: SbSlot(100), rs: SbSlot(200) },
            Instruction::Red { opsize: 1, rd: SbSlot(0), rs: SbSlot(2047) },
            Instruction::Acc { opsize: 64, rd: SbSlot(5), rs: SbSlot(6) },
            Instruction::Riscv { opsize: 128, pc: 0x400, rd: SbSlot(1), rs: SbSlot(2) },
            Instruction::SendCxl { dv: DeviceId(31), rs: SbSlot(0), rd: SbSlot(512), opsize: 512 },
            Instruction::RecvCxl { opsize: 512 },
            Instruction::BcastCxl { dv_count: 31, rs: SbSlot(0), rd: SbSlot(0), opsize: 512 },
            Instruction::WrSbk {
                ch: ChannelId(31),
                opsize: 16,
                bank: BankId(15),
                row: RowAddr(9),
                col: ColAddr(1),
                rs: SbSlot(77),
            },
            Instruction::RdSbk {
                ch: ChannelId(0),
                opsize: 2,
                bank: BankId(3),
                row: RowAddr(44),
                col: ColAddr(0),
                rd: SbSlot(9),
            },
            Instruction::WrAbk { ch: ChannelId(5), row: RowAddr(2), elem: 1023, rs: SbSlot(3) },
            Instruction::CopyBkGb {
                chmask: ChannelMask(2),
                opsize: 64,
                bank: BankId(1),
                row: RowAddr(5),
                col: ColAddr(0),
                gb_slot: 0,
            },
            Instruction::CopyGbBk {
                chmask: ChannelMask(4),
                opsize: 32,
                bank: BankId(2),
                row: RowAddr(6),
                col: ColAddr(32),
                gb_slot: 16,
            },
            Instruction::WrBias {
                chmask: ChannelMask(0xF0),
                rs: SbSlot(11),
                reg: AccRegId::new(7),
            },
            Instruction::RdMac { chmask: ChannelMask(0x0F), rd: SbSlot(12), reg: AccRegId::new(8) },
            Instruction::WrGb { chmask: ChannelMask(3), opsize: 64, gb_slot: 0, rs: SbSlot(40) },
        ]
    }

    #[test]
    fn every_instruction_round_trips() {
        for inst in exemplars() {
            let word = encode(&inst);
            let back = decode(&word).unwrap_or_else(|e| panic!("{inst}: {e}"));
            assert_eq!(back, inst, "{inst}");
        }
    }

    #[test]
    fn trace_round_trips() {
        let trace = exemplars();
        let bytes = encode_trace(&trace);
        assert_eq!(bytes.len(), trace.len() * INST_BYTES);
        assert_eq!(decode_trace(&bytes).unwrap(), trace);
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut word = [0u8; INST_BYTES];
        word[0] = 0xFF;
        assert!(decode(&word).is_err());
    }

    #[test]
    fn misaligned_trace_rejected() {
        assert!(decode_trace(&[0u8; 17]).is_err());
    }

    #[test]
    fn instruction_buffer_capacity() {
        // 2 MB instruction buffer / 16 B = 128 K instructions.
        let capacity = cent_types::consts::INSTRUCTION_BUFFER_BYTES.as_bytes() / INST_BYTES as u64;
        assert_eq!(capacity, 131_072);
    }
}
