//! The CENT instruction set: definitions, binary encoding and micro-op
//! expansion.
//!
//! Tables 2 and 3 of the paper define the arithmetic instructions executed
//! by near-bank PUs and PNM units, and the data-movement instructions tying
//! together Shared Buffer, DRAM banks, Global Buffers and the CXL fabric.
//! This crate provides:
//!
//! * [`Instruction`] — the full ISA as a typed enum with paper-style
//!   assembly [`Display`](core::fmt::Display) output;
//! * [`encode`]/[`decode`] — the fixed 16-byte binary format streamed into
//!   each device's 2 MB instruction buffer (128 K instructions);
//! * [`analyze`] — trace statistics incl. the MAC-FLOP fraction behind the
//!   paper's hierarchical PIM-PNM design argument.

#![forbid(unsafe_code)]

mod encode;
mod expand;
mod inst;

pub use encode::{decode, decode_trace, encode, encode_trace, INST_BYTES};
pub use expand::{analyze, flop_count, micro_op_count, TraceStats};
pub use inst::{Instruction, MacOperand};
