//! The CENT instruction set (Tables 2 and 3 of the paper).
//!
//! Instructions are transmitted from the host into each device's 2 MB
//! instruction buffer, decoded, and dispatched as micro-ops to PIM
//! controllers and PNM units (§4.2). Two operand conventions worth noting:
//!
//! * `CHmask` selects the PIM channels a broadcast micro-op targets;
//! * `OPsize` makes one instruction expand into that many micro-ops walking
//!   consecutive Shared Buffer slots / DRAM columns.
//!
//! Two fields are explicit here that the paper's table encodes inside
//! address bits: the source bank / Global Buffer slot of the `COPY_*`
//! instructions, and the second-operand source of `MAC_ABK` (Global Buffer
//! vs neighbouring bank — both §5.4 usages of the same opcode).

use core::fmt;

use cent_types::{AccRegId, BankId, ChannelId, ChannelMask, ColAddr, DeviceId, RowAddr, SbSlot};

/// Second-operand source of `MAC_ABK` (Figure 7a datapath mux).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacOperand {
    /// 256-bit broadcast from the Global Buffer starting at `slot`.
    GlobalBuffer {
        /// First GB slot; expansion walks subsequent slots.
        slot: u8,
    },
    /// The neighbouring bank's beat (vector dot-product mode).
    NeighbourBank,
}

/// One CENT instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    // ------------------------------------------------- near-bank PU (Table 2)
    /// `MAC_ABK CHmask OPsize RO CO Regid`: `opsize` all-bank MAC beats.
    MacAbk {
        /// Target channels.
        chmask: ChannelMask,
        /// Number of beats (micro-ops).
        opsize: u32,
        /// Starting row.
        row: RowAddr,
        /// Starting column.
        col: ColAddr,
        /// Accumulation register.
        reg: AccRegId,
        /// Second-operand source.
        operand: MacOperand,
    },
    /// `EW_MUL CHmask OPsize RO CO`: element-wise multiply beats.
    EwMul {
        /// Target channels.
        chmask: ChannelMask,
        /// Number of beats.
        opsize: u32,
        /// Starting row.
        row: RowAddr,
        /// Starting column.
        col: ColAddr,
    },
    /// `AF CHmask AFid Regid`: activation function on an accumulator.
    Af {
        /// Target channels.
        chmask: ChannelMask,
        /// Which lookup table.
        af_id: u8,
        /// Accumulation register transformed in place.
        reg: AccRegId,
    },
    // ---------------------------------------------------- PNM units (Table 2)
    /// `EXP OPsize Rd Rs`: lane-wise exponent over Shared Buffer slots.
    Exp {
        /// Number of beats.
        opsize: u32,
        /// Destination slot.
        rd: SbSlot,
        /// Source slot.
        rs: SbSlot,
    },
    /// `RED OPsize Rd Rs`: 16-lane reduction per slot.
    Red {
        /// Number of beats.
        opsize: u32,
        /// Destination slot.
        rd: SbSlot,
        /// Source slot.
        rs: SbSlot,
    },
    /// `ACC OPsize Rd Rs`: lane-wise accumulation `rd += rs`.
    Acc {
        /// Number of beats.
        opsize: u32,
        /// Destination slot.
        rd: SbSlot,
        /// Source slot.
        rs: SbSlot,
    },
    /// `RISCV OPsize PC Rd Rs`: kick a RISC-V core at `pc` with slot args.
    Riscv {
        /// Data size hint handed to the routine (element count).
        opsize: u32,
        /// Routine id / start PC within the core's 64 KB buffer.
        pc: u32,
        /// Destination slot argument.
        rd: SbSlot,
        /// Source slot argument.
        rs: SbSlot,
    },
    // -------------------------------------------- device ↔ device (Table 3)
    /// `SEND_CXL DVid Rs Rd`: non-blocking send of beats starting at `rs` to
    /// slot `rd` of device `dv`.
    SendCxl {
        /// Destination device.
        dv: DeviceId,
        /// Source slot in the local Shared Buffer.
        rs: SbSlot,
        /// Destination slot in the remote Shared Buffer.
        rd: SbSlot,
        /// Number of beats to send.
        opsize: u32,
    },
    /// `RECV_CXL`: blocking receive (no device id; order-insensitive).
    RecvCxl {
        /// Number of beats expected.
        opsize: u32,
    },
    /// `BCAST_CXL DVcount Rs Rd`: broadcast to the next `dv_count` devices.
    BcastCxl {
        /// Number of subsequent devices to deliver to.
        dv_count: u8,
        /// Source slot.
        rs: SbSlot,
        /// Destination slot on each target.
        rd: SbSlot,
        /// Number of beats.
        opsize: u32,
    },
    // ---------------------------------------- Shared Buffer ↔ DRAM (Table 3)
    /// `WR_SBK CHid OPsize BK RO CO Rs`: write beats into a single bank.
    WrSbk {
        /// Target channel.
        ch: ChannelId,
        /// Number of beats.
        opsize: u32,
        /// Target bank.
        bank: BankId,
        /// Starting row.
        row: RowAddr,
        /// Starting column.
        col: ColAddr,
        /// Source Shared Buffer slot.
        rs: SbSlot,
    },
    /// `RD_SBK CHid OPsize BK RO CO Rd`: read beats from a single bank.
    RdSbk {
        /// Target channel.
        ch: ChannelId,
        /// Number of beats.
        opsize: u32,
        /// Source bank.
        bank: BankId,
        /// Starting row.
        row: RowAddr,
        /// Starting column.
        col: ColAddr,
        /// Destination Shared Buffer slot.
        rd: SbSlot,
    },
    /// `WR_ABK CHid RO CO Rs`: scatter the 16 lanes of slot `rs` across all
    /// 16 banks at element position `co` of row `ro`.
    WrAbk {
        /// Target channel.
        ch: ChannelId,
        /// Row.
        row: RowAddr,
        /// Element (16-bit) position within the row.
        elem: u32,
        /// Source slot.
        rs: SbSlot,
    },
    // --------------------------------------- Global Buffer ↔ DRAM (Table 3)
    /// `COPY_BKGB CHmask OPsize RO CO`: copy bank beats into the Global
    /// Buffer.
    CopyBkGb {
        /// Target channels.
        chmask: ChannelMask,
        /// Number of beats.
        opsize: u32,
        /// Source bank.
        bank: BankId,
        /// Row.
        row: RowAddr,
        /// Starting column.
        col: ColAddr,
        /// Destination Global Buffer slot.
        gb_slot: u8,
    },
    /// `COPY_GBBK CHmask OPsize RO CO`: copy Global Buffer beats into a bank.
    CopyGbBk {
        /// Target channels.
        chmask: ChannelMask,
        /// Number of beats.
        opsize: u32,
        /// Destination bank.
        bank: BankId,
        /// Row.
        row: RowAddr,
        /// Starting column.
        col: ColAddr,
        /// Source Global Buffer slot.
        gb_slot: u8,
    },
    // ------------------------------------------- Shared Buffer ↔ PUs (Table 3)
    /// `WR_BIAS CHmask Rs`: load accumulation registers from slot `rs`.
    WrBias {
        /// Target channels.
        chmask: ChannelMask,
        /// Source slot (lane `p` → PU `p`).
        rs: SbSlot,
        /// Accumulation register.
        reg: AccRegId,
    },
    /// `RD_MAC CHmask Rd Regid`: read accumulators into slot `rd`.
    RdMac {
        /// Target channels (one slot written per channel, consecutive).
        chmask: ChannelMask,
        /// First destination slot.
        rd: SbSlot,
        /// Accumulation register.
        reg: AccRegId,
    },
    // --------------------------------- Shared Buffer → Global Buffer (Table 3)
    /// `WR_GB CHmask OPsize CO Rs`: copy Shared Buffer slots into the Global
    /// Buffers of the selected channels.
    WrGb {
        /// Target channels.
        chmask: ChannelMask,
        /// Number of beats.
        opsize: u32,
        /// Starting Global Buffer slot.
        gb_slot: u8,
        /// Source Shared Buffer slot.
        rs: SbSlot,
    },
}

impl Instruction {
    /// Instruction mnemonic as in the paper's tables.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instruction::MacAbk { .. } => "MAC_ABK",
            Instruction::EwMul { .. } => "EW_MUL",
            Instruction::Af { .. } => "AF",
            Instruction::Exp { .. } => "EXP",
            Instruction::Red { .. } => "RED",
            Instruction::Acc { .. } => "ACC",
            Instruction::Riscv { .. } => "RISCV",
            Instruction::SendCxl { .. } => "SEND_CXL",
            Instruction::RecvCxl { .. } => "RECV_CXL",
            Instruction::BcastCxl { .. } => "BCAST_CXL",
            Instruction::WrSbk { .. } => "WR_SBK",
            Instruction::RdSbk { .. } => "RD_SBK",
            Instruction::WrAbk { .. } => "WR_ABK",
            Instruction::CopyBkGb { .. } => "COPY_BKGB",
            Instruction::CopyGbBk { .. } => "COPY_GBBK",
            Instruction::WrBias { .. } => "WR_BIAS",
            Instruction::RdMac { .. } => "RD_MAC",
            Instruction::WrGb { .. } => "WR_GB",
        }
    }

    /// Whether this is an arithmetic instruction (Table 2) as opposed to data
    /// movement (Table 3).
    pub fn is_arithmetic(&self) -> bool {
        matches!(
            self,
            Instruction::MacAbk { .. }
                | Instruction::EwMul { .. }
                | Instruction::Af { .. }
                | Instruction::Exp { .. }
                | Instruction::Red { .. }
                | Instruction::Acc { .. }
                | Instruction::Riscv { .. }
        )
    }

    /// Whether the instruction is executed by the PIM channels (vs PNM/CXL).
    pub fn is_pim(&self) -> bool {
        matches!(
            self,
            Instruction::MacAbk { .. }
                | Instruction::EwMul { .. }
                | Instruction::Af { .. }
                | Instruction::WrSbk { .. }
                | Instruction::RdSbk { .. }
                | Instruction::WrAbk { .. }
                | Instruction::CopyBkGb { .. }
                | Instruction::CopyGbBk { .. }
                | Instruction::WrBias { .. }
                | Instruction::RdMac { .. }
                | Instruction::WrGb { .. }
        )
    }

    /// Whether the instruction crosses the CXL fabric.
    pub fn is_cxl(&self) -> bool {
        matches!(
            self,
            Instruction::SendCxl { .. }
                | Instruction::RecvCxl { .. }
                | Instruction::BcastCxl { .. }
        )
    }

    /// The `OPsize` of the instruction (1 for fixed-size ops).
    pub fn opsize(&self) -> u32 {
        match *self {
            Instruction::MacAbk { opsize, .. }
            | Instruction::EwMul { opsize, .. }
            | Instruction::Exp { opsize, .. }
            | Instruction::Red { opsize, .. }
            | Instruction::Acc { opsize, .. }
            | Instruction::Riscv { opsize, .. }
            | Instruction::SendCxl { opsize, .. }
            | Instruction::RecvCxl { opsize }
            | Instruction::BcastCxl { opsize, .. }
            | Instruction::WrSbk { opsize, .. }
            | Instruction::RdSbk { opsize, .. }
            | Instruction::CopyBkGb { opsize, .. }
            | Instruction::CopyGbBk { opsize, .. }
            | Instruction::WrGb { opsize, .. } => opsize,
            Instruction::Af { .. }
            | Instruction::WrAbk { .. }
            | Instruction::WrBias { .. }
            | Instruction::RdMac { .. } => 1,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::MacAbk { chmask, opsize, row, col, reg, operand } => {
                let src = match operand {
                    MacOperand::GlobalBuffer { slot } => format!("GB[{slot}]"),
                    MacOperand::NeighbourBank => "NBK".to_string(),
                };
                write!(f, "MAC_ABK {:#x} {} {} {} {} {}", chmask.0, opsize, row, col, reg.0, src)
            }
            Instruction::EwMul { chmask, opsize, row, col } => {
                write!(f, "EW_MUL {:#x} {} {} {}", chmask.0, opsize, row, col)
            }
            Instruction::Af { chmask, af_id, reg } => {
                write!(f, "AF {:#x} {} {}", chmask.0, af_id, reg.0)
            }
            Instruction::Exp { opsize, rd, rs } => write!(f, "EXP {opsize} {rd} {rs}"),
            Instruction::Red { opsize, rd, rs } => write!(f, "RED {opsize} {rd} {rs}"),
            Instruction::Acc { opsize, rd, rs } => write!(f, "ACC {opsize} {rd} {rs}"),
            Instruction::Riscv { opsize, pc, rd, rs } => {
                write!(f, "RISCV {opsize} {pc:#x} {rd} {rs}")
            }
            Instruction::SendCxl { dv, rs, rd, opsize } => {
                write!(f, "SEND_CXL {dv} {rs} {rd} {opsize}")
            }
            Instruction::RecvCxl { opsize } => write!(f, "RECV_CXL {opsize}"),
            Instruction::BcastCxl { dv_count, rs, rd, opsize } => {
                write!(f, "BCAST_CXL {dv_count} {rs} {rd} {opsize}")
            }
            Instruction::WrSbk { ch, opsize, bank, row, col, rs } => {
                write!(f, "WR_SBK {ch} {opsize} {bank} {row} {col} {rs}")
            }
            Instruction::RdSbk { ch, opsize, bank, row, col, rd } => {
                write!(f, "RD_SBK {ch} {opsize} {bank} {row} {col} {rd}")
            }
            Instruction::WrAbk { ch, row, elem, rs } => {
                write!(f, "WR_ABK {ch} {row} E{elem} {rs}")
            }
            Instruction::CopyBkGb { chmask, opsize, bank, row, col, gb_slot } => {
                write!(f, "COPY_BKGB {:#x} {opsize} {bank} {row} {col} GB[{gb_slot}]", chmask.0)
            }
            Instruction::CopyGbBk { chmask, opsize, bank, row, col, gb_slot } => {
                write!(f, "COPY_GBBK {:#x} {opsize} {bank} {row} {col} GB[{gb_slot}]", chmask.0)
            }
            Instruction::WrBias { chmask, rs, reg } => {
                write!(f, "WR_BIAS {:#x} {rs} {}", chmask.0, reg.0)
            }
            Instruction::RdMac { chmask, rd, reg } => {
                write!(f, "RD_MAC {:#x} {rd} {}", chmask.0, reg.0)
            }
            Instruction::WrGb { chmask, opsize, gb_slot, rs } => {
                write!(f, "WR_GB {:#x} {opsize} GB[{gb_slot}] {rs}", chmask.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Instruction {
        Instruction::MacAbk {
            chmask: ChannelMask::range(0, 4),
            opsize: 64,
            row: RowAddr(3),
            col: ColAddr(0),
            reg: AccRegId::new(1),
            operand: MacOperand::GlobalBuffer { slot: 0 },
        }
    }

    #[test]
    fn classification() {
        assert!(sample().is_arithmetic());
        assert!(sample().is_pim());
        assert!(!sample().is_cxl());
        let send =
            Instruction::SendCxl { dv: DeviceId(1), rs: SbSlot(0), rd: SbSlot(0), opsize: 4 };
        assert!(send.is_cxl());
        assert!(!send.is_arithmetic());
        assert!(!send.is_pim());
    }

    #[test]
    fn opsize_defaults_to_one_for_fixed_ops() {
        let af = Instruction::Af { chmask: ChannelMask::ALL, af_id: 0, reg: AccRegId::new(0) };
        assert_eq!(af.opsize(), 1);
        assert_eq!(sample().opsize(), 64);
    }

    #[test]
    fn display_matches_paper_assembly_style() {
        assert_eq!(sample().to_string(), "MAC_ABK 0xf 64 RO3 CO0 1 GB[0]");
        let recv = Instruction::RecvCxl { opsize: 512 };
        assert_eq!(recv.to_string(), "RECV_CXL 512");
    }

    #[test]
    fn mnemonics_cover_all_instructions() {
        let insts = [
            sample().mnemonic(),
            Instruction::RecvCxl { opsize: 1 }.mnemonic(),
            Instruction::WrGb { chmask: ChannelMask::ALL, opsize: 1, gb_slot: 0, rs: SbSlot(0) }
                .mnemonic(),
        ];
        assert_eq!(insts, ["MAC_ABK", "RECV_CXL", "WR_GB"]);
    }
}
