//! CENT: a CXL-enabled, GPU-free system for LLM inference — core library.
//!
//! This crate is the user-facing facade of the CENT reproduction (ASPLOS'25,
//! "PIM Is All You Need"). It ties the substrates together:
//!
//! * [`CentSystem`] — build devices on a CXL fabric, map a model
//!   (PP/TP/hybrid/DP), load weights, and run functional decode steps;
//! * [`verify_block`] — compare the CENT simulation against the f32
//!   reference transformer block, the workspace's ground truth.
//!
//! Re-exports give downstream code one import surface for the common types.

#![forbid(unsafe_code)]

mod system;
mod verify;

pub use system::CentSystem;
pub use verify::{verify_block, VerifyReport};

pub use cent_compiler::{
    compile_decode_step, BlockPhase, BlockPlacement, BlockStep, Strategy, SystemMapping,
};
pub use cent_device::{CxlDevice, DeviceConfig, LatencyBreakdown};
pub use cent_model::{BlockWeights, KvCache, ModelConfig};
pub use cent_types::{Bf16, CentError, CentResult, Time};
