//! The CENT system facade: devices + fabric + compiled model.
//!
//! This is the Rust equivalent of the paper's programming model (§5.6):
//! "Users can specify the CENT hardware configuration, including the number
//! of PIM channels to utilize, and the number of pipeline stages. [...]
//! CENT library provides Python APIs to allocate memory space and load model
//! parameters according to the model mapping strategy."

use std::collections::BTreeMap;

use cent_compiler::{compile_decode_step, weight_image, BlockPlacement, Strategy, SystemMapping};
use cent_cxl::{CommunicationEngine, FabricConfig};
use cent_device::{CxlDevice, DeviceConfig, LatencyBreakdown};
use cent_model::{BlockWeights, ModelConfig};
use cent_types::{Bf16, CentError, CentResult, ChannelId, DeviceId, SbSlot, Time};

/// A fully built CENT system: devices on a CXL fabric with a model mapped
/// and (optionally) loaded.
///
/// # Examples
///
/// ```
/// use cent_core::CentSystem;
/// use cent_compiler::Strategy;
/// use cent_model::ModelConfig;
///
/// # fn main() -> Result<(), cent_types::CentError> {
/// let cfg = ModelConfig::tiny();
/// let mut system = CentSystem::functional(&cfg, 1, Strategy::PipelineParallel)?;
/// system.load_random_weights(7)?;
/// let x = vec![0.01_f32; cfg.hidden];
/// let out = system.decode_token(&x, 0)?;
/// assert_eq!(out.len(), cfg.hidden);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CentSystem {
    cfg: ModelConfig,
    mapping: SystemMapping,
    // DeviceId-ordered: `elapsed`/`breakdown`/`init_constant_slots` sweep
    // the values, so iteration order must be deterministic.
    devices: BTreeMap<DeviceId, CxlDevice>,
    comm: CommunicationEngine,
    /// Placement of every block, indexed by block id.
    placements: Vec<(DeviceId, BlockPlacement)>,
    /// Cached weights for functional verification.
    weights: Vec<BlockWeights>,
    functional: bool,
}

impl CentSystem {
    /// Builds a functional (data-carrying) system — intended for small
    /// models and verification.
    ///
    /// # Errors
    ///
    /// Fails if the mapping does not fit the devices.
    pub fn functional(cfg: &ModelConfig, devices: usize, strategy: Strategy) -> CentResult<Self> {
        Self::build(cfg, devices, strategy, true)
    }

    /// Builds a timing-only system (no data storage) for large models.
    ///
    /// # Errors
    ///
    /// Fails if the mapping does not fit the devices.
    pub fn timing_only(cfg: &ModelConfig, devices: usize, strategy: Strategy) -> CentResult<Self> {
        Self::build(cfg, devices, strategy, false)
    }

    fn build(
        cfg: &ModelConfig,
        devices: usize,
        strategy: Strategy,
        functional: bool,
    ) -> CentResult<Self> {
        let mapping = SystemMapping::plan(cfg, devices, strategy)?;
        let mut dev_map = BTreeMap::new();
        let mut placements = Vec::with_capacity(cfg.layers);
        // Build per-block placements from the mapping's device assignments.
        let mut block_home: Vec<Option<(DeviceId, usize)>> = vec![None; cfg.layers];
        for a in &mapping.assignments {
            for (i, &b) in a.blocks.iter().enumerate() {
                if block_home[b].is_none() {
                    block_home[b] = Some((a.device, i));
                }
            }
        }
        // Pure TP: every block on device 0's channels (shard 0 is what we
        // simulate functionally; timing composition handles the rest).
        if mapping.assignments.is_empty() {
            for home in block_home.iter_mut() {
                *home = Some((DeviceId(0), 0));
            }
        }
        let usable = cent_compiler::max_feasible_channels(cfg, mapping.channels_per_block);
        for (b, home) in block_home.iter().enumerate() {
            let (device, slot) =
                home.ok_or_else(|| CentError::mapping(format!("block {b} unassigned")))?;
            let base = slot * mapping.channels_per_block;
            let channels: Vec<ChannelId> =
                (base..base + usable).map(|c| ChannelId(c as u16)).collect();
            let placement = BlockPlacement::plan(cfg, channels)?;
            placements.push((device, placement));
            dev_map.entry(device).or_insert_with(|| {
                CxlDevice::new(
                    device,
                    DeviceConfig { channels: cent_types::consts::CHANNELS_PER_DEVICE, functional },
                )
            });
        }
        let comm = CommunicationEngine::new(FabricConfig::cent(devices.max(2)));
        let mut system = CentSystem {
            cfg: cfg.clone(),
            mapping,
            devices: dev_map,
            comm,
            placements,
            weights: Vec::new(),
            functional,
        };
        system.init_constant_slots()?;
        Ok(system)
    }

    fn init_constant_slots(&mut self) -> CentResult<()> {
        // Slot 0 = zeros (already), slot 1 = ones: the trace builder's
        // constant beats, host-initialised at boot.
        for dev in self.devices.values_mut() {
            dev.shared_buffer_mut().write(SbSlot(1), &[Bf16::ONE; 16])?;
        }
        Ok(())
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The planned mapping.
    pub fn mapping(&self) -> &SystemMapping {
        &self.mapping
    }

    /// Placement of `block`.
    ///
    /// # Errors
    ///
    /// Fails for out-of-range block ids.
    pub fn placement(&self, block: usize) -> CentResult<&BlockPlacement> {
        self.placements
            .get(block)
            .map(|(_, p)| p)
            .ok_or_else(|| CentError::mapping(format!("block {block} out of range")))
    }

    /// Device hosting `block`.
    pub fn block_device(&self, block: usize) -> DeviceId {
        self.placements[block].0
    }

    /// Direct device access (inspection, custom traces).
    pub fn device(&self, id: DeviceId) -> Option<&CxlDevice> {
        self.devices.get(&id)
    }

    /// Loads deterministic random weights into every block (functional
    /// systems only) and remembers them for verification.
    ///
    /// # Errors
    ///
    /// Propagates preload errors.
    pub fn load_random_weights(&mut self, seed: u64) -> CentResult<()> {
        let cfg = self.cfg.clone();
        self.weights = (0..cfg.layers)
            .map(|b| BlockWeights::random(&cfg, seed.wrapping_add(b as u64)))
            .collect();
        if !self.functional {
            return Ok(());
        }
        for b in 0..cfg.layers {
            let weights = self.weights[b].clone();
            self.load_block_weights(b, &weights)?;
        }
        Ok(())
    }

    /// Loads explicit weights into one block.
    ///
    /// # Errors
    ///
    /// Propagates preload errors.
    pub fn load_block_weights(&mut self, block: usize, w: &BlockWeights) -> CentResult<()> {
        let (device, placement) = &self.placements[block];
        let image = weight_image(placement, w);
        let dev = self.devices.get_mut(device).expect("device exists");
        for write in image {
            dev.preload_beat(write.channel, write.bank, write.row, write.col, &write.beat)?;
        }
        Ok(())
    }

    /// The remembered weights of `block` (for reference comparison).
    pub fn block_weights(&self, block: usize) -> Option<&BlockWeights> {
        self.weights.get(block)
    }

    /// Runs one decode step of a single `block` functionally: writes `x`
    /// into the block's Shared Buffer region, executes the compiled trace,
    /// and returns the block output.
    ///
    /// # Errors
    ///
    /// Propagates compile and execution errors.
    pub fn decode_block_step(
        &mut self,
        block: usize,
        x: &[f32],
        position: usize,
    ) -> CentResult<Vec<f32>> {
        let (device, placement) = &self.placements[block];
        let device = *device;
        let step = compile_decode_step(placement, position)?;
        let dev = self.devices.get_mut(&device).expect("device exists");
        let quantized = Bf16::quantize_slice(x);
        dev.shared_buffer_mut().write_vec(step.x_slot, &quantized)?;
        dev.run_trace(&step.trace, Some(&mut self.comm))?;
        let beats = step.x_beats;
        let out = dev.shared_buffer().read_vec(step.x_slot, beats)?;
        Ok(Bf16::dequantize_slice(&out)[..self.cfg.hidden].to_vec())
    }

    /// Runs one full decode token through every block in order (single
    /// query). Embedding/sampling stay on the host per §5.5.
    ///
    /// # Errors
    ///
    /// Propagates compile and execution errors.
    pub fn decode_token(&mut self, x: &[f32], position: usize) -> CentResult<Vec<f32>> {
        let mut v = x.to_vec();
        for block in 0..self.cfg.layers {
            v = self.decode_block_step(block, &v, position)?;
        }
        Ok(v)
    }

    /// Prefills a prompt: processes `tokens` sequentially through every
    /// block (the paper's prefill strategy, §5.5: "CENT processes tokens in
    /// the prompt one after another to fill out KV caches"). Returns the
    /// final token's output embedding.
    ///
    /// # Errors
    ///
    /// Propagates compile and execution errors.
    pub fn prefill(&mut self, tokens: &[Vec<f32>]) -> CentResult<Vec<f32>> {
        let mut last = Vec::new();
        for (pos, x) in tokens.iter().enumerate() {
            last = self.decode_token(x, pos)?;
        }
        Ok(last)
    }

    /// Total simulated time across devices.
    pub fn elapsed(&self) -> Time {
        self.devices.values().map(CxlDevice::busy_until).fold(Time::ZERO, Time::max)
    }

    /// Aggregated latency breakdown across devices.
    pub fn breakdown(&self) -> LatencyBreakdown {
        self.devices.values().map(CxlDevice::breakdown).sum()
    }
}
