//! Functional verification: CENT simulation vs the f32 reference.

use cent_model::{reference_block, KvCache, ModelConfig};
use cent_types::{CentError, CentResult};

use crate::system::CentSystem;

/// Outcome of a verification run.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Tokens verified.
    pub tokens: usize,
    /// Worst absolute error across all outputs.
    pub max_abs_error: f32,
    /// Worst error relative to the output vector's max magnitude.
    pub max_rel_error: f32,
}

/// Runs `tokens` decode steps of `block` on both the CENT simulation and the
/// f32 reference (same weights, same inputs) and compares outputs.
///
/// The tolerance accounts for BF16 rounding at every MAC tree, LUT
/// interpolation in the activation functions and the order-10 Taylor
/// exponent — all architectural, not bugs.
///
/// # Errors
///
/// Returns [`CentError::VerificationFailed`] when outputs diverge beyond
/// `rel_tol`, or any simulation error.
pub fn verify_block(
    system: &mut CentSystem,
    block: usize,
    tokens: usize,
    rel_tol: f32,
) -> CentResult<VerifyReport> {
    let cfg: ModelConfig = system.config().clone();
    let weights = system
        .block_weights(block)
        .ok_or_else(|| CentError::config("load weights before verifying"))?
        .clone();
    let mut cache = KvCache::new();
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for t in 0..tokens {
        let x: Vec<f32> =
            (0..cfg.hidden).map(|i| 0.1 * ((i as f32 * 0.37 + t as f32 * 1.3).sin())).collect();
        let expect = reference_block(&cfg, &weights, &x, &mut cache, t);
        let got = system.decode_block_step(block, &x, t)?;
        // BF16 noise is proportional to the vector's magnitude, so gate on a
        // mixed tolerance: |err| ≤ rel_tol·|ref| + rel_tol·max|ref| (the
        // absolute floor covers catastrophic cancellation on tiny outputs).
        let scale = expect.iter().fold(0.0f32, |a, v| a.max(v.abs()));
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            let abs = (g - e).abs();
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(abs / scale.max(1e-6));
            if abs > rel_tol * (e.abs() + scale) {
                return Err(CentError::VerificationFailed(format!(
                    "token {t} element {i}: cent {g} vs reference {e} (scale {scale})"
                )));
            }
        }
    }
    Ok(VerifyReport { tokens, max_abs_error: max_abs, max_rel_error: max_rel })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cent_compiler::Strategy;

    #[test]
    fn tiny_block_matches_reference_over_multiple_tokens() {
        let cfg = ModelConfig::tiny();
        let mut system =
            CentSystem::functional(&cfg, 1, Strategy::PipelineParallel).expect("build");
        system.load_random_weights(42).expect("load");
        let report = verify_block(&mut system, 0, 4, 0.05).expect("verify");
        assert_eq!(report.tokens, 4);
        // Observed BF16 noise is ~1% of the vector scale.
        assert!(report.max_rel_error <= 0.05, "rel {}", report.max_rel_error);
    }
}

#[cfg(test)]
mod generality_tests {
    use super::*;
    use cent_compiler::Strategy;
    use cent_model::{FfnKind, PositionalKind};

    /// §7.5: CENT supports GeLU FFNs and absolute positional embeddings
    /// (the OPT/GPT3 family) through the same compiler — verify the
    /// GeLU/no-RoPE block functionally too.
    #[test]
    fn gelu_absolute_positional_block_matches_reference() {
        let cfg = ModelConfig {
            name: "Tiny-GPT",
            ffn: FfnKind::Gelu,
            positional: PositionalKind::Absolute,
            ..ModelConfig::tiny()
        };
        let mut system =
            CentSystem::functional(&cfg, 1, Strategy::PipelineParallel).expect("build");
        system.load_random_weights(11).expect("load");
        let report = verify_block(&mut system, 0, 3, 0.05).expect("verify");
        assert!(report.max_rel_error <= 0.05, "rel {}", report.max_rel_error);
    }

    /// Multi-head attention (kv_heads == heads) exercises the non-GQA path.
    #[test]
    fn mha_block_matches_reference() {
        let cfg = ModelConfig { name: "Tiny-MHA", kv_heads: 4, ..ModelConfig::tiny() };
        let mut system =
            CentSystem::functional(&cfg, 1, Strategy::PipelineParallel).expect("build");
        system.load_random_weights(23).expect("load");
        let report = verify_block(&mut system, 0, 3, 0.05).expect("verify");
        assert!(report.max_rel_error <= 0.05, "rel {}", report.max_rel_error);
    }

    /// Deep contexts: decode past several attention segments so the
    /// streamed-softmax segmentation (scores → exp → value accumulation)
    /// crosses segment boundaries.
    #[test]
    fn long_context_decode_stays_accurate() {
        let cfg = ModelConfig::tiny();
        let mut system =
            CentSystem::functional(&cfg, 1, Strategy::PipelineParallel).expect("build");
        system.load_random_weights(31).expect("load");
        let report = verify_block(&mut system, 0, 40, 0.06).expect("verify");
        assert_eq!(report.tokens, 40);
    }
}
