//! Latency-oriented [`Time`] statistics: exact percentiles and a
//! log-bucketed histogram for streaming aggregation.
//!
//! The serving simulator reports TTFT / time-between-tokens / query-latency
//! distributions. Per-request populations keep every sample and take exact
//! percentiles; high-volume streams (e.g. the serving report's per-token
//! cadence) go through [`TimeHistogram`], which buckets samples
//! logarithmically (~4% relative resolution) in constant memory.

use crate::units::Time;

/// Exact percentile over a set of [`Time`] samples.
///
/// `q` is in `[0, 1]`; uses the nearest-rank method on a sorted copy.
/// Returns [`Time::ZERO`] for an empty slice.
///
/// Sorts on every call; when several quantiles of the same population are
/// needed (a report's p50/p95/p99), build a [`SortedSamples`] once and read
/// them all from the same sorted slice.
pub fn percentile(samples: &[Time], q: f64) -> Time {
    SortedSamples::from_slice(samples).percentile(q)
}

/// A [`Time`] sample population sorted once at construction.
///
/// Every quantile read is then an index into the same sorted slice, so
/// summarising a metric at p50/p95/p99 costs one sort instead of one
/// clone-and-sort per quantile.
#[derive(Debug, Clone, Default)]
pub struct SortedSamples {
    sorted: Vec<Time>,
    sum_ps: u128,
}

impl SortedSamples {
    /// Takes ownership of `samples` and sorts them in place.
    pub fn new(mut samples: Vec<Time>) -> Self {
        samples.sort_unstable();
        let sum_ps = samples.iter().map(|t| u128::from(t.as_ps())).sum();
        SortedSamples { sorted: samples, sum_ps }
    }

    /// Copies and sorts a borrowed slice.
    pub fn from_slice(samples: &[Time]) -> Self {
        Self::new(samples.to_vec())
    }

    /// Nearest-rank percentile, `q` in `[0, 1]` ([`Time::ZERO`] if empty).
    pub fn percentile(&self, q: f64) -> Time {
        if self.sorted.is_empty() {
            return Time::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.sorted.len() as f64).ceil() as usize)
            .clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// Arithmetic mean ([`Time::ZERO`] if empty).
    pub fn mean(&self) -> Time {
        if self.sorted.is_empty() {
            return Time::ZERO;
        }
        Time::from_ps((self.sum_ps / self.sorted.len() as u128) as u64)
    }

    /// Largest sample ([`Time::ZERO`] if empty).
    pub fn max(&self) -> Time {
        self.sorted.last().copied().unwrap_or(Time::ZERO)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// Arithmetic mean of a set of [`Time`] samples ([`Time::ZERO`] if empty).
pub fn mean(samples: &[Time]) -> Time {
    if samples.is_empty() {
        return Time::ZERO;
    }
    let sum: u128 = samples.iter().map(|t| u128::from(t.as_ps())).sum();
    Time::from_ps((sum / samples.len() as u128) as u64)
}

/// Number of log-spaced buckets: 16 per octave across the full u64 range.
const SUB_BUCKETS: u64 = 16;
const BUCKETS: usize = 64 * SUB_BUCKETS as usize;

/// A constant-memory histogram of [`Time`] samples with logarithmic buckets
/// (16 sub-buckets per power of two, ≲ 4.5% relative quantile error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeHistogram {
    counts: Vec<u64>,
    total: u64,
    min: Time,
    max: Time,
    sum_ps: u128,
}

impl Default for TimeHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        TimeHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            min: Time::from_ps(u64::MAX),
            max: Time::ZERO,
            sum_ps: 0,
        }
    }

    fn bucket_of(ps: u64) -> usize {
        if ps < SUB_BUCKETS {
            return ps as usize;
        }
        // Octave = position of the leading bit; sub-bucket = next 4 bits.
        let octave = 63 - ps.leading_zeros() as u64;
        let sub = (ps >> (octave - 4)) & (SUB_BUCKETS - 1);
        ((octave - 4) * SUB_BUCKETS + SUB_BUCKETS + sub) as usize
    }

    /// Representative (upper-edge) value of bucket `i`.
    fn bucket_value(i: usize) -> u64 {
        let i = i as u64;
        if i < SUB_BUCKETS {
            return i;
        }
        let octave = (i - SUB_BUCKETS) / SUB_BUCKETS + 4;
        let sub = (i - SUB_BUCKETS) % SUB_BUCKETS;
        (1u64 << octave) + (sub + 1) * (1u64 << (octave - 4)) - 1
    }

    /// Records one sample.
    pub fn record(&mut self, t: Time) {
        self.record_n(t, 1);
    }

    /// Records `n` identical samples in one update (used to weight a known
    /// repeat count, e.g. a constant token cadence repeated `decode - 1`
    /// times, without `n` bucket walks). A zero count is a no-op.
    pub fn record_n(&mut self, t: Time, n: u64) {
        if n == 0 {
            return;
        }
        let ps = t.as_ps();
        self.counts[Self::bucket_of(ps).min(BUCKETS - 1)] += n;
        self.total += n;
        self.min = if t < self.min { t } else { self.min };
        self.max = self.max.max(t);
        self.sum_ps += u128::from(ps) * u128::from(n);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded sample ([`Time::ZERO`] if empty).
    pub fn min(&self) -> Time {
        if self.total == 0 {
            Time::ZERO
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Time {
        self.max
    }

    /// Mean of the recorded samples (exact, not bucketed).
    pub fn mean(&self) -> Time {
        if self.total == 0 {
            return Time::ZERO;
        }
        Time::from_ps((self.sum_ps / u128::from(self.total)) as u64)
    }

    /// Approximate quantile `q` in `[0, 1]` (nearest-rank over buckets).
    ///
    /// The returned value is the upper edge of the bucket holding the rank,
    /// clamped to the observed min/max, so the error is bounded by the
    /// bucket width (≲ 4.5% relative).
    pub fn quantile(&self, q: f64) -> Time {
        if self.total == 0 {
            return Time::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let v = Time::from_ps(Self::bucket_value(i));
                return core::cmp::min(v.max(self.min()), self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &TimeHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        if other.total > 0 {
            self.min = if other.min < self.min { other.min } else { self.min };
            self.max = self.max.max(other.max);
        }
        self.sum_ps += other.sum_ps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_percentile_nearest_rank() {
        let samples: Vec<Time> = (1..=100).map(Time::from_ns).collect();
        assert_eq!(percentile(&samples, 0.50), Time::from_ns(50));
        assert_eq!(percentile(&samples, 0.95), Time::from_ns(95));
        assert_eq!(percentile(&samples, 0.99), Time::from_ns(99));
        assert_eq!(percentile(&samples, 1.0), Time::from_ns(100));
        assert_eq!(percentile(&[], 0.5), Time::ZERO);
    }

    #[test]
    fn sorted_samples_match_per_call_percentiles() {
        let samples: Vec<Time> = (1..=997).rev().map(Time::from_ns).collect();
        let sorted = SortedSamples::from_slice(&samples);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(sorted.percentile(q), percentile(&samples, q), "q = {q}");
        }
        assert_eq!(sorted.mean(), mean(&samples));
        assert_eq!(sorted.max(), Time::from_ns(997));
        assert_eq!(sorted.len(), 997);
        let empty = SortedSamples::new(Vec::new());
        assert!(empty.is_empty());
        assert_eq!(empty.percentile(0.5), Time::ZERO);
        assert_eq!(empty.mean(), Time::ZERO);
        assert_eq!(empty.max(), Time::ZERO);
    }

    #[test]
    fn mean_of_samples() {
        let samples = [Time::from_ns(10), Time::from_ns(20), Time::from_ns(30)];
        assert_eq!(mean(&samples), Time::from_ns(20));
        assert_eq!(mean(&[]), Time::ZERO);
    }

    #[test]
    fn histogram_tracks_count_min_max_mean() {
        let mut h = TimeHistogram::new();
        assert_eq!(h.quantile(0.5), Time::ZERO);
        for ns in [5u64, 10, 15, 20] {
            h.record(Time::from_ns(ns));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Time::from_ns(5));
        assert_eq!(h.max(), Time::from_ns(20));
        assert_eq!(h.mean(), Time::from_ps(12_500));
    }

    #[test]
    fn histogram_quantiles_are_within_bucket_error() {
        let mut h = TimeHistogram::new();
        let samples: Vec<Time> = (1..=10_000).map(Time::from_ns).collect();
        for &s in &samples {
            h.record(s);
        }
        for q in [0.5, 0.9, 0.95, 0.99] {
            let exact = percentile(&samples, q).as_ps() as f64;
            let approx = h.quantile(q).as_ps() as f64;
            let rel = (approx - exact).abs() / exact;
            assert!(rel < 0.05, "q{q}: exact {exact} approx {approx} rel {rel}");
        }
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = TimeHistogram::new();
        let mut b = TimeHistogram::new();
        for _ in 0..37 {
            a.record(Time::from_ns(250));
        }
        b.record_n(Time::from_ns(250), 37);
        b.record_n(Time::from_ns(999), 0); // no-op
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.min(), b.min());
        assert_eq!(a.max(), b.max());
        for q in [0.5, 0.99] {
            assert_eq!(a.quantile(q), b.quantile(q));
        }
    }

    #[test]
    fn histogram_merge_combines_streams() {
        let mut a = TimeHistogram::new();
        let mut b = TimeHistogram::new();
        for ns in 1..=50u64 {
            a.record(Time::from_ns(ns));
        }
        for ns in 51..=100u64 {
            b.record(Time::from_ns(ns));
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.min(), Time::from_ns(1));
        assert_eq!(a.max(), Time::from_ns(100));
        let median = a.quantile(0.5).as_ns();
        assert!((median - 50.0).abs() / 50.0 < 0.05, "median {median}");
    }

    #[test]
    fn histogram_merge_is_order_independent() {
        // The cluster simulator folds per-group histograms in group order;
        // bit-identity across thread counts needs merge to commute (and a
        // merged histogram to equal the directly-recorded population).
        let streams: Vec<Vec<u64>> =
            vec![vec![3, 17, 90], vec![], vec![1_000_000, 5], vec![42; 20]];
        let mut per_stream: Vec<TimeHistogram> = streams
            .iter()
            .map(|s| {
                let mut h = TimeHistogram::new();
                for &ns in s {
                    h.record(Time::from_ns(ns));
                }
                h
            })
            .collect();
        let mut forward = TimeHistogram::new();
        for h in &per_stream {
            forward.merge(h);
        }
        let mut backward = TimeHistogram::new();
        per_stream.reverse();
        for h in &per_stream {
            backward.merge(h);
        }
        let mut direct = TimeHistogram::new();
        for s in &streams {
            for &ns in s {
                direct.record(Time::from_ns(ns));
            }
        }
        assert_eq!(forward, backward);
        assert_eq!(forward, direct);
        // Merging an empty histogram is the identity.
        let before = forward.clone();
        forward.merge(&TimeHistogram::new());
        assert_eq!(forward, before);
    }

    #[test]
    fn bucket_mapping_is_monotone() {
        let mut last = 0;
        for ps in [0u64, 1, 15, 16, 17, 100, 1_000, 1 << 20, 1 << 40, u64::MAX / 2] {
            let b = TimeHistogram::bucket_of(ps);
            assert!(b >= last, "bucket({ps}) = {b} < {last}");
            last = b;
        }
    }
}
