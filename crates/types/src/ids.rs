//! Typed identifiers for the CENT hardware hierarchy.
//!
//! The hierarchy, following Figures 4, 5 and 7 of the paper:
//!
//! ```text
//! System ─ 1..=4096 CXL devices (DeviceId)
//!   Device ─ 16 memory chips × 2 GDDR6-PIM channels = 32 channels (ChannelId)
//!     Channel ─ 4 bank groups (BankGroupId) × 4 banks = 16 banks (BankId)
//!       Bank ─ rows (RowAddr) × 32-byte columns (ColAddr)
//! ```
//!
//! Using newtypes prevents e.g. passing a bank index where a channel index is
//! expected — a real hazard in a simulator full of small integers.

use core::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u16);

        impl $name {
            /// Creates a new identifier from a raw index.
            #[inline]
            pub const fn new(index: u16) -> Self {
                Self(index)
            }

            /// Returns the raw index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u16> for $name {
            fn from(v: u16) -> Self {
                Self(v)
            }
        }

        impl From<$name> for u16 {
            fn from(v: $name) -> u16 {
                v.0
            }
        }
    };
}

id_type!(
    /// Identifies one CXL device attached to the switch (`DVid` in the ISA).
    DeviceId,
    "DV"
);
id_type!(
    /// Identifies one GDDR6-PIM channel within a device (`CHid` in the ISA).
    ChannelId,
    "CH"
);
id_type!(
    /// Identifies one of the four bank groups within a channel.
    BankGroupId,
    "BG"
);
id_type!(
    /// Identifies one of the 16 banks within a channel (`BK` in the ISA).
    BankId,
    "BK"
);

impl BankId {
    /// The bank group this bank belongs to (4 banks per group).
    #[inline]
    pub const fn bank_group(self) -> BankGroupId {
        BankGroupId(self.0 / 4)
    }

    /// Index of this bank within its bank group (0..4).
    #[inline]
    pub const fn index_in_group(self) -> u16 {
        self.0 % 4
    }

    /// The neighbouring bank whose local bus is shared with this bank's PU.
    ///
    /// Per Figure 7(a), each multiplier can take its second operand from the
    /// neighbouring bank (bank pairs 0-1, 2-3, ...). This is used by vector
    /// dot products (§5.4(b)).
    #[inline]
    pub const fn neighbour(self) -> BankId {
        BankId(self.0 ^ 1)
    }
}

/// A DRAM row address within a bank (`RO` in the ISA).
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowAddr(pub u32);

impl RowAddr {
    /// Creates a row address.
    #[inline]
    pub const fn new(row: u32) -> Self {
        Self(row)
    }

    /// Raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The row immediately after this one.
    #[inline]
    pub const fn next(self) -> RowAddr {
        RowAddr(self.0 + 1)
    }
}

impl fmt::Debug for RowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RO{}", self.0)
    }
}

impl fmt::Display for RowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RO{}", self.0)
    }
}

/// A 32-byte (256-bit) column address within a row (`CO` in the ISA).
///
/// All PIM datapaths in the paper move 256-bit beats: the MAC units consume
/// 256 bits per command, the Global Buffer broadcasts 256 bits, and the
/// Shared Buffer is viewed as 256-bit registers.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColAddr(pub u32);

impl ColAddr {
    /// Creates a column address.
    #[inline]
    pub const fn new(col: u32) -> Self {
        Self(col)
    }

    /// Raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Column `n` beats after this one.
    #[inline]
    pub const fn offset(self, n: u32) -> ColAddr {
        ColAddr(self.0 + n)
    }
}

impl fmt::Debug for ColAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CO{}", self.0)
    }
}

impl fmt::Display for ColAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CO{}", self.0)
    }
}

/// A bitmask selecting a subset of the 32 PIM channels in one device
/// (`CHmask` in the ISA). The PIM decoder broadcasts micro-ops to every
/// channel whose bit is set.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ChannelMask(pub u32);

impl ChannelMask {
    /// Mask selecting no channels.
    pub const EMPTY: ChannelMask = ChannelMask(0);
    /// Mask selecting all 32 channels of a device.
    pub const ALL: ChannelMask = ChannelMask(u32::MAX);

    /// Mask with a single channel selected.
    #[inline]
    pub const fn single(ch: ChannelId) -> Self {
        ChannelMask(1 << ch.0)
    }

    /// Mask selecting channels `[start, start + count)`.
    #[inline]
    pub fn range(start: u16, count: u16) -> Self {
        let mut m = 0u32;
        for ch in start..start + count {
            m |= 1 << ch;
        }
        ChannelMask(m)
    }

    /// Whether channel `ch` is selected.
    #[inline]
    pub const fn contains(self, ch: ChannelId) -> bool {
        self.0 & (1 << ch.0) != 0
    }

    /// Number of selected channels.
    #[inline]
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the mask selects no channel.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the selected channels in ascending order.
    pub fn iter(self) -> impl Iterator<Item = ChannelId> {
        (0..32u16).map(ChannelId).filter(move |c| self.contains(*c))
    }

    /// Union of two masks.
    #[inline]
    pub const fn union(self, other: ChannelMask) -> ChannelMask {
        ChannelMask(self.0 | other.0)
    }
}

impl fmt::Debug for ChannelMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CHmask({:#010x})", self.0)
    }
}

impl FromIterator<ChannelId> for ChannelMask {
    fn from_iter<T: IntoIterator<Item = ChannelId>>(iter: T) -> Self {
        let mut mask = ChannelMask::EMPTY;
        for ch in iter {
            mask.0 |= 1 << ch.0;
        }
        mask
    }
}

/// Identifies one of the 32 accumulation registers inside a near-bank PU
/// (`Regid` in the ISA).
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AccRegId(pub u8);

impl AccRegId {
    /// Creates an accumulation-register id.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32` — the PU has exactly 32 accumulation registers.
    #[inline]
    pub fn new(index: u8) -> Self {
        assert!(index < 32, "PU has 32 accumulation registers, got {index}");
        Self(index)
    }

    /// Raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for AccRegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ACC{}", self.0)
    }
}

/// A 256-bit slot in the 64 KB Shared Buffer, as seen by PIM channels and PNM
/// units (`Rd`/`Rs` in the ISA). There are 2048 slots (64 KiB / 32 B).
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SbSlot(pub u16);

impl SbSlot {
    /// Creates a shared-buffer slot index.
    #[inline]
    pub const fn new(slot: u16) -> Self {
        Self(slot)
    }

    /// Raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Slot `n` positions after this one (micro-op expansion walks slots).
    #[inline]
    pub const fn offset(self, n: u16) -> SbSlot {
        SbSlot(self.0 + n)
    }

    /// Byte address of this slot in the RISC-V view of the Shared Buffer.
    #[inline]
    pub const fn byte_addr(self) -> u32 {
        (self.0 as u32) * 32
    }
}

impl fmt::Debug for SbSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SB[{}]", self.0)
    }
}

impl fmt::Display for SbSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SB[{}]", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_group_mapping() {
        assert_eq!(BankId(0).bank_group(), BankGroupId(0));
        assert_eq!(BankId(3).bank_group(), BankGroupId(0));
        assert_eq!(BankId(4).bank_group(), BankGroupId(1));
        assert_eq!(BankId(15).bank_group(), BankGroupId(3));
        assert_eq!(BankId(6).index_in_group(), 2);
    }

    #[test]
    fn bank_neighbour_pairs() {
        assert_eq!(BankId(0).neighbour(), BankId(1));
        assert_eq!(BankId(1).neighbour(), BankId(0));
        assert_eq!(BankId(14).neighbour(), BankId(15));
    }

    #[test]
    fn channel_mask_basics() {
        let m = ChannelMask::range(4, 3);
        assert_eq!(m.count(), 3);
        assert!(m.contains(ChannelId(4)));
        assert!(m.contains(ChannelId(6)));
        assert!(!m.contains(ChannelId(7)));
        let chans: Vec<_> = m.iter().collect();
        assert_eq!(chans, vec![ChannelId(4), ChannelId(5), ChannelId(6)]);
    }

    #[test]
    fn channel_mask_collect_and_union() {
        let m: ChannelMask = [ChannelId(0), ChannelId(31)].into_iter().collect();
        assert_eq!(m.count(), 2);
        let u = m.union(ChannelMask::single(ChannelId(5)));
        assert_eq!(u.count(), 3);
        assert!(ChannelMask::EMPTY.is_empty());
        assert_eq!(ChannelMask::ALL.count(), 32);
    }

    #[test]
    #[should_panic(expected = "32 accumulation registers")]
    fn acc_reg_bounds_checked() {
        let _ = AccRegId::new(32);
    }

    #[test]
    fn shared_buffer_slot_addressing() {
        let slot = SbSlot::new(10);
        assert_eq!(slot.byte_addr(), 320);
        assert_eq!(slot.offset(5), SbSlot::new(15));
    }

    #[test]
    fn display_formats() {
        assert_eq!(DeviceId(3).to_string(), "DV3");
        assert_eq!(ChannelId(12).to_string(), "CH12");
        assert_eq!(format!("{:?}", RowAddr(7)), "RO7");
        assert_eq!(format!("{:?}", ColAddr(9)), "CO9");
        assert_eq!(format!("{:?}", AccRegId::new(2)), "ACC2");
    }
}
