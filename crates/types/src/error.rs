//! Error types shared across the CENT workspace.

use core::fmt;

/// Errors produced by the CENT simulator crates.
///
/// Every public fallible function in the workspace returns `Result<T, CentError>`
/// (aliased as [`CentResult`]).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CentError {
    /// A configuration value was inconsistent or out of range.
    InvalidConfig(String),
    /// An address (bank/row/column/slot) fell outside the addressable range.
    AddressOutOfRange(String),
    /// A memory allocation request could not be satisfied.
    OutOfMemory(String),
    /// An instruction could not be decoded or was malformed.
    InvalidInstruction(String),
    /// The simulated machine reached an illegal state (e.g. protocol violation).
    ProtocolViolation(String),
    /// A model could not be mapped onto the requested hardware configuration.
    MappingFailed(String),
    /// A RISC-V program trapped (illegal instruction, misaligned access, ...).
    RiscvTrap(String),
    /// Functional verification found a mismatch against the reference.
    VerificationFailed(String),
}

impl CentError {
    /// Convenience constructor for configuration errors.
    pub fn config(msg: impl Into<String>) -> Self {
        CentError::InvalidConfig(msg.into())
    }

    /// Convenience constructor for mapping errors.
    pub fn mapping(msg: impl Into<String>) -> Self {
        CentError::MappingFailed(msg.into())
    }
}

impl fmt::Display for CentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CentError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            CentError::AddressOutOfRange(m) => write!(f, "address out of range: {m}"),
            CentError::OutOfMemory(m) => write!(f, "out of memory: {m}"),
            CentError::InvalidInstruction(m) => write!(f, "invalid instruction: {m}"),
            CentError::ProtocolViolation(m) => write!(f, "protocol violation: {m}"),
            CentError::MappingFailed(m) => write!(f, "model mapping failed: {m}"),
            CentError::RiscvTrap(m) => write!(f, "risc-v trap: {m}"),
            CentError::VerificationFailed(m) => write!(f, "verification failed: {m}"),
        }
    }
}

impl std::error::Error for CentError {}

/// Result alias used across the workspace.
pub type CentResult<T> = Result<T, CentError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = CentError::config("devices must be > 0");
        assert_eq!(e.to_string(), "invalid configuration: devices must be > 0");
        let e = CentError::RiscvTrap("illegal instruction at pc=0x10".into());
        assert!(e.to_string().starts_with("risc-v trap"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<CentError>();
    }
}
