//! Foundation types for the CENT simulator workspace.
//!
//! CENT ("PIM Is All You Need: A CXL-Enabled GPU-Free System for Large
//! Language Model Inference", ASPLOS 2025) is a GPU-free LLM inference system
//! built from CXL memory-expansion devices with near-bank processing units.
//! This crate holds the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`Bf16`] — the brain-float format the near-bank MAC trees operate on;
//! * typed identifiers for the hardware hierarchy ([`DeviceId`],
//!   [`ChannelId`], [`BankId`], [`RowAddr`], [`ColAddr`], [`SbSlot`], ...);
//! * physical units ([`Time`], [`ByteSize`], [`Bandwidth`], [`Energy`],
//!   [`Power`], [`Dollars`]);
//! * the paper's architecture constants ([`consts`]);
//! * the shared error type ([`CentError`]).
//!
//! # Examples
//!
//! ```
//! use cent_types::{consts, Bf16, ByteSize};
//!
//! // One CXL device holds 16 GiB of GDDR6-PIM across 32 channels.
//! assert_eq!(consts::DEVICE_CAPACITY, ByteSize::gib(16));
//!
//! let x = Bf16::from_f32(0.5) + Bf16::from_f32(0.25);
//! assert_eq!(x.to_f32(), 0.75);
//! ```

#![forbid(unsafe_code)]

mod bf16;
pub mod consts;
mod error;
mod histogram;
mod ids;
mod rng;
mod units;

pub use bf16::{Beat, Bf16, BF16_RELATIVE_ERROR, ZERO_BEAT};
pub use error::{CentError, CentResult};
pub use histogram::{mean, percentile, SortedSamples, TimeHistogram};
pub use ids::{
    AccRegId, BankGroupId, BankId, ChannelId, ChannelMask, ColAddr, DeviceId, RowAddr, SbSlot,
};
pub use rng::Rng64;
pub use units::{Bandwidth, ByteSize, Dollars, Energy, Power, Time};
