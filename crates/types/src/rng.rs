//! A small deterministic PRNG for workload generation and tests.
//!
//! The workspace builds without external crates, so this replaces `rand`:
//! a SplitMix64 generator (Steele et al., "Fast splittable pseudorandom
//! number generators", OOPSLA'14). It passes BigCrush when used as a 64-bit
//! stream and is more than adequate for arrival sampling, synthetic length
//! distributions and property-style tests — all of which only need a
//! reproducible, well-mixed stream.

/// Deterministic SplitMix64 pseudorandom number generator.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed. Identical seeds yield identical
    /// streams on every platform.
    pub fn seed(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next value in `[0, bound)`. Returns 0 for `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Lemire's multiply-shift bounded sampling; the bias is < 2^-32 for
        // every bound this workspace uses.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard normal variate (Box-Muller, cosine branch).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.next_f64().max(1e-12);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
    }

    /// Exponential variate with the given rate (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        -(1.0 - self.next_f64()).ln() / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_reproduce_streams() {
        let mut a = Rng64::seed(7);
        let mut b = Rng64::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seed(1);
        let mut b = Rng64::seed(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_stays_in_range_and_covers_it() {
        let mut rng = Rng64::seed(3);
        let mut lo_seen = f64::MAX;
        let mut hi_seen = f64::MIN;
        for _ in 0..10_000 {
            let v = rng.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&v));
            lo_seen = lo_seen.min(v);
            hi_seen = hi_seen.max(v);
        }
        assert!(lo_seen < 2.1 && hi_seen > 4.9);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = Rng64::seed(4);
        assert_eq!(rng.next_below(0), 0);
        for _ in 0..10_000 {
            assert!(rng.next_below(10) < 10);
        }
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = Rng64::seed(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_is_roughly_standard() {
        let mut rng = Rng64::seed(6);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
