//! Architecture constants from the CENT paper (§4, §6, Table 4).
//!
//! Everything here is a *paper-specified* quantity; calibrated quantities
//! (power currents, GPU efficiencies) live with the models that use them.

use crate::units::{Bandwidth, ByteSize, Time};

/// Number of memory chips per CXL device (§4: "16 memory chips").
pub const CHIPS_PER_DEVICE: usize = 16;

/// GDDR6-PIM channels per memory chip ("each chip containing two GDDR6-PIM
/// channels").
pub const CHANNELS_PER_CHIP: usize = 2;

/// GDDR6-PIM channels per CXL device (16 chips × 2 = 32).
pub const CHANNELS_PER_DEVICE: usize = CHIPS_PER_DEVICE * CHANNELS_PER_CHIP;

/// PIM controllers per device; each manages two channels (§4.2).
pub const PIM_CONTROLLERS_PER_DEVICE: usize = 16;

/// Bank groups per GDDR6 channel (Figure 7a).
pub const BANK_GROUPS_PER_CHANNEL: usize = 4;

/// Banks per bank group (Figure 7a).
pub const BANKS_PER_GROUP: usize = 4;

/// Banks per channel.
pub const BANKS_PER_CHANNEL: usize = BANK_GROUPS_PER_CHANNEL * BANKS_PER_GROUP;

/// Per-bank capacity: 32 MB ("Each bank has a 32MB memory capacity").
pub const BANK_CAPACITY: ByteSize = ByteSize::mib(32);

/// Capacity of one GDDR6-PIM channel (16 × 32 MB = 512 MB).
pub const CHANNEL_CAPACITY: ByteSize = ByteSize::mib(32 * 16);

/// Capacity of one CXL device (32 channels × 512 MB = 16 GB).
pub const DEVICE_CAPACITY: ByteSize = ByteSize::gib(16);

/// Default number of CXL devices in a CENT system (Figure 4).
pub const DEFAULT_DEVICES: usize = 32;

/// Maximum nodes addressable by CXL 3.0 port-based routing (§2).
pub const CXL3_MAX_NODES: usize = 4096;

/// Width of every PIM datapath beat: 256 bits = 32 bytes.
pub const BEAT_BYTES: usize = 32;

/// BF16 elements per 256-bit beat.
pub const LANES_PER_BEAT: usize = 16;

/// MAC multipliers in one near-bank PU ("16 MAC reduction tree").
pub const MACS_PER_PU: usize = 16;

/// Accumulation registers per near-bank PU ("32 accumulation registers").
pub const ACC_REGS_PER_PU: usize = 32;

/// Global Buffer size per channel (Figure 7a: 2 KB).
pub const GLOBAL_BUFFER_BYTES: ByteSize = ByteSize::kib(2);

/// Global Buffer capacity in 256-bit slots (2 KiB / 32 B = 64).
pub const GLOBAL_BUFFER_SLOTS: usize = 64;

/// Shared Buffer size per device (Figure 5: 64 KB).
pub const SHARED_BUFFER_BYTES: ByteSize = ByteSize::kib(64);

/// Shared Buffer capacity in 256-bit slots (64 KiB / 32 B = 2048).
pub const SHARED_BUFFER_SLOTS: usize = 2048;

/// Instruction buffer size per device (Figure 5: 2 MB).
pub const INSTRUCTION_BUFFER_BYTES: ByteSize = ByteSize::mib(2);

/// PNM accumulator units per device (Figure 7b).
pub const PNM_ACCUMULATORS: usize = 32;

/// PNM reduction trees per device (Figure 7b).
pub const PNM_REDUCTION_TREES: usize = 32;

/// PNM exponent accelerators per device (Figure 7b).
pub const PNM_EXP_UNITS: usize = 32;

/// Taylor-series order used by the exponent accelerators (§4.2).
pub const EXP_TAYLOR_ORDER: usize = 10;

/// BOOM-2wide RISC-V cores per device (Figure 7b).
pub const PNM_RISCV_CORES: usize = 8;

/// Instruction buffer per RISC-V core (§4.2: 64 KB).
pub const RISCV_IMEM_BYTES: ByteSize = ByteSize::kib(64);

/// Near-bank PU clock: 1 GHz, equal to tCCD_S of the PIM bank (§4.2).
pub const PU_CLOCK_HZ: f64 = 1.0e9;

/// One PU clock period.
pub const PU_CLOCK_PERIOD: Time = Time::from_ps(1_000);

/// CXL controller (PNM) clock projected at 7 nm (§6: 2.0 GHz).
pub const PNM_CLOCK_HZ: f64 = 2.0e9;

/// One PNM clock period.
pub const PNM_CLOCK_PERIOD: Time = Time::from_ps(500);

/// Per-PU compute throughput: 16 MACs × 2 FLOPs × 1 GHz = 32 GFLOPS (§4.2).
pub const PU_GFLOPS: f64 = 32.0;

/// Internal bandwidth of one channel: 16 banks × 32 B / 1 ns = 512 GB/s.
pub const CHANNEL_INTERNAL_BW: Bandwidth = Bandwidth::gb_per_sec(512.0);

/// GDDR6-PIM timing constraints (Table 4), in nanoseconds.
pub mod timing {
    use crate::units::Time;

    /// ACT to RD delay.
    pub const T_RCDRD: Time = Time::from_ns(18);
    /// ACT to WR delay.
    pub const T_RCDWR: Time = Time::from_ns(14);
    /// ACT to PRE minimum (row open time).
    pub const T_RAS: Time = Time::from_ns(27);
    /// CAS (read) latency.
    pub const T_CL: Time = Time::from_ns(25);
    /// Column-to-column, different bank group (PIM beat rate).
    pub const T_CCDS: Time = Time::from_ns(1);
    /// Column-to-column, same bank group (standard GDDR6; non-PIM accesses).
    pub const T_CCDL: Time = Time::from_ns(2);
    /// Precharge to ACT delay.
    pub const T_RP: Time = Time::from_ns(16);
    /// Write recovery time (standard GDDR6 value; not in Table 4).
    pub const T_WR: Time = Time::from_ns(15);
    /// Write latency (standard GDDR6 value; not in Table 4).
    pub const T_CWL: Time = Time::from_ns(8);
    /// Row-to-row ACT delay, different banks (standard value).
    pub const T_RRDS: Time = Time::from_ns(4);
    /// Refresh cycle time for one all-bank refresh (8 Gb GDDR6 C-die class).
    pub const T_RFC: Time = Time::from_ns(455);
    /// Average refresh interval.
    pub const T_REFI: Time = Time::from_ns(1_900);
}

/// GDDR6 DRAM row size per bank: 2 KB sense-amplifier page.
pub const ROW_BYTES: usize = 2048;

/// 256-bit columns per row (2048 / 32 = 64).
pub const COLS_PER_ROW: usize = ROW_BYTES / BEAT_BYTES;

/// Rows per 32 MB bank (32 MiB / 2 KiB = 16384).
pub const ROWS_PER_BANK: usize = (32 * 1024 * 1024) / ROW_BYTES;

/// CXL link parameters (§4.1, §6).
pub mod cxl {
    use crate::units::{Bandwidth, Time};

    /// PCIe 6.0 per-lane bandwidth: 8 GB/s each direction (64 GT/s, FLIT).
    pub const PCIE6_LANE_BW: Bandwidth = Bandwidth::gb_per_sec(8.0);

    /// Lanes from switch to each CXL device.
    pub const DEVICE_LANES: usize = 4;

    /// Lanes from switch to the host.
    pub const HOST_LANES: usize = 16;

    /// Raw device link bandwidth (x4 · 8 GB/s = 32 GB/s per direction).
    pub const DEVICE_LINK_BW: Bandwidth = Bandwidth::gb_per_sec(32.0);

    /// Raw host link bandwidth (x16 · 8 GB/s = 128 GB/s per direction).
    pub const HOST_LINK_BW: Bandwidth = Bandwidth::gb_per_sec(128.0);

    /// Effective payload efficiency of CXL.mem flits on PCIe 6.0
    /// (256 B flit carries ~236 B of slots after CRC/FEC and headers).
    pub const FLIT_EFFICIENCY: f64 = 0.92;

    /// CXL flit size in bytes (PCIe 6.0 FLIT mode).
    pub const FLIT_BYTES: usize = 256;

    /// One-way port-to-port latency through a CXL 3.0 switch
    /// (paper cites Pond \[61\]: CXL.mem adds ~70-90 ns per hop; we use the
    /// midpoint for a loaded switch).
    pub const SWITCH_LATENCY: Time = Time::from_ns(80);

    /// Port packing/unpacking latency at each endpoint.
    pub const PORT_LATENCY: Time = Time::from_ns(25);

    /// A multicast-capable switch runs at half bandwidth and double latency
    /// relative to the baseline switch (§6 methodology).
    pub const MULTICAST_BW_DERATE: f64 = 0.5;
    /// Latency multiplier for the multicast-capable switch.
    pub const MULTICAST_LATENCY_FACTOR: u64 = 2;
}

/// Host-side parameters.
pub mod host {
    use crate::units::Time;

    /// Latency of the top-k sampling step executed on the host CPU per token
    /// (§5.5). Modelled as a fixed cost: vocab-sized argmax/softmax on a Xeon.
    pub const TOP_K_SAMPLING: Time = Time::from_us(20);

    /// Host instruction-dispatch overhead per token per device: the host
    /// streams pre-generated traces into the 2 MB instruction buffers.
    pub const DISPATCH_PER_TOKEN: Time = Time::from_us(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_hierarchy_matches_paper() {
        // Table 4: 32 devices × 16 GB = 512 GB.
        assert_eq!(DEVICE_CAPACITY.as_gib(), 16.0);
        assert_eq!(DEVICE_CAPACITY.as_bytes() * 32, ByteSize::gib(512).as_bytes());
        assert_eq!(CHANNEL_CAPACITY.as_bytes() * 32, DEVICE_CAPACITY.as_bytes());
        assert_eq!(BANK_CAPACITY.as_bytes() * 16, CHANNEL_CAPACITY.as_bytes());
    }

    #[test]
    fn compute_throughput_matches_paper() {
        // 32 GFLOPS/PU × 16 PUs × 32 channels × 32 devices ≈ 512 TFLOPS (Table 4
        // rounds 524 down to 512).
        let total_tflops =
            PU_GFLOPS * BANKS_PER_CHANNEL as f64 * CHANNELS_PER_DEVICE as f64 * 32.0 / 1000.0;
        assert!((total_tflops - 524.288).abs() < 1e-9);
    }

    #[test]
    fn internal_bandwidth_matches_paper() {
        // 512 GB/s/channel × 32 × 32 = 512 TB/s (Table 4: "512 TB/s Internal").
        let total = CHANNEL_INTERNAL_BW.as_bytes_per_sec() * 32.0 * 32.0;
        assert!((total / 1e12 - 524.288).abs() < 1.0);
    }

    #[test]
    fn geometry_is_consistent() {
        assert_eq!(BANKS_PER_CHANNEL, 16);
        assert_eq!(CHANNELS_PER_DEVICE, 32);
        assert_eq!(COLS_PER_ROW, 64);
        assert_eq!(ROWS_PER_BANK, 16384);
        assert_eq!(SHARED_BUFFER_SLOTS * BEAT_BYTES, 64 * 1024);
        assert_eq!(GLOBAL_BUFFER_SLOTS * BEAT_BYTES, 2 * 1024);
    }

    #[test]
    fn pu_clock_equals_tccds() {
        // §4.2: the PU operates at 1 GHz, equivalent to tCCD_S.
        assert_eq!(PU_CLOCK_PERIOD, timing::T_CCDS);
    }

    #[test]
    fn cxl_link_bandwidths() {
        assert_eq!(cxl::DEVICE_LINK_BW.as_gb_per_sec(), 32.0);
        assert_eq!(cxl::HOST_LINK_BW.as_gb_per_sec(), 128.0);
    }
}
