//! Software implementation of the Bfloat16 format used by CENT's near-bank
//! processing units.
//!
//! The GDDR6-PIM MAC trees described in the paper operate on BF16 operands
//! (§4.2): each multiplier consumes two 16-bit inputs and the reduction tree
//! accumulates partial products. We model the common hardware choice of
//! multiplying/accumulating in single precision and rounding the visible
//! result back to BF16 (round-to-nearest-even), which is also what the
//! original AiM silicon does for its activation datapath.
//!
//! The type is a transparent `u16` wrapper so banks can store raw bit
//! patterns; all arithmetic round-trips through `f32`.

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A 16-bit brain floating point number (1 sign, 8 exponent, 7 mantissa bits).
///
/// # Examples
///
/// ```
/// use cent_types::Bf16;
///
/// let x = Bf16::from_f32(1.5);
/// let y = Bf16::from_f32(2.0);
/// assert_eq!((x * y).to_f32(), 3.0);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(transparent)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0x0000);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Negative one.
    pub const NEG_ONE: Bf16 = Bf16(0xBF80);
    /// Positive infinity.
    pub const INFINITY: Bf16 = Bf16(0x7F80);
    /// Negative infinity.
    pub const NEG_INFINITY: Bf16 = Bf16(0xFF80);
    /// A quiet NaN.
    pub const NAN: Bf16 = Bf16(0x7FC0);
    /// Largest finite value (`3.3895314e38`).
    pub const MAX: Bf16 = Bf16(0x7F7F);
    /// Smallest finite value.
    pub const MIN: Bf16 = Bf16(0xFF7F);
    /// Machine epsilon: the difference between 1.0 and the next larger value.
    pub const EPSILON: Bf16 = Bf16(0x3C00); // 2^-7

    /// Creates a value from its raw bit pattern.
    ///
    /// This is the representation stored inside simulated DRAM banks.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even, matching the rounding
    /// mode of the modelled MAC units.
    #[inline]
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        if value.is_nan() {
            // Preserve sign and payload MSB, force a quiet NaN.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest even: add 0x7FFF + LSB of the truncated result.
        let round_bit = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x7FFF + round_bit);
        Bf16((rounded >> 16) as u16)
    }

    /// Converts to `f32` exactly (every BF16 value is representable in f32).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Returns `true` if the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7F80) == 0x7F80 && (self.0 & 0x007F) != 0
    }

    /// Returns `true` if the value is positive or negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7F80
    }

    /// Returns `true` if the value is neither NaN nor infinite.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7F80) != 0x7F80
    }

    /// Returns `true` for positive values, `+0.0` and NaNs without the sign bit.
    #[inline]
    pub fn is_sign_positive(self) -> bool {
        self.0 & 0x8000 == 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub fn abs(self) -> Self {
        Bf16(self.0 & 0x7FFF)
    }

    /// Fused multiply-add performed at f32 precision, rounded once at the end.
    ///
    /// The near-bank PU accumulates MAC results in 32 accumulation registers;
    /// we model those registers as f32 and round when they are read back via
    /// `RD_MAC`, so intermediate accumulation uses this helper.
    #[inline]
    pub fn mul_add(self, a: Bf16, b: Bf16) -> Self {
        Bf16::from_f32(self.to_f32().mul_add(a.to_f32(), b.to_f32()))
    }

    /// Converts a slice of `f32` into BF16, rounding each element.
    pub fn quantize_slice(values: &[f32]) -> Vec<Bf16> {
        values.iter().copied().map(Bf16::from_f32).collect()
    }

    /// Converts a slice of BF16 back to `f32`.
    pub fn dequantize_slice(values: &[Bf16]) -> Vec<f32> {
        values.iter().copied().map(Bf16::to_f32).collect()
    }
}

impl From<f32> for Bf16 {
    fn from(value: f32) -> Self {
        Bf16::from_f32(value)
    }
}

impl From<Bf16> for f32 {
    fn from(value: Bf16) -> Self {
        value.to_f32()
    }
}

impl fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bf16({})", self.to_f32())
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl PartialOrd for Bf16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for Bf16 {
            type Output = Bf16;
            #[inline]
            fn $method(self, rhs: Bf16) -> Bf16 {
                Bf16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
    };
}

impl_binop!(Add, add, +);
impl_binop!(Sub, sub, -);
impl_binop!(Mul, mul, *);
impl_binop!(Div, div, /);

impl AddAssign for Bf16 {
    #[inline]
    fn add_assign(&mut self, rhs: Bf16) {
        *self = *self + rhs;
    }
}

impl MulAssign for Bf16 {
    #[inline]
    fn mul_assign(&mut self, rhs: Bf16) {
        *self = *self * rhs;
    }
}

impl Neg for Bf16 {
    type Output = Bf16;
    #[inline]
    fn neg(self) -> Bf16 {
        Bf16(self.0 ^ 0x8000)
    }
}

impl Sum for Bf16 {
    fn sum<I: Iterator<Item = Bf16>>(iter: I) -> Self {
        // Hardware reduction trees accumulate in wider precision; mirror that.
        Bf16::from_f32(iter.map(Bf16::to_f32).sum())
    }
}

/// Maximum relative error introduced by one BF16 rounding step.
///
/// With a 7-bit mantissa the half-ULP relative bound is `2^-8`. Verification
/// helpers in higher-level crates scale this by the reduction depth.
pub const BF16_RELATIVE_ERROR: f32 = 1.0 / 256.0;

/// One 256-bit datapath beat: 16 BF16 lanes. Every PIM/PNM datapath in CENT
/// moves data at this granularity (§4.2).
pub type Beat = [Bf16; 16];

/// A zeroed [`Beat`].
pub const ZERO_BEAT: Beat = [Bf16::ZERO; 16];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exact_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, -128.0, 3.140625] {
            assert_eq!(Bf16::from_f32(v).to_f32(), v, "value {v} should be exact");
        }
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1.0 + 2^-8 is exactly halfway between 1.0 and 1.0 + 2^-7:
        // round-to-even picks 1.0 (even mantissa).
        let halfway = 1.0 + f32::powi(2.0, -8);
        assert_eq!(Bf16::from_f32(halfway).to_f32(), 1.0);
        // Slightly above halfway rounds up.
        let above = 1.0 + f32::powi(2.0, -8) + f32::powi(2.0, -12);
        assert_eq!(Bf16::from_f32(above).to_f32(), 1.0 + f32::powi(2.0, -7));
    }

    #[test]
    fn special_values() {
        assert!(Bf16::NAN.is_nan());
        assert!(!Bf16::NAN.is_finite());
        assert!(Bf16::INFINITY.is_infinite());
        assert!(Bf16::NEG_INFINITY.is_infinite());
        assert!(!Bf16::INFINITY.is_finite());
        assert!(Bf16::MAX.is_finite());
        assert_eq!(Bf16::from_f32(f32::INFINITY), Bf16::INFINITY);
        assert!(Bf16::from_f32(f32::NAN).is_nan());
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        // f32::MAX is far outside BF16's finite range after rounding.
        let big = Bf16::from_f32(3.4e38);
        assert!(big.is_infinite());
    }

    #[test]
    fn negation_flips_sign_bit_only() {
        let x = Bf16::from_f32(2.5);
        assert_eq!((-x).to_f32(), -2.5);
        assert_eq!((-Bf16::ZERO).to_bits(), 0x8000);
    }

    #[test]
    fn arithmetic_matches_f32_with_rounding() {
        let a = Bf16::from_f32(1.5);
        let b = Bf16::from_f32(0.25);
        assert_eq!((a + b).to_f32(), 1.75);
        assert_eq!((a - b).to_f32(), 1.25);
        assert_eq!((a * b).to_f32(), 0.375);
        assert_eq!((a / b).to_f32(), 6.0);
    }

    #[test]
    fn mul_add_rounds_once() {
        let a = Bf16::from_f32(3.0);
        let b = Bf16::from_f32(5.0);
        let c = Bf16::from_f32(7.0);
        assert_eq!(a.mul_add(b, c).to_f32(), 22.0);
    }

    #[test]
    fn sum_uses_wide_accumulator() {
        // 256 copies of 1/256 must sum to exactly 1.0 with an f32 accumulator,
        // whereas naive BF16 accumulation would stall once the running sum
        // grows past the point where 1/256 is representable relative to it.
        let x = Bf16::from_f32(1.0 / 256.0);
        let total: Bf16 = std::iter::repeat_n(x, 256).sum();
        assert_eq!(total.to_f32(), 1.0);
    }

    #[test]
    fn ordering_follows_f32() {
        let a = Bf16::from_f32(-1.0);
        let b = Bf16::from_f32(2.0);
        assert!(a < b);
        assert!(Bf16::NAN.partial_cmp(&a).is_none());
    }

    #[test]
    fn slice_helpers_round_trip() {
        let values = [0.0f32, 1.0, -2.5, 100.0];
        let q = Bf16::quantize_slice(&values);
        let d = Bf16::dequantize_slice(&q);
        assert_eq!(d, values);
    }

    #[test]
    fn epsilon_is_two_to_minus_seven() {
        assert_eq!(Bf16::EPSILON.to_f32(), f32::powi(2.0, -7));
        assert_eq!((Bf16::ONE + Bf16::EPSILON).to_f32(), 1.0 + f32::powi(2.0, -7));
    }
}
