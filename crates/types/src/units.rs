//! Physical units used throughout the simulator.
//!
//! Time is tracked in **picoseconds** as integers so the 0.5 ns granularity
//! of GDDR6 command clocks (`tCK`) never accumulates floating-point error;
//! convenience constructors accept nanoseconds. Energy, power, bandwidth and
//! money use `f64` newtypes.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in (or duration of) simulated time, in picoseconds.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(pub u64);

impl Time {
    /// Zero time.
    pub const ZERO: Time = Time(0);

    /// Constructs from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Time {
        Time(ps)
    }

    /// Constructs from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Time {
        Time(ns * 1_000)
    }

    /// Constructs from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Time {
        Time(us * 1_000_000)
    }

    /// Constructs from fractional nanoseconds (rounded to the nearest ps).
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Time {
        Time((ns * 1_000.0).round() as u64)
    }

    /// Constructs from fractional seconds (rounded to the nearest ps).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Time {
        Time((s * 1e12).round() as u64)
    }

    /// Picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Nanoseconds, as a float.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Microseconds, as a float.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Milliseconds, as a float.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Seconds, as a float.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Largest of two times (used when merging dependency chains).
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Saturating subtraction (durations never go negative).
    #[inline]
    pub fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }

    /// Multiplies a duration by an integer count.
    #[inline]
    pub const fn times(self, n: u64) -> Time {
        Time(self.0 * n)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        Time(iter.map(|t| t.0).sum())
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000_000 {
            write!(f, "{:.3}s", self.as_secs())
        } else if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us())
        } else {
            write!(f, "{:.3}ns", self.as_ns())
        }
    }
}

/// A byte count. Displays in human units; stores exact bytes.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Constructs from bytes.
    #[inline]
    pub const fn bytes(n: u64) -> ByteSize {
        ByteSize(n)
    }

    /// Constructs from binary kilobytes.
    #[inline]
    pub const fn kib(n: u64) -> ByteSize {
        ByteSize(n * 1024)
    }

    /// Constructs from binary megabytes.
    #[inline]
    pub const fn mib(n: u64) -> ByteSize {
        ByteSize(n * 1024 * 1024)
    }

    /// Constructs from binary gigabytes.
    #[inline]
    pub const fn gib(n: u64) -> ByteSize {
        ByteSize(n * 1024 * 1024 * 1024)
    }

    /// Exact byte count.
    #[inline]
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Gigabytes (binary), as a float.
    #[inline]
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Megabytes (binary), as a float.
    #[inline]
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Time to move this many bytes at `bw`.
    #[inline]
    pub fn transfer_time(self, bw: Bandwidth) -> Time {
        Time::from_secs_f64(self.0 as f64 / bw.as_bytes_per_sec())
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    #[inline]
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        ByteSize(iter.map(|b| b.0).sum())
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: u64 = 1024;
        const MIB: u64 = 1024 * KIB;
        const GIB: u64 = 1024 * MIB;
        if self.0 >= GIB {
            write!(f, "{:.2}GiB", self.0 as f64 / GIB as f64)
        } else if self.0 >= MIB {
            write!(f, "{:.2}MiB", self.0 as f64 / MIB as f64)
        } else if self.0 >= KIB {
            write!(f, "{:.2}KiB", self.0 as f64 / KIB as f64)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// Data-movement bandwidth in bytes per second.
#[derive(Clone, Copy, Default, PartialEq, PartialOrd)]
pub struct Bandwidth(pub f64);

impl Bandwidth {
    /// Constructs from GB/s (decimal, as in interconnect datasheets).
    #[inline]
    pub const fn gb_per_sec(gb: f64) -> Bandwidth {
        Bandwidth(gb * 1e9)
    }

    /// Constructs from TB/s.
    #[inline]
    pub const fn tb_per_sec(tb: f64) -> Bandwidth {
        Bandwidth(tb * 1e12)
    }

    /// Bytes per second.
    #[inline]
    pub const fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// GB/s as a float.
    #[inline]
    pub fn as_gb_per_sec(self) -> f64 {
        self.0 / 1e9
    }

    /// Scales the bandwidth (e.g. derating for protocol overhead).
    #[inline]
    pub fn scale(self, factor: f64) -> Bandwidth {
        Bandwidth(self.0 * factor)
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 * rhs)
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e12 {
            write!(f, "{:.2}TB/s", self.0 / 1e12)
        } else {
            write!(f, "{:.2}GB/s", self.0 / 1e9)
        }
    }
}

/// Energy in joules.
#[derive(Clone, Copy, Default, PartialEq, PartialOrd)]
pub struct Energy(pub f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Constructs from joules.
    #[inline]
    pub const fn joules(j: f64) -> Energy {
        Energy(j)
    }

    /// Constructs from picojoules.
    #[inline]
    pub const fn pj(pj: f64) -> Energy {
        Energy(pj * 1e-12)
    }

    /// Constructs from nanojoules.
    #[inline]
    pub const fn nj(nj: f64) -> Energy {
        Energy(nj * 1e-9)
    }

    /// Joules.
    #[inline]
    pub const fn as_joules(self) -> f64 {
        self.0
    }

    /// Picojoules.
    #[inline]
    pub fn as_pj(self) -> f64 {
        self.0 * 1e12
    }

    /// Average power when spent over `t`.
    #[inline]
    pub fn over(self, t: Time) -> Power {
        Power(self.0 / t.as_secs())
    }
}

impl Add for Energy {
    type Output = Energy;
    #[inline]
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    #[inline]
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        Energy(iter.map(|e| e.0).sum())
    }
}

impl fmt::Debug for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1.0 {
            write!(f, "{:.3}J", self.0)
        } else if self.0.abs() >= 1e-3 {
            write!(f, "{:.3}mJ", self.0 * 1e3)
        } else if self.0.abs() >= 1e-6 {
            write!(f, "{:.3}uJ", self.0 * 1e6)
        } else {
            write!(f, "{:.3}nJ", self.0 * 1e9)
        }
    }
}

/// Power in watts.
#[derive(Clone, Copy, Default, PartialEq, PartialOrd)]
pub struct Power(pub f64);

impl Power {
    /// Zero watts.
    pub const ZERO: Power = Power(0.0);

    /// Constructs from watts.
    #[inline]
    pub const fn watts(w: f64) -> Power {
        Power(w)
    }

    /// Constructs from milliwatts.
    #[inline]
    pub const fn mw(mw: f64) -> Power {
        Power(mw * 1e-3)
    }

    /// Watts.
    #[inline]
    pub const fn as_watts(self) -> f64 {
        self.0
    }

    /// Energy consumed over duration `t` at this power.
    #[inline]
    pub fn for_duration(self, t: Time) -> Energy {
        Energy(self.0 * t.as_secs())
    }
}

impl Add for Power {
    type Output = Power;
    #[inline]
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    #[inline]
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    #[inline]
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

impl Div<f64> for Power {
    type Output = Power;
    #[inline]
    fn div(self, rhs: f64) -> Power {
        Power(self.0 / rhs)
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        Power(iter.map(|p| p.0).sum())
    }
}

impl fmt::Debug for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1.0 {
            write!(f, "{:.2}W", self.0)
        } else {
            write!(f, "{:.2}mW", self.0 * 1e3)
        }
    }
}

/// US dollars (TCO modelling).
#[derive(Clone, Copy, Default, PartialEq, PartialOrd)]
pub struct Dollars(pub f64);

impl Dollars {
    /// Zero dollars.
    pub const ZERO: Dollars = Dollars(0.0);

    /// Constructs from a dollar amount.
    #[inline]
    pub const fn new(amount: f64) -> Dollars {
        Dollars(amount)
    }

    /// The raw amount.
    #[inline]
    pub const fn amount(self) -> f64 {
        self.0
    }
}

impl Add for Dollars {
    type Output = Dollars;
    #[inline]
    fn add(self, rhs: Dollars) -> Dollars {
        Dollars(self.0 + rhs.0)
    }
}

impl AddAssign for Dollars {
    #[inline]
    fn add_assign(&mut self, rhs: Dollars) {
        self.0 += rhs.0;
    }
}

impl Sub for Dollars {
    type Output = Dollars;
    #[inline]
    fn sub(self, rhs: Dollars) -> Dollars {
        Dollars(self.0 - rhs.0)
    }
}

impl Mul<f64> for Dollars {
    type Output = Dollars;
    #[inline]
    fn mul(self, rhs: f64) -> Dollars {
        Dollars(self.0 * rhs)
    }
}

impl Div<f64> for Dollars {
    type Output = Dollars;
    #[inline]
    fn div(self, rhs: f64) -> Dollars {
        Dollars(self.0 / rhs)
    }
}

impl Sum for Dollars {
    fn sum<I: Iterator<Item = Dollars>>(iter: I) -> Dollars {
        Dollars(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for Dollars {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Dollars {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.2}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions() {
        assert_eq!(Time::from_ns(5).as_ps(), 5_000);
        assert_eq!(Time::from_us(2).as_ns(), 2_000.0);
        assert_eq!(Time::from_ns_f64(0.5).as_ps(), 500);
        assert_eq!(Time::from_secs_f64(1e-9).as_ps(), 1_000);
    }

    #[test]
    fn time_arithmetic() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(3);
        assert_eq!((a + b).as_ns(), 13.0);
        assert_eq!((a - b).as_ns(), 7.0);
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(b.times(4).as_ns(), 12.0);
        let total: Time = [a, b, b].into_iter().sum();
        assert_eq!(total.as_ns(), 16.0);
    }

    #[test]
    fn time_display_scales() {
        assert_eq!(Time::from_ns(5).to_string(), "5.000ns");
        assert_eq!(Time::from_us(5).to_string(), "5.000us");
        assert_eq!(Time::from_us(5_000).to_string(), "5.000ms");
        assert_eq!(Time::from_secs_f64(2.0).to_string(), "2.000s");
    }

    #[test]
    fn byte_size_conversions() {
        assert_eq!(ByteSize::kib(2).as_bytes(), 2048);
        assert_eq!(ByteSize::mib(32).as_bytes(), 32 * 1024 * 1024);
        assert_eq!(ByteSize::gib(16).as_gib(), 16.0);
        assert_eq!((ByteSize::mib(1) * 3).as_mib(), 3.0);
        assert_eq!(ByteSize::gib(1).to_string(), "1.00GiB");
    }

    #[test]
    fn transfer_time_uses_bandwidth() {
        // 32 GB at 32 GB/s takes 1 second.
        let t = ByteSize::bytes(32_000_000_000).transfer_time(Bandwidth::gb_per_sec(32.0));
        assert!((t.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn energy_power_duality() {
        let p = Power::watts(10.0);
        let e = p.for_duration(Time::from_secs_f64(2.0));
        assert!((e.as_joules() - 20.0).abs() < 1e-12);
        let back = e.over(Time::from_secs_f64(2.0));
        assert!((back.as_watts() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn energy_units() {
        assert!((Energy::pj(3.97).as_joules() - 3.97e-12).abs() < 1e-24);
        assert_eq!(Energy::pj(1.0).as_pj().round(), 1.0);
        assert_eq!(Power::mw(250.0).as_watts(), 0.25);
    }

    #[test]
    fn dollars_arithmetic() {
        let hw = Dollars::new(14_873.0);
        let per_hour = hw / (3.0 * 365.0 * 24.0);
        assert!(per_hour.amount() > 0.5 && per_hour.amount() < 0.6);
        assert_eq!((Dollars::new(1.0) + Dollars::new(2.0)).amount(), 3.0);
        assert_eq!(Dollars::new(2.5).to_string(), "$2.50");
    }

    #[test]
    fn bandwidth_display() {
        assert_eq!(Bandwidth::gb_per_sec(32.0).to_string(), "32.00GB/s");
        assert_eq!(Bandwidth::tb_per_sec(16.0).to_string(), "16.00TB/s");
        assert_eq!(Bandwidth::gb_per_sec(100.0).scale(0.5).as_gb_per_sec(), 50.0);
    }
}
