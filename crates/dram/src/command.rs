//! DRAM command vocabulary for a GDDR6-PIM channel.
//!
//! Besides the standard GDDR6 commands (ACT/PRE/RD/WR/REF), the PIM parts add
//! the all-bank variants the paper relies on (§4.2): `ACTab` opens the same
//! row in all 16 banks at once (enabled by AiM's reservoir capacitors),
//! `MACab`/`EWMULab` fire one 256-bit beat through every near-bank PU, and
//! `PREab` closes all rows (already part of stock GDDR6).

use cent_types::{BankId, ColAddr, RowAddr};

/// One command on the channel's command bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramCommand {
    /// Activate `row` in a single bank.
    Act {
        /// Target bank.
        bank: BankId,
        /// Row to open.
        row: RowAddr,
    },
    /// Precharge a single bank.
    Pre {
        /// Target bank.
        bank: BankId,
    },
    /// Activate the same `row` in **all 16 banks** simultaneously.
    ///
    /// This command is the key PIM enabler: it lets all near-bank PUs stream
    /// the same row-relative columns in lockstep.
    ActAb {
        /// Row to open in every bank.
        row: RowAddr,
    },
    /// Precharge all banks.
    PreAb,
    /// Column read of one 256-bit beat from an open row.
    Rd {
        /// Target bank.
        bank: BankId,
        /// Column within the open row.
        col: ColAddr,
    },
    /// Column write of one 256-bit beat to an open row.
    Wr {
        /// Target bank.
        bank: BankId,
        /// Column within the open row.
        col: ColAddr,
    },
    /// All-bank MAC beat: every PU multiplies the 256-bit beat at `col` of its
    /// local bank with its second operand (Global Buffer broadcast or
    /// neighbouring bank) and accumulates.
    MacAb {
        /// Column within the open row, identical across banks.
        col: ColAddr,
    },
    /// All-bank element-wise multiply beat (`EW_MUL` micro-op): reads a beat
    /// from two banks of each bank group and writes the product to a third.
    EwMulAb {
        /// Column within the open row.
        col: ColAddr,
    },
    /// All-bank auto-refresh.
    RefAb,
}

impl DramCommand {
    /// Whether this is a column command (occupies the column command slot and
    /// is paced by `tCCD`).
    pub fn is_column(self) -> bool {
        matches!(
            self,
            DramCommand::Rd { .. }
                | DramCommand::Wr { .. }
                | DramCommand::MacAb { .. }
                | DramCommand::EwMulAb { .. }
        )
    }

    /// Whether this command touches every bank.
    pub fn is_all_bank(self) -> bool {
        matches!(
            self,
            DramCommand::ActAb { .. }
                | DramCommand::PreAb
                | DramCommand::MacAb { .. }
                | DramCommand::EwMulAb { .. }
                | DramCommand::RefAb
        )
    }

    /// Short mnemonic, as it would appear in a command trace.
    pub fn mnemonic(self) -> &'static str {
        match self {
            DramCommand::Act { .. } => "ACT",
            DramCommand::Pre { .. } => "PRE",
            DramCommand::ActAb { .. } => "ACTab",
            DramCommand::PreAb => "PREab",
            DramCommand::Rd { .. } => "RD",
            DramCommand::Wr { .. } => "WR",
            DramCommand::MacAb { .. } => "MACab",
            DramCommand::EwMulAb { .. } => "EWMULab",
            DramCommand::RefAb => "REFab",
        }
    }
}

/// Activity counters consumed by the power model (`cent-power`).
///
/// Counts are in *per-bank events*: an `ACTab` increments `acts` by 16
/// because all 16 banks spend activation current.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityCounters {
    /// Single-bank activates (bank events).
    pub acts: u64,
    /// Precharges (bank events).
    pub pres: u64,
    /// 256-bit read beats.
    pub reads: u64,
    /// 256-bit write beats.
    pub writes: u64,
    /// Per-bank MAC beats (one `MACab` = 16 of these).
    pub mac_beats: u64,
    /// Per-bank element-wise-multiply beats.
    pub ewmul_beats: u64,
    /// All-bank refresh commands.
    pub refreshes: u64,
    /// Commands issued in total (bus occupancy proxy).
    pub commands: u64,
}

impl ActivityCounters {
    /// Merges counters from another channel or window.
    pub fn merge(&mut self, other: &ActivityCounters) {
        self.acts += other.acts;
        self.pres += other.pres;
        self.reads += other.reads;
        self.writes += other.writes;
        self.mac_beats += other.mac_beats;
        self.ewmul_beats += other.ewmul_beats;
        self.refreshes += other.refreshes;
        self.commands += other.commands;
    }

    /// Total bytes moved through the bank I/O (32 B per beat).
    pub fn bytes_moved(&self) -> u64 {
        (self.reads + self.writes + self.mac_beats + self.ewmul_beats * 3) * 32
    }

    /// Scales every counter (used when extrapolating one simulated block to a
    /// full model).
    pub fn scaled(&self, factor: f64) -> ActivityCounters {
        let s = |v: u64| (v as f64 * factor).round() as u64;
        ActivityCounters {
            acts: s(self.acts),
            pres: s(self.pres),
            reads: s(self.reads),
            writes: s(self.writes),
            mac_beats: s(self.mac_beats),
            ewmul_beats: s(self.ewmul_beats),
            refreshes: s(self.refreshes),
            commands: s(self.commands),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cent_types::{BankId, ColAddr, RowAddr};

    #[test]
    fn column_classification() {
        assert!(DramCommand::Rd { bank: BankId(0), col: ColAddr(0) }.is_column());
        assert!(DramCommand::MacAb { col: ColAddr(1) }.is_column());
        assert!(!DramCommand::ActAb { row: RowAddr(0) }.is_column());
        assert!(!DramCommand::PreAb.is_column());
    }

    #[test]
    fn all_bank_classification() {
        assert!(DramCommand::ActAb { row: RowAddr(3) }.is_all_bank());
        assert!(DramCommand::RefAb.is_all_bank());
        assert!(!DramCommand::Act { bank: BankId(2), row: RowAddr(0) }.is_all_bank());
    }

    #[test]
    fn mnemonics() {
        assert_eq!(DramCommand::PreAb.mnemonic(), "PREab");
        assert_eq!(DramCommand::MacAb { col: ColAddr(0) }.mnemonic(), "MACab");
    }

    #[test]
    fn counters_merge_and_bytes() {
        let mut a = ActivityCounters { reads: 2, mac_beats: 16, ..Default::default() };
        let b = ActivityCounters { writes: 1, ewmul_beats: 1, ..Default::default() };
        a.merge(&b);
        // 2 reads + 1 write + 16 macs + 1 ewmul×3 banks = 22 beats × 32 B.
        assert_eq!(a.bytes_moved(), 22 * 32);
    }

    #[test]
    fn counters_scale() {
        let a = ActivityCounters { acts: 10, mac_beats: 100, ..Default::default() };
        let s = a.scaled(2.5);
        assert_eq!(s.acts, 25);
        assert_eq!(s.mac_beats, 250);
    }
}
