//! Command-level timing model of one GDDR6-PIM channel.
//!
//! The model follows the Ramulator2 approach the paper uses: every command is
//! checked against per-bank and channel-level timing constraints and issued
//! at the earliest legal time. PIM command streams are in-order (the PIM
//! controller converts micro-ops to DRAM commands sequentially, §4.2), so a
//! simple "earliest legal issue" scheduler is exact for CENT traces.

use cent_types::consts::{self, timing};
use cent_types::{BankGroupId, CentError, CentResult, RowAddr, Time};

use crate::command::{ActivityCounters, DramCommand};

/// Timing parameters of the GDDR6-PIM part (defaults from Table 4 of the
/// paper, plus standard GDDR6 values for constraints the paper omits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingParams {
    /// ACT to column-read delay.
    pub t_rcdrd: Time,
    /// ACT to column-write delay.
    pub t_rcdwr: Time,
    /// Minimum row-open time before PRE.
    pub t_ras: Time,
    /// Read CAS latency (issue to first data beat).
    pub t_cl: Time,
    /// Column-to-column spacing, different bank group / all-bank PIM beat.
    pub t_ccds: Time,
    /// Column-to-column spacing, same bank group.
    pub t_ccdl: Time,
    /// Precharge to ACT delay.
    pub t_rp: Time,
    /// Read to precharge spacing.
    pub t_rtp: Time,
    /// Write recovery (last write data to PRE).
    pub t_wr: Time,
    /// Write CAS latency.
    pub t_cwl: Time,
    /// ACT to ACT spacing across banks.
    pub t_rrds: Time,
    /// All-bank refresh duration.
    pub t_rfc: Time,
    /// Average refresh interval.
    pub t_refi: Time,
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams {
            t_rcdrd: timing::T_RCDRD,
            t_rcdwr: timing::T_RCDWR,
            t_ras: timing::T_RAS,
            t_cl: timing::T_CL,
            t_ccds: timing::T_CCDS,
            t_ccdl: timing::T_CCDL,
            t_rp: timing::T_RP,
            t_rtp: Time::from_ns(12),
            t_wr: timing::T_WR,
            t_cwl: timing::T_CWL,
            t_rrds: timing::T_RRDS,
            t_rfc: timing::T_RFC,
            t_refi: timing::T_REFI,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<RowAddr>,
    /// Issue time of the ACT that opened the current row.
    act_at: Time,
    /// Issue time of the most recent PRE.
    pre_at: Time,
    /// Issue time of the most recent column read (RD or MAC beat).
    last_rd: Time,
    /// Issue time of the most recent column write.
    last_wr: Time,
    ever_activated: bool,
    ever_precharged: bool,
}

/// Timing state of one GDDR6-PIM channel (16 banks).
///
/// # Examples
///
/// ```
/// use cent_dram::{DramCommand, PimChannelTiming};
/// use cent_types::{ColAddr, RowAddr};
///
/// let mut ch = PimChannelTiming::new();
/// let t0 = ch.issue(DramCommand::ActAb { row: RowAddr(0) }).unwrap();
/// let t1 = ch.issue(DramCommand::MacAb { col: ColAddr(0) }).unwrap();
/// // The first MAC beat waits for tRCDRD = 18 ns after the activate.
/// assert_eq!((t1 - t0).as_ns(), 18.0);
/// ```
#[derive(Debug, Clone)]
pub struct PimChannelTiming {
    params: TimingParams,
    banks: [BankState; consts::BANKS_PER_CHANNEL],
    /// Issue time of the most recent column command, any bank.
    last_col: Time,
    /// Bank group of the most recent column command (None for all-bank).
    last_col_group: Option<BankGroupId>,
    /// Issue time of the most recent ACT, any bank.
    last_act_any: Time,
    /// Command-bus time: next command cannot issue before this.
    now: Time,
    /// End of the latest data burst (trace completion time).
    busy_until: Time,
    next_refresh: Time,
    refresh_enabled: bool,
    stats: ActivityCounters,
    has_issued_col: bool,
    has_issued_act: bool,
}

impl Default for PimChannelTiming {
    fn default() -> Self {
        Self::new()
    }
}

impl PimChannelTiming {
    /// Creates a channel with the paper's timing parameters and refresh
    /// disabled (CENT traces are short relative to tREFI; enable it for
    /// long-window studies).
    pub fn new() -> Self {
        Self::with_params(TimingParams::default())
    }

    /// Creates a channel with custom timing parameters.
    pub fn with_params(params: TimingParams) -> Self {
        PimChannelTiming {
            params,
            banks: [BankState::default(); consts::BANKS_PER_CHANNEL],
            last_col: Time::ZERO,
            last_col_group: None,
            last_act_any: Time::ZERO,
            now: Time::ZERO,
            busy_until: Time::ZERO,
            next_refresh: params.t_refi,
            refresh_enabled: false,
            stats: ActivityCounters::default(),
            has_issued_col: false,
            has_issued_act: false,
        }
    }

    /// Enables periodic all-bank refresh injection.
    pub fn enable_refresh(&mut self) {
        self.refresh_enabled = true;
    }

    /// The timing parameters in use.
    pub fn params(&self) -> &TimingParams {
        &self.params
    }

    /// Current command-bus time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Completion time of all issued work, including in-flight data bursts.
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Activity counters accumulated so far.
    pub fn stats(&self) -> &ActivityCounters {
        &self.stats
    }

    /// Advances the channel clock to at least `t` (models idle gaps between
    /// operations, e.g. while the PNM units hold the dependency chain).
    pub fn advance_to(&mut self, t: Time) {
        self.now = self.now.max(t);
    }

    /// Computes the earliest time `cmd` may legally issue, without issuing it.
    ///
    /// # Errors
    ///
    /// Returns [`CentError::ProtocolViolation`] if the command is illegal in
    /// the current state regardless of timing (e.g. activating an open bank).
    pub fn earliest_issue(&self, cmd: DramCommand) -> CentResult<Time> {
        let p = &self.params;
        let mut t = self.now;
        match cmd {
            DramCommand::Act { bank, row: _ } => {
                let b = &self.banks[bank.index()];
                if b.open_row.is_some() {
                    return Err(CentError::ProtocolViolation(format!(
                        "ACT on {bank} with open row"
                    )));
                }
                if b.ever_precharged {
                    t = t.max(b.pre_at + p.t_rp);
                }
                if self.has_issued_act {
                    t = t.max(self.last_act_any + p.t_rrds);
                }
            }
            DramCommand::ActAb { .. } => {
                for (i, b) in self.banks.iter().enumerate() {
                    if b.open_row.is_some() {
                        return Err(CentError::ProtocolViolation(format!(
                            "ACTab with open row in bank {i}"
                        )));
                    }
                    if b.ever_precharged {
                        t = t.max(b.pre_at + p.t_rp);
                    }
                }
            }
            DramCommand::Rd { bank, .. } => {
                let b = &self.banks[bank.index()];
                if b.open_row.is_none() {
                    return Err(CentError::ProtocolViolation(format!("RD on closed {bank}")));
                }
                t = t.max(b.act_at + p.t_rcdrd);
                t = t.max(self.col_ready(Some(bank.bank_group())));
            }
            DramCommand::Wr { bank, .. } => {
                let b = &self.banks[bank.index()];
                if b.open_row.is_none() {
                    return Err(CentError::ProtocolViolation(format!("WR on closed {bank}")));
                }
                t = t.max(b.act_at + p.t_rcdwr);
                t = t.max(self.col_ready(Some(bank.bank_group())));
            }
            DramCommand::MacAb { .. } | DramCommand::EwMulAb { .. } => {
                for (i, b) in self.banks.iter().enumerate() {
                    if b.open_row.is_none() {
                        return Err(CentError::ProtocolViolation(format!(
                            "all-bank column op with closed bank {i}"
                        )));
                    }
                    t = t.max(b.act_at + p.t_rcdrd);
                }
                // All-bank beats are paced at tCCD_S (the PU clock, §4.2).
                t = t.max(self.col_ready(None));
            }
            DramCommand::Pre { bank } => {
                let b = &self.banks[bank.index()];
                if b.open_row.is_none() {
                    return Err(CentError::ProtocolViolation(format!("PRE on closed {bank}")));
                }
                t = t.max(self.pre_ready(b));
            }
            DramCommand::PreAb => {
                for b in &self.banks {
                    if b.open_row.is_some() {
                        t = t.max(self.pre_ready(b));
                    }
                }
            }
            DramCommand::RefAb => {
                for (i, b) in self.banks.iter().enumerate() {
                    if b.open_row.is_some() {
                        return Err(CentError::ProtocolViolation(format!(
                            "REFab with open row in bank {i}"
                        )));
                    }
                    if b.ever_precharged {
                        t = t.max(b.pre_at + p.t_rp);
                    }
                }
            }
        }
        Ok(t)
    }

    fn col_ready(&self, group: Option<BankGroupId>) -> Time {
        if !self.has_issued_col {
            return Time::ZERO;
        }
        let spacing = match (group, self.last_col_group) {
            // Same bank group back-to-back pays the long tCCD_L.
            (Some(g), Some(prev)) if g == prev => self.params.t_ccdl,
            _ => self.params.t_ccds,
        };
        self.last_col + spacing
    }

    fn pre_ready(&self, b: &BankState) -> Time {
        let p = &self.params;
        let mut t = b.act_at + p.t_ras;
        if b.last_rd > Time::ZERO || (b.open_row.is_some() && b.last_rd == b.act_at) {
            t = t.max(b.last_rd + p.t_rtp);
        }
        if b.last_wr > Time::ZERO {
            t = t.max(b.last_wr + p.t_cwl + p.t_wr);
        }
        t
    }

    /// Issues `cmd` at the earliest legal time and returns that time.
    ///
    /// If refresh is enabled and the refresh deadline passed, an all-bank
    /// refresh is transparently injected first (closing rows as needed would
    /// violate PIM lockstep, so refresh only fires between row sessions —
    /// i.e. when all banks are precharged).
    ///
    /// # Errors
    ///
    /// Returns [`CentError::ProtocolViolation`] for state violations (see
    /// [`Self::earliest_issue`]).
    pub fn issue(&mut self, cmd: DramCommand) -> CentResult<Time> {
        if self.refresh_enabled
            && self.now >= self.next_refresh
            && self.banks.iter().all(|b| b.open_row.is_none())
            && !matches!(cmd, DramCommand::RefAb)
        {
            self.apply(DramCommand::RefAb)?;
        }
        self.apply(cmd)
    }

    fn apply(&mut self, cmd: DramCommand) -> CentResult<Time> {
        let t = self.earliest_issue(cmd)?;
        let p = self.params;
        match cmd {
            DramCommand::Act { bank, row } => {
                let b = &mut self.banks[bank.index()];
                b.open_row = Some(row);
                b.act_at = t;
                b.last_rd = Time::ZERO;
                b.last_wr = Time::ZERO;
                b.ever_activated = true;
                self.last_act_any = t;
                self.has_issued_act = true;
                self.stats.acts += 1;
            }
            DramCommand::ActAb { row } => {
                for b in &mut self.banks {
                    b.open_row = Some(row);
                    b.act_at = t;
                    b.last_rd = Time::ZERO;
                    b.last_wr = Time::ZERO;
                    b.ever_activated = true;
                }
                self.last_act_any = t;
                self.has_issued_act = true;
                self.stats.acts += consts::BANKS_PER_CHANNEL as u64;
            }
            DramCommand::Rd { bank, .. } => {
                self.banks[bank.index()].last_rd = t;
                self.note_col(t, Some(bank.bank_group()));
                self.busy_until = self.busy_until.max(t + p.t_cl + p.t_ccds);
                self.stats.reads += 1;
            }
            DramCommand::Wr { bank, .. } => {
                self.banks[bank.index()].last_wr = t;
                self.note_col(t, Some(bank.bank_group()));
                self.busy_until = self.busy_until.max(t + p.t_cwl + p.t_ccds);
                self.stats.writes += 1;
            }
            DramCommand::MacAb { .. } => {
                for b in &mut self.banks {
                    b.last_rd = t;
                }
                self.note_col(t, None);
                // The PU consumes data tCL after issue and computes in one
                // PU cycle.
                self.busy_until = self.busy_until.max(t + p.t_cl + p.t_ccds);
                self.stats.mac_beats += consts::BANKS_PER_CHANNEL as u64;
            }
            DramCommand::EwMulAb { .. } => {
                for b in &mut self.banks {
                    b.last_rd = t;
                    b.last_wr = t;
                }
                self.note_col(t, None);
                self.busy_until = self.busy_until.max(t + p.t_cl + p.t_cwl + p.t_ccds);
                // One EWMUL beat reads from 2 banks and writes 1 per bank
                // group, i.e. 4 per-bank-group events; counted once per group.
                self.stats.ewmul_beats += consts::BANK_GROUPS_PER_CHANNEL as u64;
            }
            DramCommand::Pre { bank } => {
                let b = &mut self.banks[bank.index()];
                b.open_row = None;
                b.pre_at = t;
                b.ever_precharged = true;
                self.stats.pres += 1;
            }
            DramCommand::PreAb => {
                let mut closed = 0;
                for b in &mut self.banks {
                    if b.open_row.is_some() {
                        b.open_row = None;
                        b.pre_at = t;
                        b.ever_precharged = true;
                        closed += 1;
                    }
                }
                self.stats.pres += closed;
            }
            DramCommand::RefAb => {
                for b in &mut self.banks {
                    b.pre_at = t + p.t_rfc - p.t_rp;
                    b.ever_precharged = true;
                }
                self.next_refresh = t + p.t_refi;
                self.stats.refreshes += 1;
                self.now = self.now.max(t + p.t_rfc);
                self.busy_until = self.busy_until.max(t + p.t_rfc);
                self.stats.commands += 1;
                return Ok(t);
            }
        }
        self.stats.commands += 1;
        // Command bus: one command slot per PU cycle.
        self.now = self.now.max(t + p.t_ccds);
        self.busy_until = self.busy_until.max(self.now);
        Ok(t)
    }

    fn note_col(&mut self, t: Time, group: Option<BankGroupId>) {
        self.last_col = t;
        self.last_col_group = group;
        self.has_issued_col = true;
    }
}

/// Convenience: runs a full command slice on a fresh channel and returns
/// `(completion_time, counters)`.
///
/// # Errors
///
/// Propagates protocol violations from [`PimChannelTiming::issue`].
pub fn time_trace(commands: &[DramCommand]) -> CentResult<(Time, ActivityCounters)> {
    let mut ch = PimChannelTiming::new();
    for &cmd in commands {
        ch.issue(cmd)?;
    }
    Ok((ch.busy_until(), *ch.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cent_types::{BankId, ColAddr};

    fn ns(t: Time) -> f64 {
        t.as_ns()
    }

    #[test]
    fn act_to_read_respects_trcdrd() {
        let mut ch = PimChannelTiming::new();
        let t_act = ch.issue(DramCommand::Act { bank: BankId(0), row: RowAddr(5) }).unwrap();
        let t_rd = ch.issue(DramCommand::Rd { bank: BankId(0), col: ColAddr(0) }).unwrap();
        assert_eq!(ns(t_rd - t_act), 18.0);
    }

    #[test]
    fn act_to_write_respects_trcdwr() {
        let mut ch = PimChannelTiming::new();
        let t_act = ch.issue(DramCommand::Act { bank: BankId(1), row: RowAddr(0) }).unwrap();
        let t_wr = ch.issue(DramCommand::Wr { bank: BankId(1), col: ColAddr(3) }).unwrap();
        assert_eq!(ns(t_wr - t_act), 14.0);
    }

    #[test]
    fn mac_beats_stream_at_tccds() {
        let mut ch = PimChannelTiming::new();
        ch.issue(DramCommand::ActAb { row: RowAddr(0) }).unwrap();
        let t0 = ch.issue(DramCommand::MacAb { col: ColAddr(0) }).unwrap();
        let t1 = ch.issue(DramCommand::MacAb { col: ColAddr(1) }).unwrap();
        let t2 = ch.issue(DramCommand::MacAb { col: ColAddr(2) }).unwrap();
        assert_eq!(ns(t1 - t0), 1.0);
        assert_eq!(ns(t2 - t1), 1.0);
    }

    #[test]
    fn same_bank_group_reads_pay_tccdl() {
        let mut ch = PimChannelTiming::new();
        ch.issue(DramCommand::Act { bank: BankId(0), row: RowAddr(0) }).unwrap();
        ch.issue(DramCommand::Act { bank: BankId(1), row: RowAddr(0) }).unwrap();
        ch.issue(DramCommand::Act { bank: BankId(4), row: RowAddr(0) }).unwrap();
        // Move past every tRCD window so only column spacing matters.
        ch.advance_to(Time::from_ns(100));
        let t0 = ch.issue(DramCommand::Rd { bank: BankId(0), col: ColAddr(0) }).unwrap();
        // Bank 1 is in the same bank group as bank 0 -> tCCD_L = 2 ns.
        let t1 = ch.issue(DramCommand::Rd { bank: BankId(1), col: ColAddr(0) }).unwrap();
        assert_eq!(ns(t1 - t0), 2.0);
        // Bank 4 is in a different bank group -> tCCD_S = 1 ns.
        let t2 = ch.issue(DramCommand::Rd { bank: BankId(4), col: ColAddr(0) }).unwrap();
        assert_eq!(ns(t2 - t1), 1.0);
    }

    #[test]
    fn row_cycle_time() {
        let mut ch = PimChannelTiming::new();
        let t_act = ch.issue(DramCommand::ActAb { row: RowAddr(0) }).unwrap();
        // PREab with no column activity waits for tRAS = 27 ns.
        let t_pre = ch.issue(DramCommand::PreAb).unwrap();
        assert_eq!(ns(t_pre - t_act), 27.0);
        // Next ACTab waits tRP = 16 ns after the precharge.
        let t_act2 = ch.issue(DramCommand::ActAb { row: RowAddr(1) }).unwrap();
        assert_eq!(ns(t_act2 - t_pre), 16.0);
    }

    #[test]
    fn full_row_of_mac_beats_timing() {
        // The canonical GEMV inner loop: ACTab + 64 MACab + PREab.
        let mut cmds = vec![DramCommand::ActAb { row: RowAddr(0) }];
        for c in 0..64 {
            cmds.push(DramCommand::MacAb { col: ColAddr(c) });
        }
        cmds.push(DramCommand::PreAb);
        cmds.push(DramCommand::ActAb { row: RowAddr(1) });
        let mut ch = PimChannelTiming::new();
        let mut times = Vec::new();
        for &c in &cmds {
            times.push(ch.issue(c).unwrap());
        }
        // First MAC at 18 ns, last (64th) at 18 + 63 = 81 ns.
        assert_eq!(ns(times[1]), 18.0);
        assert_eq!(ns(times[64]), 81.0);
        // PRE waits for last read + tRTP = 93 ns (> tRAS).
        assert_eq!(ns(times[65]), 93.0);
        // Next row activates at 93 + 16 = 109 ns: the per-row cost the paper's
        // bandwidth efficiency analysis relies on.
        assert_eq!(ns(times[66]), 109.0);
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let mut ch = PimChannelTiming::new();
        ch.issue(DramCommand::Act { bank: BankId(2), row: RowAddr(0) }).unwrap();
        let t_wr = ch.issue(DramCommand::Wr { bank: BankId(2), col: ColAddr(0) }).unwrap();
        let t_pre = ch.issue(DramCommand::Pre { bank: BankId(2) }).unwrap();
        // PRE >= WR + tCWL + tWR = WR + 8 + 15.
        assert_eq!(ns(t_pre - t_wr), 23.0);
    }

    #[test]
    fn illegal_commands_are_rejected() {
        let mut ch = PimChannelTiming::new();
        assert!(ch.issue(DramCommand::Rd { bank: BankId(0), col: ColAddr(0) }).is_err());
        ch.issue(DramCommand::Act { bank: BankId(0), row: RowAddr(0) }).unwrap();
        assert!(ch.issue(DramCommand::Act { bank: BankId(0), row: RowAddr(1) }).is_err());
        assert!(ch.issue(DramCommand::MacAb { col: ColAddr(0) }).is_err(), "bank 1 closed");
    }

    #[test]
    fn refresh_injected_between_row_sessions() {
        let mut ch = PimChannelTiming::new();
        ch.enable_refresh();
        ch.issue(DramCommand::ActAb { row: RowAddr(0) }).unwrap();
        ch.issue(DramCommand::PreAb).unwrap();
        // Jump past the refresh deadline.
        ch.advance_to(Time::from_ns(2_000));
        let t_act = ch.issue(DramCommand::ActAb { row: RowAddr(1) }).unwrap();
        assert_eq!(ch.stats().refreshes, 1);
        // The ACT had to wait out tRFC from the injected refresh.
        assert!(t_act >= Time::from_ns(2_000) + TimingParams::default().t_rfc);
    }

    #[test]
    fn stats_count_bank_events() {
        let (done, stats) = time_trace(&[
            DramCommand::ActAb { row: RowAddr(0) },
            DramCommand::MacAb { col: ColAddr(0) },
            DramCommand::MacAb { col: ColAddr(1) },
            DramCommand::PreAb,
        ])
        .unwrap();
        assert_eq!(stats.acts, 16);
        assert_eq!(stats.pres, 16);
        assert_eq!(stats.mac_beats, 32);
        assert_eq!(stats.commands, 4);
        assert!(done > Time::ZERO);
    }

    #[test]
    fn advance_to_creates_idle_gap() {
        let mut ch = PimChannelTiming::new();
        ch.advance_to(Time::from_ns(100));
        let t = ch.issue(DramCommand::ActAb { row: RowAddr(0) }).unwrap();
        assert_eq!(ns(t), 100.0);
    }
}
