//! Command-level GDDR6-PIM DRAM timing model for the CENT simulator.
//!
//! The paper evaluates CENT with a modified Ramulator2 modelling 32
//! GDDR6-PIM channels per CXL device (§6). This crate is the equivalent
//! substrate, built from scratch in Rust:
//!
//! * [`DramCommand`] — the command vocabulary, including the PIM all-bank
//!   commands (`ACTab`, `MACab`, `EWMULab`, `PREab`);
//! * [`PimChannelTiming`] — a per-channel timing state machine enforcing the
//!   paper's Table 4 constraints (`tRCDRD`=18 ns, `tRAS`=27 ns, `tCL`=25 ns,
//!   `tRCDWR`=14 ns, `tCCDS`=1 ns, `tRP`=16 ns);
//! * [`ActivityCounters`] — per-command activity tallies feeding the
//!   activity-based power model.
//!
//! # Examples
//!
//! Timing the canonical PIM GEMV inner loop (one row of MAC beats):
//!
//! ```
//! use cent_dram::{DramCommand, PimChannelTiming};
//! use cent_types::{ColAddr, RowAddr};
//!
//! # fn main() -> Result<(), cent_types::CentError> {
//! let mut ch = PimChannelTiming::new();
//! ch.issue(DramCommand::ActAb { row: RowAddr(0) })?;
//! for col in 0..64 {
//!     ch.issue(DramCommand::MacAb { col: ColAddr(col) })?;
//! }
//! ch.issue(DramCommand::PreAb)?;
//! // 18 ns tRCD + 64 beats + tRTP/tRP tail.
//! assert!(ch.busy_until().as_ns() > 82.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod channel;
mod command;

pub use channel::{time_trace, PimChannelTiming, TimingParams};
pub use command::{ActivityCounters, DramCommand};
