//! The determinism & correctness rules (D1–D6) and the machinery they share:
//! file classification, `#[cfg(test)]` region masking, and allow-pragmas.
//!
//! Rule semantics are documented on [`Rule`]; the README "Determinism
//! contract" section is the user-facing statement of the same rules.

use crate::lexer::{is_float_literal, lex, Comment, Tok, Token};

/// The named rules of the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D1 `no-hash-collections`: no `HashMap`/`HashSet` in result-affecting
    /// code — their iteration order varies per process (seeded
    /// `RandomState`), so any sweep over one can change simulation output.
    /// Use `BTreeMap`/`BTreeSet`, a slab, or sorted-key iteration. Key-only
    /// lookups may be pragma-allowed.
    D1NoHashCollections,
    /// D2 `no-wall-clock`: no `Instant`/`SystemTime` outside `crates/bench`
    /// — simulated time comes from the event core, never the host clock.
    D2NoWallClock,
    /// D3 `no-ambient-entropy`: all randomness flows through the seeded
    /// `cent_types` SplitMix64; `thread_rng`-style generators and
    /// hasher-seeded entropy (`DefaultHasher`, `RandomState`) are banned
    /// everywhere, tests included.
    D3NoAmbientEntropy,
    /// D4 `unordered-float-reduction`: float reductions in the merge/report
    /// crates (auto-detected from the workspace manifests — `cent-serving`,
    /// which defines the helpers, plus every crate depending on it; see
    /// [`crate::detect_merge_crates`]) must go through the
    /// order-independent helpers (`StepIntegral`, `TimeHistogram`,
    /// `SortedSamples`) — ad-hoc float sums reassociate differently under
    /// re-ordering. Min/max folds are exempt (order-independent by
    /// construction).
    D4UnorderedFloatReduction,
    /// D5 `no-unwrap`: no `unwrap()` and no bare `expect("")` in library
    /// code — errors surface as `CentResult`; a panic on an invariant must
    /// carry a message documenting the invariant.
    D5NoUnwrap,
    /// D6 `sort-non-total-comparator`: no `sort_by`/`sort_unstable_by`/
    /// `min_by`/`max_by` whose comparator goes through `partial_cmp` in
    /// library code — `partial_cmp().unwrap()` panics on NaN and
    /// `unwrap_or(Equal)` silently breaks comparator totality (a non-total
    /// order makes sort results input-order-dependent). Use `f64::total_cmp`
    /// or compare on an integral key.
    D6SortNonTotalComparator,
    /// D7 `time-saturating-arithmetic`: no `saturating_add`/`saturating_mul`
    /// in library code — a saturated `Time` or token counter silently pins
    /// at the numeric ceiling and corrupts every downstream comparison far
    /// from the overflow site. Use `checked_add`/`checked_mul` with an
    /// invariant-documenting `expect`. `saturating_sub` stays sanctioned:
    /// clamping a difference at zero is well-defined, not an overflow.
    D7TimeSaturatingArithmetic,
    /// Meta-rule: a `cent-lint:` pragma that is malformed, names an unknown
    /// rule, or is missing its `-- reason` trailer.
    BadPragma,
}

impl Rule {
    /// The stable diagnostic slug (what `file:line:rule` prints).
    pub fn slug(self) -> &'static str {
        match self {
            Rule::D1NoHashCollections => "no-hash-collections",
            Rule::D2NoWallClock => "no-wall-clock",
            Rule::D3NoAmbientEntropy => "no-ambient-entropy",
            Rule::D4UnorderedFloatReduction => "unordered-float-reduction",
            Rule::D5NoUnwrap => "no-unwrap",
            Rule::D6SortNonTotalComparator => "sort-non-total-comparator",
            Rule::D7TimeSaturatingArithmetic => "time-saturating-arithmetic",
            Rule::BadPragma => "bad-pragma",
        }
    }

    /// The short id (`d1`..`d7`) accepted by pragmas alongside the slug.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1NoHashCollections => "d1",
            Rule::D2NoWallClock => "d2",
            Rule::D3NoAmbientEntropy => "d3",
            Rule::D4UnorderedFloatReduction => "d4",
            Rule::D5NoUnwrap => "d5",
            Rule::D6SortNonTotalComparator => "d6",
            Rule::D7TimeSaturatingArithmetic => "d7",
            Rule::BadPragma => "bad-pragma",
        }
    }

    /// Parses a pragma rule name (id or slug).
    pub fn parse(name: &str) -> Option<Rule> {
        let all = [
            Rule::D1NoHashCollections,
            Rule::D2NoWallClock,
            Rule::D3NoAmbientEntropy,
            Rule::D4UnorderedFloatReduction,
            Rule::D5NoUnwrap,
            Rule::D6SortNonTotalComparator,
            Rule::D7TimeSaturatingArithmetic,
        ];
        all.into_iter().find(|r| r.id() == name || r.slug() == name)
    }
}

/// How a file participates in the determinism contract, derived from its
/// workspace-relative path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileClass {
    /// `crates/<name>/src/**` or the root facade `src/**`: full contract.
    Library {
        /// The crate directory name (`serving`, `cxl`, ... or `cent` for
        /// the root facade).
        crate_name: String,
    },
    /// Integration tests, examples and benches: determinism rules D1–D3
    /// apply (tests must be as deterministic as the code they pin down),
    /// but D4/D5 do not — asserts and unwraps are the idiom there.
    TestOrExample,
    /// `crates/bench/**`: measures wall-clock by design; only D3 applies.
    Bench,
}

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(path: &str) -> FileClass {
    let p = path.trim_start_matches("./");
    if p.starts_with("crates/bench/") {
        return FileClass::Bench;
    }
    let segs: Vec<&str> = p.split('/').collect();
    if segs.iter().any(|s| *s == "tests" || *s == "examples" || *s == "benches") {
        return FileClass::TestOrExample;
    }
    if segs.len() >= 3 && segs[0] == "crates" && segs[2] == "src" {
        return FileClass::Library { crate_name: segs[1].to_string() };
    }
    if segs.first() == Some(&"src") {
        return FileClass::Library { crate_name: "cent".to_string() };
    }
    FileClass::TestOrExample
}

/// Fallback D4 scope when no manifest detection is in play (fixture tests
/// and single-source callers of [`lint_source`]): the crates known to hold
/// result-merge/report paths. The workspace walk replaces this with
/// [`crate::detect_merge_crates`] output.
const DEFAULT_MERGE_CRATES: [&str; 2] = ["serving", "cluster"];

/// One `file:line:rule` finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Renders the canonical `file:line:rule message` form.
    pub fn render(&self) -> String {
        format!("{}:{}:{} {}", self.path, self.line, self.rule.slug(), self.message)
    }
}

/// A parsed `// cent-lint: allow(<rules>) -- <reason>` pragma.
#[derive(Debug)]
struct Pragma {
    line: u32,
    rules: Vec<Rule>,
}

/// Parses pragmas out of the comment stream. Malformed pragmas produce
/// `bad-pragma` diagnostics instead of silently allowing nothing.
fn parse_pragmas(path: &str, comments: &[Comment], diags: &mut Vec<Diagnostic>) -> Vec<Pragma> {
    let mut pragmas = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("cent-lint:") else { continue };
        let rest = rest.trim();
        let bad = |diags: &mut Vec<Diagnostic>, msg: &str| {
            diags.push(Diagnostic {
                path: path.to_string(),
                line: c.line,
                rule: Rule::BadPragma,
                message: msg.to_string(),
            });
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            bad(diags, "pragma must be `allow(<rule>[, <rule>]) -- <reason>`");
            continue;
        };
        let Some(close) = args.find(')') else {
            bad(diags, "unclosed `allow(`");
            continue;
        };
        let (names, tail) = args.split_at(close);
        let tail = tail[1..].trim();
        let reason_ok = tail.strip_prefix("--").is_some_and(|r| !r.trim().is_empty());
        if !reason_ok {
            bad(diags, "pragma needs a justification: `-- <reason>`");
            continue;
        }
        let mut rules = Vec::new();
        let mut all_known = true;
        for name in names.split(',') {
            let name = name.trim();
            match Rule::parse(name) {
                Some(r) => rules.push(r),
                None => {
                    bad(diags, &format!("unknown rule `{name}` in allow()"));
                    all_known = false;
                }
            }
        }
        if all_known && !rules.is_empty() {
            pragmas.push(Pragma { line: c.line, rules });
        }
    }
    pragmas
}

/// True when `rule` is suppressed at `line` — a pragma applies to its own
/// line and to the line directly below it (so it can trail the code or sit
/// on its own line above it).
fn allowed(pragmas: &[Pragma], rule: Rule, line: u32) -> bool {
    pragmas.iter().any(|p| p.rules.contains(&rule) && (p.line == line || p.line + 1 == line))
}

/// Computes, per token, whether it sits inside a `#[cfg(test)]`-gated item
/// (attribute included). `#![cfg(test)]` marks the whole file.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].tok != Tok::Punct('#') {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let inner = j < tokens.len() && tokens[j].tok == Tok::Punct('!');
        if inner {
            j += 1;
        }
        if j >= tokens.len() || tokens[j].tok != Tok::Punct('[') {
            i += 1;
            continue;
        }
        // Find the matching `]` and look for `cfg` ... `test` inside.
        let attr_start = j;
        let mut depth = 0i32;
        let mut is_cfg = false;
        let mut mentions_test = false;
        let mut mentions_not = false;
        let mut k = j;
        while k < tokens.len() {
            match &tokens[k].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(s) => {
                    if k == attr_start + 1 && s == "cfg" {
                        is_cfg = true;
                    }
                    if s == "test" {
                        mentions_test = true;
                    }
                    // `#[cfg(not(test))]` gates NON-test code; be
                    // conservative and never mask when `not` appears.
                    if s == "not" {
                        mentions_not = true;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let attr_end = k; // index of `]`
        if !(is_cfg && mentions_test && !mentions_not) {
            i = attr_end + 1;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the whole file is test code.
            for m in mask.iter_mut() {
                *m = true;
            }
            return mask;
        }
        // Mask the attribute itself, any stacked attributes, and the item
        // that follows (up to `;` before any brace, or the matching `}`).
        let mut end = attr_end + 1;
        // Skip further attributes on the same item.
        while end < tokens.len() && tokens[end].tok == Tok::Punct('#') {
            let mut d = 0i32;
            let mut m = end + 1;
            while m < tokens.len() {
                match tokens[m].tok {
                    Tok::Punct('[') => d += 1,
                    Tok::Punct(']') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            end = m + 1;
        }
        let mut brace = 0i32;
        let mut saw_brace = false;
        while end < tokens.len() {
            match tokens[end].tok {
                Tok::Punct('{') => {
                    brace += 1;
                    saw_brace = true;
                }
                Tok::Punct('}') => {
                    brace -= 1;
                    if saw_brace && brace == 0 {
                        break;
                    }
                }
                Tok::Punct(';') if !saw_brace => break,
                _ => {}
            }
            end += 1;
        }
        let end = (end + 1).min(tokens.len());
        for m in &mut mask[i..end] {
            *m = true;
        }
        i = end;
    }
    mask
}

/// Lints one file's source under its path-derived [`FileClass`], with the
/// built-in default merge-crate scope (`serving`, `cluster`) for rule D4.
///
/// `path` is only used for classification and diagnostics; the source is
/// taken from `src`, which makes the function directly testable on fixture
/// files relocated to arbitrary virtual paths.
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    lint_source_with(path, src, &DEFAULT_MERGE_CRATES)
}

/// Lints one file's source like [`lint_source`], but with an explicit set
/// of merge-crate names scoping rule D4 (as produced by
/// [`crate::detect_merge_crates`]).
pub fn lint_source_with(path: &str, src: &str, merge_crates: &[&str]) -> Vec<Diagnostic> {
    let class = classify(path);
    let lexed = lex(src);
    let mut diags = Vec::new();
    let pragmas = parse_pragmas(path, &lexed.comments, &mut diags);
    let mask = test_mask(&lexed.tokens);
    let toks = &lexed.tokens;

    let d1 = !matches!(class, FileClass::Bench);
    let d2 = !matches!(class, FileClass::Bench);
    let d4 = matches!(&class, FileClass::Library { crate_name } if merge_crates.contains(&crate_name.as_str()));
    let d5 = matches!(class, FileClass::Library { .. });
    let d6 = matches!(class, FileClass::Library { .. });
    let d7 = matches!(class, FileClass::Library { .. });

    let push = |diags: &mut Vec<Diagnostic>, rule: Rule, line: u32, msg: String| {
        if !allowed(&pragmas, rule, line) {
            diags.push(Diagnostic { path: path.to_string(), line, rule, message: msg });
        }
    };

    for (i, t) in toks.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        match name.as_str() {
            "HashMap" | "HashSet" if d1 => push(
                &mut diags,
                Rule::D1NoHashCollections,
                t.line,
                format!(
                    "{name} has per-process iteration order; use BTreeMap/BTreeSet, a slab, \
                     or sorted-key sweeps"
                ),
            ),
            "Instant" | "SystemTime" if d2 => push(
                &mut diags,
                Rule::D2NoWallClock,
                t.line,
                format!("{name} reads the host clock; simulated time comes from the event core"),
            ),
            "thread_rng" | "ThreadRng" | "DefaultHasher" | "RandomState" | "OsRng"
            | "from_entropy" | "getrandom" => push(
                &mut diags,
                Rule::D3NoAmbientEntropy,
                t.line,
                format!("{name} draws ambient entropy; use the seeded cent_types SplitMix64"),
            ),
            "unwrap"
                if d5
                    && is_method_call(toks, i)
                    && toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('('))
                    && toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct(')')) =>
            {
                push(
                    &mut diags,
                    Rule::D5NoUnwrap,
                    t.line,
                    "unwrap() in library code; return CentResult or expect(\"<invariant>\")"
                        .to_string(),
                );
            }
            "expect"
                if d5
                    && is_method_call(toks, i)
                    && toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('('))
                    && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Str(s)) if s.is_empty()) =>
            {
                push(
                    &mut diags,
                    Rule::D5NoUnwrap,
                    t.line,
                    "bare expect(\"\"); the message must document the invariant".to_string(),
                );
            }
            "sum" if d4 && is_method_call(toks, i) && turbofish_float(toks, i) => push(
                &mut diags,
                Rule::D4UnorderedFloatReduction,
                t.line,
                "float sum in a merge/report path; use StepIntegral/TimeHistogram/SortedSamples"
                    .to_string(),
            ),
            "fold" if d4 && is_method_call(toks, i) && float_seeded_fold(toks, i) => push(
                &mut diags,
                Rule::D4UnorderedFloatReduction,
                t.line,
                "float-seeded fold in a merge/report path; use the order-independent helpers"
                    .to_string(),
            ),
            "sort_by" | "sort_unstable_by" | "min_by" | "max_by"
                if d6 && is_method_call(toks, i) && partial_cmp_comparator(toks, i) =>
            {
                push(
                    &mut diags,
                    Rule::D6SortNonTotalComparator,
                    t.line,
                    format!(
                        "{name} with a partial_cmp comparator is not a total order (NaN); \
                         use total_cmp or an integral sort key"
                    ),
                );
            }
            "saturating_add" | "saturating_mul"
                if d7
                    && is_method_call(toks, i)
                    && toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('(')) =>
            {
                push(
                    &mut diags,
                    Rule::D7TimeSaturatingArithmetic,
                    t.line,
                    format!(
                        "{name} silently pins at the numeric ceiling; use checked arithmetic \
                         with an invariant message (saturating_sub's clamp at zero stays fine)"
                    ),
                );
            }
            "let" if d4 => {
                if let Some(line) = float_typed_sum_stmt(toks, i) {
                    push(
                        &mut diags,
                        Rule::D4UnorderedFloatReduction,
                        line,
                        "float-typed .sum() in a merge/report path; use the order-independent \
                         helpers"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
    diags.sort_by_key(|d| (d.line, d.rule));
    diags
}

/// True when token `i` is preceded by `.` (a method call, not a free fn).
fn is_method_call(toks: &[Token], i: usize) -> bool {
    i > 0 && toks[i - 1].tok == Tok::Punct('.')
}

/// Matches `sum::<f32>` / `sum::<f64>` starting at the `sum` ident.
fn turbofish_float(toks: &[Token], i: usize) -> bool {
    let pat = [Tok::Punct(':'), Tok::Punct(':'), Tok::Punct('<')];
    if toks.len() <= i + 4 {
        return false;
    }
    for (k, p) in pat.iter().enumerate() {
        if &toks[i + 1 + k].tok != p {
            return false;
        }
    }
    matches!(&toks[i + 4].tok, Tok::Ident(s) if s == "f32" || s == "f64")
}

/// Matches `fold(<float>, ...)` — except min/max combiners, which are
/// order-independent (`.fold(0.0, f64::max)`).
fn float_seeded_fold(toks: &[Token], i: usize) -> bool {
    if toks.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('(')) {
        return false;
    }
    let seed_is_float =
        matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Num(n)) if is_float_literal(n));
    if !seed_is_float {
        return false;
    }
    // `, f64::max)` / `, f32::min)` combiner → order-independent.
    let comb: Vec<&Tok> = toks[i + 3..].iter().take(5).map(|t| &t.tok).collect();
    if let [Tok::Punct(','), Tok::Ident(ty), Tok::Punct(':'), Tok::Punct(':'), Tok::Ident(f)] =
        comb[..]
    {
        if (ty == "f32" || ty == "f64") && (f == "max" || f == "min") {
            return false;
        }
    }
    true
}

/// True when the balanced-paren argument of the call at token `i` (the
/// method ident; `i + 1` must open the argument list) mentions
/// `partial_cmp` — the signature of a comparator that is not a total order.
fn partial_cmp_comparator(toks: &[Token], i: usize) -> bool {
    if toks.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('(')) {
        return false;
    }
    let mut depth = 0i32;
    for t in &toks[i + 1..] {
        match &t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            Tok::Ident(s) if s == "partial_cmp" => return true,
            _ => {}
        }
    }
    false
}

/// Matches a `let _: f32/f64 = ... .sum() ... ;` statement starting at the
/// `let` ident; returns the line of the `.sum()` call.
fn float_typed_sum_stmt(toks: &[Token], i: usize) -> Option<u32> {
    let mut float_typed = false;
    let mut depth = 0i32;
    let mut j = i + 1;
    // Bounded scan to the statement's `;` at bracket depth 0.
    let limit = (i + 256).min(toks.len());
    while j < limit {
        match &toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            Tok::Punct(';') if depth <= 0 => return None,
            Tok::Ident(s) if (s == "f32" || s == "f64") && !float_typed => {
                // `: f64 =` type ascription on the binding.
                let prev = j >= 1 && toks[j - 1].tok == Tok::Punct(':');
                let next = toks.get(j + 1).map(|t| &t.tok) == Some(&Tok::Punct('='));
                if prev && next {
                    float_typed = true;
                }
            }
            Tok::Ident(s) if s == "sum" && float_typed => {
                let call = is_method_call(toks, j)
                    && toks.get(j + 1).map(|t| &t.tok) == Some(&Tok::Punct('('))
                    && toks.get(j + 2).map(|t| &t.tok) == Some(&Tok::Punct(')'));
                if call {
                    return Some(toks[j].line);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/serving/src/x.rs";

    fn slugs(path: &str, src: &str) -> Vec<&'static str> {
        lint_source(path, src).into_iter().map(|d| d.rule.slug()).collect()
    }

    #[test]
    fn classification() {
        assert_eq!(
            classify("crates/serving/src/sim.rs"),
            FileClass::Library { crate_name: "serving".into() }
        );
        assert_eq!(classify("src/lib.rs"), FileClass::Library { crate_name: "cent".into() });
        assert_eq!(classify("tests/proptests.rs"), FileClass::TestOrExample);
        assert_eq!(classify("crates/lint/tests/fixtures/d1.rs"), FileClass::TestOrExample);
        assert_eq!(classify("examples/serving_sim.rs"), FileClass::TestOrExample);
        assert_eq!(classify("crates/bench/src/bin/sim_perf.rs"), FileClass::Bench);
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = "
            use std::collections::BTreeMap;
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                fn f() { let _ = HashMap::<u32, u32>::new(); }
            }
        ";
        assert!(slugs(LIB, src).is_empty());
    }

    #[test]
    fn cfg_test_on_single_fn_and_use() {
        let src = "
            #[cfg(test)]
            use std::collections::HashMap;
            #[cfg(any(test, feature = \"x\"))]
            fn helper() { let _: HashMap<u8, u8> = HashMap::new(); }
            fn real() { let _ = HashSet::<u8>::new(); }
        ";
        assert_eq!(slugs(LIB, src), ["no-hash-collections"]);
    }

    #[test]
    fn pragma_same_line_and_line_above() {
        let src = "
            fn f() {
                let a: HashMap<u8, u8> = HashMap::new(); // cent-lint: allow(d1) -- key-only lookups
                // cent-lint: allow(no-hash-collections) -- key-only lookups
                let b: HashMap<u8, u8> = HashMap::new();
                let c: HashMap<u8, u8> = HashMap::new();
            }
        ";
        // a + b suppressed (two idents each), c fires twice.
        assert_eq!(slugs(LIB, src), ["no-hash-collections", "no-hash-collections"]);
    }

    #[test]
    fn pragma_requires_reason() {
        let src = "// cent-lint: allow(d1)\nfn f() {}\n";
        assert_eq!(slugs(LIB, src), ["bad-pragma"]);
        let src = "// cent-lint: allow(d9) -- what\nfn f() {}\n";
        assert_eq!(slugs(LIB, src), ["bad-pragma"]);
    }

    #[test]
    fn d5_distinguishes_bare_expect() {
        let src = "
            fn f(x: Option<u8>) -> u8 {
                let a = x.unwrap();
                let b = x.expect(\"\");
                let c = x.expect(\"slot filled at admission\");
                a + b + c
            }
        ";
        assert_eq!(slugs("crates/core/src/x.rs", src), ["no-unwrap", "no-unwrap"]);
        // Tests and bench are exempt from D5.
        assert!(slugs("tests/x.rs", src).is_empty());
    }

    #[test]
    fn d4_patterns() {
        let src = "
            fn f(v: &[f64]) -> f64 {
                let a = v.iter().sum::<f64>();
                let b = v.iter().fold(0.0, |x, y| x + y);
                let c = v.iter().copied().fold(0.0, f64::max);
                let d: f64 = v.iter().sum();
                let e: u64 = v.iter().map(|_| 1u64).sum();
                a + b + c + d + e as f64
            }
        ";
        assert_eq!(
            slugs(LIB, src),
            ["unordered-float-reduction", "unordered-float-reduction", "unordered-float-reduction"]
        );
        // Non-merge crates are exempt from D4.
        assert!(slugs("crates/model/src/x.rs", src).is_empty());
        // ... unless the caller's detected merge set says otherwise.
        let custom = lint_source_with("crates/model/src/x.rs", src, &["model"]);
        assert_eq!(custom.len(), 3);
        assert!(custom.iter().all(|d| d.rule == Rule::D4UnorderedFloatReduction));
    }

    #[test]
    fn d6_patterns() {
        let src = "
            fn f(v: &mut [f64]) -> Option<f64> {
                v.sort_by(|a, b| a.partial_cmp(b).expect(\"no NaN in samples\"));
                v.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
                let m = v.iter().max_by(|a, b| a.partial_cmp(b).expect(\"no NaN\"));
                v.sort_by(f64::total_cmp);
                v.iter().copied().min_by(f64::total_cmp)?;
                m.copied()
            }
        ";
        assert_eq!(
            slugs(LIB, src),
            ["sort-non-total-comparator", "sort-non-total-comparator", "sort-non-total-comparator"]
        );
        // Tests/examples and bench keep their unwrap-happy idiom.
        assert!(slugs("tests/x.rs", src).is_empty());
        assert!(slugs("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d7_patterns() {
        let src = "
            fn f(a: u64, b: u64) -> u64 {
                let x = a.saturating_add(b);
                let y = a.saturating_mul(b);
                let z = a.saturating_sub(b);
                let w = a.checked_add(b).expect(\"token counter fits u64\");
                x + y + z + w
            }
        ";
        assert_eq!(slugs(LIB, src), ["time-saturating-arithmetic", "time-saturating-arithmetic"]);
        // Tests/examples and bench keep the clamping shorthand.
        assert!(slugs("tests/x.rs", src).is_empty());
        assert!(slugs("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d2_d3_fire_by_class() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(slugs(LIB, src), ["no-wall-clock"]);
        assert!(slugs("crates/bench/src/lib.rs", src).is_empty());
        let src = "fn f() { let h = DefaultHasher::new(); }";
        assert_eq!(slugs("crates/bench/src/lib.rs", src), ["no-ambient-entropy"]);
        assert_eq!(slugs("tests/x.rs", src), ["no-ambient-entropy"]);
    }

    #[test]
    fn renders_file_line_rule() {
        let d = &lint_source(LIB, "fn f() { let m = HashMap::<u8, u8>::new(); }")[0];
        assert!(d.render().starts_with("crates/serving/src/x.rs:1:no-hash-collections "));
    }
}
