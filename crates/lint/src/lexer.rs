//! A hand-rolled Rust lexer: just enough tokenization for the determinism
//! rules, in the repo's in-tree-everything idiom (no `syn`, no `proc-macro2`).
//!
//! The lexer produces a flat token stream with line numbers, plus the line
//! comments as a side channel (pragmas like `// cent-lint: allow(...)` live
//! in comments, which rule matching must otherwise ignore). It understands
//! the lexical shapes that would confuse a naive scanner: nested block
//! comments, raw strings with `#` fences, byte/char literals versus
//! lifetimes, and numeric literals with type suffixes.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`HashMap`, `fn`, `r#type`, ...).
    Ident(String),
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// String literal (cooked, raw or byte); the *cooked content* is kept so
    /// rules can recognise e.g. the bare `expect("")`.
    Str(String),
    /// Character or byte literal.
    Char,
    /// Numeric literal, verbatim (so rules can spot float seeds in `fold`).
    Num(String),
    /// Any single punctuation character (`.`, `:`, `<`, `{`, ...).
    Punct(char),
}

/// A token plus the 1-indexed source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-indexed line number.
    pub line: u32,
}

/// A `//` comment (the text after the slashes) and the line it sits on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text, without the leading `//`.
    pub text: String,
    /// 1-indexed line number.
    pub line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order (comments excluded).
    pub tokens: Vec<Token>,
    /// All `//` line comments (doc comments included).
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. The lexer is total: unrecognised bytes become `Punct`
/// tokens rather than errors, so a partially weird file still gets linted.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Counts newlines in b[from..to] into `line`.
    fn count_lines(b: &[u8], from: usize, to: usize, line: &mut u32) {
        for &c in &b[from..to] {
            if c == b'\n' {
                *line += 1;
            }
        }
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                out.comments
                    .push(Comment { text: String::from_utf8_lossy(&b[start..j]).into(), line });
                i = j;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comment; Rust block comments nest.
                let mut depth = 1;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                count_lines(b, i, j, &mut line);
                i = j;
            }
            b'"' => {
                let (content, j) = cooked_string(b, i + 1);
                out.tokens.push(Token { tok: Tok::Str(content), line });
                count_lines(b, i, j, &mut line);
                i = j;
            }
            b'r' | b'b' | b'c' if starts_string_prefix(b, i) => {
                let (tok, j) = prefixed_string(b, i);
                out.tokens.push(Token { tok, line });
                count_lines(b, i, j, &mut line);
                i = j;
            }
            b'\'' => {
                // Lifetime vs char literal. `'\...'` and `'x'` are chars;
                // `'ident` (not followed by a closing quote) is a lifetime.
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    let j = char_literal_end(b, i + 1);
                    out.tokens.push(Token { tok: Tok::Char, line });
                    i = j;
                } else if i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                    out.tokens.push(Token { tok: Tok::Char, line });
                    i += 3;
                } else if i + 1 < b.len() && is_ident_start(b[i + 1]) {
                    let mut j = i + 1;
                    while j < b.len() && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    // A multi-char quoted literal like 'ab' is invalid Rust;
                    // treat a trailing quote as part of a (weird) char token.
                    if j < b.len() && b[j] == b'\'' {
                        out.tokens.push(Token { tok: Tok::Char, line });
                        i = j + 1;
                    } else {
                        out.tokens.push(Token { tok: Tok::Lifetime, line });
                        i = j;
                    }
                } else {
                    out.tokens.push(Token { tok: Tok::Punct('\''), line });
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let (text, j) = number(b, i);
                out.tokens.push(Token { tok: Tok::Num(text), line });
                i = j;
            }
            c if is_ident_start(c) => {
                let mut j = i + 1;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                let mut text: String = String::from_utf8_lossy(&b[i..j]).into();
                // Raw identifiers: `r#type` lexes as ident "type".
                if text == "r" && j + 1 < b.len() && b[j] == b'#' && is_ident_start(b[j + 1]) {
                    let mut k = j + 1;
                    while k < b.len() && is_ident_continue(b[k]) {
                        k += 1;
                    }
                    text = String::from_utf8_lossy(&b[j + 1..k]).into();
                    j = k;
                }
                out.tokens.push(Token { tok: Tok::Ident(text), line });
                i = j;
            }
            c => {
                out.tokens.push(Token { tok: Tok::Punct(c as char), line });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic() || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80
}

/// True when `b[i..]` starts a raw/byte/C string prefix (`r"`, `r#`, `b"`,
/// `br"`, `br#`, `c"`, ...) rather than a plain identifier.
fn starts_string_prefix(b: &[u8], i: usize) -> bool {
    let mut j = i;
    // Up to two prefix letters (`br`, `cr`).
    while j < b.len() && j - i < 2 && matches!(b[j], b'r' | b'b' | b'c') {
        j += 1;
    }
    if j >= b.len() {
        return false;
    }
    match b[j] {
        b'"' => true,
        // `r#"` raw fence — but NOT `r#ident` (raw identifier).
        b'#' => {
            let mut k = j;
            while k < b.len() && b[k] == b'#' {
                k += 1;
            }
            k < b.len() && b[k] == b'"'
        }
        _ => false,
    }
}

/// Lexes the prefixed string starting at `i`; returns (token, end index).
fn prefixed_string(b: &[u8], i: usize) -> (Tok, usize) {
    let mut j = i;
    let mut raw = false;
    while j < b.len() && matches!(b[j], b'r' | b'b' | b'c') {
        if b[j] == b'r' {
            raw = true;
        }
        j += 1;
    }
    if raw {
        let mut hashes = 0usize;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        // b[j] == b'"' guaranteed by starts_string_prefix.
        j += 1;
        let start = j;
        loop {
            if j >= b.len() {
                return (Tok::Str(String::from_utf8_lossy(&b[start..]).into()), b.len());
            }
            if b[j] == b'"'
                && b[j + 1..].iter().take(hashes).filter(|&&c| c == b'#').count() == hashes
            {
                let content = String::from_utf8_lossy(&b[start..j]).into();
                return (Tok::Str(content), j + 1 + hashes);
            }
            j += 1;
        }
    } else {
        // Byte/C string: cooked rules.
        let (content, end) = cooked_string(b, j + 1);
        (Tok::Str(content), end)
    }
}

/// Lexes a cooked (escaped) string whose opening quote is at `start - 1`;
/// returns (content, index just past the closing quote).
fn cooked_string(b: &[u8], start: usize) -> (String, usize) {
    let mut j = start;
    let mut content = String::new();
    while j < b.len() {
        match b[j] {
            b'"' => return (content, j + 1),
            b'\\' if j + 1 < b.len() => {
                content.push('\\');
                content.push(b[j + 1] as char);
                j += 2;
            }
            c => {
                content.push(c as char);
                j += 1;
            }
        }
    }
    (content, b.len())
}

/// Index just past a char literal whose backslash is at `i` (opening quote at
/// `i - 1`).
fn char_literal_end(b: &[u8], i: usize) -> usize {
    let mut j = i;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            _ => j += 1,
        }
    }
    b.len()
}

/// Lexes a numeric literal starting at `i`; returns (text, end index).
fn number(b: &[u8], i: usize) -> (String, usize) {
    let mut j = i;
    let hex = i + 1 < b.len() && b[i] == b'0' && matches!(b[i + 1], b'x' | b'X' | b'o' | b'b');
    if hex {
        j += 2;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        return (String::from_utf8_lossy(&b[i..j]).into(), j);
    }
    while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
        j += 1;
    }
    // Fraction — but not the `..` of a range expression.
    if j + 1 < b.len() && b[j] == b'.' && b[j + 1].is_ascii_digit() {
        j += 1;
        while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
            j += 1;
        }
    } else if j < b.len() && b[j] == b'.' && (j + 1 >= b.len() || b[j + 1] != b'.') {
        // Trailing-dot float like `1.` (not followed by another dot or ident,
        // which would be a range or a method call on an integer).
        if j + 1 >= b.len() || !is_ident_start(b[j + 1]) {
            j += 1;
        }
    }
    // Exponent.
    if j < b.len() && matches!(b[j], b'e' | b'E') {
        let mut k = j + 1;
        if k < b.len() && matches!(b[k], b'+' | b'-') {
            k += 1;
        }
        if k < b.len() && b[k].is_ascii_digit() {
            j = k;
            while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                j += 1;
            }
        }
    }
    // Type suffix (f32, u64, usize, ...).
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    (String::from_utf8_lossy(&b[i..j]).into(), j)
}

/// True when a numeric literal text denotes a float (`0.5`, `1e9`, `2f64`).
pub fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || (text.contains(['e', 'E'])
            && !text.contains(|c: char| c.is_ascii_alphabetic() && !matches!(c, 'e' | 'E')))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* HashMap /* nested */ still comment */
            let s = "HashMap in a string";
            let r = r#"HashMap raw "quoted" string"#;
            let real = BTreeMap::new();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"BTreeMap".to_string()));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let lexed = lex("let a = 1;\n// cent-lint: allow(d1) -- because\nlet b = 2;\n");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("cent-lint"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let chars = lexed.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn escaped_chars_and_strings() {
        let lexed = lex(r#"let c = '\n'; let q = '\''; let s = "a\"b";"#);
        let chars = lexed.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!(chars, 2);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| matches!(&t.tok, Tok::Str(s) if s.contains("a") && s.contains("b"))));
    }

    #[test]
    fn numbers_classify_floats() {
        assert!(is_float_literal("0.5"));
        assert!(is_float_literal("1e9"));
        assert!(is_float_literal("2f64"));
        assert!(!is_float_literal("42"));
        assert!(!is_float_literal("0xff"));
        assert!(!is_float_literal("3usize"));
    }

    #[test]
    fn ranges_are_not_floats() {
        let lexed = lex("for i in 0..10 {}");
        let nums: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Num(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, ["0", "10"]);
    }

    #[test]
    fn raw_identifiers_lex_as_plain() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let lexed = lex("let a = \"line\none\";\nlet b = 2;");
        let b_line = lexed
            .tokens
            .iter()
            .find(|t| matches!(&t.tok, Tok::Ident(s) if s == "b"))
            .map(|t| t.line);
        assert_eq!(b_line, Some(3));
    }
}
