//! CLI for `cent-lint`: `cargo run -p cent-lint -- --check [--json] [paths]`.
//!
//! * `--check` — lint the workspace (or explicit `paths`), print one
//!   `file:line:rule message` diagnostic per finding, exit 1 when any fired.
//! * `--json` — machine-readable report on stdout instead of the line form.
//! * `--root <dir>` — workspace root; auto-discovered from the current
//!   directory when omitted.
//!
//! Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cent_lint::{
    check_workspace, detect_merge_crates, find_workspace_root, lint_source_with, Report,
};

struct Args {
    json: bool,
    root: Option<PathBuf>,
    paths: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { json: false, root: None, paths: Vec::new() };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            // --check is the only mode; accepted for CI-invocation clarity.
            "--check" => {}
            "--json" => args.json = true,
            "--root" => match it.next() {
                Some(dir) => args.root = Some(PathBuf::from(dir)),
                None => return Err("--root needs a directory".into()),
            },
            "--help" | "-h" => {
                return Err("usage: cent-lint --check [--json] [--root DIR] [paths...]".into())
            }
            p if !p.starts_with('-') => args.paths.push(p.to_string()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn run(args: &Args) -> Result<Report, String> {
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = match &args.root {
        Some(r) => r.clone(),
        None => find_workspace_root(&cwd),
    };
    if args.paths.is_empty() {
        return check_workspace(&root).map_err(|e| format!("workspace walk failed: {e}"));
    }
    // Explicit paths: lint each file under its workspace-relative name so
    // classification matches what the workspace walk would decide.
    let merge = detect_merge_crates(&root).map_err(|e| format!("manifest scan failed: {e}"))?;
    let merge_refs: Vec<&str> = merge.iter().map(String::as_str).collect();
    let mut report = Report::default();
    for p in &args.paths {
        let abs = if Path::new(p).is_absolute() { PathBuf::from(p) } else { cwd.join(p) };
        let rel = abs
            .strip_prefix(&root)
            .unwrap_or(abs.as_path())
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&abs).map_err(|e| format!("{p}: {e}"))?;
        report.files.push(rel.clone());
        report.diagnostics.extend(lint_source_with(&rel, &src, &merge_refs));
    }
    Ok(report)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("cent-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(report) => {
            if args.json {
                print!("{}", report.to_json());
            } else {
                for d in &report.diagnostics {
                    println!("{}", d.render());
                }
                if report.is_clean() {
                    println!(
                        "cent-lint: {} files clean (determinism contract D1-D7)",
                        report.files.len()
                    );
                }
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("cent-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
