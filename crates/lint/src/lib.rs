//! `cent-lint` — a zero-dependency static-analysis pass enforcing CENT's
//! determinism & correctness contract across the workspace.
//!
//! The simulator's core guarantee — `ServingReport`/`FleetReport` bit-identical
//! across engines, seeds and worker-thread counts — is enforced dynamically by
//! the differential suites in `tests/`. This crate makes the *preconditions*
//! of that guarantee machine-checked: every Rust source in the workspace is
//! tokenized with a hand-rolled lexer (the same in-tree-everything idiom as
//! the SplitMix64 PRNG and the hand-rolled JSON) and matched against seven
//! named rules:
//!
//! | rule | slug | contract |
//! |------|------|----------|
//! | D1 | `no-hash-collections` | no `HashMap`/`HashSet` where iteration order can reach results |
//! | D2 | `no-wall-clock` | no `Instant`/`SystemTime` outside `crates/bench` |
//! | D3 | `no-ambient-entropy` | all randomness through the seeded SplitMix64 |
//! | D4 | `unordered-float-reduction` | merge/report float reductions only via the approved helpers |
//! | D5 | `no-unwrap` | no `unwrap()` / bare `expect("")` in library code |
//! | D6 | `sort-non-total-comparator` | no `sort_by`/`min_by`/`max_by` through `partial_cmp` in library code |
//! | D7 | `time-saturating-arithmetic` | no `saturating_add`/`saturating_mul` in library code (checked + invariant instead) |
//!
//! Justified exceptions carry a pragma with a mandatory reason:
//!
//! ```text
//! // cent-lint: allow(no-hash-collections) -- key-only lookups, never iterated
//! ```
//!
//! Run it as `cargo run -p cent-lint -- --check` (human diagnostics,
//! `file:line:rule`) or `--check --json` (machine-readable). The pass lints
//! itself; `crates/lint/tests/fixtures/` (the seeded rule violations used by
//! the fixture tests) is the only tree it skips.

#![forbid(unsafe_code)]

mod lexer;
mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use lexer::{lex, Comment, Lexed, Tok, Token};
pub use rules::{classify, lint_source, lint_source_with, Diagnostic, FileClass, Rule};

/// The outcome of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Files examined, workspace-relative, in sorted order.
    pub files: Vec<String>,
    /// All findings, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Machine-readable JSON (hand-rolled, like everything else in-tree).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"files_checked\": {},\n", self.files.len()));
        s.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                escape(&d.path),
                d.line,
                d.rule.slug(),
                escape(&d.message)
            ));
        }
        if !self.diagnostics.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Directories never descended into during the workspace walk.
const SKIP_DIRS: [&str; 4] = ["target", ".git", ".github", "results"];

/// The one tree of intentional violations: the lint's own rule fixtures.
const FIXTURE_DIR: &str = "crates/lint/tests/fixtures";

/// Collects every `.rs` file under `root` (skipping build output, VCS
/// metadata and the lint fixtures), workspace-relative with forward slashes,
/// sorted for deterministic output.
///
/// # Errors
///
/// Propagates directory-walk I/O errors.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = relative(root, &path);
            if entry.file_type()?.is_dir() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if SKIP_DIRS.contains(&name.as_ref()) || rel == FIXTURE_DIR {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(rel);
            }
        }
    }
    files.sort();
    Ok(files)
}

fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Detects the crates whose result-merge/report paths fall under rule D4,
/// from the workspace manifests instead of a hardcoded list. A crate is a
/// merge crate when its manifest satisfies any of:
///
/// * its `[package] name` is `cent-serving` — the crate that defines the
///   order-independent merge helpers;
/// * its `[dependencies]` include `cent-serving` — it merges or reports
///   serving results (bench/test file classes stay exempt via
///   [`classify`]);
/// * it carries an explicit `# cent-lint: merge-crate` marker comment.
///
/// Returned names are crate *directory* names as [`classify`] reports them
/// (`serving`, `cluster`, ... and `cent` for the root facade), sorted.
///
/// # Errors
///
/// Propagates manifest-read I/O errors.
pub fn detect_merge_crates(root: &Path) -> io::Result<Vec<String>> {
    let mut manifests: Vec<(String, PathBuf)> = vec![("cent".to_string(), root.join("Cargo.toml"))];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let manifest = entry.path().join("Cargo.toml");
            if manifest.is_file() {
                manifests.push((entry.file_name().to_string_lossy().into_owned(), manifest));
            }
        }
    }
    let mut out = Vec::new();
    for (name, manifest) in manifests {
        let text = fs::read_to_string(&manifest)?;
        if manifest_is_merge_crate(&text) {
            out.push(name);
        }
    }
    out.sort();
    Ok(out)
}

/// Manifest-level predicate behind [`detect_merge_crates`]: a minimal TOML
/// scan (section headers + `key = value` lines), enough for Cargo
/// manifests without pulling in a TOML parser.
fn manifest_is_merge_crate(toml: &str) -> bool {
    if toml.lines().any(|l| l.trim() == "# cent-lint: merge-crate") {
        return true;
    }
    let mut section = String::new();
    for line in toml.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            if line.starts_with("[dependencies.cent-serving") {
                return true;
            }
            section = line.to_string();
            continue;
        }
        match section.as_str() {
            "[package]" => {
                let is_name = line
                    .strip_prefix("name")
                    .map(str::trim_start)
                    .is_some_and(|r| r.starts_with('='));
                if is_name && line.contains("\"cent-serving\"") {
                    return true;
                }
            }
            "[dependencies]" if line.starts_with("cent-serving") => {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Lints the whole workspace rooted at `root`, scoping rule D4 to the
/// merge crates detected by [`detect_merge_crates`].
///
/// # Errors
///
/// Propagates file-read I/O errors.
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    let merge = detect_merge_crates(root)?;
    let merge_refs: Vec<&str> = merge.iter().map(String::as_str).collect();
    let files = workspace_files(root)?;
    let mut report = Report { files: files.clone(), diagnostics: Vec::new() };
    for rel in &files {
        let src = fs::read_to_string(root.join(rel))?;
        report.diagnostics.extend(lint_source_with(rel, &src, &merge_refs));
    }
    report.diagnostics.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]` (the repo root). Returns `start` itself when no workspace
/// manifest is found, so explicit `--root` stays optional.
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shapes() {
        let report = Report {
            files: vec!["a.rs".into()],
            diagnostics: vec![Diagnostic {
                path: "a\"b.rs".into(),
                line: 3,
                rule: Rule::D1NoHashCollections,
                message: "x\ny".into(),
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"files_checked\": 1"));
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("x\\ny"));
        assert!(json.contains("\"rule\": \"no-hash-collections\""));
    }

    #[test]
    fn empty_report_is_clean_json() {
        let report = Report::default();
        assert!(report.is_clean());
        assert!(report.to_json().contains("\"diagnostics\": []"));
    }

    #[test]
    fn merge_crate_manifest_predicate() {
        assert!(manifest_is_merge_crate("[package]\nname = \"cent-serving\"\n"));
        assert!(manifest_is_merge_crate(
            "[package]\nname = \"cent-cluster\"\n[dependencies]\ncent-serving = { path = \"../serving\" }\n"
        ));
        assert!(manifest_is_merge_crate("[dependencies.cent-serving]\npath = \"../serving\"\n"));
        assert!(manifest_is_merge_crate("# cent-lint: merge-crate\n[package]\nname = \"x\"\n"));
        assert!(!manifest_is_merge_crate(
            "[package]\nname = \"cent-model\"\n[dependencies]\ncent-types = { path = \"../types\" }\n"
        ));
        // A dev-dependency on cent-serving does not make a merge crate.
        assert!(!manifest_is_merge_crate(
            "[package]\nname = \"cent-x\"\n[dev-dependencies]\ncent-serving = { path = \"../serving\" }\n"
        ));
    }

    #[test]
    fn detects_this_workspaces_merge_crates() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here);
        let merge = detect_merge_crates(&root).expect("workspace manifests readable");
        assert!(merge.iter().any(|c| c == "serving"), "helper-defining crate: {merge:?}");
        assert!(merge.iter().any(|c| c == "cluster"), "fleet merge paths: {merge:?}");
    }

    #[test]
    fn finds_this_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here);
        assert!(root.join("Cargo.toml").exists());
        assert!(root.ends_with("repo") || root.join("crates/lint").exists());
    }
}
