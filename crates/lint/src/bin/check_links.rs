//! `check_links` — a zero-dependency checker for the workspace's own
//! markdown: every intra-repo relative link and every `#anchor` must
//! resolve, so README/ARCHITECTURE/docs pointers can't rot silently.
//!
//! Scans `README.md`, `ARCHITECTURE.md` and every `*.md` under `docs/`
//! (run from the workspace root; CI's `docs` job does). For each inline
//! link `[text](target)` and reference definition `[label]: target`
//! outside fenced code blocks:
//!
//! * `http(s)://...` targets are skipped — the checker never touches the
//!   network;
//! * `#anchor` targets must match a heading slug of the same file;
//! * relative-path targets must exist on disk, resolved from the linking
//!   file's directory, and a `path#anchor` into another markdown file
//!   must match one of *that* file's heading slugs.
//!
//! Heading slugs follow the GitHub convention: lowercase, markdown
//! formatting stripped, punctuation removed, spaces to hyphens, `-1`/
//! `-2`... suffixes for repeats. Violations print as
//! `file:line: message` and the process exits 1.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn main() {
    let mut files: Vec<PathBuf> =
        vec![PathBuf::from("README.md"), PathBuf::from("ARCHITECTURE.md")];
    files.extend(markdown_under(Path::new("docs")));
    let mut errors = 0usize;
    let mut checked = 0usize;
    // Slug tables are built lazily per target file and cached, so a file
    // referenced many times is sluggified once.
    let mut slug_cache: BTreeMap<PathBuf, Vec<String>> = BTreeMap::new();
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{}: unreadable: {e}", file.display());
                errors += 1;
                continue;
            }
        };
        for link in links_in(&text) {
            checked += 1;
            if let Err(msg) = check(file, &link.target, &mut slug_cache) {
                eprintln!("{}:{}: {msg} [{}]", file.display(), link.line, link.target);
                errors += 1;
            }
        }
    }
    if errors > 0 {
        eprintln!("check_links: {errors} broken link(s) across {} file(s)", files.len());
        std::process::exit(1);
    }
    println!("check_links: {checked} links resolve across {} markdown file(s)", files.len());
}

/// Every `*.md` below `dir`, recursively, in sorted order.
fn markdown_under(dir: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else { return found };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            found.extend(markdown_under(&path));
        } else if path.extension().is_some_and(|e| e == "md") {
            found.push(path);
        }
    }
    found
}

struct Link {
    line: usize,
    target: String,
}

/// Extracts link targets from markdown: inline `[text](target)` and
/// reference definitions `[label]: target`, skipping fenced code blocks
/// and inline code spans.
fn links_in(text: &str) -> Vec<Link> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        if raw.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let line = strip_code_spans(raw);
        // Reference definition: `[label]: target` at line start.
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix('[') {
            if let Some(close) = rest.find("]:") {
                let target = rest[close + 2..].trim();
                if !target.is_empty() {
                    links.push(Link { line: line_no, target: target.to_string() });
                    continue;
                }
            }
        }
        // Inline links: every `](target)` occurrence.
        let bytes = line.as_bytes();
        let mut i = 0;
        while let Some(at) = line[i..].find("](") {
            let start = i + at + 2;
            // Balance parentheses inside the target (rare, but slugs of
            // headings with parens produce them).
            let mut depth = 1usize;
            let mut end = start;
            while end < bytes.len() && depth > 0 {
                match bytes[end] {
                    b'(' => depth += 1,
                    b')' => depth -= 1,
                    _ => {}
                }
                end += 1;
            }
            if depth == 0 {
                links.push(Link { line: line_no, target: line[start..end - 1].to_string() });
            }
            i = end;
        }
    }
    links
}

/// Replaces `` `code` `` spans with spaces so bracketed code (`[lints]`,
/// array types) is never mistaken for a link.
fn strip_code_spans(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut in_code = false;
    for c in line.chars() {
        if c == '`' {
            in_code = !in_code;
            out.push(' ');
        } else {
            out.push(if in_code { ' ' } else { c });
        }
    }
    out
}

/// Checks one target from `from`'s directory. External schemes are
/// skipped; everything else must resolve.
fn check(
    from: &Path,
    target: &str,
    slugs: &mut BTreeMap<PathBuf, Vec<String>>,
) -> Result<(), String> {
    if target.starts_with("http://") || target.starts_with("https://") || target.contains("://") {
        return Ok(());
    }
    if let Some(anchor) = target.strip_prefix('#') {
        return check_anchor(from, anchor, slugs);
    }
    let (path_part, anchor) = match target.split_once('#') {
        Some((p, a)) => (p, Some(a)),
        None => (target, None),
    };
    let base = from.parent().unwrap_or_else(|| Path::new("."));
    let resolved = base.join(path_part);
    if !resolved.exists() {
        return Err(format!("target does not exist: {}", resolved.display()));
    }
    if let Some(anchor) = anchor {
        if resolved.extension().is_some_and(|e| e == "md") {
            return check_anchor(&resolved, anchor, slugs);
        }
    }
    Ok(())
}

fn check_anchor(
    file: &Path,
    anchor: &str,
    slugs: &mut BTreeMap<PathBuf, Vec<String>>,
) -> Result<(), String> {
    if !slugs.contains_key(file) {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("anchor target unreadable {}: {e}", file.display()))?;
        slugs.insert(file.to_path_buf(), heading_slugs(&text));
    }
    let table = &slugs[file];
    if table.iter().any(|s| s == anchor) {
        Ok(())
    } else {
        Err(format!("no heading slug {anchor:?} in {}", file.display()))
    }
}

/// GitHub-style slugs of every ATX heading, with `-N` dedup suffixes.
fn heading_slugs(text: &str) -> Vec<String> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !line.starts_with('#') {
            continue;
        }
        let title = line.trim_start_matches('#').trim();
        let slug = slugify(title);
        let n = counts.entry(slug.clone()).or_insert(0);
        out.push(if *n == 0 { slug.clone() } else { format!("{slug}-{n}") });
        *n += 1;
    }
    out
}

/// Lowercase, markdown formatting stripped, punctuation dropped, spaces
/// to hyphens — the GitHub anchor convention.
fn slugify(title: &str) -> String {
    let mut out = String::with_capacity(title.len());
    for c in title.chars() {
        match c {
            '`' | '*' => {} // formatting, not content
            c if c.is_alphanumeric() => out.extend(c.to_lowercase()),
            ' ' | '-' | '_' => out.push(if c == ' ' { '-' } else { c }),
            _ => {}
        }
    }
    out
}
