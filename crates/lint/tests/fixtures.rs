//! Fixture coverage for every rule: one positive, one negative and one
//! allow-pragma case per rule, run through [`cent_lint::lint_source`] under
//! a virtual library path so classification matches real workspace files.

use std::fs;
use std::path::PathBuf;

use cent_lint::{lint_source, Rule};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lints fixture `name` as if it lived at `virtual_path`, returning the
/// fired rules in order.
fn fire(name: &str, virtual_path: &str) -> Vec<Rule> {
    lint_source(virtual_path, &fixture(name)).into_iter().map(|d| d.rule).collect()
}

/// Library path for most rules; D4 needs a merge/report crate.
const LIB: &str = "crates/core/src/fixture.rs";
const MERGE: &str = "crates/serving/src/fixture.rs";

#[test]
fn d1_positive_negative_allowed() {
    let fired = fire("d1_positive.rs", LIB);
    assert!(!fired.is_empty() && fired.iter().all(|r| *r == Rule::D1NoHashCollections));
    assert!(fire("d1_negative.rs", LIB).is_empty());
    assert!(fire("d1_allowed.rs", LIB).is_empty());
}

#[test]
fn d2_positive_negative_allowed() {
    let fired = fire("d2_positive.rs", LIB);
    assert!(!fired.is_empty() && fired.iter().all(|r| *r == Rule::D2NoWallClock));
    assert!(fire("d2_negative.rs", LIB).is_empty());
    assert!(fire("d2_allowed.rs", LIB).is_empty());
    // D2 is scoped: the same source is fine inside crates/bench.
    assert!(fire("d2_positive.rs", "crates/bench/src/fixture.rs").is_empty());
}

#[test]
fn d3_positive_negative_allowed() {
    let fired = fire("d3_positive.rs", LIB);
    assert!(!fired.is_empty() && fired.iter().all(|r| *r == Rule::D3NoAmbientEntropy));
    // D3 applies even in bench and test paths.
    assert!(!fire("d3_positive.rs", "crates/bench/src/fixture.rs").is_empty());
    assert!(!fire("d3_positive.rs", "tests/fixture.rs").is_empty());
    assert!(fire("d3_negative.rs", LIB).is_empty());
    assert!(fire("d3_allowed.rs", LIB).is_empty());
}

#[test]
fn d4_positive_negative_allowed() {
    let fired = fire("d4_positive.rs", MERGE);
    assert_eq!(fired.len(), 3, "turbofish sum, float fold and typed sum: {fired:?}");
    assert!(fired.iter().all(|r| *r == Rule::D4UnorderedFloatReduction));
    assert!(fire("d4_negative.rs", MERGE).is_empty());
    assert!(fire("d4_allowed.rs", MERGE).is_empty());
    // D4 only covers the merge/report crates.
    assert!(fire("d4_positive.rs", LIB).is_empty());
}

#[test]
fn d5_positive_negative_allowed() {
    let fired = fire("d5_positive.rs", LIB);
    assert_eq!(fired, [Rule::D5NoUnwrap, Rule::D5NoUnwrap]);
    assert!(fire("d5_negative.rs", LIB).is_empty());
    assert!(fire("d5_allowed.rs", LIB).is_empty());
    // Unwrap-happy test code is the idiom, not a violation.
    assert!(fire("d5_positive.rs", "tests/fixture.rs").is_empty());
}

#[test]
fn d6_positive_negative_allowed() {
    let fired = fire("d6_positive.rs", LIB);
    assert_eq!(fired.len(), 4, "sort_by, sort_unstable_by, max_by, min_by: {fired:?}");
    assert!(fired.iter().all(|r| *r == Rule::D6SortNonTotalComparator));
    assert!(fire("d6_negative.rs", LIB).is_empty());
    assert!(fire("d6_allowed.rs", LIB).is_empty());
    // Unwrap-happy comparators stay fine in tests and bench code.
    assert!(fire("d6_positive.rs", "tests/fixture.rs").is_empty());
    assert!(fire("d6_positive.rs", "crates/bench/src/fixture.rs").is_empty());
}

#[test]
fn d7_positive_negative_allowed() {
    let fired = fire("d7_positive.rs", LIB);
    assert_eq!(fired, [Rule::D7TimeSaturatingArithmetic, Rule::D7TimeSaturatingArithmetic]);
    assert!(fire("d7_negative.rs", LIB).is_empty());
    assert!(fire("d7_allowed.rs", LIB).is_empty());
    // Clamping shorthand stays fine in tests and bench code.
    assert!(fire("d7_positive.rs", "tests/fixture.rs").is_empty());
    assert!(fire("d7_positive.rs", "crates/bench/src/fixture.rs").is_empty());
}

#[test]
fn diagnostics_carry_file_line_rule() {
    let diags = lint_source(LIB, &fixture("d5_positive.rs"));
    let rendered = diags[0].render();
    assert!(
        rendered.starts_with("crates/core/src/fixture.rs:3:no-unwrap "),
        "unexpected rendering: {rendered}"
    );
}

#[test]
fn pragma_without_reason_is_its_own_finding() {
    let diags = lint_source(LIB, "// cent-lint: allow(d1)\nfn f() {}\n");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, Rule::BadPragma);
}
