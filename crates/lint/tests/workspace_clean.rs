//! The contract on the contract: the workspace itself lints clean, so a
//! regression in any crate fails `cargo test` as well as the CI lint job.

use std::path::Path;

use cent_lint::{check_workspace, find_workspace_root};

#[test]
fn workspace_lints_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
    let report = check_workspace(&root).expect("workspace walk succeeds");
    assert!(
        report.files.len() > 50,
        "walk found only {} files — wrong root {}?",
        report.files.len(),
        root.display()
    );
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.render()).collect();
    assert!(rendered.is_empty(), "determinism contract violations:\n{}", rendered.join("\n"));
}

#[test]
fn walk_skips_fixtures_and_target() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
    let report = check_workspace(&root).expect("workspace walk succeeds");
    assert!(report.files.iter().all(|f| !f.contains("lint/tests/fixtures/")));
    assert!(report.files.iter().all(|f| !f.starts_with("target/")));
    // And it does see the important trees.
    assert!(report.files.iter().any(|f| f == "crates/serving/src/sim.rs"));
    assert!(report.files.iter().any(|f| f == "src/lib.rs"));
    assert!(report.files.iter().any(|f| f == "crates/lint/src/lib.rs"));
}
