//! D6 positive: sorts and extrema through non-total `partial_cmp` comparators.
pub fn rank(scores: &mut [f64]) {
    scores.sort_by(|a, b| a.partial_cmp(b).expect("scores are never NaN"));
    scores.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
}

pub fn best(scores: &[f64]) -> Option<f64> {
    scores.iter().copied().max_by(|a, b| a.partial_cmp(b).expect("no NaN"))
}

pub fn worst(scores: &[f64]) -> Option<f64> {
    scores.iter().copied().min_by(|a, b| a.partial_cmp(b).expect("no NaN"))
}
