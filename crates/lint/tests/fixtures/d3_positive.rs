//! D3 positive: hasher-seeded ambient entropy.
use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;

pub fn entropy_bits() -> u64 {
    let h = DefaultHasher::new();
    h.finish()
}
