//! D6 negative: total-order comparators and integral sort keys.
pub fn rank(scores: &mut [f64]) {
    scores.sort_by(f64::total_cmp);
    scores.sort_unstable_by(|a, b| a.total_cmp(b));
}

pub fn best(scores: &[f64]) -> Option<f64> {
    scores.iter().copied().max_by(f64::total_cmp)
}

pub fn by_key(items: &mut [(u64, f64)]) {
    items.sort_by(|a, b| a.0.cmp(&b.0));
}
