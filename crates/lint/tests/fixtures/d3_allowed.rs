//! D3 allow-pragma: naming the banned symbol in a diagnostic shim.
// cent-lint: allow(d3) -- compat shim name, draws no entropy
pub fn thread_rng() -> u64 {
    7
}
