//! D1 negative: ordered map, deterministic sweeps.
use std::collections::BTreeMap;

pub struct Stats {
    pub per_device: BTreeMap<u32, u64>,
}

pub fn total(s: &Stats) -> u64 {
    s.per_device.values().sum()
}
