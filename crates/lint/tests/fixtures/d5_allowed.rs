//! D5 allow-pragma: a justified unwrap.
pub fn always(v: Option<u32>) -> u32 {
    // cent-lint: allow(d5) -- value installed unconditionally two lines up
    v.unwrap()
}
