//! D7 positive: saturating add/mul silently pin time at the ceiling.
pub fn epoch_end(now: u64, epoch_ps: u64) -> u64 {
    now.saturating_add(epoch_ps)
}

pub fn grid_instant(epochs: u64, epoch_ps: u64) -> u64 {
    epochs.saturating_mul(epoch_ps)
}
