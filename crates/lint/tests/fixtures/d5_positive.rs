//! D5 positive: unwrap and bare expect in library code.
pub fn first(v: &[u32]) -> u32 {
    let a = v.first().unwrap();
    let b = v.last().expect("");
    a + b
}
