//! D4 negative: integer-domain accumulation and order-independent folds.
pub fn merge_areas(parts: &[u128]) -> u128 {
    parts.iter().sum()
}

pub fn peak(parts: &[f64]) -> f64 {
    parts.iter().copied().fold(0.0, f64::max)
}
