//! D5 negative: errors surface; invariant panics carry their invariant.
pub fn first(v: &[u32]) -> Result<u32, String> {
    let a = v.first().ok_or_else(|| "empty input".to_string())?;
    let b = v.last().expect("non-empty checked above");
    Ok(a + b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = [1u32];
        assert_eq!(v.first().unwrap(), &1);
    }
}
