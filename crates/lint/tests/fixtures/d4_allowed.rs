//! D4 allow-pragma: reduction over a fixed-order slice.
pub fn weighted_total(weights: &[f64]) -> f64 {
    // cent-lint: allow(d4) -- slice iteration order is fixed
    weights.iter().sum::<f64>()
}
