//! D4 positive: ad-hoc float reductions in a merge path.
pub fn merge_means(parts: &[f64]) -> f64 {
    let total = parts.iter().sum::<f64>();
    let biased = parts.iter().fold(0.5, |a, b| a + b);
    total + biased
}

pub fn merge_typed(parts: &[f64]) -> f64 {
    let total: f64 = parts.iter().copied().sum();
    total
}
