//! D7 negative: checked arithmetic with invariants, and the sanctioned
//! clamp-at-zero subtraction.
pub fn epoch_end(now: u64, epoch_ps: u64) -> u64 {
    now.checked_add(epoch_ps).expect("epoch grid instant fits u64")
}

pub fn grid_instant(epochs: u64, epoch_ps: u64) -> u64 {
    epochs.checked_mul(epoch_ps).expect("epoch grid instant fits u64")
}

pub fn backlog(offered: u64, served: u64) -> u64 {
    offered.saturating_sub(served)
}
