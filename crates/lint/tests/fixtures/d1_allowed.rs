//! D1 allow-pragma: key-only lookups, justified and annotated.
// cent-lint: allow(no-hash-collections) -- key-only lookups, never iterated
use std::collections::HashMap;

pub fn get(m: &HashMap<u32, u64>, k: u32) -> Option<u64> { // cent-lint: allow(d1) -- key-only lookup
    m.get(&k).copied()
}
