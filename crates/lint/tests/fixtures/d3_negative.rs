//! D3 negative: seeded SplitMix64-style stream.
pub fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}
