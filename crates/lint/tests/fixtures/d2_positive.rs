//! D2 positive: wall-clock time reachable from non-bench code.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
