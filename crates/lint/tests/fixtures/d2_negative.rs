//! D2 negative: simulated time only.
pub fn advance(now_ps: u64, step_ps: u64) -> u64 {
    now_ps + step_ps
}
