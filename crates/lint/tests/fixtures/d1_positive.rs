//! D1 positive: unordered map state in result-affecting code.
use std::collections::HashMap;

pub struct Stats {
    pub per_device: HashMap<u32, u64>,
}

pub fn total(s: &Stats) -> u64 {
    s.per_device.values().sum()
}
