//! D6 allow-pragma: a justified partial_cmp comparator.
pub fn rank(scores: &mut [f64]) {
    // cent-lint: allow(d6) -- inputs validated NaN-free at the API boundary
    scores.sort_by(|a, b| a.partial_cmp(b).expect("validated NaN-free"));
}
