//! D2 allow-pragma: progress logging that never reaches sim state.
// cent-lint: allow(d2) -- operator progress logging, not simulation input
use std::time::Instant;

// cent-lint: allow(no-wall-clock) -- operator progress logging only
pub fn log_start() -> Instant {
    // cent-lint: allow(d2) -- operator progress logging only
    Instant::now()
}
