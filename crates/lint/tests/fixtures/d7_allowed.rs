//! D7 allow-pragma: a justified saturating accumulation.
pub fn bounded_score(a: u64, b: u64) -> u64 {
    // cent-lint: allow(d7) -- score is an unordered heuristic, clamping is the spec
    a.saturating_add(b)
}
