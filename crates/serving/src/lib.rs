//! Request-level serving simulation for CENT deployments.
//!
//! The paper evaluates CENT at steady state: one block step composed across
//! pipeline stages, tensor shards and replicas (`cent_sim::evaluate`). This
//! crate layers a discrete-event, request-level serving model on top, so a
//! deployment can be judged the way production systems are — queues, SLOs
//! and the throughput–latency knee under offered load:
//!
//! * [`Workload`] — reproducible arrival traces ([`ArrivalProcess`]:
//!   Poisson or bursty MMPP) with configurable shapes ([`LengthSampler`]:
//!   the paper's 512/3584 chatbot mix, ShareGPT-like log-normals, uniform
//!   or fixed);
//! * [`ContinuousBatchScheduler`] — policy-driven admission into
//!   pipeline-stage decode slots with strict per-replica KV-cache
//!   accounting derived from the mapping ([`KvBudget`]). Two [`KvMode`]s:
//!   *full reservation* (a request's complete context footprint is reserved
//!   at admission; nothing is ever evicted) and *token-granular* (only the
//!   prompt is reserved up front, the reservation grows one token per
//!   generated token, admission is optimistic against a watermark, and pool
//!   exhaustion evicts residents — lowest [`PriorityClass`] first, youngest
//!   within the class);
//! * a second KV tier ([`KvSpillMode`] / [`KvSpillConfig`]): an eviction
//!   victim is either requeued for vLLM-style *recompute* or *swapped* — its
//!   KV pages move to CXL host memory at a transfer time derived from the
//!   host-link model ([`cent_cost::KvSwapCost`]) and page back in before
//!   decode resumes, bounded by a host-pool capacity with per-replica
//!   transfer serialization. `CostDriven` picks the cheaper disposition per
//!   victim;
//! * [`SchedulingPolicy`] — pluggable admission order: [`Fifo`],
//!   [`ShortestRemainingDecode`], deadline/SLO-aware least-slack
//!   ([`DeadlineAware`]);
//! * [`ServingSystem`] — the discrete-event loop, costed by the
//!   steady-state block simulation (token cadence, prefill rate,
//!   slot/replica structure), configured per run via [`ServeOptions`].
//!   Three interchangeable event cores ([`TickEngine`]): the default
//!   *span-fast-forward* engine jumps the clock between external events in
//!   closed form, emitting whole deterministic decode spans in one batch
//!   (heap traffic scales with external events alone) — it also backs the
//!   resumable [`GroupSim`] form the cluster simulator drives epoch by
//!   epoch; the *phase-bucketed* engine advances every due resident of a
//!   replica in one tick event (heap traffic scales with admissions, not
//!   generated tokens); and the retained *per-token reference* loop, kept
//!   for differential testing and the `sim_perf` bench
//!   ([`ServingSystem::serve_trace_instrumented`] exposes [`SimStats`]);
//! * [`ServingReport`] — TTFT, per-token time-between-tokens and
//!   query-latency distributions (p50/p95/p99), tokens/s against the
//!   steady-state oracle, slot utilization, peak and time-weighted KV
//!   pressure, preemption counts and deadline goodput.
//!
//! # Examples
//!
//! ```
//! use cent_compiler::Strategy;
//! use cent_model::ModelConfig;
//! use cent_serving::{ServeOptions, ServingSystem, Workload};
//! use cent_types::Time;
//!
//! # fn main() -> Result<(), cent_types::CentError> {
//! let cfg = ModelConfig::tiny();
//! let system = ServingSystem::plan(&cfg, 2, Strategy::PipelineParallel, 32)?;
//! let workload = Workload::chatbot(0.5 * system.capacity_qps(8, 16), 42);
//! // Default (full-reservation, FIFO) run...
//! let report = system.run(&workload, Time::from_secs_f64(2.0));
//! // ...or token-granular KV accounting with preemption.
//! let report = system.run_with(
//!     &workload,
//!     Time::from_secs_f64(2.0),
//!     ServeOptions::token_granular(),
//! );
//! println!("{report}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod policy;
mod queue;
mod report;
mod scheduler;
mod sim;
mod workload;

pub use policy::{DeadlineAware, Fifo, PolicyContext, SchedulingPolicy, ShortestRemainingDecode};
pub use queue::{
    PriorityClass, QueuedRequest, RequestId, RequestQueue, RequestRecord, RequestSpec, SessionId,
    SwapState,
};
pub use report::{ClassReport, LatencyStats, ServingReport};
pub use scheduler::{
    Admission, ContinuousBatchScheduler, KvBudget, KvMode, LeaseId, Preemption, SchedulerConfig,
};
pub use sim::{
    GroupOutcome, GroupSim, KvSpillConfig, KvSpillMode, ServeOptions, ServingSystem, SimStats,
    TickEngine,
};
pub use workload::{ArrivalProcess, ClassMix, LengthSampler, LoadCurve, Workload};
