//! Request-level serving simulation for CENT deployments.
//!
//! The paper evaluates CENT at steady state: one block step composed across
//! pipeline stages, tensor shards and replicas (`cent_sim::evaluate`). This
//! crate layers a discrete-event, request-level serving model on top, so a
//! deployment can be judged the way production systems are — queues, SLOs
//! and the throughput–latency knee under offered load:
//!
//! * [`Workload`] — reproducible arrival traces ([`ArrivalProcess`]:
//!   Poisson or bursty MMPP) with configurable shapes ([`LengthSampler`]:
//!   the paper's 512/3584 chatbot mix, ShareGPT-like log-normals, uniform
//!   or fixed);
//! * [`ContinuousBatchScheduler`] — FIFO admission into pipeline-stage
//!   decode slots with strict per-replica KV-cache accounting derived from
//!   the mapping ([`KvBudget`]): a request's full context footprint is
//!   reserved at admission, so nothing is ever evicted mid-decode;
//! * [`ServingSystem`] — the event loop, costed by the steady-state block
//!   simulation (token cadence, prefill rate, slot/replica structure);
//! * [`ServingReport`] — TTFT, time-between-tokens and query-latency
//!   distributions (p50/p95/p99), tokens/s against the steady-state oracle,
//!   slot utilization and KV pressure.
//!
//! # Examples
//!
//! ```
//! use cent_compiler::Strategy;
//! use cent_model::ModelConfig;
//! use cent_serving::{ServingSystem, Workload};
//! use cent_types::Time;
//!
//! # fn main() -> Result<(), cent_types::CentError> {
//! let cfg = ModelConfig::tiny();
//! let system = ServingSystem::plan(&cfg, 2, Strategy::PipelineParallel, 32)?;
//! let workload = Workload::chatbot(0.5 * system.capacity_qps(16), 42);
//! let report = system.run(&workload, Time::from_secs_f64(2.0));
//! println!("{report}");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod queue;
mod report;
mod scheduler;
mod sim;
mod workload;

pub use queue::{RequestId, RequestQueue, RequestRecord, RequestSpec};
pub use report::{LatencyStats, ServingReport};
pub use scheduler::{Admission, ContinuousBatchScheduler, KvBudget, SchedulerConfig};
pub use sim::ServingSystem;
pub use workload::{ArrivalProcess, LengthSampler, Workload};
