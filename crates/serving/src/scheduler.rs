//! Continuous-batching admission control over pipeline-stage slots.
//!
//! CENT's pipeline-parallel mapping gives each replica `batch` decode slots
//! (one query per pipeline stage, §5.1) and a fixed KV-cache budget: the
//! GDDR6 channels assigned to a block hold its weights plus the KV cache of
//! every resident query (§5.4). The [`ContinuousBatchScheduler`] admits
//! queued requests into slots as they free up — the vLLM-style iteration
//! policy, specialised to CENT's structural batch limit — and never lets a
//! replica's reservations exceed its budget. Two accounting modes
//! ([`KvMode`]):
//!
//! * **Full reservation** — a request's complete footprint (prompt + every
//!   decode token) is reserved at admission, so decode can never run out of
//!   KV space mid-flight. Safe but pessimistic: a 512/3584 chatbot query
//!   holds 4096 tokens of budget from its first instant.
//! * **Token-granular** — only the prompt (plus any recomputed progress) is
//!   reserved at admission; the reservation grows one token per generated
//!   token. Admission is optimistic against a configurable watermark, and
//!   when growth would exceed the budget the *youngest* resident on that
//!   replica is preempted: its KV is released and it re-enters the queue
//!   for recompute. This is the capacity-managed regime of §5.4 — occupancy
//!   in reality grows one token per step, so far more queries fit.
//!
//! Resident accounting lives in a dense lease table: [`Admission`] hands
//! the event engine a [`LeaseId`], and the per-token hot path
//! ([`grow`](ContinuousBatchScheduler::grow)) is an array index — no map
//! lookup — while each replica keeps its residents in admission order.
//!
//! Requests carry a [`PriorityClass`](crate::PriorityClass): admission
//! serves lower class values first (the policy orders within a class), and
//! eviction victims are picked lowest-priority-class-first, youngest within
//! the class — with a single class this degenerates to the youngest
//! resident, the pre-class behaviour. What happens to a victim (recompute
//! vs swap to CXL host memory) is the event loop's decision
//! ([`KvSpillMode`](crate::KvSpillMode)); the scheduler only selects and
//! releases.

use cent_compiler::{Strategy, SystemMapping};
use cent_model::ModelConfig;
use cent_types::consts::CHANNEL_CAPACITY;
use cent_types::Time;

use crate::policy::{Fifo, PolicyContext, SchedulingPolicy};
use crate::queue::{PriorityClass, QueuedRequest, RequestId, RequestQueue, RequestSpec};

/// KV-cache capacity of one pipeline replica, in context tokens.
///
/// Derived from the mapping: each transformer block lives in
/// `channels_per_block × tp_degree` GDDR6 channels that must hold the block
/// weights; the remainder holds KV cache. All resident queries share that
/// per-block pool, so the binding constraint is the sum of their contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvBudget {
    /// Total context tokens the per-block KV pool can hold.
    pub tokens: u64,
}

impl KvBudget {
    /// Computes the per-replica budget for `mapping`.
    pub fn from_mapping(cfg: &ModelConfig, mapping: &SystemMapping) -> Self {
        let channels = (mapping.channels_per_block * mapping.tp_degree.max(1)) as u64;
        let capacity = CHANNEL_CAPACITY.as_bytes() * channels;
        // Under PP/hybrid each block owns its channel group; under pure TP
        // the whole device group holds every layer's weights and KV, so the
        // group is shared by all of them.
        let blocks_in_group =
            if mapping.strategy == Strategy::TensorParallel { cfg.layers as u64 } else { 1 };
        let weights = cfg.block_weight_bytes().as_bytes() * blocks_in_group;
        let kv_space = capacity.saturating_sub(weights);
        let per_token = (cfg.kv_bytes_per_token_per_block().as_bytes() * blocks_in_group).max(1);
        KvBudget { tokens: kv_space / per_token }
    }

    /// A budget fixed in tokens (used by tests and what-if sweeps).
    pub fn tokens(tokens: u64) -> Self {
        KvBudget { tokens }
    }
}

/// How KV-cache occupancy is accounted while a request is resident.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KvMode {
    /// Reserve `prompt + decode` tokens at admission; never preempt.
    FullReservation,
    /// Reserve only the current context at admission and grow one token per
    /// generated token; preempt the youngest resident on exhaustion.
    TokenGranular {
        /// Fraction of the budget below which new admissions are accepted.
        /// Growth of already-resident requests may use the full budget; the
        /// gap between watermark and budget is headroom that absorbs growth
        /// before preemption kicks in. Clamped to `(0, 1]`.
        admission_watermark: f64,
    },
}

impl KvMode {
    /// Token-granular accounting with the default 0.9 admission watermark.
    pub fn token_granular() -> Self {
        KvMode::TokenGranular { admission_watermark: 0.9 }
    }
}

/// Static configuration of the scheduler.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Independent pipeline replicas (data parallelism).
    pub replicas: usize,
    /// Decode slots per replica (= pipeline stages under PP, 1 under TP).
    pub slots_per_replica: usize,
    /// KV budget per replica.
    pub kv_budget: KvBudget,
    /// KV accounting mode.
    pub kv: KvMode,
}

/// Handle of one resident request's lease in the scheduler's dense lease
/// table. Returned by [`Admission`]; the per-token hot path
/// ([`grow`](ContinuousBatchScheduler::grow),
/// [`complete`](ContinuousBatchScheduler::complete)) indexes the table
/// directly instead of walking an id-keyed map. Handles are reused after
/// release, so they identify a lease only while it is live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LeaseId(u32);

impl LeaseId {
    /// Index into dense side tables kept by the event engine.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where an admitted request landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// The admitted request, with any resume state it carried.
    pub req: QueuedRequest,
    /// Replica index it was placed on.
    pub replica: usize,
    /// Lease handle for the hot-path accounting calls.
    pub lease: LeaseId,
    /// Admission instant.
    pub at: Time,
}

/// A preemption victim evicted by [`grow`](ContinuousBatchScheduler::grow):
/// its lease is already released; the event engine must drop its resident
/// state and [`requeue`](ContinuousBatchScheduler::requeue) the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Preemption {
    /// The lease that was evicted (released; the handle may be reused).
    pub lease: LeaseId,
    /// The request that held it.
    pub id: RequestId,
}

#[derive(Debug, Clone, Default)]
struct ReplicaState {
    busy_slots: usize,
    kv_reserved: u64,
    /// Resident leases in admission order — the youngest (preemption
    /// victim) is always the last element.
    residents: Vec<LeaseId>,
}

/// Accounting entry for one resident request.
#[derive(Debug, Clone, Copy)]
struct Lease {
    id: RequestId,
    replica: usize,
    /// Tokens currently reserved for this request.
    kv_now: u64,
    /// Priority class, for victim selection (larger = evicted first).
    class: u8,
}

/// Snapshot of a failed head-of-line admission, so the next
/// [`admit_ready`](ContinuousBatchScheduler::admit_ready) call can skip the
/// full selection scan when nothing that matters has changed. Valid while
/// the release epoch is unchanged (no capacity freed) and only *new*
/// arrivals were pushed behind `seen_len`; any queue removal goes through
/// an admission, which consumes the cache.
#[derive(Debug, Clone, Copy)]
struct BlockedHead {
    /// Total admission-order key of the blocked head pick.
    key: (PriorityClass, i128, Time, RequestId),
    /// Queue length already scanned; only the suffix beyond it is new.
    seen_len: usize,
    /// [`ContinuousBatchScheduler::release_epoch`] at the failed attempt.
    release_epoch: u64,
}

/// Policy-driven continuous-batching scheduler over replicated pipelines.
#[derive(Debug)]
pub struct ContinuousBatchScheduler {
    cfg: SchedulerConfig,
    policy: Box<dyn SchedulingPolicy>,
    queue: RequestQueue,
    replicas: Vec<ReplicaState>,
    /// Dense lease table; freed slots are recycled LIFO.
    leases: Vec<Option<Lease>>,
    free_leases: Vec<LeaseId>,
    /// Running totals so per-event occupancy sampling is O(1), not
    /// O(replicas).
    busy_total: usize,
    kv_total: u64,
    rejected: Vec<RequestSpec>,
    peak_kv: u64,
    admissions: u64,
    preemptions: u64,
    /// Bumped by every [`release`](Self::release) (completion or
    /// preemption) — the only events that can unblock a stuck head.
    release_epoch: u64,
    /// Cached head-of-line block from the last failed admission attempt.
    blocked: Option<BlockedHead>,
}

impl ContinuousBatchScheduler {
    /// Creates an idle scheduler with the FIFO policy.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` or `slots_per_replica` is zero.
    pub fn new(cfg: SchedulerConfig) -> Self {
        assert!(cfg.replicas > 0, "need at least one replica");
        assert!(cfg.slots_per_replica > 0, "need at least one slot");
        ContinuousBatchScheduler {
            queue: RequestQueue::new(),
            policy: Box::new(Fifo),
            replicas: vec![ReplicaState::default(); cfg.replicas],
            leases: Vec::new(),
            free_leases: Vec::new(),
            busy_total: 0,
            kv_total: 0,
            rejected: Vec::new(),
            peak_kv: 0,
            admissions: 0,
            preemptions: 0,
            release_epoch: 0,
            blocked: None,
            cfg,
        }
    }

    /// Replaces the admission-ordering policy.
    pub fn with_policy(mut self, policy: Box<dyn SchedulingPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Offers an arriving request. Requests whose *complete* KV footprint
    /// exceeds the per-replica budget can never finish in either mode and
    /// are rejected up front.
    pub fn enqueue(&mut self, spec: RequestSpec) {
        if spec.kv_tokens() > self.cfg.kv_budget.tokens {
            self.rejected.push(spec);
        } else {
            self.queue.push(QueuedRequest::fresh(spec));
        }
    }

    /// Returns a preempted request (with its resume state) to the queue.
    pub fn requeue(&mut self, req: QueuedRequest) {
        debug_assert!(req.spec.kv_tokens() <= self.cfg.kv_budget.tokens);
        self.queue.push(req);
    }

    /// Tokens a request reserves the instant it is admitted under the
    /// configured mode.
    fn admission_kv(&self, req: &QueuedRequest) -> u64 {
        match self.cfg.kv {
            KvMode::FullReservation => req.spec.kv_tokens(),
            KvMode::TokenGranular { .. } => req.resident_kv(),
        }
    }

    /// Reservation level above which admissions stop.
    fn admission_limit(&self) -> u64 {
        match self.cfg.kv {
            KvMode::FullReservation => self.cfg.kv_budget.tokens,
            KvMode::TokenGranular { admission_watermark } => {
                let w = admission_watermark.clamp(f64::MIN_POSITIVE, 1.0);
                (self.cfg.kv_budget.tokens as f64 * w).floor() as u64
            }
        }
    }

    /// Stores a new lease, reusing a freed slot when one exists.
    fn alloc_lease(&mut self, lease: Lease) -> LeaseId {
        match self.free_leases.pop() {
            Some(h) => {
                debug_assert!(self.leases[h.index()].is_none(), "reusing a live lease slot");
                self.leases[h.index()] = Some(lease);
                h
            }
            None => {
                self.leases.push(Some(lease));
                LeaseId((self.leases.len() - 1) as u32)
            }
        }
    }

    /// Releases `lease`: removes it from its replica's accounting and
    /// recycles the slot. Returns the released entry.
    fn release(&mut self, lease: LeaseId) -> Lease {
        let l = self.leases[lease.index()].take().expect("releasing a non-resident lease");
        let r = &mut self.replicas[l.replica];
        // Victims pop from the tail; completions remove from the middle.
        // `rposition` because the common (preemption) case is the youngest.
        let pos = r.residents.iter().rposition(|&x| x == lease).expect("lease on its replica");
        r.residents.remove(pos);
        assert!(r.busy_slots > 0, "releasing on an idle replica");
        r.busy_slots -= 1;
        r.kv_reserved =
            r.kv_reserved.checked_sub(l.kv_now).expect("KV release exceeds reservation");
        self.busy_total -= 1;
        self.kv_total -= l.kv_now;
        self.free_leases.push(lease);
        self.release_epoch += 1;
        l
    }

    /// Admits waiting requests in `(priority class, policy priority)` order
    /// while the top pick fits some replica (a free slot and enough KV
    /// headroom under the admission limit; an idle replica always accepts a
    /// feasible request, which guarantees evicted work eventually resumes).
    /// The class dominates, so background traffic never overtakes
    /// interactive traffic at admission; the policy orders within a class.
    /// Head-of-line blocking on that order is deliberate: it is what makes
    /// saturation fair.
    ///
    /// Overload fast path: when the head pick could not be placed and no
    /// lease has been released since (same `release_epoch`, bumped by
    /// every completion/preemption), the head is still blocked — only the
    /// *new* arrivals pushed since the failed attempt need scanning, and
    /// only to check whether one of them outranks the cached head. On
    /// saturated shapes this turns every queue re-walk between releases
    /// into O(new arrivals) instead of O(queue depth). Correct because
    /// in-tree policies order on request state only (not `ctx.now`), so a
    /// key that lost stays losing until capacity frees up.
    pub fn admit_ready(&mut self, ctx: &PolicyContext) -> Vec<Admission> {
        if let Some(b) = self.blocked.take() {
            if b.release_epoch == self.release_epoch {
                let policy = &self.policy;
                let outranked = self.queue.iter().skip(b.seen_len).any(|q| {
                    (q.spec.class, policy.priority(q, ctx), q.spec.arrival, q.spec.id) < b.key
                });
                if !outranked {
                    // Same capacity, no better pick: still blocked.
                    self.blocked = Some(BlockedHead { seen_len: self.queue.len(), ..b });
                    return Vec::new();
                }
            }
        }
        let mut admitted = Vec::new();
        loop {
            let policy = &self.policy;
            let Some(idx) = self.queue.min_index_by_key(|q| {
                (q.spec.class, policy.priority(q, ctx), q.spec.arrival, q.spec.id)
            }) else {
                break;
            };
            let need = self.admission_kv(self.queue.get(idx));
            let limit = self.admission_limit();
            // Least-loaded replica that can take the pick; ties on busy
            // slots break on KV reserved so reservations spread evenly.
            let slot = self
                .replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| {
                    r.busy_slots < self.cfg.slots_per_replica
                        && (r.kv_reserved + need <= limit || r.kv_reserved == 0)
                })
                .min_by_key(|(i, r)| (r.busy_slots, r.kv_reserved, *i));
            let Some((ridx, _)) = slot else {
                let q = self.queue.get(idx);
                self.blocked = Some(BlockedHead {
                    key: (q.spec.class, policy.priority(q, ctx), q.spec.arrival, q.spec.id),
                    seen_len: self.queue.len(),
                    release_epoch: self.release_epoch,
                });
                break;
            };
            let req = self.queue.remove(idx);
            let lease = self.alloc_lease(Lease {
                id: req.spec.id,
                replica: ridx,
                kv_now: need,
                class: req.spec.class.0,
            });
            let r = &mut self.replicas[ridx];
            r.busy_slots += 1;
            r.kv_reserved += need;
            r.residents.push(lease);
            assert!(
                r.kv_reserved <= self.cfg.kv_budget.tokens,
                "admission overcommitted KV: {} > {}",
                r.kv_reserved,
                self.cfg.kv_budget.tokens
            );
            self.peak_kv = self.peak_kv.max(r.kv_reserved);
            self.busy_total += 1;
            self.kv_total += need;
            self.admissions += 1;
            admitted.push(Admission { req, replica: ridx, lease, at: ctx.now });
        }
        admitted
    }

    /// Extends a resident request's reservation by one generated token.
    ///
    /// In full-reservation mode this is a no-op (the token was paid for at
    /// admission). In token-granular mode, if the replica's pool is
    /// exhausted residents are evicted — lowest priority class first,
    /// youngest within the class — their accounting released here and
    /// appended to `victims` as [`Preemption`]s so the event loop can
    /// decide their fate (recompute requeue or swap to the CXL host pool)
    /// — until the token fits. If the growing request is itself the
    /// selected victim, it is in `victims` and the token must not be
    /// emitted.
    ///
    /// `victims` is cleared first and is a caller-owned scratch buffer:
    /// the event loops allocate it once per run and reuse it across every
    /// growth call, so the per-token hot path never allocates.
    ///
    /// # Panics
    ///
    /// Panics if `lease` is not live.
    pub fn grow(&mut self, lease: LeaseId, victims: &mut Vec<Preemption>) {
        victims.clear();
        if matches!(self.cfg.kv, KvMode::FullReservation) {
            assert!(self.leases[lease.index()].is_some(), "growing a non-resident request");
            return;
        }
        let replica = self.leases[lease.index()].expect("growing a non-resident request").replica;
        while self.replicas[replica].kv_reserved + 1 > self.cfg.kv_budget.tokens {
            // Lowest-priority class first (largest class value), youngest
            // within the class (largest admission-order index). With one
            // class this is exactly the youngest resident.
            let victim = *self.replicas[replica]
                .residents
                .iter()
                .enumerate()
                .max_by_key(|(i, l)| {
                    (self.leases[l.index()].expect("resident lease is live").class, *i)
                })
                .map(|(_, l)| l)
                .expect("exhausted replica has residents");
            let released = self.release(victim);
            self.preemptions += 1;
            victims.push(Preemption { lease: victim, id: released.id });
            if victim == lease {
                // The grower was the selected victim: it evicted itself and
                // must resume later; nothing grew.
                return;
            }
        }
        let l = self.leases[lease.index()].as_mut().expect("grower survived");
        l.kv_now += 1;
        let r = &mut self.replicas[replica];
        r.kv_reserved += 1;
        assert!(r.kv_reserved <= self.cfg.kv_budget.tokens, "growth overcommitted KV");
        self.peak_kv = self.peak_kv.max(r.kv_reserved);
        self.kv_total += 1;
    }

    /// Extends a resident request's reservation by `n` generated tokens in
    /// one batched update — the span-fast-forward equivalent of `n`
    /// uneventful [`grow`](Self::grow) calls. The caller must have proven
    /// headroom (via [`kv_headroom`](Self::kv_headroom) and its exhaustion
    /// forecast): batched growth never preempts, and overcommitting the
    /// budget panics. A no-op in full-reservation mode, like `grow`.
    ///
    /// # Panics
    ///
    /// Panics if `lease` is not live or the growth exceeds the budget.
    pub fn grow_n(&mut self, lease: LeaseId, n: u64) {
        if n == 0 || matches!(self.cfg.kv, KvMode::FullReservation) {
            assert!(self.leases[lease.index()].is_some(), "growing a non-resident request");
            return;
        }
        let l = self.leases[lease.index()].as_mut().expect("growing a non-resident request");
        l.kv_now += n;
        let r = &mut self.replicas[l.replica];
        r.kv_reserved += n;
        assert!(r.kv_reserved <= self.cfg.kv_budget.tokens, "batched growth overcommitted KV");
        self.peak_kv = self.peak_kv.max(r.kv_reserved);
        self.kv_total += n;
    }

    /// Tokens of growth `replica` can absorb before its next growth call
    /// would preempt — the input to the span engine's exhaustion-time
    /// forecast over the replica's resident list (residents grow one token
    /// per step, so the forecast turns this headroom into an instant).
    pub fn kv_headroom(&self, replica: usize) -> u64 {
        self.cfg.kv_budget.tokens - self.replicas[replica].kv_reserved
    }

    /// Releases the slot and KV reservation of a finished request.
    ///
    /// # Panics
    ///
    /// Panics if `lease` is not live.
    pub fn complete(&mut self, lease: LeaseId) {
        self.release(lease);
    }

    /// Removes and returns the entire waiting set — crash teardown. The
    /// caller is responsible for releasing in-flight leases separately
    /// (via [`complete`](Self::complete)); this only empties the queue and
    /// invalidates the blocked-head cache, which may point at a drained
    /// request.
    pub fn drain_waiting(&mut self) -> Vec<QueuedRequest> {
        self.blocked = None;
        self.queue.drain()
    }

    /// Requests currently waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Largest queue depth ever observed.
    pub fn peak_queue_depth(&self) -> usize {
        self.queue.peak_depth()
    }

    /// Requests currently occupying slots, across all replicas.
    pub fn in_flight(&self) -> usize {
        self.busy_total
    }

    /// Total decode slots across replicas.
    pub fn total_slots(&self) -> usize {
        self.cfg.replicas * self.cfg.slots_per_replica
    }

    /// KV tokens currently reserved on `replica`.
    pub fn kv_reserved(&self, replica: usize) -> u64 {
        self.replicas[replica].kv_reserved
    }

    /// KV tokens currently reserved across all replicas.
    pub fn total_kv_reserved(&self) -> u64 {
        self.kv_total
    }

    /// Largest per-replica KV reservation ever observed.
    pub fn peak_kv_reserved(&self) -> u64 {
        self.peak_kv
    }

    /// Per-replica KV budget in tokens.
    pub fn kv_budget_tokens(&self) -> u64 {
        self.cfg.kv_budget.tokens
    }

    /// Requests rejected because they can never fit the KV budget.
    pub fn rejected(&self) -> &[RequestSpec] {
        &self.rejected
    }

    /// Total admissions so far (re-admissions after preemption included).
    pub fn admissions(&self) -> u64 {
        self.admissions
    }

    /// Total preemption events so far.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ShortestRemainingDecode;
    use crate::queue::PriorityClass;
    use cent_compiler::Strategy;

    fn spec(id: u64, prompt: usize, decode: usize) -> RequestSpec {
        RequestSpec {
            id: RequestId(id),
            arrival: Time::from_us(id),
            prompt,
            decode,
            class: PriorityClass::default(),
            session: crate::queue::SessionId(id),
        }
    }

    fn classed(id: u64, prompt: usize, decode: usize, class: u8) -> RequestSpec {
        RequestSpec { class: PriorityClass(class), ..spec(id, prompt, decode) }
    }

    fn sched(replicas: usize, slots: usize, kv: u64) -> ContinuousBatchScheduler {
        ContinuousBatchScheduler::new(SchedulerConfig {
            replicas,
            slots_per_replica: slots,
            kv_budget: KvBudget::tokens(kv),
            kv: KvMode::FullReservation,
        })
    }

    fn token_sched(replicas: usize, slots: usize, kv: u64) -> ContinuousBatchScheduler {
        ContinuousBatchScheduler::new(SchedulerConfig {
            replicas,
            slots_per_replica: slots,
            kv_budget: KvBudget::tokens(kv),
            kv: KvMode::TokenGranular { admission_watermark: 1.0 },
        })
    }

    fn ctx(us: u64) -> PolicyContext {
        PolicyContext { now: Time::from_us(us), token_interval: Time::from_us(1) }
    }

    /// Single-call growth with a throwaway scratch buffer (the event loops
    /// reuse one buffer across calls; tests want the victims back).
    fn grow(s: &mut ContinuousBatchScheduler, lease: LeaseId) -> Vec<Preemption> {
        let mut victims = Vec::new();
        s.grow(lease, &mut victims);
        victims
    }

    #[test]
    fn kv_budget_never_overcommitted() {
        // 3 slots but KV for only two resident 10-token requests.
        let mut s = sched(1, 3, 25);
        for i in 0..6 {
            s.enqueue(spec(i, 6, 4));
        }
        let first = s.admit_ready(&ctx(0));
        assert_eq!(first.len(), 2, "third request must not overcommit KV");
        assert_eq!(s.kv_reserved(0), 20);
        assert!(s.peak_kv_reserved() <= s.kv_budget_tokens());
        // Finishing one frees exactly one admission's worth.
        s.complete(first[0].lease);
        let next = s.admit_ready(&ctx(1));
        assert_eq!(next.len(), 1);
        assert!(s.kv_reserved(0) <= 25);
    }

    #[test]
    fn fifo_order_under_saturation() {
        let mut s = sched(1, 2, u64::MAX);
        for i in 0..10 {
            s.enqueue(spec(i, 4, 4));
        }
        let mut order = Vec::new();
        let mut resident: Vec<Admission> = s.admit_ready(&ctx(0));
        order.extend(resident.iter().map(|a| a.req.spec.id.0));
        let mut clock = 1u64;
        while !resident.is_empty() {
            let done = resident.remove(0);
            s.complete(done.lease);
            let mut newly = s.admit_ready(&ctx(clock));
            order.extend(newly.iter().map(|a| a.req.spec.id.0));
            resident.append(&mut newly);
            clock += 1;
        }
        // Admission order is exactly arrival order.
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn srd_policy_reorders_admissions() {
        let mut s = sched(1, 1, u64::MAX).with_policy(Box::new(ShortestRemainingDecode));
        s.enqueue(spec(0, 4, 100));
        s.enqueue(spec(1, 4, 5));
        s.enqueue(spec(2, 4, 50));
        let first = s.admit_ready(&ctx(0));
        assert_eq!(first[0].req.spec.id, RequestId(1), "shortest decode first");
        s.complete(first[0].lease);
        let second = s.admit_ready(&ctx(1));
        assert_eq!(second[0].req.spec.id, RequestId(2));
    }

    #[test]
    fn oversized_requests_are_rejected_not_blocking() {
        let mut s = sched(1, 2, 100);
        s.enqueue(spec(0, 400, 400)); // can never fit
        s.enqueue(spec(1, 10, 10));
        assert_eq!(s.rejected().len(), 1);
        let adm = s.admit_ready(&ctx(0));
        assert_eq!(adm.len(), 1);
        assert_eq!(adm[0].req.spec.id, RequestId(1));
    }

    #[test]
    fn empty_queue_is_idle_and_correct() {
        let mut s = sched(2, 4, 1000);
        assert!(s.admit_ready(&ctx(0)).is_empty());
        assert_eq!(s.in_flight(), 0);
        assert_eq!(s.queue_len(), 0);
        assert_eq!(s.peak_kv_reserved(), 0);
    }

    #[test]
    fn replicas_balance_load() {
        let mut s = sched(2, 4, u64::MAX);
        for i in 0..6 {
            s.enqueue(spec(i, 4, 4));
        }
        let adm = s.admit_ready(&ctx(0));
        assert_eq!(adm.len(), 6);
        let on_r0 = adm.iter().filter(|a| a.replica == 0).count();
        assert_eq!(on_r0, 3, "least-loaded placement should balance");
    }

    #[test]
    fn placement_ties_break_on_kv_reserved() {
        // Two replicas, equal busy-slot counts after the first two
        // admissions, but very different reservations: the light request
        // lands on replica 0, the heavy one on replica 1, and the third
        // must go where less KV is piled up (replica 0).
        let mut s = sched(2, 4, u64::MAX);
        s.enqueue(spec(0, 10, 10)); // 20 tokens
        s.enqueue(spec(1, 500, 500)); // 1000 tokens
        s.enqueue(spec(2, 10, 10));
        let adm = s.admit_ready(&ctx(0));
        assert_eq!(adm.len(), 3);
        assert_eq!(adm[0].replica, 0);
        assert_eq!(adm[1].replica, 1);
        assert_eq!(adm[2].replica, 0, "tie on busy slots must break on kv_reserved");
    }

    #[test]
    fn token_granular_reserves_prompt_and_grows() {
        let mut s = token_sched(1, 4, 100);
        s.enqueue(spec(0, 10, 50));
        let adm = s.admit_ready(&ctx(0));
        assert_eq!(adm.len(), 1);
        assert_eq!(s.kv_reserved(0), 10, "only the prompt is reserved");
        for _ in 0..50 {
            assert!(grow(&mut s, adm[0].lease).is_empty());
        }
        assert_eq!(s.kv_reserved(0), 60);
        s.complete(adm[0].lease);
        assert_eq!(s.kv_reserved(0), 0);
        assert_eq!(s.in_flight(), 0);
        assert_eq!(s.total_kv_reserved(), 0);
    }

    #[test]
    fn exhaustion_preempts_youngest_resident() {
        // Budget 30: two requests admitted (10 each), then growth of the
        // older one exhausts the pool and evicts the younger.
        let mut s = token_sched(1, 4, 30);
        s.enqueue(spec(0, 10, 18));
        s.enqueue(spec(1, 10, 18));
        let adm = s.admit_ready(&ctx(0));
        assert_eq!(adm.len(), 2);
        assert_eq!(s.kv_reserved(0), 20);
        // Grow the elder to the budget.
        for _ in 0..10 {
            assert!(grow(&mut s, adm[0].lease).is_empty());
        }
        assert_eq!(s.kv_reserved(0), 30);
        // One more token must evict request 1 (the youngest).
        let victims = grow(&mut s, adm[0].lease);
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].id, RequestId(1));
        assert_eq!(victims[0].lease, adm[1].lease);
        assert_eq!(s.preemptions(), 1);
        assert_eq!(s.kv_reserved(0), 21);
        assert_eq!(s.in_flight(), 1);
    }

    #[test]
    fn youngest_grower_preempts_itself() {
        let mut s = token_sched(1, 4, 25);
        s.enqueue(spec(0, 10, 14));
        s.enqueue(spec(1, 10, 14));
        let adm = s.admit_ready(&ctx(0));
        assert_eq!(adm.len(), 2);
        for _ in 0..5 {
            assert!(grow(&mut s, adm[0].lease).is_empty());
        }
        // Pool is full (25); the *younger* request asks for growth and must
        // sacrifice itself rather than evict its elder.
        let victims = grow(&mut s, adm[1].lease);
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].id, RequestId(1));
        assert_eq!(s.in_flight(), 1);
        assert_eq!(s.kv_reserved(0), 15);
        // It resumes from the queue once readmitted.
        let mut q = QueuedRequest::fresh(spec(1, 10, 14));
        q.progress = 0;
        q.preemptions = 1;
        s.requeue(q);
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn eviction_picks_lowest_class_before_youngest() {
        // Three residents: an interactive elder, a *background* middle and
        // an interactive youngest. Exhaustion must evict the background one
        // even though it is not the youngest; the next eviction falls back
        // to the youngest of the survivors.
        let mut s = token_sched(1, 4, 30);
        s.enqueue(classed(0, 10, 18, 0));
        s.enqueue(classed(1, 10, 18, 1));
        s.enqueue(classed(2, 10, 18, 0));
        let adm = s.admit_ready(&ctx(0));
        assert_eq!(adm.len(), 3);
        assert_eq!(s.kv_reserved(0), 30);
        let victims = grow(&mut s, adm[0].lease);
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].id, RequestId(1), "background resident evicted first");
        // Fill the pool again and force another eviction: now the youngest
        // interactive resident (request 2) goes.
        for _ in 0..9 {
            assert!(grow(&mut s, adm[0].lease).is_empty());
        }
        let victims = grow(&mut s, adm[0].lease);
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].id, RequestId(2));
        assert_eq!(s.in_flight(), 1);
    }

    #[test]
    fn admission_serves_classes_before_policy_order() {
        // A later-arriving interactive request overtakes an earlier
        // background one; within a class FIFO order is preserved.
        let mut s = sched(1, 1, u64::MAX);
        s.enqueue(classed(0, 4, 4, 1));
        s.enqueue(classed(1, 4, 4, 0));
        s.enqueue(classed(2, 4, 4, 1));
        let mut order = Vec::new();
        for clock in 0..3 {
            let adm = s.admit_ready(&ctx(clock));
            assert_eq!(adm.len(), 1);
            order.push(adm[0].req.spec.id.0);
            s.complete(adm[0].lease);
        }
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn lease_handles_are_recycled_deterministically() {
        // Freed slots are reused LIFO: after completing both residents, the
        // next two admissions get the same handles back in reverse order.
        let mut s = sched(1, 4, u64::MAX);
        s.enqueue(spec(0, 4, 4));
        s.enqueue(spec(1, 4, 4));
        let first = s.admit_ready(&ctx(0));
        s.complete(first[0].lease);
        s.complete(first[1].lease);
        s.enqueue(spec(2, 4, 4));
        s.enqueue(spec(3, 4, 4));
        let second = s.admit_ready(&ctx(1));
        assert_eq!(second[0].lease, first[1].lease);
        assert_eq!(second[1].lease, first[0].lease);
    }

    #[test]
    fn watermark_gates_admission_but_idle_replica_accepts() {
        let mut s = ContinuousBatchScheduler::new(SchedulerConfig {
            replicas: 1,
            slots_per_replica: 4,
            kv_budget: KvBudget::tokens(100),
            kv: KvMode::TokenGranular { admission_watermark: 0.5 },
        });
        // 60-token prompt exceeds the 50-token watermark but the replica is
        // idle, so it must still be admitted (feasibility guarantee).
        s.enqueue(spec(0, 60, 10));
        let adm = s.admit_ready(&ctx(0));
        assert_eq!(adm.len(), 1);
        // A second 20-token prompt would land above the watermark: blocked.
        s.enqueue(spec(1, 20, 10));
        assert!(s.admit_ready(&ctx(1)).is_empty());
        s.complete(adm[0].lease);
        assert_eq!(s.admit_ready(&ctx(2)).len(), 1);
    }

    #[test]
    fn blocked_head_cache_preserves_admission_order() {
        // One slot, occupied: every admission attempt blocks. The cached
        // blocked head must not change what gets admitted — later arrivals
        // that outrank the cached head (lower class) still win once
        // capacity frees up, and same-class arrivals stay behind it.
        let mut s = sched(1, 1, u64::MAX);
        s.enqueue(classed(0, 4, 4, 0));
        let first = s.admit_ready(&ctx(0));
        assert_eq!(first.len(), 1);
        s.enqueue(classed(1, 4, 4, 1));
        assert!(s.admit_ready(&ctx(1)).is_empty(), "slot is busy");
        // Re-poll without any release: the fast path answers.
        assert!(s.admit_ready(&ctx(2)).is_empty());
        assert!(s.admit_ready(&ctx(3)).is_empty());
        // A higher-class (interactive) arrival outranks the cached head;
        // still no capacity, but the cache must now track the new head.
        s.enqueue(classed(2, 4, 4, 0));
        assert!(s.admit_ready(&ctx(4)).is_empty());
        // Capacity frees: the interactive request is admitted first even
        // though the background one was cached as the head earlier.
        s.complete(first[0].lease);
        let adm = s.admit_ready(&ctx(5));
        assert_eq!(adm.len(), 1);
        assert_eq!(adm[0].req.spec.id, RequestId(2));
        s.complete(adm[0].lease);
        let adm = s.admit_ready(&ctx(6));
        assert_eq!(adm.len(), 1);
        assert_eq!(adm[0].req.spec.id, RequestId(1));
    }

    #[test]
    fn blocked_head_cache_survives_same_rank_arrivals() {
        // New arrivals behind a blocked head (same class, later FIFO order)
        // must neither unblock it nor get admitted out of order.
        let mut s = sched(1, 1, u64::MAX);
        s.enqueue(spec(0, 4, 4));
        let first = s.admit_ready(&ctx(0));
        assert_eq!(first.len(), 1);
        s.enqueue(spec(1, 4, 4));
        assert!(s.admit_ready(&ctx(1)).is_empty());
        for i in 2..20 {
            s.enqueue(spec(i, 4, 4));
            assert!(s.admit_ready(&ctx(i)).is_empty());
        }
        s.complete(first[0].lease);
        let adm = s.admit_ready(&ctx(20));
        assert_eq!(adm.len(), 1);
        assert_eq!(adm[0].req.spec.id, RequestId(1), "FIFO head admitted after release");
    }

    #[test]
    fn budget_from_llama70b_mapping_is_sane() {
        let cfg = ModelConfig::llama2_70b();
        let mapping = SystemMapping::plan(&cfg, 32, Strategy::PipelineParallel).unwrap();
        let budget = KvBudget::from_mapping(&cfg, &mapping);
        // 10 channels × 512 MiB hold a ~1.6 GiB block plus KV; the pool must
        // at least cover the paper's operating point (80 queries × 4096 ctx)
        // and stay below the raw channel capacity bound.
        let paper_point = 80 * 4096;
        assert!(budget.tokens >= paper_point, "budget {} tokens", budget.tokens);
        let bound =
            10 * CHANNEL_CAPACITY.as_bytes() / cfg.kv_bytes_per_token_per_block().as_bytes();
        assert!(budget.tokens < bound);
    }

    #[test]
    fn tp_budget_accounts_for_all_layers() {
        // Under pure TP the device group holds every layer's weights and KV,
        // so the per-context-token cost is `layers` times the per-block one.
        let cfg = ModelConfig::llama2_70b();
        let mapping = SystemMapping::plan(&cfg, 32, Strategy::TensorParallel).unwrap();
        let budget = KvBudget::from_mapping(&cfg, &mapping);
        let capacity = 32 * 32 * CHANNEL_CAPACITY.as_bytes();
        let weights = cfg.block_weight_bytes().as_bytes() * cfg.layers as u64;
        let expect = (capacity - weights)
            / (cfg.kv_bytes_per_token_per_block().as_bytes() * cfg.layers as u64);
        assert_eq!(budget.tokens, expect);
        // Physical sanity: the budgeted KV plus weights fit the raw capacity.
        let kv_bytes =
            budget.tokens * cfg.kv_bytes_per_token_per_block().as_bytes() * cfg.layers as u64;
        assert!(weights + kv_bytes <= capacity);
    }
}
