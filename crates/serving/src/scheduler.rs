//! Continuous-batching admission control over pipeline-stage slots.
//!
//! CENT's pipeline-parallel mapping gives each replica `batch` decode slots
//! (one query per pipeline stage, §5.1) and a fixed KV-cache budget: the
//! GDDR6 channels assigned to a block hold its weights plus the KV cache of
//! every resident query (§5.4). The [`ContinuousBatchScheduler`] admits
//! queued requests into slots as they free up — the vLLM-style iteration
//! policy, specialised to CENT's structural batch limit — and never
//! overcommits the KV budget: a request's full footprint (prompt + decode
//! tokens) is reserved at admission so decode can never be evicted
//! mid-flight.

use cent_compiler::{Strategy, SystemMapping};
use cent_model::ModelConfig;
use cent_types::consts::CHANNEL_CAPACITY;
use cent_types::Time;

use crate::queue::{RequestQueue, RequestSpec};

/// KV-cache capacity of one pipeline replica, in context tokens.
///
/// Derived from the mapping: each transformer block lives in
/// `channels_per_block × tp_degree` GDDR6 channels that must hold the block
/// weights; the remainder holds KV cache. All resident queries share that
/// per-block pool, so the binding constraint is the sum of their contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvBudget {
    /// Total context tokens the per-block KV pool can hold.
    pub tokens: u64,
}

impl KvBudget {
    /// Computes the per-replica budget for `mapping`.
    pub fn from_mapping(cfg: &ModelConfig, mapping: &SystemMapping) -> Self {
        let channels = (mapping.channels_per_block * mapping.tp_degree.max(1)) as u64;
        let capacity = CHANNEL_CAPACITY.as_bytes() * channels;
        // Under PP/hybrid each block owns its channel group; under pure TP
        // the whole device group holds every layer's weights and KV, so the
        // group is shared by all of them.
        let blocks_in_group =
            if mapping.strategy == Strategy::TensorParallel { cfg.layers as u64 } else { 1 };
        let weights = cfg.block_weight_bytes().as_bytes() * blocks_in_group;
        let kv_space = capacity.saturating_sub(weights);
        let per_token = (cfg.kv_bytes_per_token_per_block().as_bytes() * blocks_in_group).max(1);
        KvBudget { tokens: kv_space / per_token }
    }

    /// A budget fixed in tokens (used by tests and what-if sweeps).
    pub fn tokens(tokens: u64) -> Self {
        KvBudget { tokens }
    }
}

/// Static configuration of the scheduler.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Independent pipeline replicas (data parallelism).
    pub replicas: usize,
    /// Decode slots per replica (= pipeline stages under PP, 1 under TP).
    pub slots_per_replica: usize,
    /// KV budget per replica.
    pub kv_budget: KvBudget,
}

/// Where an admitted request landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// The admitted request.
    pub spec: RequestSpec,
    /// Replica index it was placed on.
    pub replica: usize,
    /// Admission instant.
    pub at: Time,
}

#[derive(Debug, Clone, Default)]
struct ReplicaState {
    busy_slots: usize,
    kv_reserved: u64,
}

/// FIFO continuous-batching scheduler over replicated pipelines.
#[derive(Debug)]
pub struct ContinuousBatchScheduler {
    cfg: SchedulerConfig,
    queue: RequestQueue,
    replicas: Vec<ReplicaState>,
    rejected: Vec<RequestSpec>,
    peak_kv: u64,
    admissions: u64,
}

impl ContinuousBatchScheduler {
    /// Creates an idle scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` or `slots_per_replica` is zero.
    pub fn new(cfg: SchedulerConfig) -> Self {
        assert!(cfg.replicas > 0, "need at least one replica");
        assert!(cfg.slots_per_replica > 0, "need at least one slot");
        ContinuousBatchScheduler {
            queue: RequestQueue::new(),
            replicas: vec![ReplicaState::default(); cfg.replicas],
            rejected: Vec::new(),
            peak_kv: 0,
            admissions: 0,
            cfg,
        }
    }

    /// Offers an arriving request. Requests whose KV footprint exceeds the
    /// per-replica budget can never be scheduled and are rejected up front.
    pub fn enqueue(&mut self, spec: RequestSpec) {
        if spec.kv_tokens() > self.cfg.kv_budget.tokens {
            self.rejected.push(spec);
        } else {
            self.queue.push(spec);
        }
    }

    /// Admits queued requests in strict FIFO order while the head fits some
    /// replica (a free slot and enough unreserved KV budget). Head-of-line
    /// blocking is deliberate: it is what makes saturation fair.
    pub fn admit_ready(&mut self, now: Time) -> Vec<Admission> {
        let mut admitted = Vec::new();
        while let Some(head) = self.queue.head() {
            let need = head.kv_tokens();
            // Least-loaded replica that can take the head request.
            let slot = self
                .replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| {
                    r.busy_slots < self.cfg.slots_per_replica
                        && r.kv_reserved + need <= self.cfg.kv_budget.tokens
                })
                .min_by_key(|(_, r)| r.busy_slots);
            let Some((idx, _)) = slot else { break };
            let spec = self.queue.pop().expect("head exists");
            let r = &mut self.replicas[idx];
            r.busy_slots += 1;
            r.kv_reserved += need;
            self.peak_kv = self.peak_kv.max(r.kv_reserved);
            self.admissions += 1;
            admitted.push(Admission { spec, replica: idx, at: now });
        }
        admitted
    }

    /// Releases the slot and KV reservation of a finished request.
    ///
    /// # Panics
    ///
    /// Panics if the admission does not match an outstanding reservation.
    pub fn complete(&mut self, admission: &Admission) {
        let r = &mut self.replicas[admission.replica];
        assert!(r.busy_slots > 0, "completing on an idle replica");
        r.busy_slots -= 1;
        r.kv_reserved = r
            .kv_reserved
            .checked_sub(admission.spec.kv_tokens())
            .expect("KV release exceeds reservation");
    }

    /// Requests currently waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Largest queue depth ever observed.
    pub fn peak_queue_depth(&self) -> usize {
        self.queue.peak_depth()
    }

    /// Requests currently occupying slots, across all replicas.
    pub fn in_flight(&self) -> usize {
        self.replicas.iter().map(|r| r.busy_slots).sum()
    }

    /// Total decode slots across replicas.
    pub fn total_slots(&self) -> usize {
        self.cfg.replicas * self.cfg.slots_per_replica
    }

    /// KV tokens currently reserved on `replica`.
    pub fn kv_reserved(&self, replica: usize) -> u64 {
        self.replicas[replica].kv_reserved
    }

    /// Largest per-replica KV reservation ever observed.
    pub fn peak_kv_reserved(&self) -> u64 {
        self.peak_kv
    }

    /// Per-replica KV budget in tokens.
    pub fn kv_budget_tokens(&self) -> u64 {
        self.cfg.kv_budget.tokens
    }

    /// Requests rejected because they can never fit the KV budget.
    pub fn rejected(&self) -> &[RequestSpec] {
        &self.rejected
    }

    /// Total requests admitted so far.
    pub fn admissions(&self) -> u64 {
        self.admissions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::RequestId;
    use cent_compiler::Strategy;

    fn spec(id: u64, prompt: usize, decode: usize) -> RequestSpec {
        RequestSpec { id: RequestId(id), arrival: Time::from_us(id), prompt, decode }
    }

    fn sched(replicas: usize, slots: usize, kv: u64) -> ContinuousBatchScheduler {
        ContinuousBatchScheduler::new(SchedulerConfig {
            replicas,
            slots_per_replica: slots,
            kv_budget: KvBudget::tokens(kv),
        })
    }

    #[test]
    fn kv_budget_never_overcommitted() {
        // 3 slots but KV for only two resident 10-token requests.
        let mut s = sched(1, 3, 25);
        for i in 0..6 {
            s.enqueue(spec(i, 6, 4));
        }
        let first = s.admit_ready(Time::ZERO);
        assert_eq!(first.len(), 2, "third request must not overcommit KV");
        assert_eq!(s.kv_reserved(0), 20);
        assert!(s.peak_kv_reserved() <= s.kv_budget_tokens());
        // Finishing one frees exactly one admission's worth.
        s.complete(&first[0]);
        let next = s.admit_ready(Time::from_us(1));
        assert_eq!(next.len(), 1);
        assert!(s.kv_reserved(0) <= 25);
    }

    #[test]
    fn fifo_order_under_saturation() {
        let mut s = sched(1, 2, u64::MAX);
        for i in 0..10 {
            s.enqueue(spec(i, 4, 4));
        }
        let mut order = Vec::new();
        let mut resident: Vec<Admission> = s.admit_ready(Time::ZERO);
        order.extend(resident.iter().map(|a| a.spec.id.0));
        let mut clock = 1u64;
        while !resident.is_empty() {
            let done = resident.remove(0);
            s.complete(&done);
            let mut newly = s.admit_ready(Time::from_us(clock));
            order.extend(newly.iter().map(|a| a.spec.id.0));
            resident.append(&mut newly);
            clock += 1;
        }
        // Admission order is exactly arrival order.
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn oversized_requests_are_rejected_not_blocking() {
        let mut s = sched(1, 2, 100);
        s.enqueue(spec(0, 400, 400)); // can never fit
        s.enqueue(spec(1, 10, 10));
        assert_eq!(s.rejected().len(), 1);
        let adm = s.admit_ready(Time::ZERO);
        assert_eq!(adm.len(), 1);
        assert_eq!(adm[0].spec.id, RequestId(1));
    }

    #[test]
    fn empty_queue_is_idle_and_correct() {
        let mut s = sched(2, 4, 1000);
        assert!(s.admit_ready(Time::ZERO).is_empty());
        assert_eq!(s.in_flight(), 0);
        assert_eq!(s.queue_len(), 0);
        assert_eq!(s.peak_kv_reserved(), 0);
    }

    #[test]
    fn replicas_balance_load() {
        let mut s = sched(2, 4, u64::MAX);
        for i in 0..6 {
            s.enqueue(spec(i, 4, 4));
        }
        let adm = s.admit_ready(Time::ZERO);
        assert_eq!(adm.len(), 6);
        let on_r0 = adm.iter().filter(|a| a.replica == 0).count();
        assert_eq!(on_r0, 3, "least-loaded placement should balance");
    }

    #[test]
    fn budget_from_llama70b_mapping_is_sane() {
        let cfg = ModelConfig::llama2_70b();
        let mapping = SystemMapping::plan(&cfg, 32, Strategy::PipelineParallel).unwrap();
        let budget = KvBudget::from_mapping(&cfg, &mapping);
        // 10 channels × 512 MiB hold a ~1.6 GiB block plus KV; the pool must
        // at least cover the paper's operating point (80 queries × 4096 ctx)
        // and stay below the raw channel capacity bound.
        let paper_point = 80 * 4096;
        assert!(budget.tokens >= paper_point, "budget {} tokens", budget.tokens);
        let bound =
            10 * CHANNEL_CAPACITY.as_bytes() / cfg.kv_bytes_per_token_per_block().as_bytes();
        assert!(budget.tokens < bound);
    }

    #[test]
    fn tp_budget_accounts_for_all_layers() {
        // Under pure TP the device group holds every layer's weights and KV,
        // so the per-context-token cost is `layers` times the per-block one.
        let cfg = ModelConfig::llama2_70b();
        let mapping = SystemMapping::plan(&cfg, 32, Strategy::TensorParallel).unwrap();
        let budget = KvBudget::from_mapping(&cfg, &mapping);
        let capacity = 32 * 32 * CHANNEL_CAPACITY.as_bytes();
        let weights = cfg.block_weight_bytes().as_bytes() * cfg.layers as u64;
        let expect = (capacity - weights)
            / (cfg.kv_bytes_per_token_per_block().as_bytes() * cfg.layers as u64);
        assert_eq!(budget.tokens, expect);
        // Physical sanity: the budgeted KV plus weights fit the raw capacity.
        let kv_bytes =
            budget.tokens * cfg.kv_bytes_per_token_per_block().as_bytes() * cfg.layers as u64;
        assert!(weights + kv_bytes <= capacity);
    }
}
