//! The discrete-event serving loop: arrivals → queue → continuous batching
//! → token-progress events, costed by the steady-state block simulation.
//!
//! `cent_sim::evaluate` is the cost oracle: it gives the per-query token
//! cadence (`token_latency`), the pipeline's prefill token rate and the
//! mapping (slots, replicas, KV capacity). The event loop then serves an
//! arbitrary request trace against those constants, advancing every
//! resident query one *token* at a time so KV occupancy is tracked
//! incrementally and preemption can interleave with decode. Three modelling
//! assumptions, all matching §5 of the paper: a query holds one pipeline
//! slot from admission to last token (prefill streams through the same
//! stage it will decode in); each replica has a single prefill front-end,
//! so concurrent admissions prefill in series at the replica's prefill
//! rate; and the decode cadence is constant at the steady-state stage
//! interval — CENT's pipeline emits tokens at the block step rate
//! regardless of how many slots are filled, so partial occupancy changes
//! throughput, not per-query latency.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use cent_compiler::Strategy;
use cent_model::ModelConfig;
use cent_sim::{evaluate, CentPerformance};
use cent_types::{CentResult, Time, TimeHistogram};

use crate::policy::{Fifo, PolicyContext, SchedulingPolicy};
use crate::queue::{QueuedRequest, RequestId, RequestRecord, RequestSpec};
use crate::report::{RunTotals, ServingReport};
use crate::scheduler::{ContinuousBatchScheduler, KvBudget, KvMode, SchedulerConfig};
use crate::workload::Workload;

/// Per-run serving knobs: KV accounting, admission order and SLO target.
///
/// The default is the conservative pre-refactor regime — full reservation
/// under FIFO with no SLO — so plain [`ServingSystem::run`] keeps its exact
/// historical semantics; sweeps opt into token-granular accounting and
/// alternative policies through [`ServingSystem::run_with`].
#[derive(Debug)]
pub struct ServeOptions {
    /// KV accounting mode (full reservation or token-granular growth).
    pub kv: KvMode,
    /// Admission-ordering policy.
    pub policy: Box<dyn SchedulingPolicy>,
    /// Optional end-to-end latency SLO; when set, the report's goodput
    /// counts only queries finishing within `arrival + slo`.
    pub slo: Option<Time>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { kv: KvMode::FullReservation, policy: Box::new(Fifo), slo: None }
    }
}

impl ServeOptions {
    /// Token-granular KV accounting (default watermark) under FIFO.
    pub fn token_granular() -> Self {
        ServeOptions { kv: KvMode::token_granular(), ..Default::default() }
    }

    /// Replaces the admission policy.
    pub fn with_policy(mut self, policy: Box<dyn SchedulingPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the latency SLO used for goodput accounting.
    pub fn with_slo(mut self, slo: Time) -> Self {
        self.slo = Some(slo);
        self
    }
}

/// A deployment ready to serve request traces.
///
/// Construction runs the (comparatively expensive) block-level simulation
/// once; [`ServingSystem::run`] is then cheap, so load sweeps reuse one
/// system across all offered-load points.
#[derive(Debug, Clone)]
pub struct ServingSystem {
    cfg: ModelConfig,
    scheduler_cfg: SchedulerConfig,
    /// Interval between a resident query's tokens (pipeline round trip).
    token_interval: Time,
    /// Prefill token rate of one replica, tokens/second.
    prefill_rate: f64,
    /// Steady-state system decode throughput from the oracle.
    steady_state_tokens_per_s: f64,
}

impl ServingSystem {
    /// Plans a deployment and derives its serving constants from the
    /// steady-state simulation.
    ///
    /// # Errors
    ///
    /// Propagates mapping and simulation errors from [`evaluate`].
    pub fn plan(
        cfg: &ModelConfig,
        devices: usize,
        strategy: Strategy,
        context: usize,
    ) -> CentResult<Self> {
        let perf = evaluate(cfg, devices, strategy, context)?;
        Ok(Self::from_performance(cfg, &perf))
    }

    /// Builds the system from an existing [`CentPerformance`] evaluation.
    pub fn from_performance(cfg: &ModelConfig, perf: &CentPerformance) -> Self {
        let replicas = perf.mapping.replicas.max(1);
        let slots = perf.mapping.batch.max(1);
        ServingSystem {
            cfg: cfg.clone(),
            scheduler_cfg: SchedulerConfig {
                replicas,
                slots_per_replica: slots,
                kv_budget: KvBudget::from_mapping(cfg, &perf.mapping),
                kv: KvMode::FullReservation,
            },
            token_interval: perf.token_latency,
            prefill_rate: perf.prefill_tokens_per_s / replicas as f64,
            steady_state_tokens_per_s: perf.decode_tokens_per_s,
        }
    }

    /// Builds a system directly from serving constants (tests, what-ifs).
    pub fn from_parts(
        cfg: &ModelConfig,
        scheduler_cfg: SchedulerConfig,
        token_interval: Time,
        prefill_rate: f64,
        steady_state_tokens_per_s: f64,
    ) -> Self {
        ServingSystem {
            cfg: cfg.clone(),
            scheduler_cfg,
            token_interval,
            prefill_rate,
            steady_state_tokens_per_s,
        }
    }

    /// Overrides the per-replica KV budget (what-if capacity studies).
    pub fn with_kv_budget(mut self, budget: KvBudget) -> Self {
        self.scheduler_cfg.kv_budget = budget;
        self
    }

    /// The steady-state decode throughput of the deployment, tokens/s.
    pub fn steady_state_tokens_per_s(&self) -> f64 {
        self.steady_state_tokens_per_s
    }

    /// Decode slots across all replicas.
    pub fn total_slots(&self) -> usize {
        self.scheduler_cfg.replicas * self.scheduler_cfg.slots_per_replica
    }

    /// Independent pipeline replicas in the deployment.
    pub fn replicas(&self) -> usize {
        self.scheduler_cfg.replicas
    }

    /// Per-replica KV budget in tokens.
    pub fn kv_budget_tokens(&self) -> u64 {
        self.scheduler_cfg.kv_budget.tokens
    }

    /// Maximum offered load the deployment can sustain for a given request
    /// shape, in queries/second: the tighter of the decode-side rate
    /// (steady-state tokens/s over generated tokens) and the prefill-side
    /// rate (aggregate prefill tokens/s over prompt tokens). Short-decode /
    /// long-prompt mixes are prefill-bound; the paper's chatbot mix is
    /// decode-bound.
    pub fn capacity_qps(
        &self,
        prompt_tokens_per_query: usize,
        decode_tokens_per_query: usize,
    ) -> f64 {
        let decode_side = self.steady_state_tokens_per_s / decode_tokens_per_query.max(1) as f64;
        let prefill_side = self.prefill_rate * self.scheduler_cfg.replicas as f64
            / prompt_tokens_per_query.max(1) as f64;
        decode_side.min(prefill_side)
    }

    /// Serves every request the workload generates in `[0, horizon)` and
    /// drains the system, returning the SLO report. Uses the default
    /// [`ServeOptions`] (full reservation, FIFO).
    pub fn run(&self, workload: &Workload, horizon: Time) -> ServingReport {
        self.run_with(workload, horizon, ServeOptions::default())
    }

    /// Serves the workload under explicit [`ServeOptions`].
    pub fn run_with(
        &self,
        workload: &Workload,
        horizon: Time,
        options: ServeOptions,
    ) -> ServingReport {
        let trace = workload.generate(horizon, self.cfg.max_context);
        self.serve_trace_with(&trace, workload.arrivals.mean_qps(), options)
    }

    /// Serves an explicit request trace (must be sorted by arrival time)
    /// under the default options.
    pub fn serve_trace(&self, trace: &[RequestSpec], offered_qps: f64) -> ServingReport {
        self.serve_trace_with(trace, offered_qps, ServeOptions::default())
    }

    /// Serves an explicit request trace under explicit [`ServeOptions`].
    ///
    /// The loop advances in token-progress events: each resident request
    /// emits one token per pipeline round trip, growing its KV reservation
    /// (in token-granular mode) as it goes, and admission re-runs whenever
    /// queue or capacity state changed. Identical traces and options always
    /// produce identical reports — event order is total over `(time, seq)`
    /// and preemption victims are chosen deterministically.
    pub fn serve_trace_with(
        &self,
        trace: &[RequestSpec],
        offered_qps: f64,
        options: ServeOptions,
    ) -> ServingReport {
        let cfg = SchedulerConfig { kv: options.kv, ..self.scheduler_cfg };
        let mut scheduler = ContinuousBatchScheduler::new(cfg).with_policy(options.policy);
        let mut events: BinaryHeap<Reverse<HeapEntry>> = BinaryHeap::new();
        for (i, spec) in trace.iter().enumerate() {
            events.push(Reverse(HeapEntry {
                at: spec.arrival,
                seq: i as u64,
                event: Event::Arrive(*spec),
            }));
        }
        let mut seq = trace.len() as u64;

        let mut records: Vec<RequestRecord> = Vec::with_capacity(trace.len());
        let mut residents: BTreeMap<RequestId, Resident> = BTreeMap::new();
        // Each replica has one prefill front-end: prompts of back-to-back
        // admissions stream through it in series.
        let mut prefill_free: Vec<Time> = vec![Time::ZERO; self.scheduler_cfg.replicas];
        // Occupancy integrals in exact integer units (slot·ps / token·ps),
        // so the result is independent of how finely events subdivide time.
        let mut busy_slot_ps: u128 = 0;
        let mut kv_reserved_ps: u128 = 0;
        let mut tbt = TimeHistogram::new();
        let mut last_t = Time::ZERO;
        let mut epoch: u64 = 0;
        // Admission can only succeed after an arrival, completion or
        // preemption; skipping it on pure token-progress instants keeps the
        // loop linear in generated tokens.
        let mut admission_dirty = false;

        while let Some(&Reverse(HeapEntry { at: t, .. })) = events.peek() {
            // Accumulate occupancy over [last_t, t) before mutating it.
            let dt = u128::from(t.saturating_sub(last_t).as_ps());
            busy_slot_ps += scheduler.in_flight() as u128 * dt;
            kv_reserved_ps += u128::from(scheduler.total_kv_reserved()) * dt;
            last_t = t;
            // Drain every event at this instant, then admit once.
            while matches!(events.peek(), Some(Reverse(e)) if e.at == t) {
                let Reverse(entry) = events.pop().expect("peeked");
                match entry.event {
                    Event::Arrive(spec) => {
                        scheduler.enqueue(spec);
                        admission_dirty = true;
                    }
                    Event::Token { id, epoch: ev_epoch } => {
                        let stale = residents.get(&id).map(|r| r.epoch != ev_epoch).unwrap_or(true);
                        if stale {
                            continue;
                        }
                        // Grow the KV reservation for this token; pool
                        // exhaustion preempts the youngest residents.
                        let victims = scheduler.grow(id);
                        let mut self_preempted = false;
                        for vid in victims {
                            admission_dirty = true;
                            let mut v = residents.remove(&vid).expect("victim is resident");
                            v.q.preemptions += 1;
                            if vid == id {
                                self_preempted = true;
                            }
                            scheduler.requeue(v.q);
                        }
                        if self_preempted {
                            continue;
                        }
                        let r = residents.get_mut(&id).expect("survived growth");
                        r.q.progress += 1;
                        if r.q.first_token.is_none() {
                            r.q.first_token = Some(t);
                        }
                        if let Some(prev) = r.q.last_token {
                            tbt.record(t.saturating_sub(prev));
                        }
                        r.q.last_token = Some(t);
                        if r.q.progress >= r.q.spec.decode {
                            scheduler.complete(id);
                            admission_dirty = true;
                            let r = residents.remove(&id).expect("finished resident");
                            records.push(RequestRecord {
                                spec: r.q.spec,
                                admitted: r.q.first_admitted.expect("was admitted"),
                                first_token: r.q.first_token.expect("emitted first token"),
                                finished: t,
                                replica: r.replica,
                                preemptions: r.q.preemptions,
                            });
                        } else {
                            events.push(Reverse(HeapEntry {
                                at: t + self.token_interval,
                                seq,
                                event: Event::Token { id, epoch: ev_epoch },
                            }));
                            seq += 1;
                        }
                    }
                }
            }
            if admission_dirty {
                admission_dirty = false;
                let ctx = PolicyContext { now: t, token_interval: self.token_interval };
                for admission in scheduler.admit_ready(&ctx) {
                    let mut q = admission.req;
                    if q.first_admitted.is_none() {
                        q.first_admitted = Some(t);
                    }
                    // Recompute semantics: a resumed request streams its
                    // whole context (prompt + generated so far) back
                    // through the prefill front-end before decoding on.
                    let context_tokens = q.spec.prompt + q.progress;
                    let prefill = Time::from_secs_f64(context_tokens as f64 / self.prefill_rate);
                    let start = t.max(prefill_free[admission.replica]);
                    let prefill_done = start + prefill;
                    prefill_free[admission.replica] = prefill_done;
                    epoch += 1;
                    let id = q.spec.id;
                    residents.insert(id, Resident { q, replica: admission.replica, epoch });
                    events.push(Reverse(HeapEntry {
                        at: prefill_done + self.token_interval,
                        seq,
                        event: Event::Token { id, epoch },
                    }));
                    seq += 1;
                }
            }
        }
        debug_assert!(residents.is_empty(), "drained loop left residents behind");

        let total_slot_ps = self.total_slots() as u128 * u128::from(last_t.as_ps());
        let slot_utilization =
            if total_slot_ps > 0 { busy_slot_ps as f64 / total_slot_ps as f64 } else { 0.0 };
        let total_kv_ps = u128::from(scheduler.kv_budget_tokens())
            * self.scheduler_cfg.replicas as u128
            * u128::from(last_t.as_ps());
        let kv_utilization =
            if total_kv_ps > 0 { kv_reserved_ps as f64 / total_kv_ps as f64 } else { 0.0 };
        let peak_kv_fraction = if scheduler.kv_budget_tokens() > 0 {
            scheduler.peak_kv_reserved() as f64 / scheduler.kv_budget_tokens() as f64
        } else {
            0.0
        };
        records.sort_by_key(|r| r.spec.id);
        ServingReport::from_records(
            &records,
            RunTotals {
                offered_qps,
                submitted: trace.len(),
                rejected: scheduler.rejected().len(),
                steady_state_tokens_per_s: self.steady_state_tokens_per_s,
                slot_utilization,
                peak_kv_fraction,
                kv_utilization,
                peak_queue_depth: scheduler.peak_queue_depth(),
                preemptions: scheduler.preemptions(),
                tbt,
                slo: options.slo,
            },
        )
    }
}

/// Loop-side state of a resident (admitted, not yet finished) request.
#[derive(Debug, Clone, Copy)]
struct Resident {
    q: QueuedRequest,
    replica: usize,
    /// Admission epoch; token events from before a preemption carry an
    /// older epoch and are discarded as stale.
    epoch: u64,
}

/// A scheduled event. Ordering (and equality) is by `(at, seq)` only — the
/// payload never drives the heap — and `seq` is unique per entry, so the
/// order is total and deterministic.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    at: Time,
    seq: u64,
    event: Event,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Arrive(RequestSpec),
    Token { id: RequestId, epoch: u64 },
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::RequestId;
    use crate::workload::{ArrivalProcess, LengthSampler};

    /// A hand-built system: 1 replica × 4 slots, 1 ms per token, 1000-token/s
    /// prefill, KV for 4000 tokens. Uses a 4K-context config so test shapes
    /// are not clamped by the context window (`from_parts` never simulates,
    /// so the model size is free).
    fn tiny_system() -> ServingSystem {
        ServingSystem::from_parts(
            &ModelConfig::llama2_7b(),
            SchedulerConfig {
                replicas: 1,
                slots_per_replica: 4,
                kv_budget: KvBudget::tokens(4000),
                kv: KvMode::FullReservation,
            },
            Time::from_us(1000),
            1000.0,
            4000.0,
        )
    }

    fn poisson(rate: f64, seed: u64, prompt: usize, decode: usize) -> Workload {
        Workload {
            arrivals: ArrivalProcess::Poisson { rate_qps: rate },
            lengths: LengthSampler::Fixed { prompt, decode },
            seed,
        }
    }

    #[test]
    fn empty_workload_yields_idle_report() {
        let sys = tiny_system();
        let report = sys.serve_trace(&[], 0.0);
        assert_eq!(report.completed, 0);
        assert_eq!(report.tokens_per_s, 0.0);
        assert_eq!(report.slot_utilization, 0.0);
        assert_eq!(report.ttft.p99, Time::ZERO);
    }

    #[test]
    fn single_request_latency_is_prefill_plus_decode() {
        let sys = tiny_system();
        let trace = [RequestSpec {
            id: RequestId(0),
            arrival: Time::from_us(500),
            prompt: 100,
            decode: 10,
        }];
        let report = sys.serve_trace(&trace, 1.0);
        assert_eq!(report.completed, 1);
        // No queueing: TTFT = prefill (100 tokens @ 1000/s = 100 ms) plus
        // one token interval (1 ms).
        assert_eq!(report.queue_wait.max, Time::ZERO);
        assert_eq!(report.ttft.p50, Time::from_secs_f64(0.101));
        // Query latency adds the remaining 9 tokens.
        assert_eq!(report.query_latency.p50, Time::from_secs_f64(0.110));
        assert_eq!(report.tbt.mean, Time::from_us(1000));
        assert_eq!(report.preemptions, 0);
    }

    #[test]
    fn saturation_converges_to_slot_limited_throughput() {
        let sys = tiny_system();
        // 4 slots × 1 token/ms = 4000 tok/s decode capacity; shape 10+490
        // tokens → capacity ≈ 8 q/s. Offer 3× that.
        let w = poisson(25.0, 11, 10, 490);
        let report = sys.run(&w, Time::from_secs_f64(20.0));
        let fraction = report.throughput_fraction();
        assert!(
            (0.9..=1.02).contains(&fraction),
            "throughput {:.0} tok/s vs steady {:.0} ({fraction:.3})",
            report.tokens_per_s,
            report.steady_state_tokens_per_s,
        );
        assert!(report.slot_utilization > 0.9, "util {}", report.slot_utilization);
        // Latency blows up under 3× overload: queue wait dwarfs service.
        assert!(report.queue_wait.p99 > Time::from_secs_f64(1.0));
    }

    #[test]
    fn latency_knee_appears_past_saturation() {
        let sys = tiny_system();
        let light = sys.run(&poisson(8.0, 5, 10, 90), Time::from_secs_f64(20.0));
        let heavy = sys.run(&poisson(100.0, 5, 10, 90), Time::from_secs_f64(20.0));
        assert!(
            heavy.query_latency.p99.as_secs() > 5.0 * light.query_latency.p99.as_secs(),
            "light p99 {} heavy p99 {}",
            light.query_latency.p99,
            heavy.query_latency.p99,
        );
        assert!(light.queue_wait.p99 < heavy.queue_wait.p99);
    }

    #[test]
    fn kv_budget_caps_concurrency_below_slot_count() {
        // KV for only 2 resident 100-token requests despite 4 slots.
        let sys = tiny_system().with_kv_budget(KvBudget::tokens(200));
        let w = poisson(100.0, 13, 10, 90);
        let report = sys.run(&w, Time::from_secs_f64(10.0));
        // Throughput is KV-bound at half the slot-limited rate.
        assert!(report.throughput_fraction() < 0.6, "{}", report.throughput_fraction());
        assert!(report.peak_kv_fraction <= 1.0);
        assert!(report.slot_utilization < 0.6);
    }

    #[test]
    fn token_granular_mode_lifts_kv_bound_concurrency() {
        // KV-starved deployment: full reservation fits 2 resident queries
        // (2 × 100 tokens) despite 4 slots; token-granular admission packs
        // more because occupancy only reaches 100 tokens at the end of each
        // query's decode. Prefill is 20x faster than decode (the realistic
        // regime) so preemption/recompute stays cheap.
        let sys = ServingSystem::from_parts(
            &ModelConfig::llama2_7b(),
            SchedulerConfig {
                replicas: 1,
                slots_per_replica: 4,
                kv_budget: KvBudget::tokens(200),
                kv: KvMode::FullReservation,
            },
            Time::from_us(1000),
            20_000.0,
            4000.0,
        );
        let w = poisson(100.0, 13, 10, 90);
        let full = sys.run(&w, Time::from_secs_f64(10.0));
        let token = sys.run_with(&w, Time::from_secs_f64(10.0), ServeOptions::token_granular());
        assert!(
            token.slot_utilization > full.slot_utilization,
            "token {} vs full {}",
            token.slot_utilization,
            full.slot_utilization
        );
        assert!(token.tokens_per_s >= full.tokens_per_s);
        assert!(token.peak_kv_fraction <= 1.0);
        assert_eq!(token.completed, token.submitted - token.rejected);
    }

    #[test]
    fn preempted_requests_complete_and_are_counted() {
        // Budget for ~1.5 full contexts forces repeated preemption, yet
        // every admitted request must finish exactly once.
        let sys = tiny_system().with_kv_budget(KvBudget::tokens(150));
        let w = poisson(50.0, 7, 10, 90);
        let report = sys.run_with(&w, Time::from_secs_f64(5.0), ServeOptions::token_granular());
        assert!(report.preemptions > 0, "expected KV pressure to preempt");
        assert_eq!(report.completed, report.submitted - report.rejected);
        assert!(report.peak_kv_fraction <= 1.0);
    }

    #[test]
    fn capacity_is_min_of_decode_and_prefill_sides() {
        let sys = tiny_system();
        // Decode side: 4000 tok/s / 100 = 40 q/s; prefill side:
        // 1000 tok/s / 10 = 100 q/s → decode-bound.
        assert_eq!(sys.capacity_qps(10, 100), 40.0);
        // Long prompts flip it: prefill side 1000/500 = 2 q/s.
        assert_eq!(sys.capacity_qps(500, 100), 2.0);
    }

    #[test]
    fn end_to_end_on_simulated_tiny_deployment() {
        // Full path through the block-level oracle on the tiny model.
        let cfg = ModelConfig::tiny();
        let sys = ServingSystem::plan(&cfg, 2, Strategy::PipelineParallel, 32).unwrap();
        assert!(sys.steady_state_tokens_per_s() > 0.0);
        let rate = 0.5 * sys.capacity_qps(8, 16);
        let w = Workload {
            arrivals: ArrivalProcess::Poisson { rate_qps: rate },
            lengths: LengthSampler::Fixed { prompt: 8, decode: 16 },
            seed: 2,
        };
        let report = sys.run(&w, Time::from_secs_f64(2.0));
        assert!(report.completed > 0);
        assert!(report.ttft.p50 > Time::ZERO);
        assert!(report.query_latency.p99 >= report.query_latency.p50);
    }
}
