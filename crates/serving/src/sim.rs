//! The discrete-event serving loop: arrivals → queue → continuous batching
//! → per-token service, costed by the steady-state block simulation.
//!
//! `cent_sim::evaluate` is the cost oracle: it gives the per-query token
//! cadence (`token_latency`), the pipeline's prefill token rate and the
//! mapping (slots, replicas, KV capacity). The event loop then serves an
//! arbitrary request trace against those constants. Three modelling
//! assumptions, all matching §5 of the paper: a query holds one pipeline
//! slot from admission to last token (prefill streams through the same
//! stage it will decode in); each replica has a single prefill front-end,
//! so concurrent admissions prefill in series at the replica's prefill
//! rate; and the decode cadence is constant at the steady-state stage
//! interval — CENT's pipeline emits tokens at the block step rate
//! regardless of how many slots are filled, so partial occupancy changes
//! throughput, not per-query latency.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cent_compiler::Strategy;
use cent_model::ModelConfig;
use cent_sim::{evaluate, CentPerformance};
use cent_types::{CentResult, Time};

use crate::queue::{RequestRecord, RequestSpec};
use crate::report::ServingReport;
use crate::scheduler::{Admission, ContinuousBatchScheduler, KvBudget, SchedulerConfig};
use crate::workload::Workload;

/// A deployment ready to serve request traces.
///
/// Construction runs the (comparatively expensive) block-level simulation
/// once; [`ServingSystem::run`] is then cheap, so load sweeps reuse one
/// system across all offered-load points.
#[derive(Debug, Clone)]
pub struct ServingSystem {
    cfg: ModelConfig,
    scheduler_cfg: SchedulerConfig,
    /// Interval between a resident query's tokens (pipeline round trip).
    token_interval: Time,
    /// Prefill token rate of one replica, tokens/second.
    prefill_rate: f64,
    /// Steady-state system decode throughput from the oracle.
    steady_state_tokens_per_s: f64,
}

impl ServingSystem {
    /// Plans a deployment and derives its serving constants from the
    /// steady-state simulation.
    ///
    /// # Errors
    ///
    /// Propagates mapping and simulation errors from [`evaluate`].
    pub fn plan(
        cfg: &ModelConfig,
        devices: usize,
        strategy: Strategy,
        context: usize,
    ) -> CentResult<Self> {
        let perf = evaluate(cfg, devices, strategy, context)?;
        Ok(Self::from_performance(cfg, &perf))
    }

    /// Builds the system from an existing [`CentPerformance`] evaluation.
    pub fn from_performance(cfg: &ModelConfig, perf: &CentPerformance) -> Self {
        let replicas = perf.mapping.replicas.max(1);
        let slots = perf.mapping.batch.max(1);
        ServingSystem {
            cfg: cfg.clone(),
            scheduler_cfg: SchedulerConfig {
                replicas,
                slots_per_replica: slots,
                kv_budget: KvBudget::from_mapping(cfg, &perf.mapping),
            },
            token_interval: perf.token_latency,
            prefill_rate: perf.prefill_tokens_per_s / replicas as f64,
            steady_state_tokens_per_s: perf.decode_tokens_per_s,
        }
    }

    /// Builds a system directly from serving constants (tests, what-ifs).
    pub fn from_parts(
        cfg: &ModelConfig,
        scheduler_cfg: SchedulerConfig,
        token_interval: Time,
        prefill_rate: f64,
        steady_state_tokens_per_s: f64,
    ) -> Self {
        ServingSystem {
            cfg: cfg.clone(),
            scheduler_cfg,
            token_interval,
            prefill_rate,
            steady_state_tokens_per_s,
        }
    }

    /// Overrides the per-replica KV budget (what-if capacity studies).
    pub fn with_kv_budget(mut self, budget: KvBudget) -> Self {
        self.scheduler_cfg.kv_budget = budget;
        self
    }

    /// The steady-state decode throughput of the deployment, tokens/s.
    pub fn steady_state_tokens_per_s(&self) -> f64 {
        self.steady_state_tokens_per_s
    }

    /// Decode slots across all replicas.
    pub fn total_slots(&self) -> usize {
        self.scheduler_cfg.replicas * self.scheduler_cfg.slots_per_replica
    }

    /// Maximum offered load the deployment can sustain for a given request
    /// shape, in queries/second (decode-side capacity).
    pub fn capacity_qps(&self, decode_tokens_per_query: usize) -> f64 {
        self.steady_state_tokens_per_s / decode_tokens_per_query.max(1) as f64
    }

    /// Serves every request the workload generates in `[0, horizon)` and
    /// drains the system, returning the SLO report.
    pub fn run(&self, workload: &Workload, horizon: Time) -> ServingReport {
        let trace = workload.generate(horizon, self.cfg.max_context);
        self.serve_trace(&trace, workload.arrivals.mean_qps())
    }

    /// Serves an explicit request trace (must be sorted by arrival time).
    pub fn serve_trace(&self, trace: &[RequestSpec], offered_qps: f64) -> ServingReport {
        let mut scheduler = ContinuousBatchScheduler::new(self.scheduler_cfg);
        let mut events: BinaryHeap<Reverse<HeapEntry>> = BinaryHeap::new();
        for (i, spec) in trace.iter().enumerate() {
            events.push(Reverse(HeapEntry {
                at: spec.arrival,
                seq: i as u64,
                event: Event::Arrive(*spec),
            }));
        }
        let mut seq = trace.len() as u64;

        let mut records: Vec<RequestRecord> = Vec::with_capacity(trace.len());
        // Each replica has one prefill front-end: prompts of back-to-back
        // admissions stream through it in series.
        let mut prefill_free: Vec<Time> = vec![Time::ZERO; self.scheduler_cfg.replicas];
        let mut busy_slot_seconds = 0.0;
        let mut last_t = Time::ZERO;

        while let Some(&Reverse(HeapEntry { at: t, .. })) = events.peek() {
            // Accumulate slot occupancy over [last_t, t) before mutating it.
            busy_slot_seconds += scheduler.in_flight() as f64 * t.saturating_sub(last_t).as_secs();
            last_t = t;
            // Drain every event at this instant, then admit once.
            while matches!(events.peek(), Some(Reverse(e)) if e.at == t) {
                let Reverse(entry) = events.pop().expect("peeked");
                match entry.event {
                    Event::Arrive(spec) => scheduler.enqueue(spec),
                    Event::Finish(record) => {
                        scheduler.complete(&Admission {
                            spec: record.spec,
                            replica: record.replica,
                            at: record.admitted,
                        });
                        records.push(record);
                    }
                }
            }
            for admission in scheduler.admit_ready(t) {
                let record = self.service_times(&admission, &mut prefill_free);
                events.push(Reverse(HeapEntry {
                    at: record.finished,
                    seq,
                    event: Event::Finish(record),
                }));
                seq += 1;
            }
        }

        let total_slot_seconds = self.total_slots() as f64 * last_t.as_secs();
        let slot_utilization =
            if total_slot_seconds > 0.0 { busy_slot_seconds / total_slot_seconds } else { 0.0 };
        let peak_kv_fraction = if scheduler.kv_budget_tokens() > 0 {
            scheduler.peak_kv_reserved() as f64 / scheduler.kv_budget_tokens() as f64
        } else {
            0.0
        };
        records.sort_by_key(|r| r.spec.id);
        ServingReport::from_records(
            &records,
            offered_qps,
            trace.len(),
            scheduler.rejected().len(),
            self.steady_state_tokens_per_s,
            slot_utilization,
            peak_kv_fraction,
            scheduler.peak_queue_depth(),
        )
    }

    /// Deterministic service timeline of one admitted request: the prompt
    /// streams through the replica's prefill front-end (serialised with any
    /// prefill already in flight there), then each decode token takes one
    /// pipeline round trip.
    fn service_times(&self, admission: &Admission, prefill_free: &mut [Time]) -> RequestRecord {
        let spec = admission.spec;
        let prefill = Time::from_secs_f64(spec.prompt as f64 / self.prefill_rate);
        let start = admission.at.max(prefill_free[admission.replica]);
        let prefill_done = start + prefill;
        prefill_free[admission.replica] = prefill_done;
        let first_token = prefill_done + self.token_interval;
        let rest = (spec.decode as u64).saturating_sub(1);
        let finished = first_token + Time::from_ps(self.token_interval.as_ps() * rest);
        RequestRecord {
            spec,
            admitted: admission.at,
            first_token,
            finished,
            replica: admission.replica,
        }
    }
}

/// A scheduled event. Ordering (and equality) is by `(at, seq)` only — the
/// payload never drives the heap — and `seq` is unique per entry, so the
/// order is total and deterministic.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    at: Time,
    seq: u64,
    event: Event,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Arrive(RequestSpec),
    Finish(RequestRecord),
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ArrivalProcess, LengthSampler};

    /// A hand-built system: 1 replica × 4 slots, 1 ms per token, 1000-token/s
    /// prefill, KV for 4000 tokens. Uses a 4K-context config so test shapes
    /// are not clamped by the context window (`from_parts` never simulates,
    /// so the model size is free).
    fn tiny_system() -> ServingSystem {
        ServingSystem::from_parts(
            &ModelConfig::llama2_7b(),
            SchedulerConfig {
                replicas: 1,
                slots_per_replica: 4,
                kv_budget: KvBudget::tokens(4000),
            },
            Time::from_us(1000),
            1000.0,
            4000.0,
        )
    }

    fn poisson(rate: f64, seed: u64, prompt: usize, decode: usize) -> Workload {
        Workload {
            arrivals: ArrivalProcess::Poisson { rate_qps: rate },
            lengths: LengthSampler::Fixed { prompt, decode },
            seed,
        }
    }

    #[test]
    fn empty_workload_yields_idle_report() {
        let sys = tiny_system();
        let report = sys.serve_trace(&[], 0.0);
        assert_eq!(report.completed, 0);
        assert_eq!(report.tokens_per_s, 0.0);
        assert_eq!(report.slot_utilization, 0.0);
        assert_eq!(report.ttft.p99, Time::ZERO);
    }

    #[test]
    fn single_request_latency_is_prefill_plus_decode() {
        let sys = tiny_system();
        let trace = [RequestSpec {
            id: crate::queue::RequestId(0),
            arrival: Time::from_us(500),
            prompt: 100,
            decode: 10,
        }];
        let report = sys.serve_trace(&trace, 1.0);
        assert_eq!(report.completed, 1);
        // No queueing: TTFT = prefill (100 tokens @ 1000/s = 100 ms) plus
        // one token interval (1 ms).
        assert_eq!(report.queue_wait.max, Time::ZERO);
        assert_eq!(report.ttft.p50, Time::from_secs_f64(0.101));
        // Query latency adds the remaining 9 tokens.
        assert_eq!(report.query_latency.p50, Time::from_secs_f64(0.110));
        assert_eq!(report.tbt.mean, Time::from_us(1000));
    }

    #[test]
    fn saturation_converges_to_slot_limited_throughput() {
        let sys = tiny_system();
        // 4 slots × 1 token/ms = 4000 tok/s decode capacity; shape 10+490
        // tokens → capacity ≈ 8 q/s. Offer 3× that.
        let w = poisson(25.0, 11, 10, 490);
        let report = sys.run(&w, Time::from_secs_f64(20.0));
        let fraction = report.throughput_fraction();
        assert!(
            (0.9..=1.02).contains(&fraction),
            "throughput {:.0} tok/s vs steady {:.0} ({fraction:.3})",
            report.tokens_per_s,
            report.steady_state_tokens_per_s,
        );
        assert!(report.slot_utilization > 0.9, "util {}", report.slot_utilization);
        // Latency blows up under 3× overload: queue wait dwarfs service.
        assert!(report.queue_wait.p99 > Time::from_secs_f64(1.0));
    }

    #[test]
    fn latency_knee_appears_past_saturation() {
        let sys = tiny_system();
        let light = sys.run(&poisson(8.0, 5, 10, 90), Time::from_secs_f64(20.0));
        let heavy = sys.run(&poisson(100.0, 5, 10, 90), Time::from_secs_f64(20.0));
        assert!(
            heavy.query_latency.p99.as_secs() > 5.0 * light.query_latency.p99.as_secs(),
            "light p99 {} heavy p99 {}",
            light.query_latency.p99,
            heavy.query_latency.p99,
        );
        assert!(light.queue_wait.p99 < heavy.queue_wait.p99);
    }

    #[test]
    fn kv_budget_caps_concurrency_below_slot_count() {
        // KV for only 2 resident 100-token requests despite 4 slots.
        let sys = tiny_system().with_kv_budget(KvBudget::tokens(200));
        let w = poisson(100.0, 13, 10, 90);
        let report = sys.run(&w, Time::from_secs_f64(10.0));
        // Throughput is KV-bound at half the slot-limited rate.
        assert!(report.throughput_fraction() < 0.6, "{}", report.throughput_fraction());
        assert!(report.peak_kv_fraction <= 1.0);
        assert!(report.slot_utilization < 0.6);
    }

    #[test]
    fn end_to_end_on_simulated_tiny_deployment() {
        // Full path through the block-level oracle on the tiny model.
        let cfg = ModelConfig::tiny();
        let sys = ServingSystem::plan(&cfg, 2, Strategy::PipelineParallel, 32).unwrap();
        assert!(sys.steady_state_tokens_per_s() > 0.0);
        let rate = 0.5 * sys.capacity_qps(16);
        let w = Workload {
            arrivals: ArrivalProcess::Poisson { rate_qps: rate },
            lengths: LengthSampler::Fixed { prompt: 8, decode: 16 },
            seed: 2,
        };
        let report = sys.run(&w, Time::from_secs_f64(2.0));
        assert!(report.completed > 0);
        assert!(report.ttft.p50 > Time::ZERO);
        assert!(report.query_latency.p99 >= report.query_latency.p50);
    }
}
