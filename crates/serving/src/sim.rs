//! The discrete-event serving loop: arrivals → queue → continuous batching
//! → replica tick events, costed by the steady-state block simulation.
//!
//! `cent_sim::evaluate` is the cost oracle: it gives the per-query token
//! cadence (`token_latency`), the pipeline's prefill token rate and the
//! mapping (slots, replicas, KV capacity). The event loop then serves an
//! arbitrary request trace against those constants, tracking KV occupancy
//! token by token so preemption can interleave with decode. Four modelling
//! assumptions, all matching §5 of the paper: a query holds one pipeline
//! slot from admission to last token (prefill streams through the same
//! stage it will decode in); each replica has a single prefill front-end,
//! so concurrent admissions prefill in series at the replica's prefill
//! rate; the decode cadence is constant at the steady-state stage interval
//! — CENT's pipeline emits tokens at the block step rate regardless of how
//! many slots are filled, so partial occupancy changes throughput, not
//! per-query latency; and token emission aligns to the pipeline's
//! *block-step grid* — the pipeline executes block steps back to back, so
//! a query's first token emerges at the first step boundary after its
//! prefill completes, and every later token one step apart.
//!
//! The grid alignment is what makes the fast [`TickEngine`]s fast. The
//! *phase-bucketed* engine exploits it spatially: residents of a
//! replica share tick phases (`next_token mod token_interval`), so one
//! `Tick` heap entry per `(replica, phase)` bucket advances *every* due
//! resident in admission order, and heap traffic scales with admissions
//! instead of generated tokens (`O(admissions·log n)` vs
//! `O(tokens·log n)` — roughly `slots_per_replica ×` fewer heap
//! operations on the paper's PP mappings). With the zero-anchored step
//! grid every first token lands on a multiple of the interval, so today
//! each replica has exactly one phase (0) and one bucket; the buckets
//! stay keyed by phase so off-grid cadences (e.g. chunked prefill
//! interleaving, per-stage emission offsets) slot in without touching the
//! event core. Resident state lives in a dense slab indexed by small
//! handles, so the per-token hot path is an array walk, not a tree
//! lookup.
//!
//! The *span-fast-forward* engine ([`TickEngine::SpanFastForward`], the
//! default) exploits the grid temporally as well: between external events
//! (arrivals, completions, pool exhaustion) decode on the fixed cadence
//! is fully deterministic, so each replica's next decision instant is
//! solved in closed form and all intervening tokens are emitted as
//! batched spans — heap traffic drops to `O(external events)`, i.e.
//! `O(arrivals + completions + preemptions)`, independent of how many
//! ticks the spans cover. The pre-refactor one-heap-entry-per-token loop
//! is retained as [`TickEngine::PerTokenReference`]; all three engines
//! produce bit-identical [`ServingReport`]s (enforced by differential
//! tests), and [`ServingSystem::serve_trace_instrumented`] exposes
//! [`SimStats`] so the `sim_perf` bench can chart the gaps.
//!
//! The span engine's state lives in [`GroupSim`], a *resumable* form of
//! the event loop: arrivals can be injected incrementally
//! ([`GroupSim::push_arrival`]) and the simulation advanced through
//! bounded windows ([`GroupSim::advance_to`]), which is what lets
//! `cent-cluster` drive many independent replica groups through shared
//! time epochs across worker threads. Batch serving
//! ([`ServingSystem::serve_trace_with`]) runs on the very same code path,
//! so the differential tests cover the incremental engine too.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use cent_compiler::Strategy;
use cent_cost::KvSwapCost;
use cent_model::ModelConfig;
use cent_sim::{evaluate, CentPerformance};
use cent_types::{ByteSize, CentResult, Time, TimeHistogram};

use crate::policy::{Fifo, PolicyContext, SchedulingPolicy};
use crate::queue::{
    PriorityClass, QueuedRequest, RequestId, RequestRecord, RequestSpec, SwapState,
};
use crate::report::{RunTotals, ServingReport, StepIntegral};
use crate::scheduler::{
    ContinuousBatchScheduler, KvBudget, KvMode, LeaseId, Preemption, SchedulerConfig,
};
use crate::workload::Workload;

/// Which event core advances resident queries through decode.
///
/// All engines implement the same serving semantics and produce
/// bit-identical [`ServingReport`]s for identical traces and options; they
/// differ only in how much work the simulation itself pays per simulated
/// token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TickEngine {
    /// Phase-bucketed replica ticks: one heap entry per `(replica, phase)`
    /// bucket advances every due resident, and residents live in a dense
    /// slab.
    PhaseBucketed,
    /// The straight-line pre-refactor loop: one heap entry per generated
    /// token, residents in an id-keyed map. Retained as the differential
    /// reference and the `sim_perf` baseline.
    PerTokenReference,
    /// Span fast-forward: between external events the decode cadence is
    /// fully deterministic, so each replica's next *decision instant*
    /// (earliest completion, KV-exhaustion forecast) is solved in closed
    /// form and every intervening token is emitted as one batched span —
    /// heap traffic scales with external events (arrivals, completions,
    /// preemptions), not tick phases. The fastest engine, and the default.
    #[default]
    SpanFastForward,
}

impl TickEngine {
    /// Short name used in bench tables and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            TickEngine::PhaseBucketed => "bucketed",
            TickEngine::PerTokenReference => "reference",
            TickEngine::SpanFastForward => "span",
        }
    }

    /// All three engines, for differential tests and bench sweeps.
    pub const ALL: [TickEngine; 3] =
        [TickEngine::PerTokenReference, TickEngine::PhaseBucketed, TickEngine::SpanFastForward];
}

/// What happens to a KV-pressure eviction victim.
///
/// Only meaningful under [`KvMode::TokenGranular`] — full reservation never
/// evicts. The spill decision is per victim: swap is additionally gated on
/// host-pool headroom ([`KvSpillConfig::host_pool_tokens`]) and falls back
/// to recompute when the pool is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KvSpillMode {
    /// Every victim is requeued for vLLM-style recompute (the pre-swap
    /// behaviour, and the default).
    #[default]
    RecomputeOnly,
    /// Every victim that fits the host pool swaps its KV pages to CXL host
    /// memory; it pages them back before decode resumes.
    SwapOnly,
    /// Per-victim comparator: swap when the CXL round trip is strictly
    /// cheaper than re-prefilling the same tokens, recompute otherwise.
    CostDriven,
}

impl KvSpillMode {
    /// Short name used in sweep tables and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            KvSpillMode::RecomputeOnly => "recompute",
            KvSpillMode::SwapOnly => "swap",
            KvSpillMode::CostDriven => "cost",
        }
    }

    /// All three modes, for sweeps and differential tests.
    pub const ALL: [KvSpillMode; 3] =
        [KvSpillMode::RecomputeOnly, KvSpillMode::SwapOnly, KvSpillMode::CostDriven];
}

/// The spill tier configuration: mode, bounded CXL host-pool capacity and
/// the transfer-cost model.
///
/// The default disables the swap tier entirely ([`KvSpillMode::RecomputeOnly`]
/// with a zero-token pool); the cost model is then never consulted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvSpillConfig {
    /// Victim disposition policy.
    pub mode: KvSpillMode,
    /// CXL host-memory pool capacity in KV tokens, shared by all replicas.
    /// Swap-outs that would exceed it fall back to recompute.
    pub host_pool_tokens: u64,
    /// Tokens-to-transfer-time model for the host link
    /// ([`KvSwapCost`], built from the CXL fabric constants — see
    /// [`ServingSystem::swap_cost`]).
    pub swap_cost: KvSwapCost,
}

impl Default for KvSpillConfig {
    fn default() -> Self {
        KvSpillConfig {
            mode: KvSpillMode::RecomputeOnly,
            host_pool_tokens: 0,
            swap_cost: KvSwapCost::cent(ByteSize::ZERO),
        }
    }
}

impl KvSpillConfig {
    /// Swap every victim that fits a `host_pool_tokens` CXL pool.
    pub fn swap_only(host_pool_tokens: u64, swap_cost: KvSwapCost) -> Self {
        KvSpillConfig { mode: KvSpillMode::SwapOnly, host_pool_tokens, swap_cost }
    }

    /// Pick the cheaper of swap and recompute per victim.
    pub fn cost_driven(host_pool_tokens: u64, swap_cost: KvSwapCost) -> Self {
        KvSpillConfig { mode: KvSpillMode::CostDriven, host_pool_tokens, swap_cost }
    }

    /// The same configuration under a different mode (sweeps hold the pool
    /// and cost model fixed while varying the policy).
    pub fn with_mode(self, mode: KvSpillMode) -> Self {
        KvSpillConfig { mode, ..self }
    }
}

/// Per-run serving knobs: KV accounting, spill tier, admission order, SLO
/// target and event core.
///
/// The default is the conservative regime — full reservation under FIFO
/// with no SLO on the span-fast-forward engine, recompute-only spill; sweeps
/// opt into token-granular accounting, the CXL swap tier and alternative
/// policies through [`ServingSystem::run_with`]. Options are `Clone`, so
/// sweeps build them once and reuse them across operating points.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// KV accounting mode (full reservation or token-granular growth).
    pub kv: KvMode,
    /// Eviction-victim disposition (recompute vs swap-to-CXL).
    pub spill: KvSpillConfig,
    /// Admission-ordering policy.
    pub policy: Box<dyn SchedulingPolicy>,
    /// Optional end-to-end latency SLO; when set, the report's goodput
    /// counts only queries finishing within `arrival + slo`.
    pub slo: Option<Time>,
    /// Event core driving token progress.
    pub engine: TickEngine,
    /// Chunked-prefill granularity in prompt tokens. `None` (the default)
    /// runs each prompt through the replica's prefill front-end in one
    /// contiguous pass. `Some(chunk)` splits it into `ceil(context /
    /// chunk)` chunks interleaved with resident decode at a 50% duty
    /// cycle: the front-end gains a second interleave lane, so a short
    /// prompt arriving behind a long one starts immediately on the other
    /// lane (the TTFT win), while a lone long prompt finishes later by
    /// one chunk-time per gap (the honest chunking cost). Prefill-role
    /// groups of a disaggregated fleet run chunked so long prompts cannot
    /// monopolize the front-end under tight TBT SLOs.
    pub prefill_chunk: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            kv: KvMode::FullReservation,
            spill: KvSpillConfig::default(),
            policy: Box::new(Fifo),
            slo: None,
            engine: TickEngine::default(),
            prefill_chunk: None,
        }
    }
}

impl ServeOptions {
    /// Token-granular KV accounting (default watermark) under FIFO.
    pub fn token_granular() -> Self {
        ServeOptions { kv: KvMode::token_granular(), ..Default::default() }
    }

    /// Replaces the admission policy.
    pub fn with_policy(mut self, policy: Box<dyn SchedulingPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the latency SLO used for goodput accounting.
    pub fn with_slo(mut self, slo: Time) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Selects the event core (default: [`TickEngine::SpanFastForward`]).
    pub fn with_engine(mut self, engine: TickEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Configures the KV spill tier (swap-to-CXL vs recompute).
    pub fn with_spill(mut self, spill: KvSpillConfig) -> Self {
        self.spill = spill;
        self
    }

    /// Enables chunked prefill with the given chunk size in tokens.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn with_prefill_chunk(mut self, chunk: u64) -> Self {
        assert!(chunk > 0, "prefill chunk must be positive");
        self.prefill_chunk = Some(chunk);
        self
    }
}

/// Event-core counters from one simulated run, for perf tracking.
///
/// The serving *semantics* are identical across engines; these measure the
/// simulator's own work, and `sim_perf` charts them as the repo's perf
/// trajectory artifact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Heap entries pushed (arrivals plus per-token events or replica
    /// ticks).
    pub heap_pushes: u64,
    /// Heap entries popped, stale entries included.
    pub heap_pops: u64,
    /// Tick events that fired a `(replica, phase)` bucket (bucketed
    /// engine) or a solved per-replica decision instant (span engine);
    /// zero on the per-token reference engine.
    pub tick_events: u64,
    /// Generated (decode) tokens driven through the event core.
    pub tokens: u64,
    /// Admissions performed (re-admissions after preemption included).
    pub admissions: u64,
}

impl SimStats {
    /// Heap events (pushes + pops) per generated token — the hot-path
    /// metric the phase-bucketed engine exists to shrink.
    pub fn heap_events_per_token(&self) -> f64 {
        if self.tokens == 0 {
            return 0.0;
        }
        (self.heap_pushes + self.heap_pops) as f64 / self.tokens as f64
    }
}

/// A deployment ready to serve request traces.
///
/// Construction runs the (comparatively expensive) block-level simulation
/// once; [`ServingSystem::run`] is then cheap, so load sweeps reuse one
/// system across all offered-load points (and, being `Sync`, across
/// threads).
#[derive(Debug, Clone)]
pub struct ServingSystem {
    cfg: ModelConfig,
    scheduler_cfg: SchedulerConfig,
    /// Interval between a resident query's tokens (pipeline round trip).
    token_interval: Time,
    /// Prefill token rate of one replica, tokens/second.
    prefill_rate: f64,
    /// Steady-state system decode throughput from the oracle.
    steady_state_tokens_per_s: f64,
}

impl ServingSystem {
    /// Plans a deployment and derives its serving constants from the
    /// steady-state simulation.
    ///
    /// # Errors
    ///
    /// Propagates mapping and simulation errors from [`evaluate`].
    pub fn plan(
        cfg: &ModelConfig,
        devices: usize,
        strategy: Strategy,
        context: usize,
    ) -> CentResult<Self> {
        let perf = evaluate(cfg, devices, strategy, context)?;
        Ok(Self::from_performance(cfg, &perf))
    }

    /// Builds the system from an existing [`CentPerformance`] evaluation.
    pub fn from_performance(cfg: &ModelConfig, perf: &CentPerformance) -> Self {
        let replicas = perf.mapping.replicas.max(1);
        let slots = perf.mapping.batch.max(1);
        ServingSystem {
            cfg: cfg.clone(),
            scheduler_cfg: SchedulerConfig {
                replicas,
                slots_per_replica: slots,
                kv_budget: KvBudget::from_mapping(cfg, &perf.mapping),
                kv: KvMode::FullReservation,
            },
            token_interval: perf.token_latency,
            prefill_rate: perf.prefill_tokens_per_s / replicas as f64,
            steady_state_tokens_per_s: perf.decode_tokens_per_s,
        }
    }

    /// Builds a system directly from serving constants (tests, what-ifs).
    pub fn from_parts(
        cfg: &ModelConfig,
        scheduler_cfg: SchedulerConfig,
        token_interval: Time,
        prefill_rate: f64,
        steady_state_tokens_per_s: f64,
    ) -> Self {
        ServingSystem {
            cfg: cfg.clone(),
            scheduler_cfg,
            token_interval,
            prefill_rate,
            steady_state_tokens_per_s,
        }
    }

    /// Overrides the per-replica KV budget (what-if capacity studies).
    pub fn with_kv_budget(mut self, budget: KvBudget) -> Self {
        self.scheduler_cfg.kv_budget = budget;
        self
    }

    /// A uniformly slowed copy of this system: token interval stretched by
    /// `factor`, prefill and steady-state rates divided by it. Models a
    /// straggler group (thermal throttling, a flaky device retrying) whose
    /// capacity is degraded but whose shape is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0` — a straggler only slows down.
    pub fn slowed(&self, factor: f64) -> Self {
        assert!(factor >= 1.0, "straggler slowdown must be >= 1.0");
        let mut sys = self.clone();
        let interval_ps = (self.token_interval.as_ps() as f64 * factor).round() as u64;
        sys.token_interval = Time::from_ps(interval_ps.max(1));
        sys.prefill_rate = self.prefill_rate / factor;
        sys.steady_state_tokens_per_s = self.steady_state_tokens_per_s / factor;
        sys
    }

    /// The steady-state decode throughput of the deployment, tokens/s.
    pub fn steady_state_tokens_per_s(&self) -> f64 {
        self.steady_state_tokens_per_s
    }

    /// Decode slots across all replicas.
    pub fn total_slots(&self) -> usize {
        self.scheduler_cfg.replicas * self.scheduler_cfg.slots_per_replica
    }

    /// Independent pipeline replicas in the deployment.
    pub fn replicas(&self) -> usize {
        self.scheduler_cfg.replicas
    }

    /// Decode slots on one replica.
    pub fn slots_per_replica(&self) -> usize {
        self.scheduler_cfg.slots_per_replica
    }

    /// Per-replica KV budget in tokens.
    pub fn kv_budget_tokens(&self) -> u64 {
        self.scheduler_cfg.kv_budget.tokens
    }

    /// Prefill token rate of one replica, tokens/second — the recompute
    /// side of the spill-cost comparator.
    pub fn prefill_tokens_per_s(&self) -> f64 {
        self.prefill_rate
    }

    /// The swap-cost model of this deployment: one KV token's bytes across
    /// every block the replica serves
    /// ([`ModelConfig::kv_bytes_per_query`] of one token) moved over the
    /// paper's CXL host link. Feed it to [`KvSpillConfig::swap_only`] /
    /// [`KvSpillConfig::cost_driven`].
    pub fn swap_cost(&self) -> KvSwapCost {
        KvSwapCost::cent(self.cfg.kv_bytes_per_query(1))
    }

    /// Maximum offered load the deployment can sustain for a given request
    /// shape, in queries/second: the tighter of the decode-side rate
    /// (steady-state tokens/s over generated tokens) and the prefill-side
    /// rate (aggregate prefill tokens/s over prompt tokens). Short-decode /
    /// long-prompt mixes are prefill-bound; the paper's chatbot mix is
    /// decode-bound.
    pub fn capacity_qps(
        &self,
        prompt_tokens_per_query: usize,
        decode_tokens_per_query: usize,
    ) -> f64 {
        let decode_side = self.steady_state_tokens_per_s / decode_tokens_per_query.max(1) as f64;
        let prefill_side = self.prefill_rate * self.scheduler_cfg.replicas as f64
            / prompt_tokens_per_query.max(1) as f64;
        decode_side.min(prefill_side)
    }

    /// Serves every request the workload generates in `[0, horizon)` and
    /// drains the system, returning the SLO report. Uses the default
    /// [`ServeOptions`] (full reservation, FIFO).
    pub fn run(&self, workload: &Workload, horizon: Time) -> ServingReport {
        self.run_with(workload, horizon, ServeOptions::default())
    }

    /// Serves the workload under explicit [`ServeOptions`].
    pub fn run_with(
        &self,
        workload: &Workload,
        horizon: Time,
        options: ServeOptions,
    ) -> ServingReport {
        let trace = workload.generate(horizon, self.cfg.max_context);
        self.serve_trace_with(&trace, workload.arrivals.mean_qps(), options)
    }

    /// Serves an explicit request trace (must be sorted by arrival time)
    /// under the default options.
    pub fn serve_trace(&self, trace: &[RequestSpec], offered_qps: f64) -> ServingReport {
        self.serve_trace_with(trace, offered_qps, ServeOptions::default())
    }

    /// Serves an explicit request trace under explicit [`ServeOptions`].
    ///
    /// Identical traces and options always produce identical reports —
    /// regardless of the [`TickEngine`] — because event order is total:
    /// simultaneous events on one replica resolve in admission order,
    /// replicas are independent, and preemption victims are chosen
    /// deterministically.
    pub fn serve_trace_with(
        &self,
        trace: &[RequestSpec],
        offered_qps: f64,
        options: ServeOptions,
    ) -> ServingReport {
        self.serve_trace_instrumented(trace, offered_qps, options).0
    }

    /// Serves a trace and additionally returns the event-core counters
    /// ([`SimStats`]) of the run — the instrumentation behind `sim_perf`.
    pub fn serve_trace_instrumented(
        &self,
        trace: &[RequestSpec],
        offered_qps: f64,
        options: ServeOptions,
    ) -> (ServingReport, SimStats) {
        assert!(self.token_interval > Time::ZERO, "token interval must be positive");
        match options.engine {
            TickEngine::PhaseBucketed => self.run_bucketed(trace, offered_qps, options),
            TickEngine::PerTokenReference => self.run_reference(trace, offered_qps, options),
            TickEngine::SpanFastForward => self.run_span(trace, offered_qps, options),
        }
    }

    /// The phase-bucketed engine: residents in a dense slab, one `Tick`
    /// heap entry per `(replica, phase)` bucket.
    fn run_bucketed(
        &self,
        trace: &[RequestSpec],
        offered_qps: f64,
        options: ServeOptions,
    ) -> (ServingReport, SimStats) {
        let interval = self.token_interval;
        let mut core = Core::new(self, options);
        let mut heap = EventHeap::with_arrivals(trace);
        let mut slab = Slab::default();
        let mut buckets: Vec<BTreeMap<u64, Bucket>> =
            vec![BTreeMap::new(); self.scheduler_cfg.replicas];
        // Lease handle → slab handle, so preemption victims reported by the
        // scheduler resolve to residents without a map lookup.
        let mut lease_handle: Vec<u32> = Vec::new();
        // Steady-state scratch buffers, allocated once per run: the due
        // snapshot of each tick and the victims of each growth call.
        let mut due: Vec<u32> = Vec::new();
        let mut victims: Vec<Preemption> = Vec::new();

        while let Some(t) = heap.next_instant() {
            core.accumulate_to(t);
            // Drain every event at this instant, then admit once.
            while let Some(event) = heap.pop_at(t) {
                match event {
                    Event::Arrive(spec) => core.arrive(spec),
                    Event::Tick { replica, phase } => {
                        {
                            let bucket = buckets[replica as usize]
                                .get_mut(&phase)
                                .expect("tick targets a known bucket");
                            if bucket.scheduled != Some(t) {
                                // Retired (bucket emptied) or superseded by
                                // an earlier reschedule: drop it.
                                continue;
                            }
                            bucket.scheduled = None;
                            core.tick_events += 1;
                            // Snapshot the due members (admission order);
                            // preemption may mutate the bucket mid-walk.
                            due.clear();
                            due.extend(
                                bucket
                                    .members
                                    .iter()
                                    .copied()
                                    .filter(|&h| slab.get(h).is_some_and(|r| r.next_at == t)),
                            );
                        }
                        for &h in &due {
                            // An earlier grower this tick may have evicted
                            // this resident; its slot is then empty (no new
                            // residents are slabbed until the drain ends).
                            let Some(r) = slab.get(h) else { continue };
                            if r.next_at != t {
                                continue;
                            }
                            let lease = r.lease;
                            // Grow the KV reservation for this token; pool
                            // exhaustion preempts the youngest residents.
                            let mut self_preempted = false;
                            core.scheduler.grow(lease, &mut victims);
                            for &p in &victims {
                                let vh = lease_handle[p.lease.index()];
                                let v = slab.remove(vh);
                                debug_assert_eq!(v.q.spec.id, p.id, "slab and leases agree");
                                remove_member(&mut buckets[v.replica], v.phase, vh);
                                if p.lease == lease {
                                    self_preempted = true;
                                }
                                core.preempt(v.q, v.replica);
                            }
                            if self_preempted {
                                continue;
                            }
                            let r = slab.get_mut(h).expect("survived growth");
                            if core.emit_token(&mut r.q, t) {
                                core.scheduler.complete(lease);
                                let r = slab.remove(h);
                                remove_member(&mut buckets[r.replica], r.phase, h);
                                core.finish(r.q, r.replica, t);
                            } else {
                                // Same bucket, next step: no heap traffic.
                                r.next_at = t + interval;
                            }
                        }
                        // One live heap entry per non-empty bucket, at the
                        // earliest instant any member is due.
                        let bucket = buckets[replica as usize]
                            .get_mut(&phase)
                            .expect("bucket persists across its tick");
                        let next = bucket
                            .members
                            .iter()
                            .map(|&h| slab.get(h).expect("members are live").next_at)
                            .min();
                        if let Some(next) = next {
                            debug_assert!(next > t, "tick must advance");
                            bucket.scheduled = Some(next);
                            heap.push(next, Event::Tick { replica, phase });
                        }
                    }
                    Event::Token { .. } | Event::Wake { .. } => {
                        unreachable!("bucketed engine schedules only replica ticks")
                    }
                }
            }
            if core.admission_dirty {
                core.admission_dirty = false;
                for p in core.admit(t) {
                    let phase = p.first_token.as_ps() % interval.as_ps();
                    let h = slab.insert(Resident {
                        q: p.q,
                        replica: p.replica,
                        lease: p.lease,
                        next_at: p.first_token,
                        phase,
                    });
                    if lease_handle.len() <= p.lease.index() {
                        lease_handle.resize(p.lease.index() + 1, u32::MAX);
                    }
                    lease_handle[p.lease.index()] = h;
                    let bucket = buckets[p.replica].entry(phase).or_default();
                    // Admission order: the serial prefill front-end makes
                    // first tokens monotone per replica, so appending keeps
                    // members sorted by both admission and due time.
                    bucket.members.push(h);
                    if bucket.scheduled.is_none_or(|at| p.first_token < at) {
                        bucket.scheduled = Some(p.first_token);
                        heap.push(p.first_token, Event::Tick { replica: p.replica as u32, phase });
                    }
                }
            }
        }
        debug_assert!(slab.is_empty(), "drained loop left residents behind");
        core.into_report(trace.len(), offered_qps, &heap)
    }

    /// The retained straight-line per-token loop: one heap entry per
    /// generated token, residents in an id-keyed map. Differential
    /// reference for the bucketed engine and the `sim_perf` baseline.
    fn run_reference(
        &self,
        trace: &[RequestSpec],
        offered_qps: f64,
        options: ServeOptions,
    ) -> (ServingReport, SimStats) {
        let interval = self.token_interval;
        let mut core = Core::new(self, options);
        let mut heap = EventHeap::with_arrivals(trace);
        let mut residents: BTreeMap<RequestId, RefResident> = BTreeMap::new();
        // Growth-victim scratch buffer, allocated once per run.
        let mut victims: Vec<Preemption> = Vec::new();
        // Token events order by admission epoch within an instant (offset
        // past the arrival sequence range), so simultaneous tokens resolve
        // in admission order — the same total order the bucketed engine's
        // bucket walk uses.
        let seq_base = trace.len() as u64;

        while let Some(t) = heap.next_instant() {
            core.accumulate_to(t);
            while let Some(event) = heap.pop_at(t) {
                match event {
                    Event::Arrive(spec) => core.arrive(spec),
                    Event::Token { id, epoch } => {
                        // Token events from before a preemption carry an
                        // older epoch and are discarded as stale.
                        let stale = residents.get(&id).map(|r| r.epoch != epoch).unwrap_or(true);
                        if stale {
                            continue;
                        }
                        let lease = residents.get(&id).expect("checked resident").lease;
                        let mut self_preempted = false;
                        core.scheduler.grow(lease, &mut victims);
                        for &p in &victims {
                            let v = residents.remove(&p.id).expect("victim is resident");
                            if p.id == id {
                                self_preempted = true;
                            }
                            core.preempt(v.q, v.replica);
                        }
                        if self_preempted {
                            continue;
                        }
                        let r = residents.get_mut(&id).expect("survived growth");
                        if core.emit_token(&mut r.q, t) {
                            core.scheduler.complete(lease);
                            let r = residents.remove(&id).expect("finished resident");
                            core.finish(r.q, r.replica, t);
                        } else {
                            heap.push_seq(
                                t + interval,
                                seq_base + epoch,
                                Event::Token { id, epoch },
                            );
                        }
                    }
                    Event::Tick { .. } | Event::Wake { .. } => {
                        unreachable!("reference engine schedules only per-token events")
                    }
                }
            }
            if core.admission_dirty {
                core.admission_dirty = false;
                for p in core.admit(t) {
                    let id = p.q.spec.id;
                    residents.insert(
                        id,
                        RefResident { q: p.q, replica: p.replica, lease: p.lease, epoch: p.epoch },
                    );
                    heap.push_seq(
                        p.first_token,
                        seq_base + p.epoch,
                        Event::Token { id, epoch: p.epoch },
                    );
                }
            }
        }
        debug_assert!(residents.is_empty(), "drained loop left residents behind");
        core.into_report(trace.len(), offered_qps, &heap)
    }

    /// The span-fast-forward engine: between external events the decode
    /// cadence is fully deterministic, so each replica's next *decision
    /// instant* — the earlier of its earliest resident completion on the
    /// step grid and (under token-granular accounting) the first tick whose
    /// growth would exhaust the KV pool, as forecast from deterministic
    /// one-token-per-step occupancy growth — is solved in closed form
    /// ([`next_decision`]) and carried as one `Wake` heap entry per
    /// replica. At every event instant, every replica batch-emits all its
    /// intervening tokens in one span per resident
    /// ([`Core::fast_forward_replica`]): per-resident token counts, TBT
    /// mass via `TimeHistogram::record_n`, and the occupancy integral as a
    /// closed-form arithmetic-series area — folded across replicas into
    /// *one* [`StepIntegral::add_area`] per event. Heap traffic is
    /// `O(arrivals + decision instants)` instead of `O(tick phases)`; the
    /// decision tick itself walks due residents exactly like the bucketed
    /// engine, so completions, exhaustion preemptions and spill
    /// dispositions stay bit-identical.
    fn run_span(
        &self,
        trace: &[RequestSpec],
        offered_qps: f64,
        options: ServeOptions,
    ) -> (ServingReport, SimStats) {
        // Batch serving is incremental serving with every arrival pushed up
        // front: seeding an empty heap in trace order assigns the same
        // `(at, seq)` keys as `EventHeap::with_arrivals`, so this path and
        // the cluster's epoch-resumed path are bit-identical by
        // construction.
        let mut sim = GroupSim::new(self, options);
        for spec in trace {
            sim.push_arrival(*spec);
        }
        let outcome = sim.finish(offered_qps);
        (outcome.report, outcome.stats)
    }
}

/// One replica group's span-fast-forward event loop in resumable form.
///
/// [`ServingSystem::serve_trace_with`] drives it to completion in one call;
/// the cluster simulator instead interleaves [`push_arrival`] and
/// [`advance_to`] to step many groups through bounded time epochs (possibly
/// on different worker threads — the type is `Send`), reading the O(1) load
/// probes ([`outstanding`], [`kv_reserved`]) between epochs for routing.
/// Both drivers traverse identical event sequences, so a trace served
/// incrementally produces the same [`GroupOutcome`] bit for bit as the
/// batch path — provided arrivals are pushed in trace order and never
/// behind the advanced horizon.
///
/// [`push_arrival`]: GroupSim::push_arrival
/// [`advance_to`]: GroupSim::advance_to
/// [`outstanding`]: GroupSim::outstanding
/// [`kv_reserved`]: GroupSim::kv_reserved
#[derive(Debug)]
pub struct GroupSim {
    interval: Time,
    core: Core,
    heap: EventHeap,
    slab: Slab,
    spans: Vec<ReplicaSpan>,
    /// Lease handle → slab handle, so preemption victims reported by the
    /// scheduler resolve to residents without a map lookup.
    lease_handle: Vec<u32>,
    /// Steady-state scratch buffers, allocated once per run.
    due: Vec<u32>,
    victims: Vec<Preemption>,
    dirty: Vec<bool>,
    /// Requests pushed so far (the report's `submitted` denominator).
    submitted: usize,
    /// Horizon `advance_to` has consumed; arrivals must not land behind it.
    advanced_to: Time,
    /// Healthy swap-cost model, kept so a host-link degradation window can
    /// be applied and later lifted without drift
    /// ([`set_host_link_factor`](Self::set_host_link_factor)).
    base_swap_cost: KvSwapCost,
}

impl GroupSim {
    /// A fresh, empty group over `sys`'s serving constants.
    ///
    /// The group always runs the span-fast-forward core;
    /// `options.engine` is ignored (the other engines exist only as
    /// batch-mode differential references).
    pub fn new(sys: &ServingSystem, options: ServeOptions) -> Self {
        assert!(sys.token_interval > Time::ZERO, "token interval must be positive");
        let replicas = sys.scheduler_cfg.replicas;
        let base_swap_cost = options.spill.swap_cost;
        GroupSim {
            interval: sys.token_interval,
            base_swap_cost,
            core: Core::new(sys, options),
            heap: EventHeap::new(),
            slab: Slab::default(),
            spans: vec![ReplicaSpan::default(); replicas],
            lease_handle: Vec::new(),
            due: Vec::new(),
            victims: Vec::new(),
            dirty: vec![false; replicas],
            submitted: 0,
            advanced_to: Time::ZERO,
        }
    }

    /// Injects one arriving request.
    ///
    /// Arrivals must be pushed in trace order (simultaneous arrivals
    /// resolve in push order) and must not land behind the horizon already
    /// consumed by [`advance_to`](Self::advance_to).
    pub fn push_arrival(&mut self, spec: RequestSpec) {
        assert!(
            spec.arrival >= self.advanced_to,
            "arrival at {} behind the advanced horizon {}",
            spec.arrival,
            self.advanced_to
        );
        self.submitted += 1;
        self.heap.push(spec.arrival, Event::Arrive(spec));
    }

    /// Processes every pending event strictly before `limit`, leaving the
    /// group ready for arrivals in `[limit, …)` — epochs are half-open, so
    /// an event exactly at `limit` belongs to the next window.
    pub fn advance_to(&mut self, limit: Time) {
        while let Some(t) = self.heap.next_instant() {
            if t >= limit {
                break;
            }
            self.step(t);
        }
        self.advanced_to = self.advanced_to.max(limit);
    }

    /// Requests currently in the group (waiting or resident) — the
    /// router's queue-depth load probe, maintained in O(1).
    pub fn outstanding(&self) -> u64 {
        (self.core.scheduler.in_flight() + self.core.scheduler.queue_len()) as u64
    }

    /// KV tokens currently reserved across the group's replicas — the
    /// router's memory-pressure load probe, maintained in O(1).
    pub fn kv_reserved(&self) -> u64 {
        self.core.scheduler.total_kv_reserved()
    }

    /// The per-replica KV budget in tokens — a request whose full
    /// footprint exceeds it is rejected at enqueue.
    pub fn kv_budget_tokens(&self) -> u64 {
        self.core.scheduler.kv_budget_tokens()
    }

    /// Requests pushed into the group so far.
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// Re-injects a request that lost its group to a crash, dispatching it
    /// at `at`. The spec's original `arrival` is untouched, so TTFT and
    /// latency keep running from the user-visible arrival instant; only the
    /// service restart is delayed. Counts as a fresh submission on this
    /// group (the fleet layer reports trace-level conservation separately).
    ///
    /// # Panics
    ///
    /// Panics if `at` lies behind the horizon already consumed by
    /// [`advance_to`](Self::advance_to).
    pub fn push_redispatch(&mut self, spec: RequestSpec, at: Time) {
        assert!(
            at >= self.advanced_to,
            "redispatch at {} behind the advanced horizon {}",
            at,
            self.advanced_to
        );
        debug_assert!(at >= spec.arrival, "redispatch cannot precede arrival");
        self.submitted += 1;
        self.heap.push(at, Event::Arrive(spec));
    }

    /// Injects a request handed off from a prefill group, dispatching it at
    /// `at`: its KV context sits in the shared switch-attached pool
    /// (published there at `ready`), and on first admission the group pays
    /// `transfer` — serialized on the admitting replica's swap engine and
    /// starting no earlier than `ready` — instead of prefill. The spec's
    /// `arrival` should be the original user-visible arrival so latency
    /// accounting keeps running across the handoff. Counts as a fresh
    /// submission on this group.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies behind the horizon already consumed by
    /// [`advance_to`](Self::advance_to).
    pub fn push_handoff(&mut self, spec: RequestSpec, at: Time, ready: Time, transfer: Time) {
        assert!(
            at >= self.advanced_to,
            "handoff at {} behind the advanced horizon {}",
            at,
            self.advanced_to
        );
        debug_assert!(at >= spec.arrival, "handoff cannot precede arrival");
        // A footprint the budget can never hold is rejected at enqueue and
        // never admitted, so registering a claim for it would leak.
        if spec.kv_tokens() <= self.core.scheduler.kv_budget_tokens() {
            let prev = self.core.handoffs.insert(spec.id.0, HandoffClaim { ready, transfer });
            assert!(prev.is_none(), "request {} handed off twice", spec.id.0);
        }
        self.submitted += 1;
        self.heap.push(at, Event::Arrive(spec));
    }

    /// Re-injects a request whose KV context survived the crash that
    /// orphaned it — a warm rejoin: the group retained the pages, so the
    /// request resumes decode at `at` without re-prefilling and without a
    /// transfer. Equivalent to a handoff whose context is already resident
    /// (`ready == at`, zero transfer); the spec's original `arrival` keeps
    /// the user-visible latency clock running. Counts as a fresh submission
    /// on this group.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies behind the horizon already consumed by
    /// [`advance_to`](Self::advance_to).
    pub fn push_warm(&mut self, spec: RequestSpec, at: Time) {
        self.push_handoff(spec, at, at, Time::ZERO);
    }

    /// The completion records appended since `cursor` (a count previously
    /// obtained as `cursor + returned.len()`, starting from zero). Records
    /// are in completion order while the run is live — the fleet driver
    /// polls this tail at epoch stops to detect finished prefills — and
    /// only sorted by id when the group [`finish`](Self::finish)es.
    pub fn completions_since(&self, cursor: usize) -> &[RequestRecord] {
        &self.core.records[cursor..]
    }

    /// Rescales the swap-cost model for a host-link degradation window:
    /// `factor` multiplies the healthy link bandwidth (0.25 = four times
    /// slower), shifting the `CostDriven` spill comparator toward recompute
    /// for the duration. `factor == 1.0` restores the healthy model
    /// *exactly* (no float round trip), so lifting a window leaves the
    /// group bit-identical to one that never degraded.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn set_host_link_factor(&mut self, factor: f64) {
        assert!(factor > 0.0, "host-link factor must be positive");
        self.core.spill.swap_cost = if factor == 1.0 {
            self.base_swap_cost
        } else {
            self.base_swap_cost.with_bandwidth_factor(factor)
        };
    }

    /// Tears the group down at instant `at` — a crash. Every in-flight and
    /// queued request is returned as an orphaned spec, sorted by
    /// `(arrival, id)`; their device KV (and any pages parked in the host
    /// pool) is lost, so a redispatch re-prefills from scratch while the
    /// TTFT clock keeps running from the original arrival. Completions
    /// recorded before the crash survive in the group's outcome. The group
    /// itself stays usable: it rejoins empty and cold (front-end pipelines
    /// reset) when the driver routes to it again after recovery.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies behind the horizon already consumed by
    /// [`advance_to`](Self::advance_to).
    pub fn crash(&mut self, at: Time) -> Vec<RequestSpec> {
        assert!(
            at >= self.advanced_to,
            "crash at {} behind the advanced horizon {}",
            at,
            self.advanced_to
        );
        let GroupSim { core, heap, slab, spans, dirty, .. } = self;
        // Charge occupancy up to the crash instant first, so the integrals
        // reflect the work the group really did.
        core.accumulate_to(at);
        let mut orphans: Vec<RequestSpec> = Vec::new();
        // In-flight residents: release their leases and reclaim the specs.
        // Progress is discarded — the KV pages died with the group.
        for span in spans.iter_mut() {
            for &h in span.members.iter() {
                let r = slab.remove(h);
                core.scheduler.complete(r.lease);
                orphans.push(r.q.spec);
            }
            span.members.clear();
            span.scheduled = None;
        }
        // Pending events: redispatched or not-yet-absorbed arrivals become
        // orphans again; wakes die with the spans that scheduled them.
        while let Some(t) = heap.next_instant() {
            while let Some(event) = heap.pop_at(t) {
                match event {
                    Event::Arrive(spec) => orphans.push(spec),
                    Event::Wake { .. } => {}
                    Event::Token { .. } | Event::Tick { .. } => {
                        unreachable!("span engine schedules only replica wakes")
                    }
                }
            }
        }
        // The waiting queue loses its resume state too: swapped victims'
        // pages lived in the crashed group's pool.
        for q in core.scheduler.drain_waiting() {
            orphans.push(q.spec);
        }
        core.host_pending.clear();
        core.host_used = 0;
        core.handoffs.clear();
        for free in core.prefill_free.iter_mut() {
            *free = Time::ZERO;
        }
        for free in core.prefill_free_alt.iter_mut() {
            *free = Time::ZERO;
        }
        for free in core.swap_free.iter_mut() {
            *free = Time::ZERO;
        }
        core.admission_dirty = false;
        for d in dirty.iter_mut() {
            *d = false;
        }
        orphans.sort_unstable_by_key(|s| (s.arrival, s.id));
        self.advanced_to = self.advanced_to.max(at);
        orphans
    }

    /// Drains every remaining event and assembles the group's outcome.
    pub fn finish(mut self, offered_qps: f64) -> GroupOutcome {
        while let Some(t) = self.heap.next_instant() {
            self.step(t);
        }
        debug_assert!(self.slab.is_empty(), "drained loop left residents behind");
        self.core.into_outcome(self.submitted, offered_qps, &self.heap)
    }

    /// One event instant of the span engine: fast-forward, drain, admit,
    /// re-solve — see [`ServingSystem::serve_trace_with`] for the
    /// semantics.
    fn step(&mut self, t: Time) {
        let interval = self.interval;
        let GroupSim { core, heap, slab, spans, lease_handle, due, victims, dirty, .. } = self;
        core.accumulate_to(t);
        // Fast-forward every replica's deterministic emissions up to
        // `t` — inclusive unless the replica's own decision fires at
        // `t` (then the wake's tick walk handles the at-`t` tokens, so
        // growth can preempt and final tokens can complete). The
        // per-replica staircase areas fold into ONE integral update.
        let mut span_area: u128 = 0;
        for span in spans.iter() {
            let inclusive = span.scheduled != Some(t);
            span_area += core.fast_forward_replica(slab, &span.members, t, inclusive);
        }
        core.kv_integral.add_area(span_area);
        // Drain every event at this instant, then admit once.
        while let Some(event) = heap.pop_at(t) {
            match event {
                Event::Arrive(spec) => core.arrive(spec),
                Event::Wake { replica } => {
                    let replica = replica as usize;
                    if spans[replica].scheduled != Some(t) {
                        // Superseded by a re-solved decision: drop it.
                        continue;
                    }
                    spans[replica].scheduled = None;
                    dirty[replica] = true;
                    core.tick_events += 1;
                    // The decision tick: walk due residents in
                    // admission order, exactly like a bucketed tick.
                    due.clear();
                    due.extend(
                        spans[replica]
                            .members
                            .iter()
                            .copied()
                            .filter(|&h| slab.get(h).is_some_and(|r| r.next_at == t)),
                    );
                    for &h in due.iter() {
                        let Some(r) = slab.get(h) else { continue };
                        if r.next_at != t {
                            continue;
                        }
                        let lease = r.lease;
                        let mut self_preempted = false;
                        core.scheduler.grow(lease, victims);
                        for &p in victims.iter() {
                            let vh = lease_handle[p.lease.index()];
                            let v = slab.remove(vh);
                            debug_assert_eq!(v.q.spec.id, p.id, "slab and leases agree");
                            remove_span_member(&mut spans[v.replica].members, vh);
                            if p.lease == lease {
                                self_preempted = true;
                            }
                            core.preempt(v.q, v.replica);
                        }
                        if self_preempted {
                            continue;
                        }
                        let r = slab.get_mut(h).expect("survived growth");
                        if core.emit_token(&mut r.q, t) {
                            core.scheduler.complete(lease);
                            let r = slab.remove(h);
                            remove_span_member(&mut spans[r.replica].members, h);
                            core.finish(r.q, r.replica, t);
                        } else {
                            r.next_at = t + interval;
                        }
                    }
                }
                Event::Token { .. } | Event::Tick { .. } => {
                    unreachable!("span engine schedules only replica wakes")
                }
            }
        }
        if core.admission_dirty {
            core.admission_dirty = false;
            for p in core.admit(t) {
                let phase = p.first_token.as_ps() % interval.as_ps();
                let h = slab.insert(Resident {
                    q: p.q,
                    replica: p.replica,
                    lease: p.lease,
                    next_at: p.first_token,
                    phase,
                });
                if lease_handle.len() <= p.lease.index() {
                    lease_handle.resize(p.lease.index() + 1, u32::MAX);
                }
                lease_handle[p.lease.index()] = h;
                spans[p.replica].members.push(h);
                dirty[p.replica] = true;
            }
        }
        // Re-solve the decision instant of every replica whose resident
        // set or reservation headroom changed at this instant.
        for (replica, changed) in dirty.iter_mut().enumerate() {
            if !*changed {
                continue;
            }
            *changed = false;
            let next = next_decision(core, slab, &spans[replica].members, interval, replica);
            match next {
                Some(at) if spans[replica].scheduled != Some(at) => {
                    debug_assert!(at > t, "decision must advance");
                    spans[replica].scheduled = Some(at);
                    heap.push(at, Event::Wake { replica: replica as u32 });
                }
                Some(_) => {}
                None => spans[replica].scheduled = None,
            }
        }
    }
}

/// Everything a finished group exposes: the per-group [`ServingReport`] and
/// [`SimStats`], plus the raw populations (completion records, TBT
/// histograms, per-class counters) the cluster's deterministic merge folds
/// into a fleet-wide report.
#[derive(Debug, Clone)]
pub struct GroupOutcome {
    /// The group's own serving report.
    pub report: ServingReport,
    /// Event-core counters of the group's run.
    pub stats: SimStats,
    /// Completion records sorted by request id.
    pub records: Vec<RequestRecord>,
    /// The group's time-between-tokens stream.
    pub tbt: TimeHistogram,
    /// Per-class TBT streams (keyed by the classes seen, ascending).
    pub tbt_by_class: Vec<(PriorityClass, TimeHistogram)>,
    /// Per-class submission counts (same key order).
    pub submitted_by_class: Vec<(PriorityClass, usize)>,
}

/// Event-loop state shared by every engine: the scheduler, the occupancy
/// integrals, the serial prefill front-ends and the run counters. Keeping
/// admission, token accounting and report assembly here guarantees the
/// engines can only differ in *event mechanics*, never in semantics.
///
/// The core copies the handful of serving constants it needs out of the
/// [`ServingSystem`] instead of borrowing it, so [`GroupSim`] (which owns a
/// core) is self-contained and `Send` — fleet workers move whole groups
/// across `std::thread::scope` boundaries.
#[derive(Debug)]
struct Core {
    /// Interval between a resident query's tokens (pipeline round trip).
    token_interval: Time,
    /// Prefill token rate of one replica, tokens/second.
    prefill_rate: f64,
    /// Decode slots across all replicas.
    total_slots: usize,
    /// Independent pipeline replicas.
    replicas: usize,
    /// Steady-state system decode throughput from the oracle.
    steady_state_tokens_per_s: f64,
    scheduler: ContinuousBatchScheduler,
    records: Vec<RequestRecord>,
    /// Each replica has one prefill front-end: prompts of back-to-back
    /// admissions stream through it in series.
    prefill_free: Vec<Time>,
    /// Second interleave lane of each replica's prefill front-end, used
    /// only under chunked prefill ([`ServeOptions::prefill_chunk`]): a
    /// chunked job's gaps leave room for another prompt's chunks, modeled
    /// as two lanes each stretching its jobs to a 50% duty cycle.
    prefill_free_alt: Vec<Time>,
    /// Chunked-prefill granularity (`None` = contiguous prefill).
    prefill_chunk: Option<u64>,
    /// Each replica has one swap DMA engine on its CXL port: page-out and
    /// page-in transfers serialize on it (but not with prefill compute).
    swap_free: Vec<Time>,
    /// Pending shared-pool claims by raw request id: a request handed off
    /// from a prefill group pays a pool→device transfer instead of
    /// prefill on first admission ([`GroupSim::push_handoff`]).
    handoffs: BTreeMap<u64, HandoffClaim>,
    /// Spill-tier configuration for this run.
    spill: KvSpillConfig,
    /// KV tokens currently parked in the CXL host pool — including pages
    /// whose release is already scheduled but has not fired yet.
    host_used: u64,
    /// Scheduled pool releases `(instant, tokens)`: a victim's pages leave
    /// the pool when its page-in transfer *starts* draining them, which is
    /// never before the page-out finished — so capacity can never be
    /// handed out while the pages are still in flight.
    host_pending: BinaryHeap<Reverse<(Time, u64)>>,
    /// Largest host-pool occupancy observed.
    host_peak: u64,
    /// Occupancy integrals in exact integer units (slot·ps / token·ps), so
    /// the result is independent of how finely events subdivide time —
    /// which is what lets the span engine accumulate whole windows at once
    /// and add closed-form staircase corrections ([`StepIntegral`]).
    busy_integral: StepIntegral,
    kv_integral: StepIntegral,
    host_integral: StepIntegral,
    tbt: TimeHistogram,
    /// Per-class TBT streams and arrival counts (keys are the classes seen).
    tbt_by_class: BTreeMap<PriorityClass, TimeHistogram>,
    submitted_by_class: BTreeMap<PriorityClass, usize>,
    /// Eviction outcome counters and stall accumulators.
    recomputes: u64,
    swaps: u64,
    recompute_stall: Time,
    swap_stall: Time,
    last_t: Time,
    /// Monotone admission counter; doubles as the staleness epoch of the
    /// reference engine and the bucket ordering key of the bucketed one.
    epoch: u64,
    /// Admission can only succeed after an arrival, completion or
    /// preemption; skipping it on pure token-progress instants keeps the
    /// loop linear in generated tokens.
    admission_dirty: bool,
    /// Whether the run grows reservations token by token — the span
    /// engine's exhaustion forecast and integral corrections apply only
    /// under token-granular accounting.
    granular_kv: bool,
    slo: Option<Time>,
    tokens: u64,
    tick_events: u64,
}

/// A pending shared-pool claim: the KV context of a handed-off request,
/// published by a prefill group and claimable once `ready`.
#[derive(Debug, Clone, Copy)]
struct HandoffClaim {
    /// Publish-completion instant — the claim transfer cannot start
    /// earlier.
    ready: Time,
    /// Pool→device transfer duration over the claiming replica's link.
    transfer: Time,
}

/// One admission placed by [`Core::admit`]: where the request landed and
/// when its first token emerges.
struct Placed {
    q: QueuedRequest,
    replica: usize,
    lease: LeaseId,
    first_token: Time,
    epoch: u64,
}

impl Core {
    fn new(sys: &ServingSystem, options: ServeOptions) -> Self {
        let cfg = SchedulerConfig { kv: options.kv, ..sys.scheduler_cfg };
        Core {
            token_interval: sys.token_interval,
            prefill_rate: sys.prefill_rate,
            total_slots: sys.total_slots(),
            replicas: sys.scheduler_cfg.replicas,
            steady_state_tokens_per_s: sys.steady_state_tokens_per_s,
            scheduler: ContinuousBatchScheduler::new(cfg).with_policy(options.policy),
            records: Vec::new(),
            prefill_free: vec![Time::ZERO; sys.scheduler_cfg.replicas],
            prefill_free_alt: vec![Time::ZERO; sys.scheduler_cfg.replicas],
            prefill_chunk: options.prefill_chunk,
            swap_free: vec![Time::ZERO; sys.scheduler_cfg.replicas],
            handoffs: BTreeMap::new(),
            spill: options.spill,
            host_used: 0,
            host_pending: BinaryHeap::new(),
            host_peak: 0,
            busy_integral: StepIntegral::default(),
            kv_integral: StepIntegral::default(),
            host_integral: StepIntegral::default(),
            tbt: TimeHistogram::new(),
            tbt_by_class: BTreeMap::new(),
            submitted_by_class: BTreeMap::new(),
            recomputes: 0,
            swaps: 0,
            recompute_stall: Time::ZERO,
            swap_stall: Time::ZERO,
            last_t: Time::ZERO,
            epoch: 0,
            admission_dirty: false,
            granular_kv: matches!(options.kv, KvMode::TokenGranular { .. }),
            slo: options.slo,
            tokens: 0,
            tick_events: 0,
        }
    }

    /// Accumulates the occupancy integrals over `[last_t, t)`.
    ///
    /// Slot and KV occupancy only change at event instants, so one segment
    /// covers them; host-pool occupancy also drops at scheduled release
    /// instants *between* events (a page-in starting to drain the pool), so
    /// its integral is piecewise over the due releases.
    fn accumulate_to(&mut self, t: Time) {
        let dt = t.saturating_sub(self.last_t).as_ps();
        self.busy_integral.advance(self.scheduler.in_flight() as u128, dt);
        self.kv_integral.advance(u128::from(self.scheduler.total_kv_reserved()), dt);
        let mut cursor = self.last_t;
        while let Some(&Reverse((at, tokens))) = self.host_pending.peek() {
            if at > t {
                break;
            }
            let at = at.max(cursor);
            self.host_integral
                .advance(u128::from(self.host_used), at.saturating_sub(cursor).as_ps());
            cursor = at;
            self.host_used =
                self.host_used.checked_sub(tokens).expect("host pool released more than it held");
            self.host_pending.pop();
        }
        self.host_integral.advance(u128::from(self.host_used), t.saturating_sub(cursor).as_ps());
        self.last_t = t;
    }

    /// Accepts an arriving request: per-class accounting plus the
    /// scheduler's feasibility check.
    fn arrive(&mut self, spec: RequestSpec) {
        *self.submitted_by_class.entry(spec.class).or_insert(0) += 1;
        self.scheduler.enqueue(spec);
        self.admission_dirty = true;
    }

    /// First block-step boundary strictly after `t`: the pipeline emits
    /// the first token of a query whose prefill finished at `t` at the end
    /// of the step in progress.
    fn next_step(&self, t: Time) -> Time {
        let step = self.token_interval.as_ps();
        Time::from_ps((t.as_ps() / step + 1) * step)
    }

    /// Runs admission at instant `t` and computes each admitted request's
    /// service timeline (prefill or swap-in) and first-token instant.
    fn admit(&mut self, t: Time) -> Vec<Placed> {
        let ctx = PolicyContext { now: t, token_interval: self.token_interval };
        let admitted = self.scheduler.admit_ready(&ctx);
        let mut placed = Vec::with_capacity(admitted.len());
        for admission in admitted {
            let mut q = admission.req;
            if q.first_admitted.is_none() {
                q.first_admitted = Some(t);
            }
            let ready = if let Some(claim) = self.handoffs.remove(&q.spec.id.0) {
                // Shared-pool claim: the context a prefill group published
                // into the switch-attached pool streams in over this
                // replica's swap engine, no earlier than the publish
                // completed. No prefill is paid here — that happened on
                // the prefill group ([`GroupSim::push_handoff`]).
                let start = t.max(self.swap_free[admission.replica]).max(claim.ready);
                let done = start + claim.transfer;
                self.swap_free[admission.replica] = done;
                done
            } else if let Some(swap) = q.swapped.take() {
                // Swap-in: the pages stream back over the target replica's
                // swap engine, no earlier than the page-out finished. They
                // occupy the host pool until the page-in starts draining
                // them (scheduled release; the device reservation taken at
                // this admission holds their landing space).
                debug_assert_eq!(swap.tokens, q.resident_kv(), "swap pages match footprint");
                let start = t.max(self.swap_free[admission.replica]).max(swap.out_done);
                let done = start + self.spill.swap_cost.transfer_time(swap.tokens);
                self.host_pending.push(Reverse((start, swap.tokens)));
                self.swap_free[admission.replica] = done;
                self.swap_stall += done.saturating_sub(swap.evicted_at);
                done
            } else {
                // Prefill semantics: a fresh prompt — or, on the recompute
                // path, the whole context (prompt + generated so far) —
                // streams through the replica's serial prefill front-end.
                // Chunked mode stretches the job to a 50% duty cycle (one
                // idle chunk-slot after every chunk but the last, where
                // resident decode interleaves) and picks the earlier-free
                // of the front-end's two interleave lanes, so a short
                // prompt behind a long one starts in the long job's gaps.
                let context_tokens = q.spec.prompt + q.progress;
                let replica = admission.replica;
                let done = match self.prefill_chunk {
                    None => {
                        let prefill =
                            Time::from_secs_f64(context_tokens as f64 / self.prefill_rate);
                        let start = t.max(self.prefill_free[replica]);
                        let done = start + prefill;
                        self.prefill_free[replica] = done;
                        done
                    }
                    Some(chunk) => {
                        let chunk = usize::try_from(chunk).expect("prefill chunk fits usize");
                        let chunks = context_tokens.div_ceil(chunk).max(1);
                        let stretched = Time::from_secs_f64(
                            (context_tokens + (chunks - 1) * chunk) as f64 / self.prefill_rate,
                        );
                        let lane = if self.prefill_free[replica] <= self.prefill_free_alt[replica] {
                            &mut self.prefill_free[replica]
                        } else {
                            &mut self.prefill_free_alt[replica]
                        };
                        let start = t.max(*lane);
                        let done = start + stretched;
                        *lane = done;
                        done
                    }
                };
                if let Some(evicted_at) = q.evicted_at.take() {
                    self.recompute_stall += done.saturating_sub(evicted_at);
                }
                done
            };
            self.epoch += 1;
            placed.push(Placed {
                q,
                replica: admission.replica,
                lease: admission.lease,
                first_token: self.next_step(ready),
                epoch: self.epoch,
            });
        }
        placed
    }

    /// Applies a batch of `count` grid-spaced tokens to `q`, the first at
    /// `first` — the span-fast-forward equivalent of `count` uneventful
    /// [`emit_token`](Self::emit_token) calls. The span must end strictly
    /// before the request's final token (the caller's decision solver
    /// guarantees it), so completion never needs checking here. The
    /// time-between-tokens mass lands in one `record` (the resume gap, if
    /// any) plus one `record_n` (the `count - 1` on-cadence gaps).
    fn emit_span(&mut self, q: &mut QueuedRequest, first: Time, count: u64) {
        self.tokens += count;
        let interval = self.token_interval;
        let class = self.tbt_by_class.entry(q.spec.class).or_default();
        if let Some(gap) = q.apply_token_span(first, interval, count) {
            self.tbt.record(gap);
            class.record(gap);
        }
        self.tbt.record_n(interval, count - 1);
        class.record_n(interval, count - 1);
    }

    /// Fast-forwards one replica's residents (`members`, in admission
    /// order) to instant `t`: every token due strictly before `t` — and,
    /// when `inclusive` (the replica has no decision of its own scheduled
    /// at `t`), exactly at `t` — is emitted as one batched span per
    /// resident, with the scheduler's reservation grown in one call. The
    /// caller's decision solver guarantees the window holds no completion
    /// and no exhaustion, so every span is uneventful by construction.
    ///
    /// Returns the closed-form KV-integral correction area in token·ps:
    /// the integral of the replica's reservation-growth staircase *above*
    /// the base value that [`accumulate_to`](Self::accumulate_to) already
    /// charged for the window ending at `t` (each of a resident's `count`
    /// span tokens at instant `e` holds one extra token over `[e, t)`, so
    /// its area is `Σ (t − e)` — an arithmetic series).
    fn fast_forward_replica(
        &mut self,
        slab: &mut Slab,
        members: &[u32],
        t: Time,
        inclusive: bool,
    ) -> u128 {
        let interval = self.token_interval;
        let step = interval.as_ps();
        let mut area: u128 = 0;
        for &h in members {
            let r = slab.get_mut(h).expect("members are live");
            if r.next_at > t || (!inclusive && r.next_at == t) {
                continue;
            }
            let d = t.as_ps() - r.next_at.as_ps();
            let count = if inclusive { d / step + 1 } else { d.div_ceil(step) };
            self.scheduler.grow_n(r.lease, count);
            if self.granular_kv {
                area += u128::from(count) * u128::from(d)
                    - u128::from(step) * (u128::from(count) * u128::from(count - 1) / 2);
            }
            let first = r.next_at;
            r.next_at = first + interval.times(count);
            self.emit_span(&mut r.q, first, count);
        }
        area
    }

    /// Applies one generated token to `q` at instant `t`; returns `true`
    /// when the request just finished.
    fn emit_token(&mut self, q: &mut QueuedRequest, t: Time) -> bool {
        q.progress += 1;
        self.tokens += 1;
        if q.first_token.is_none() {
            q.first_token = Some(t);
        }
        if let Some(prev) = q.last_token {
            let gap = t.saturating_sub(prev);
            self.tbt.record(gap);
            self.tbt_by_class.entry(q.spec.class).or_default().record(gap);
        }
        q.last_token = Some(t);
        q.progress >= q.spec.decode
    }

    /// Records a completion (the scheduler lease must already be released).
    fn finish(&mut self, q: QueuedRequest, replica: usize, t: Time) {
        self.admission_dirty = true;
        self.records.push(RequestRecord {
            spec: q.spec,
            admitted: q.first_admitted.expect("was admitted"),
            first_token: q.first_token.expect("emitted first token"),
            finished: t,
            replica,
            preemptions: q.preemptions,
        });
    }

    /// Disposes of an eviction victim from `replica`: swap its KV pages to
    /// the CXL host pool or requeue it for recompute, per the configured
    /// [`KvSpillMode`] and the per-victim cost comparator. Called at the
    /// current instant (`last_t`); the scheduler lease is already released.
    fn preempt(&mut self, mut q: QueuedRequest, replica: usize) {
        self.admission_dirty = true;
        q.preemptions += 1;
        let t = self.last_t;
        let tokens = q.resident_kv();
        let pool_fits = self.host_used + tokens <= self.spill.host_pool_tokens;
        let swap = match self.spill.mode {
            KvSpillMode::RecomputeOnly => false,
            KvSpillMode::SwapOnly => pool_fits,
            KvSpillMode::CostDriven => {
                pool_fits && self.spill.swap_cost.swap_is_cheaper(tokens, self.prefill_rate)
            }
        };
        if swap {
            // Page out over the victim replica's swap engine; the pages
            // occupy the host pool until the page-in starts.
            self.swaps += 1;
            self.host_used += tokens;
            self.host_peak = self.host_peak.max(self.host_used);
            debug_assert!(self.host_used <= self.spill.host_pool_tokens, "host pool overcommitted");
            let start = t.max(self.swap_free[replica]);
            let out_done = start + self.spill.swap_cost.transfer_time(tokens);
            self.swap_free[replica] = out_done;
            q.swapped = Some(SwapState { tokens, out_done, evicted_at: t });
            q.evicted_at = None;
        } else {
            self.recomputes += 1;
            q.swapped = None;
            q.evicted_at = Some(t);
        }
        self.scheduler.requeue(q);
    }

    /// Assembles the [`ServingReport`] and [`SimStats`] of the finished run.
    fn into_report(
        self,
        submitted: usize,
        offered_qps: f64,
        heap: &EventHeap,
    ) -> (ServingReport, SimStats) {
        let outcome = self.into_outcome(submitted, offered_qps, heap);
        (outcome.report, outcome.stats)
    }

    /// Assembles the full [`GroupOutcome`] of the finished run: the report
    /// and counters plus the raw populations the cluster merge consumes.
    fn into_outcome(
        mut self,
        submitted: usize,
        offered_qps: f64,
        heap: &EventHeap,
    ) -> GroupOutcome {
        let span_ps = self.last_t.as_ps();
        let slot_utilization = self.busy_integral.fraction_of(self.total_slots as u128, span_ps);
        let kv_utilization = self.kv_integral.fraction_of(
            u128::from(self.scheduler.kv_budget_tokens()) * self.replicas as u128,
            span_ps,
        );
        let peak_kv_fraction = if self.scheduler.kv_budget_tokens() > 0 {
            self.scheduler.peak_kv_reserved() as f64 / self.scheduler.kv_budget_tokens() as f64
        } else {
            0.0
        };
        let host_kv_utilization =
            self.host_integral.fraction_of(u128::from(self.spill.host_pool_tokens), span_ps);
        // Releases scheduled past the final event (a page-in whose drain
        // starts after the last token) fire here; their tail occupancy is
        // not charged to the utilization integral, which ends at `last_t`.
        while let Some(Reverse((_, tokens))) = self.host_pending.pop() {
            self.host_used =
                self.host_used.checked_sub(tokens).expect("host pool released more than it held");
        }
        debug_assert_eq!(self.host_used, 0, "drained run left pages in the host pool");
        debug_assert!(self.handoffs.is_empty(), "drained run left unclaimed handoffs");
        debug_assert_eq!(
            self.recomputes + self.swaps,
            self.scheduler.preemptions(),
            "eviction dispositions account for every scheduler eviction"
        );
        self.records.sort_by_key(|r| r.spec.id);
        let stats = SimStats {
            heap_pushes: heap.pushes,
            heap_pops: heap.pops,
            tick_events: self.tick_events,
            tokens: self.tokens,
            admissions: self.scheduler.admissions(),
        };
        // The merge-facing populations are cloned out before RunTotals
        // consumes them: per-group histograms must survive in the outcome
        // so the cluster can fold them order-independently.
        let tbt = self.tbt.clone();
        let submitted_by_class: Vec<(PriorityClass, usize)> =
            self.submitted_by_class.into_iter().collect();
        let tbt_by_class: Vec<(PriorityClass, TimeHistogram)> =
            self.tbt_by_class.into_iter().collect();
        let report = ServingReport::from_records(
            &self.records,
            RunTotals {
                offered_qps,
                submitted,
                rejected: self.scheduler.rejected().len(),
                steady_state_tokens_per_s: self.steady_state_tokens_per_s,
                slot_utilization,
                peak_kv_fraction,
                kv_utilization,
                peak_queue_depth: self.scheduler.peak_queue_depth(),
                preemptions: self.recomputes,
                swaps: self.swaps,
                recompute_stall: self.recompute_stall,
                swap_stall: self.swap_stall,
                host_pool_tokens: self.spill.host_pool_tokens,
                host_kv_peak_tokens: self.host_peak,
                host_kv_utilization,
                tbt: self.tbt,
                submitted_by_class: submitted_by_class.clone(),
                tbt_by_class: tbt_by_class.clone(),
                slo: self.slo,
            },
        );
        GroupOutcome { report, stats, records: self.records, tbt, tbt_by_class, submitted_by_class }
    }
}

/// Loop-side state of a resident in the bucketed engine.
#[derive(Debug, Clone, Copy)]
struct Resident {
    q: QueuedRequest,
    replica: usize,
    lease: LeaseId,
    /// Instant of this resident's next token.
    next_at: Time,
    /// Tick-bucket key: `next_at mod token_interval`, fixed at admission.
    phase: u64,
}

/// Loop-side state of a resident in the per-token reference engine.
#[derive(Debug, Clone, Copy)]
struct RefResident {
    q: QueuedRequest,
    replica: usize,
    lease: LeaseId,
    /// Admission epoch; token events from before a preemption carry an
    /// older epoch and are discarded as stale.
    epoch: u64,
}

/// Dense resident storage for the bucketed engine: the hot path indexes an
/// array slot instead of walking an id-keyed tree. Freed handles are
/// recycled LIFO, deterministically.
#[derive(Debug, Default)]
struct Slab {
    slots: Vec<Option<Resident>>,
    free: Vec<u32>,
}

impl Slab {
    fn insert(&mut self, r: Resident) -> u32 {
        match self.free.pop() {
            Some(h) => {
                debug_assert!(self.slots[h as usize].is_none(), "reusing a live slot");
                self.slots[h as usize] = Some(r);
                h
            }
            None => {
                self.slots.push(Some(r));
                (self.slots.len() - 1) as u32
            }
        }
    }

    fn remove(&mut self, h: u32) -> Resident {
        let r = self.slots[h as usize].take().expect("removing an empty slot");
        self.free.push(h);
        r
    }

    fn get(&self, h: u32) -> Option<&Resident> {
        self.slots[h as usize].as_ref()
    }

    fn get_mut(&mut self, h: u32) -> Option<&mut Resident> {
        self.slots[h as usize].as_mut()
    }

    fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }
}

/// One tick bucket: the residents of a replica sharing a token phase.
#[derive(Debug, Clone, Default)]
struct Bucket {
    /// Resident handles in admission order (the order simultaneous token
    /// events resolve in).
    members: Vec<u32>,
    /// Fire instant of this bucket's live heap entry, if any. A popped
    /// `Tick` whose instant does not match is stale and is dropped, so
    /// empty buckets retire their entry without heap surgery.
    scheduled: Option<Time>,
}

/// Removes a resident handle from its bucket, preserving admission order.
fn remove_member(buckets: &mut BTreeMap<u64, Bucket>, phase: u64, h: u32) {
    let bucket = buckets.get_mut(&phase).expect("resident's bucket exists");
    let pos = bucket.members.iter().position(|&x| x == h).expect("resident is in its bucket");
    bucket.members.remove(pos);
}

/// Per-replica state of the span engine: resident handles in admission
/// order plus the fire instant of the replica's live `Wake` heap entry.
#[derive(Debug, Clone, Default)]
struct ReplicaSpan {
    /// Resident handles in admission order (the order simultaneous token
    /// events resolve in — identical to the bucketed engine's bucket walk).
    members: Vec<u32>,
    /// Fire instant of this replica's live `Wake` entry, if any. A popped
    /// wake whose instant does not match was superseded by a re-solved
    /// decision and is dropped, so stale entries retire without heap
    /// surgery (the same lazy-invalidation scheme as [`Bucket`]).
    scheduled: Option<Time>,
}

/// Removes a resident handle from a replica's span member list, preserving
/// admission order.
fn remove_span_member(members: &mut Vec<u32>, h: u32) {
    let pos = members.iter().position(|&x| x == h).expect("resident is a span member");
    members.remove(pos);
}

/// Solves one replica's next *decision instant* in closed form: the
/// earliest instant at which something other than plain on-cadence token
/// emission happens. That is the minimum of
///
/// * the earliest resident completion on the step grid
///   (`next_at + (remaining − 1) · interval`), and
/// * under token-granular accounting, the first tick whose deterministic
///   growth — every resident reserves one more token per step from its
///   `next_at` onward — would exceed the replica's KV headroom and so
///   preempt ([`ContinuousBatchScheduler::kv_headroom`]).
///
/// Arrivals and swap-engine drains need no solving here: arrivals are heap
/// events of their own, and swap/prefill timelines only matter at
/// admission instants, which only follow arrivals, completions and
/// preemptions. Returns `None` for an empty replica.
///
/// The exhaustion instant is found by bisecting the cumulative-emission
/// step function `C(s) = Σᵢ ⌊(s − next_atᵢ)/interval⌋ + 1` (over residents
/// with `next_atᵢ ≤ s`), which is monotone, so the minimal `s` with
/// `C(s) > headroom` is exact — and it is only bisected at all when
/// `C(earliest completion) > headroom` says the pool dies first.
fn next_decision(
    core: &Core,
    slab: &Slab,
    members: &[u32],
    interval: Time,
    replica: usize,
) -> Option<Time> {
    let step = interval.as_ps();
    let mut completion = u64::MAX;
    let mut earliest = u64::MAX;
    for &h in members {
        let r = slab.get(h).expect("members are live");
        let remaining = (r.q.spec.decode - r.q.progress) as u64;
        debug_assert!(remaining >= 1, "finished residents leave the slab");
        completion = completion.min(r.next_at.as_ps() + (remaining - 1) * step);
        earliest = earliest.min(r.next_at.as_ps());
    }
    if completion == u64::MAX {
        return None;
    }
    if core.granular_kv {
        let headroom = core.scheduler.kv_headroom(replica);
        let count = |s: u64| -> u64 {
            members
                .iter()
                .map(|&h| {
                    let at = slab.get(h).expect("members are live").next_at.as_ps();
                    if at <= s {
                        (s - at) / step + 1
                    } else {
                        0
                    }
                })
                .sum()
        };
        if count(completion) > headroom {
            let (mut lo, mut hi) = (earliest, completion);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if count(mid) > headroom {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            return Some(Time::from_ps(lo));
        }
    }
    Some(Time::from_ps(completion))
}

/// A scheduled event. Ordering (and equality) is by `(at, seq)` only — the
/// payload never drives the heap — and `seq` is unique per entry, so the
/// order is total and deterministic.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    at: Time,
    seq: u64,
    event: Event,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Arrive(RequestSpec),
    /// One token of one resident (reference engine only).
    Token {
        id: RequestId,
        epoch: u64,
    },
    /// One firing of a `(replica, phase)` tick bucket (bucketed engine
    /// only): advances every due resident of the bucket.
    Tick {
        replica: u32,
        phase: u64,
    },
    /// One firing of a replica's solved decision instant (span engine
    /// only): the earliest completion or KV-exhaustion tick; every token
    /// before it was batch-emitted by the fast-forward pass.
    Wake {
        replica: u32,
    },
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The event heap plus push/pop counters: arrivals are seeded with the
/// trace order sequence numbers, so simultaneous arrivals resolve in trace
/// order ahead of any tick or token event.
#[derive(Debug)]
struct EventHeap {
    heap: BinaryHeap<Reverse<HeapEntry>>,
    next_seq: u64,
    pushes: u64,
    pops: u64,
}

impl EventHeap {
    /// An empty heap; pushing arrivals one by one in trace order assigns
    /// the same `(at, seq)` keys [`with_arrivals`](Self::with_arrivals)
    /// would.
    fn new() -> Self {
        EventHeap { heap: BinaryHeap::new(), next_seq: 0, pushes: 0, pops: 0 }
    }

    fn with_arrivals(trace: &[RequestSpec]) -> Self {
        let mut heap = BinaryHeap::with_capacity(trace.len() + 64);
        for (i, spec) in trace.iter().enumerate() {
            heap.push(Reverse(HeapEntry {
                at: spec.arrival,
                seq: i as u64,
                event: Event::Arrive(*spec),
            }));
        }
        EventHeap { heap, next_seq: trace.len() as u64, pushes: trace.len() as u64, pops: 0 }
    }

    fn push(&mut self, at: Time, event: Event) {
        self.heap.push(Reverse(HeapEntry { at, seq: self.next_seq, event }));
        self.next_seq += 1;
        self.pushes += 1;
    }

    /// Pushes with an explicit sequence key. The reference engine keys
    /// token events by admission epoch so simultaneous tokens resolve in
    /// admission order; a resident has at most one pending event, so
    /// `(at, seq)` stays unique.
    fn push_seq(&mut self, at: Time, seq: u64, event: Event) {
        self.heap.push(Reverse(HeapEntry { at, seq, event }));
        self.pushes += 1;
    }

    /// Instant of the earliest pending event.
    fn next_instant(&self) -> Option<Time> {
        self.heap.peek().map(|&Reverse(HeapEntry { at, .. })| at)
    }

    /// Pops the earliest event if it is scheduled exactly at `t`.
    fn pop_at(&mut self, t: Time) -> Option<Event> {
        match self.heap.peek() {
            Some(Reverse(entry)) if entry.at == t => {
                self.pops += 1;
                Some(self.heap.pop().expect("peeked").0.event)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::RequestId;
    use crate::workload::{ArrivalProcess, ClassMix, LengthSampler};

    /// A hand-built system: 1 replica × 4 slots, 1 ms per token, 1000-token/s
    /// prefill, KV for 4000 tokens. Uses a 4K-context config so test shapes
    /// are not clamped by the context window (`from_parts` never simulates,
    /// so the model size is free).
    fn tiny_system() -> ServingSystem {
        ServingSystem::from_parts(
            &ModelConfig::llama2_7b(),
            SchedulerConfig {
                replicas: 1,
                slots_per_replica: 4,
                kv_budget: KvBudget::tokens(4000),
                kv: KvMode::FullReservation,
            },
            Time::from_us(1000),
            1000.0,
            4000.0,
        )
    }

    fn poisson(rate: f64, seed: u64, prompt: usize, decode: usize) -> Workload {
        Workload {
            arrivals: ArrivalProcess::Poisson { rate_qps: rate },
            lengths: LengthSampler::Fixed { prompt, decode },
            seed,
            classes: ClassMix::default(),
        }
    }

    #[test]
    fn empty_workload_yields_idle_report() {
        let sys = tiny_system();
        let report = sys.serve_trace(&[], 0.0);
        assert_eq!(report.completed, 0);
        assert_eq!(report.tokens_per_s, 0.0);
        assert_eq!(report.slot_utilization, 0.0);
        assert_eq!(report.ttft.p99, Time::ZERO);
    }

    #[test]
    fn single_request_latency_is_prefill_plus_decode() {
        let sys = tiny_system();
        let trace = [RequestSpec {
            id: RequestId(0),
            arrival: Time::from_us(500),
            prompt: 100,
            decode: 10,
            class: PriorityClass::default(),
            session: crate::queue::SessionId(0),
        }];
        let report = sys.serve_trace(&trace, 1.0);
        assert_eq!(report.completed, 1);
        // No queueing: prefill (100 tokens @ 1000/s) finishes at 100.5 ms
        // and the first token emerges at the end of the block step in
        // progress — the 101 ms grid point — so TTFT is 100.5 ms from the
        // 0.5 ms arrival.
        assert_eq!(report.queue_wait.max, Time::ZERO);
        assert_eq!(report.ttft.p50, Time::from_secs_f64(0.1005));
        // Query latency adds the remaining 9 tokens on the 1 ms cadence.
        assert_eq!(report.query_latency.p50, Time::from_secs_f64(0.1095));
        assert_eq!(report.tbt.mean, Time::from_us(1000));
        assert_eq!(report.preemptions, 0);
    }

    #[test]
    fn tokens_land_on_the_block_step_grid() {
        let sys = tiny_system();
        // Prefill offsets that are not multiples of the 1 ms step.
        for (arrival_us, prompt) in [(1u64, 1usize), (137, 33), (999, 100), (1000, 250)] {
            let trace = [RequestSpec {
                id: RequestId(0),
                arrival: Time::from_us(arrival_us),
                prompt,
                decode: 5,
                class: PriorityClass::default(),
                session: crate::queue::SessionId(0),
            }];
            let report = sys.serve_trace(&trace, 1.0);
            let first_token = report.ttft.p50 + Time::from_us(arrival_us);
            assert_eq!(
                first_token.as_ps() % Time::from_us(1000).as_ps(),
                0,
                "first token off-grid for arrival {arrival_us} us, prompt {prompt}"
            );
            // The whole decode stays one step apart.
            assert_eq!(
                report.query_latency.p50.saturating_sub(report.ttft.p50),
                Time::from_us(4000)
            );
        }
    }

    #[test]
    fn saturation_converges_to_slot_limited_throughput() {
        let sys = tiny_system();
        // 4 slots × 1 token/ms = 4000 tok/s decode capacity; shape 10+490
        // tokens → capacity ≈ 8 q/s. Offer 3× that.
        let w = poisson(25.0, 11, 10, 490);
        let report = sys.run(&w, Time::from_secs_f64(20.0));
        let fraction = report.throughput_fraction();
        assert!(
            (0.9..=1.02).contains(&fraction),
            "throughput {:.0} tok/s vs steady {:.0} ({fraction:.3})",
            report.tokens_per_s,
            report.steady_state_tokens_per_s,
        );
        assert!(report.slot_utilization > 0.9, "util {}", report.slot_utilization);
        // Latency blows up under 3× overload: queue wait dwarfs service.
        assert!(report.queue_wait.p99 > Time::from_secs_f64(1.0));
    }

    #[test]
    fn latency_knee_appears_past_saturation() {
        let sys = tiny_system();
        let light = sys.run(&poisson(8.0, 5, 10, 90), Time::from_secs_f64(20.0));
        let heavy = sys.run(&poisson(100.0, 5, 10, 90), Time::from_secs_f64(20.0));
        assert!(
            heavy.query_latency.p99.as_secs() > 5.0 * light.query_latency.p99.as_secs(),
            "light p99 {} heavy p99 {}",
            light.query_latency.p99,
            heavy.query_latency.p99,
        );
        assert!(light.queue_wait.p99 < heavy.queue_wait.p99);
    }

    #[test]
    fn kv_budget_caps_concurrency_below_slot_count() {
        // KV for only 2 resident 100-token requests despite 4 slots.
        let sys = tiny_system().with_kv_budget(KvBudget::tokens(200));
        let w = poisson(100.0, 13, 10, 90);
        let report = sys.run(&w, Time::from_secs_f64(10.0));
        // Throughput is KV-bound at half the slot-limited rate.
        assert!(report.throughput_fraction() < 0.6, "{}", report.throughput_fraction());
        assert!(report.peak_kv_fraction <= 1.0);
        assert!(report.slot_utilization < 0.6);
    }

    #[test]
    fn token_granular_mode_lifts_kv_bound_concurrency() {
        // KV-starved deployment: full reservation fits 2 resident queries
        // (2 × 100 tokens) despite 4 slots; token-granular admission packs
        // more because occupancy only reaches 100 tokens at the end of each
        // query's decode. Prefill is 20x faster than decode (the realistic
        // regime) so preemption/recompute stays cheap.
        let sys = ServingSystem::from_parts(
            &ModelConfig::llama2_7b(),
            SchedulerConfig {
                replicas: 1,
                slots_per_replica: 4,
                kv_budget: KvBudget::tokens(200),
                kv: KvMode::FullReservation,
            },
            Time::from_us(1000),
            20_000.0,
            4000.0,
        );
        let w = poisson(100.0, 13, 10, 90);
        let full = sys.run(&w, Time::from_secs_f64(10.0));
        let token = sys.run_with(&w, Time::from_secs_f64(10.0), ServeOptions::token_granular());
        assert!(
            token.slot_utilization > full.slot_utilization,
            "token {} vs full {}",
            token.slot_utilization,
            full.slot_utilization
        );
        assert!(token.tokens_per_s >= full.tokens_per_s);
        assert!(token.peak_kv_fraction <= 1.0);
        assert_eq!(token.completed, token.submitted - token.rejected);
    }

    #[test]
    fn preempted_requests_complete_and_are_counted() {
        // Budget for ~1.5 full contexts forces repeated preemption, yet
        // every admitted request must finish exactly once.
        let sys = tiny_system().with_kv_budget(KvBudget::tokens(150));
        let w = poisson(50.0, 7, 10, 90);
        let report = sys.run_with(&w, Time::from_secs_f64(5.0), ServeOptions::token_granular());
        assert!(report.preemptions > 0, "expected KV pressure to preempt");
        assert_eq!(report.completed, report.submitted - report.rejected);
        assert!(report.peak_kv_fraction <= 1.0);
    }

    #[test]
    fn swap_only_replaces_recompute_with_transfers() {
        // Slow prefill (1000 tok/s) makes recompute expensive; a roomy host
        // pool and a small per-token footprint make swaps cheap. SwapOnly
        // must divert every eviction to the CXL tier.
        let sys = tiny_system().with_kv_budget(KvBudget::tokens(150));
        let w = poisson(50.0, 7, 10, 90);
        let spill = KvSpillConfig::swap_only(10_000, KvSwapCost::cent(ByteSize::kib(4)));
        let report = sys.run_with(
            &w,
            Time::from_secs_f64(5.0),
            ServeOptions::token_granular().with_spill(spill),
        );
        assert!(report.swaps > 0, "expected KV pressure to swap");
        assert_eq!(report.preemptions, 0, "no recompute with a roomy pool");
        assert_eq!(report.completed, report.submitted - report.rejected);
        assert!(report.host_kv_peak_tokens > 0);
        assert!(report.host_kv_peak_tokens <= report.host_pool_tokens);
        assert!(report.swap_stall > Time::ZERO);
        assert_eq!(report.recompute_stall, Time::ZERO);
        // Swapping beats recomputing at this operating point: the same
        // trace under RecomputeOnly stalls longer.
        let recompute = sys.run_with(&w, Time::from_secs_f64(5.0), ServeOptions::token_granular());
        assert!(recompute.preemptions > 0);
        assert!(report.eviction_stall() < recompute.eviction_stall());
    }

    #[test]
    fn cost_driven_follows_the_comparator() {
        let sys = tiny_system().with_kv_budget(KvBudget::tokens(150));
        let w = poisson(50.0, 7, 10, 90);
        let horizon = Time::from_secs_f64(5.0);
        // Cheap transfers (4 KiB/token) against a 1000 tok/s prefill:
        // swapping a ~100-token context costs ~microseconds vs ~100 ms of
        // recompute, so every victim swaps...
        let cheap = KvSpillConfig::cost_driven(10_000, KvSwapCost::cent(ByteSize::kib(4)));
        let report = sys.run_with(&w, horizon, ServeOptions::token_granular().with_spill(cheap));
        assert!(report.swaps > 0);
        assert_eq!(report.preemptions, 0);
        // ...while a grotesquely fat footprint flips every decision back to
        // recompute, reproducing the RecomputeOnly report bit for bit.
        let fat = KvSpillConfig::cost_driven(10_000, KvSwapCost::cent(ByteSize::gib(4)));
        let report = sys.run_with(&w, horizon, ServeOptions::token_granular().with_spill(fat));
        assert_eq!(report.swaps, 0);
        assert!(report.preemptions > 0);
        // Identical to pure RecomputeOnly under the same (never-consulted)
        // pool configuration — the comparator changes nothing but choices.
        let baseline = sys.run_with(
            &w,
            horizon,
            ServeOptions::token_granular().with_spill(fat.with_mode(KvSpillMode::RecomputeOnly)),
        );
        assert_eq!(report, baseline);
    }

    #[test]
    fn full_host_pool_falls_back_to_recompute() {
        // A pool smaller than any victim's footprint can never accept a
        // swap; SwapOnly must degrade to recompute and still drain.
        let sys = tiny_system().with_kv_budget(KvBudget::tokens(150));
        let w = poisson(50.0, 7, 10, 90);
        let spill = KvSpillConfig::swap_only(5, KvSwapCost::cent(ByteSize::kib(4)));
        let report = sys.run_with(
            &w,
            Time::from_secs_f64(5.0),
            ServeOptions::token_granular().with_spill(spill),
        );
        assert_eq!(report.swaps, 0, "nothing fits a 5-token pool");
        assert!(report.preemptions > 0);
        assert_eq!(report.host_kv_peak_tokens, 0);
        assert_eq!(report.completed, report.submitted - report.rejected);
    }

    #[test]
    fn classes_keep_interactive_traffic_ahead() {
        // Saturated two-tier mix: interactive arrivals must wait less and
        // reach their first token sooner than the background tier.
        let sys = tiny_system();
        let w = poisson(25.0, 11, 10, 490).with_classes(ClassMix::two_tier(0.5));
        let report = sys.run(&w, Time::from_secs_f64(20.0));
        assert_eq!(report.classes.len(), 2);
        let (hi, lo) = (&report.classes[0], &report.classes[1]);
        assert_eq!(hi.class, PriorityClass::INTERACTIVE);
        assert_eq!(lo.class, PriorityClass::BATCH);
        assert!(hi.completed > 0 && lo.completed > 0);
        assert!(
            hi.ttft.p99 < lo.ttft.p99,
            "interactive TTFT p99 {} must beat background {}",
            hi.ttft.p99,
            lo.ttft.p99
        );
        assert_eq!(hi.submitted + lo.submitted, report.submitted);
    }

    #[test]
    fn engines_agree_bit_for_bit_under_preemption() {
        // Quick smoke of the differential property (the full seed × mode ×
        // policy matrix lives in tests/serving_props.rs).
        let sys = tiny_system().with_kv_budget(KvBudget::tokens(150));
        let w = poisson(50.0, 7, 10, 90);
        let horizon = Time::from_secs_f64(5.0);
        let bucketed = sys.run_with(
            &w,
            horizon,
            ServeOptions::token_granular().with_engine(TickEngine::PhaseBucketed),
        );
        for engine in [TickEngine::PerTokenReference, TickEngine::SpanFastForward] {
            let other =
                sys.run_with(&w, horizon, ServeOptions::token_granular().with_engine(engine));
            assert!(bucketed.preemptions > 0);
            assert_eq!(bucketed, other, "{engine:?}");
        }
    }

    #[test]
    fn span_engine_skips_tick_heap_traffic() {
        // On a clean saturated shape the span engine must touch the heap
        // only for arrivals and decision instants — far below even the
        // bucketed engine's one-entry-per-step budget.
        let sys = tiny_system();
        let w = poisson(25.0, 11, 10, 490);
        let trace = w.generate(Time::from_secs_f64(20.0), 4096);
        let (bkt_report, bkt) = sys.serve_trace_instrumented(
            &trace,
            25.0,
            ServeOptions::default().with_engine(TickEngine::PhaseBucketed),
        );
        let (span_report, span) = sys.serve_trace_instrumented(
            &trace,
            25.0,
            ServeOptions::default().with_engine(TickEngine::SpanFastForward),
        );
        assert_eq!(bkt_report, span_report);
        assert_eq!(span.tokens, bkt.tokens);
        assert!(
            span.heap_events_per_token() < bkt.heap_events_per_token(),
            "span {} vs bucketed {}",
            span.heap_events_per_token(),
            bkt.heap_events_per_token()
        );
        // Decision ticks are bounded by external events: every completion
        // is one, plus at most one re-solved wake per admission.
        assert!(span.tick_events <= 2 * span.admissions, "{} ticks", span.tick_events);
    }

    #[test]
    fn bucketed_engine_slashes_heap_traffic() {
        // Saturated 1×8-slot system: the bucketed engine must do at least
        // 5× fewer heap operations per generated token than the per-token
        // reference, and fire roughly one tick per step, not per token.
        let sys = ServingSystem::from_parts(
            &ModelConfig::llama2_7b(),
            SchedulerConfig {
                replicas: 1,
                slots_per_replica: 8,
                kv_budget: KvBudget::tokens(u64::MAX / 2),
                kv: KvMode::FullReservation,
            },
            Time::from_us(1000),
            50_000.0,
            8000.0,
        );
        let w = poisson(100.0, 3, 10, 200);
        let trace = w.generate(Time::from_secs_f64(5.0), 4096);
        let (bucketed_report, bucketed) = sys.serve_trace_instrumented(
            &trace,
            100.0,
            ServeOptions::default().with_engine(TickEngine::PhaseBucketed),
        );
        let (reference_report, reference) = sys.serve_trace_instrumented(
            &trace,
            100.0,
            ServeOptions::default().with_engine(TickEngine::PerTokenReference),
        );
        assert_eq!(bucketed_report, reference_report);
        assert_eq!(bucketed.tokens, reference.tokens);
        assert!(bucketed.tokens > 0);
        let ratio = reference.heap_events_per_token() / bucketed.heap_events_per_token();
        assert!(ratio >= 5.0, "heap-event ratio only {ratio:.2}");
        assert!(bucketed.tick_events < bucketed.tokens / 4, "ticks should batch residents");
        assert_eq!(reference.tick_events, 0);
    }

    #[test]
    fn incremental_group_sim_matches_batch_serving() {
        // Epoch-resumed serving (push arrivals window by window, advance
        // between windows) must reproduce the batch path bit for bit —
        // including under KV pressure, where preemption requeues interleave
        // with arrivals inside one instant.
        let sys = tiny_system().with_kv_budget(KvBudget::tokens(150));
        let w = poisson(50.0, 7, 10, 90);
        let trace = w.generate(Time::from_secs_f64(5.0), 4096);
        let (batch, batch_stats) =
            sys.serve_trace_instrumented(&trace, 50.0, ServeOptions::token_granular());
        for epoch_us in [1_000u64, 250_000, 10_000_000] {
            let epoch = Time::from_us(epoch_us);
            let mut sim = GroupSim::new(&sys, ServeOptions::token_granular());
            let mut cursor = 0;
            let mut limit = epoch;
            while cursor < trace.len() {
                while cursor < trace.len() && trace[cursor].arrival < limit {
                    sim.push_arrival(trace[cursor]);
                    cursor += 1;
                }
                assert!(sim.outstanding() <= sim.submitted() as u64);
                sim.advance_to(limit);
                limit += epoch;
            }
            let outcome = sim.finish(50.0);
            assert_eq!(outcome.report, batch, "epoch {epoch_us} us");
            assert_eq!(outcome.stats, batch_stats, "epoch {epoch_us} us");
            assert_eq!(outcome.records.len(), batch.completed);
        }
    }

    #[test]
    fn group_load_probes_track_scheduler_state() {
        let sys = tiny_system();
        let mut sim = GroupSim::new(&sys, ServeOptions::default());
        assert_eq!(sim.outstanding(), 0);
        assert_eq!(sim.kv_reserved(), 0);
        // Well above the ~66 q/s capacity of the tiny system, so the group
        // is demonstrably loaded at the mid-trace probe instant.
        for spec in poisson(200.0, 3, 10, 50).generate(Time::from_secs_f64(1.0), 4096) {
            sim.push_arrival(spec);
        }
        let submitted = sim.submitted() as u64;
        assert!(submitted > 0);
        // Nothing processed yet: arrivals sit in the heap, not the queue.
        assert_eq!(sim.outstanding(), 0);
        sim.advance_to(Time::from_secs_f64(0.5));
        // Mid-trace the group holds live requests and KV reservations.
        assert!(sim.outstanding() > 0);
        assert!(sim.kv_reserved() > 0);
        let outcome = sim.finish(200.0);
        assert_eq!(outcome.report.completed, submitted as usize);
    }

    #[test]
    fn capacity_is_min_of_decode_and_prefill_sides() {
        let sys = tiny_system();
        // Decode side: 4000 tok/s / 100 = 40 q/s; prefill side:
        // 1000 tok/s / 10 = 100 q/s → decode-bound.
        assert_eq!(sys.capacity_qps(10, 100), 40.0);
        // Long prompts flip it: prefill side 1000/500 = 2 q/s.
        assert_eq!(sys.capacity_qps(500, 100), 2.0);
    }

    #[test]
    fn end_to_end_on_simulated_tiny_deployment() {
        // Full path through the block-level oracle on the tiny model.
        let cfg = ModelConfig::tiny();
        let sys = ServingSystem::plan(&cfg, 2, Strategy::PipelineParallel, 32).unwrap();
        assert!(sys.steady_state_tokens_per_s() > 0.0);
        let rate = 0.5 * sys.capacity_qps(8, 16);
        let w = Workload {
            arrivals: ArrivalProcess::Poisson { rate_qps: rate },
            lengths: LengthSampler::Fixed { prompt: 8, decode: 16 },
            seed: 2,
            classes: ClassMix::default(),
        };
        let report = sys.run(&w, Time::from_secs_f64(2.0));
        assert!(report.completed > 0);
        assert!(report.ttft.p50 > Time::ZERO);
        assert!(report.query_latency.p99 >= report.query_latency.p50);
    }
}
