//! Workload generation: request arrival processes, length distributions and
//! priority-class mixes.
//!
//! A [`Workload`] pairs an [`ArrivalProcess`] (when queries show up) with a
//! [`LengthSampler`] (how long their prompts and generations are) and a
//! [`ClassMix`] (which [`PriorityClass`] each request is tagged with) and
//! turns them into a concrete, reproducible trace of [`RequestSpec`]s for
//! the serving simulator. [`Workload::thin_trace`] derives lower-rate
//! Poisson traces from one generated trace, so sweeps pay trace generation
//! once per mix instead of once per operating point.

use cent_types::{Rng64, Time};

use crate::queue::{PriorityClass, RequestId, RequestSpec, SessionId};

/// When requests arrive at the serving frontend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant average rate (queries/second) —
    /// the standard open-loop serving assumption.
    Poisson {
        /// Average arrival rate in queries per second.
        rate_qps: f64,
    },
    /// A two-state Markov-modulated Poisson process: the system alternates
    /// between a base rate and a burst rate, with exponentially distributed
    /// dwell times. Models diurnal/bursty production traffic.
    Bursty {
        /// Arrival rate outside bursts (queries/second).
        base_qps: f64,
        /// Arrival rate during bursts (queries/second).
        burst_qps: f64,
        /// Mean dwell time in each state, in seconds.
        mean_dwell_s: f64,
    },
}

impl ArrivalProcess {
    /// Long-run average rate in queries per second.
    pub fn mean_qps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_qps } => rate_qps,
            // Equal mean dwell in both states → rates average evenly.
            ArrivalProcess::Bursty { base_qps, burst_qps, .. } => 0.5 * (base_qps + burst_qps),
        }
    }

    /// The same process with every rate multiplied by `factor` (dwell
    /// times are unchanged). Used by [`Workload::generate_modulated`] to
    /// over-generate at a [`LoadCurve`]'s peak before thinning.
    pub fn scaled(&self, factor: f64) -> ArrivalProcess {
        assert!(factor > 0.0 && factor.is_finite(), "scale factor {factor} must be positive");
        match *self {
            ArrivalProcess::Poisson { rate_qps } => {
                ArrivalProcess::Poisson { rate_qps: rate_qps * factor }
            }
            ArrivalProcess::Bursty { base_qps, burst_qps, mean_dwell_s } => {
                ArrivalProcess::Bursty {
                    base_qps: base_qps * factor,
                    burst_qps: burst_qps * factor,
                    mean_dwell_s,
                }
            }
        }
    }

    /// Samples arrival instants over `[0, horizon)`.
    fn sample(&self, horizon: Time, rng: &mut Rng64) -> Vec<Time> {
        let horizon_s = horizon.as_secs();
        let mut out = Vec::new();
        match *self {
            ArrivalProcess::Poisson { rate_qps } => {
                assert!(rate_qps > 0.0, "Poisson rate must be positive");
                let mut t = 0.0;
                loop {
                    t += rng.exponential(rate_qps);
                    if t >= horizon_s {
                        break;
                    }
                    out.push(Time::from_secs_f64(t));
                }
            }
            ArrivalProcess::Bursty { base_qps, burst_qps, mean_dwell_s } => {
                assert!(base_qps > 0.0 && burst_qps > 0.0, "rates must be positive");
                assert!(mean_dwell_s > 0.0, "dwell must be positive");
                let mut t = 0.0;
                // The chain's stationary distribution is 50/50 (equal mean
                // dwell in both states), so the initial state is a fair,
                // seeded coin flip — always starting outside a burst would
                // bias short-horizon traces toward `base_qps`.
                let mut in_burst = rng.next_below(2) == 1;
                let mut state_end = rng.exponential(1.0 / mean_dwell_s);
                while t < horizon_s {
                    let rate = if in_burst { burst_qps } else { base_qps };
                    let dt = rng.exponential(rate);
                    if t + dt >= state_end {
                        // The state flips before this arrival would land;
                        // restart the (memoryless) draw in the new state.
                        t = state_end;
                        state_end += rng.exponential(1.0 / mean_dwell_s);
                        in_burst = !in_burst;
                        continue;
                    }
                    t += dt;
                    if t < horizon_s {
                        out.push(Time::from_secs_f64(t));
                    }
                }
            }
        }
        out
    }
}

/// How prompt and generation lengths are drawn for each request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LengthSampler {
    /// Every request has the same shape.
    Fixed {
        /// Prompt tokens.
        prompt: usize,
        /// Generated tokens.
        decode: usize,
    },
    /// The paper's chatbot mix: 512-token prompts, 3584 generated tokens
    /// (§7.1's QoS workload).
    Chatbot,
    /// Prompt and decode lengths uniform in the given inclusive ranges.
    Uniform {
        /// Minimum prompt tokens.
        prompt_min: usize,
        /// Maximum prompt tokens.
        prompt_max: usize,
        /// Minimum generated tokens.
        decode_min: usize,
        /// Maximum generated tokens.
        decode_max: usize,
    },
    /// ShareGPT-like log-normal lengths (mean input ≈ 160, output ≈ 210,
    /// heavy tail), matching `cent_baselines::sharegpt_lengths`.
    ShareGpt,
}

impl LengthSampler {
    /// Draws one (prompt, decode) pair, clamped so the total stays within
    /// `max_context`.
    pub fn sample(&self, max_context: usize, rng: &mut Rng64) -> (usize, usize) {
        let (prompt, decode) = match *self {
            LengthSampler::Fixed { prompt, decode } => (prompt, decode),
            LengthSampler::Chatbot => (512, 3584),
            LengthSampler::Uniform { prompt_min, prompt_max, decode_min, decode_max } => {
                let p = prompt_min + rng.next_below((prompt_max - prompt_min + 1) as u64) as usize;
                let d = decode_min + rng.next_below((decode_max - decode_min + 1) as u64) as usize;
                (p, d)
            }
            LengthSampler::ShareGpt => {
                let mut draw = |mu: f64, sigma: f64| {
                    ((mu + sigma * rng.normal()).exp() as usize).clamp(4, 2048)
                };
                (draw(4.6, 1.0), draw(5.0, 0.9))
            }
        };
        // A query's KV footprint is prompt + decode tokens; clamp to the
        // model's context window (treated as at least 2: one prompt token
        // plus one generated token), preserving at least one of each.
        let max_context = max_context.max(2);
        let prompt = prompt.clamp(1, max_context - 1);
        let decode = decode.clamp(1, max_context - prompt);
        (prompt, decode)
    }
}

/// How requests are assigned [`PriorityClass`] tags.
#[derive(Debug, Clone, PartialEq)]
pub enum ClassMix {
    /// Every request in one class. Consumes no randomness, so single-class
    /// traces are bit-identical to the pre-class-aware generator's.
    Single(PriorityClass),
    /// Weighted random assignment: each request draws a class with
    /// probability proportional to its weight.
    Weighted(Vec<(PriorityClass, f64)>),
}

impl Default for ClassMix {
    fn default() -> Self {
        ClassMix::Single(PriorityClass::default())
    }
}

impl ClassMix {
    /// A conventional two-tier mix: `interactive_fraction` of traffic in
    /// [`PriorityClass::INTERACTIVE`], the rest in [`PriorityClass::BATCH`].
    pub fn two_tier(interactive_fraction: f64) -> Self {
        ClassMix::Weighted(vec![
            (PriorityClass::INTERACTIVE, interactive_fraction),
            (PriorityClass::BATCH, 1.0 - interactive_fraction),
        ])
    }

    /// Draws one class tag.
    fn sample(&self, rng: &mut Rng64) -> PriorityClass {
        match self {
            ClassMix::Single(class) => *class,
            ClassMix::Weighted(weights) => {
                // cent-lint: allow(d4) -- slice iteration order is fixed
                let total: f64 = weights.iter().map(|(_, w)| w.max(0.0)).sum();
                assert!(total > 0.0, "class mix needs positive weight");
                let mut draw = rng.next_f64() * total;
                for &(class, w) in weights {
                    draw -= w.max(0.0);
                    if draw < 0.0 {
                        return class;
                    }
                }
                weights.last().expect("non-empty mix").0
            }
        }
    }
}

/// A piecewise-linear rate multiplier over simulated time, for layering
/// diurnal (or any slow) load variation on top of an [`ArrivalProcess`].
///
/// The curve maps seconds to a non-negative multiplier; between vertices
/// the multiplier interpolates linearly, outside the vertex span it holds
/// the nearest endpoint (periodic curves wrap instead).
/// [`Workload::generate_modulated`] applies a curve by generating at the
/// curve's peak rate and thinning each arrival with probability
/// `multiplier(t) / peak` — the exact inhomogeneous-Poisson construction,
/// sharing its determinism contract with [`Workload::thin_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct LoadCurve {
    /// `(seconds, multiplier)` vertices, strictly increasing in time.
    points: Vec<(f64, f64)>,
    /// For periodic curves, the wrap period in seconds.
    period_s: Option<f64>,
}

impl LoadCurve {
    /// A curve from `(seconds, multiplier)` vertices; before the first and
    /// after the last vertex the multiplier is held constant.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, times are not finite / non-negative /
    /// strictly increasing, or any multiplier is negative or non-finite.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "load curve needs at least one vertex");
        for pair in points.windows(2) {
            assert!(pair[0].0 < pair[1].0, "load curve times must strictly increase");
        }
        for &(t, m) in &points {
            assert!(t.is_finite() && t >= 0.0, "load curve time {t} invalid");
            assert!(m.is_finite() && m >= 0.0, "load curve multiplier {m} invalid");
        }
        LoadCurve { points, period_s: None }
    }

    /// A periodic curve: the vertex span must cover exactly `[0, period_s]`
    /// (first vertex at 0, last at `period_s`) and query times wrap modulo
    /// the period.
    pub fn periodic(points: Vec<(f64, f64)>, period_s: f64) -> Self {
        let mut curve = Self::new(points);
        assert!(period_s > 0.0 && period_s.is_finite(), "period {period_s} invalid");
        let first = curve.points.first().expect("non-empty").0;
        let last = curve.points.last().expect("non-empty").0;
        assert!(
            first == 0.0 && last == period_s,
            "periodic curve must span [0, {period_s}] exactly (got [{first}, {last}])"
        );
        curve.period_s = Some(period_s);
        curve
    }

    /// A triangle-wave diurnal cycle: the multiplier starts at `trough`,
    /// peaks at `peak` half way through `period_s`, and returns to `trough`
    /// at the period boundary, repeating forever.
    pub fn diurnal(period_s: f64, trough: f64, peak: f64) -> Self {
        Self::periodic(vec![(0.0, trough), (0.5 * period_s, peak), (period_s, trough)], period_s)
    }

    /// The multiplier at `t_s` seconds.
    pub fn multiplier_at(&self, t_s: f64) -> f64 {
        let t = match self.period_s {
            Some(p) => t_s.rem_euclid(p),
            None => t_s,
        };
        if t <= self.points[0].0 {
            return self.points[0].1;
        }
        for pair in self.points.windows(2) {
            let ((t0, v0), (t1, v1)) = (pair[0], pair[1]);
            if t <= t1 {
                return v0 + (v1 - v0) * ((t - t0) / (t1 - t0));
            }
        }
        self.points.last().expect("non-empty").1
    }

    /// The curve's maximum multiplier (piecewise-linear curves attain their
    /// maximum at a vertex).
    pub fn max_multiplier(&self) -> f64 {
        self.points.iter().map(|&(_, m)| m).fold(0.0, f64::max)
    }

    /// Mean multiplier over `[0, horizon_s]` (exact trapezoid integral).
    pub fn mean_multiplier(&self, horizon_s: f64) -> f64 {
        assert!(horizon_s > 0.0 && horizon_s.is_finite(), "horizon {horizon_s} invalid");
        match self.period_s {
            None => polyline_integral(&self.points, horizon_s) / horizon_s,
            Some(p) => {
                let full = (horizon_s / p).floor();
                let rem = horizon_s - full * p;
                let one = polyline_integral(&self.points, p);
                (full * one + polyline_integral(&self.points, rem)) / horizon_s
            }
        }
    }
}

/// Integral over `[0, b]` of the polyline through `points`, with constant
/// extension before the first and after the last vertex.
fn polyline_integral(points: &[(f64, f64)], b: f64) -> f64 {
    if b <= 0.0 {
        return 0.0;
    }
    let mut acc = 0.0;
    let (first_t, first_v) = points[0];
    if first_t > 0.0 {
        acc += first_t.min(b) * first_v;
    }
    for pair in points.windows(2) {
        let ((t0, v0), (t1, v1)) = (pair[0], pair[1]);
        let lo = t0.max(0.0).min(b);
        let hi = t1.max(0.0).min(b);
        if hi <= lo {
            continue;
        }
        let vl = v0 + (v1 - v0) * ((lo - t0) / (t1 - t0));
        let vh = v0 + (v1 - v0) * ((hi - t0) / (t1 - t0));
        acc += 0.5 * (vl + vh) * (hi - lo);
    }
    let (last_t, last_v) = *points.last().expect("non-empty");
    if b > last_t {
        acc += (b - last_t) * last_v;
    }
    acc
}

/// A reproducible request workload: arrivals plus shapes plus class tags.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Length distribution.
    pub lengths: LengthSampler,
    /// PRNG seed; identical seeds generate identical traces.
    pub seed: u64,
    /// Priority-class assignment (default: everything in class 0).
    pub classes: ClassMix,
}

impl Workload {
    /// An open-loop Poisson workload with the paper's chatbot shape.
    pub fn chatbot(rate_qps: f64, seed: u64) -> Self {
        Workload {
            arrivals: ArrivalProcess::Poisson { rate_qps },
            lengths: LengthSampler::Chatbot,
            seed,
            classes: ClassMix::default(),
        }
    }

    /// Replaces the class mix.
    pub fn with_classes(mut self, classes: ClassMix) -> Self {
        self.classes = classes;
        self
    }

    /// Materialises the request trace over `[0, horizon)`.
    ///
    /// Requests are returned in arrival order with sequential ids.
    pub fn generate(&self, horizon: Time, max_context: usize) -> Vec<RequestSpec> {
        let mut rng = Rng64::seed(self.seed);
        let arrivals = self.arrivals.sample(horizon, &mut rng);
        arrivals
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| {
                let (prompt, decode) = self.lengths.sample(max_context, &mut rng);
                let class = self.classes.sample(&mut rng);
                // One session per request (no extra randomness), so traces
                // predating the session key are bit-identical; see
                // `assign_sessions` for multi-turn pools.
                let id = RequestId(i as u64);
                RequestSpec { id, arrival, prompt, decode, class, session: SessionId(i as u64) }
            })
            .collect()
    }

    /// Materialises a trace whose arrival rate follows `curve`: the
    /// workload is generated at `curve.max_multiplier()` times its base
    /// rate, then each arrival at `t` is kept with probability
    /// `curve.multiplier_at(t) / peak` — the exact thinning construction
    /// of an inhomogeneous Poisson process. Identical `(workload, curve,
    /// thin_seed)` inputs always produce the same trace; survivors keep
    /// their ids from the peak-rate trace (like [`Workload::thin_trace`]).
    pub fn generate_modulated(
        &self,
        horizon: Time,
        max_context: usize,
        curve: &LoadCurve,
        thin_seed: u64,
    ) -> Vec<RequestSpec> {
        let peak = curve.max_multiplier();
        assert!(peak > 0.0, "load curve must be positive somewhere");
        let scaled = Workload { arrivals: self.arrivals.scaled(peak), ..self.clone() };
        let trace = scaled.generate(horizon, max_context);
        let mut rng = Rng64::seed(thin_seed);
        trace
            .into_iter()
            .filter(|spec| rng.next_f64() * peak < curve.multiplier_at(spec.arrival.as_secs()))
            .collect()
    }

    /// Retags a trace in place with a pool of `sessions` long-lived
    /// conversations: each request joins a uniformly drawn session.
    /// Deterministic per `(trace order, sessions, seed)`; arrival times,
    /// shapes and classes are untouched.
    pub fn assign_sessions(trace: &mut [RequestSpec], sessions: u64, seed: u64) {
        assert!(sessions > 0, "session pool must be non-empty");
        let mut rng = Rng64::seed(seed);
        for spec in trace.iter_mut() {
            spec.session = SessionId(rng.next_below(sessions));
        }
    }

    /// Deterministic Poisson thinning: keeps each request of `trace`
    /// independently with probability `keep`. Thinning a rate-λ Poisson
    /// trace yields an exact rate-`λ·keep` Poisson trace, so one max-rate
    /// trace generated per sweep serves every lower operating point —
    /// shapes, classes and relative arrival order are preserved, and
    /// identical `(trace, keep, seed)` inputs always select the same
    /// subset.
    pub fn thin_trace(trace: &[RequestSpec], keep: f64, seed: u64) -> Vec<RequestSpec> {
        assert!((0.0..=1.0).contains(&keep), "keep probability {keep} outside [0, 1]");
        let mut rng = Rng64::seed(seed);
        trace.iter().filter(|_| rng.next_f64() < keep).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_respected() {
        let w = Workload::chatbot(100.0, 1);
        let reqs = w.generate(Time::from_secs_f64(50.0), 4096);
        let rate = reqs.len() as f64 / 50.0;
        assert!((rate - 100.0).abs() / 100.0 < 0.1, "rate {rate}");
        // Arrival order, monotone times.
        for pair in reqs.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
    }

    #[test]
    fn workload_is_reproducible() {
        let w = Workload::chatbot(20.0, 42);
        let a = w.generate(Time::from_secs_f64(10.0), 4096);
        let b = w.generate(Time::from_secs_f64(10.0), 4096);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
    }

    #[test]
    fn bursty_mean_rate_between_base_and_burst() {
        let w = Workload {
            arrivals: ArrivalProcess::Bursty {
                base_qps: 10.0,
                burst_qps: 100.0,
                mean_dwell_s: 2.0,
            },
            lengths: LengthSampler::Chatbot,
            seed: 3,
            classes: ClassMix::default(),
        };
        let reqs = w.generate(Time::from_secs_f64(200.0), 4096);
        let rate = reqs.len() as f64 / 200.0;
        assert!(rate > 20.0 && rate < 90.0, "rate {rate}");
    }

    #[test]
    fn bursty_short_horizons_start_in_stationary_state() {
        // Dwell (5 s) far exceeds the horizon (1 s), so each trace mostly
        // stays in its initial state. Drawn from the stationary 50/50
        // distribution, the across-seed mean rate sits near the process
        // mean (55 q/s); the old always-start-in-base behaviour would pin
        // it near 10 q/s.
        let mut total = 0usize;
        for seed in 0..40 {
            let w = Workload {
                arrivals: ArrivalProcess::Bursty {
                    base_qps: 10.0,
                    burst_qps: 100.0,
                    mean_dwell_s: 5.0,
                },
                lengths: LengthSampler::Fixed { prompt: 4, decode: 4 },
                seed,
                classes: ClassMix::default(),
            };
            total += w.generate(Time::from_secs_f64(1.0), 4096).len();
        }
        let rate = total as f64 / 40.0;
        assert!((30.0..80.0).contains(&rate), "short-horizon mean rate {rate} is biased");
    }

    #[test]
    fn lengths_respect_context_window() {
        let mut rng = Rng64::seed(9);
        for sampler in [
            LengthSampler::Chatbot,
            LengthSampler::ShareGpt,
            LengthSampler::Uniform {
                prompt_min: 1,
                prompt_max: 4000,
                decode_min: 1,
                decode_max: 4000,
            },
            LengthSampler::Fixed { prompt: 9999, decode: 9999 },
        ] {
            for _ in 0..200 {
                let (p, d) = sampler.sample(2048, &mut rng);
                assert!(p >= 1 && d >= 1 && p + d <= 2048, "{sampler:?}: {p}+{d}");
            }
        }
    }

    #[test]
    fn degenerate_context_windows_do_not_panic() {
        let mut rng = Rng64::seed(11);
        for max_context in [0usize, 1, 2] {
            let (p, d) = LengthSampler::Chatbot.sample(max_context, &mut rng);
            assert_eq!((p, d), (1, 1), "context {max_context}");
        }
    }

    #[test]
    fn chatbot_mix_matches_paper_shape() {
        let mut rng = Rng64::seed(0);
        assert_eq!(LengthSampler::Chatbot.sample(4096, &mut rng), (512, 3584));
    }

    #[test]
    fn single_class_mix_leaves_traces_unchanged() {
        // A single-class mix consumes no randomness, so the trace (ids,
        // arrivals, shapes) is bit-identical regardless of which class it
        // pins — only the tag differs.
        let base = Workload::chatbot(20.0, 42);
        let tagged = base.clone().with_classes(ClassMix::Single(PriorityClass::BATCH));
        let a = base.generate(Time::from_secs_f64(10.0), 4096);
        let b = tagged.generate(Time::from_secs_f64(10.0), 4096);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.id, x.arrival, x.prompt, x.decode),
                (y.id, y.arrival, y.prompt, y.decode)
            );
            assert_eq!(x.class, PriorityClass::INTERACTIVE);
            assert_eq!(y.class, PriorityClass::BATCH);
        }
    }

    #[test]
    fn weighted_mix_tracks_its_fractions() {
        let w = Workload::chatbot(50.0, 7).with_classes(ClassMix::two_tier(0.25));
        let trace = w.generate(Time::from_secs_f64(40.0), 4096);
        let interactive =
            trace.iter().filter(|s| s.class == PriorityClass::INTERACTIVE).count() as f64;
        let fraction = interactive / trace.len() as f64;
        assert!((fraction - 0.25).abs() < 0.07, "interactive fraction {fraction}");
        // Reproducible tags.
        let again = w.generate(Time::from_secs_f64(40.0), 4096);
        assert_eq!(trace, again);
    }

    #[test]
    fn load_curve_interpolates_and_integrates() {
        let curve = LoadCurve::new(vec![(10.0, 1.0), (20.0, 3.0)]);
        assert_eq!(curve.multiplier_at(0.0), 1.0); // held before first vertex
        assert_eq!(curve.multiplier_at(15.0), 2.0);
        assert_eq!(curve.multiplier_at(99.0), 3.0); // held after last vertex
        assert_eq!(curve.max_multiplier(), 3.0);
        // [0,10]: 1.0·10; [10,20]: trapezoid 2.0·10; [20,30]: 3.0·10.
        let mean = curve.mean_multiplier(30.0);
        assert!((mean - 2.0).abs() < 1e-12, "mean {mean}");
    }

    #[test]
    fn diurnal_curve_wraps_periodically() {
        let curve = LoadCurve::diurnal(100.0, 0.5, 2.0);
        assert_eq!(curve.multiplier_at(0.0), 0.5);
        assert_eq!(curve.multiplier_at(50.0), 2.0);
        assert_eq!(curve.multiplier_at(150.0), 2.0); // next period's peak
        assert_eq!(curve.multiplier_at(100.0), 0.5);
        // Triangle wave averages (trough + peak) / 2 over whole periods.
        let mean = curve.mean_multiplier(300.0);
        assert!((mean - 1.25).abs() < 1e-12, "mean {mean}");
    }

    #[test]
    fn modulated_trace_tracks_the_curve() {
        let w = Workload::chatbot(100.0, 21);
        let curve = LoadCurve::diurnal(100.0, 0.2, 1.0);
        let horizon = Time::from_secs_f64(200.0);
        let trace = w.generate_modulated(horizon, 4096, &curve, 0xD1A);
        // Overall rate ≈ base rate × mean multiplier (0.6).
        let rate = trace.len() as f64 / 200.0;
        assert!((rate - 60.0).abs() / 60.0 < 0.1, "rate {rate}");
        // The trough quarter of each period sees far fewer arrivals than
        // the peak quarter.
        let in_window = |lo: f64, hi: f64| {
            trace
                .iter()
                .filter(|s| {
                    let t = s.arrival.as_secs() % 100.0;
                    t >= lo && t < hi
                })
                .count() as f64
        };
        let trough = in_window(0.0, 12.5) + in_window(87.5, 100.0);
        let peak = in_window(37.5, 62.5);
        assert!(peak > 2.0 * trough, "peak {peak} vs trough {trough}");
        // Deterministic.
        assert_eq!(trace, w.generate_modulated(horizon, 4096, &curve, 0xD1A));
        // A flat curve at 1.0 reproduces the unmodulated trace exactly.
        let flat = LoadCurve::new(vec![(0.0, 1.0)]);
        let base = w.generate(horizon, 4096);
        assert_eq!(w.generate_modulated(horizon, 4096, &flat, 7), base);
    }

    #[test]
    fn sessions_default_per_request_and_pool_assignment_is_uniform() {
        let w = Workload::chatbot(50.0, 5);
        let mut trace = w.generate(Time::from_secs_f64(20.0), 4096);
        for spec in &trace {
            assert_eq!(spec.session.0, spec.id.0, "default is one session per request");
        }
        let before: Vec<_> =
            trace.iter().map(|s| (s.id, s.arrival, s.prompt, s.decode, s.class)).collect();
        Workload::assign_sessions(&mut trace, 8, 99);
        let after: Vec<_> =
            trace.iter().map(|s| (s.id, s.arrival, s.prompt, s.decode, s.class)).collect();
        assert_eq!(before, after, "retagging must not disturb the trace");
        let mut counts = [0usize; 8];
        for spec in &trace {
            assert!(spec.session.0 < 8);
            counts[spec.session.0 as usize] += 1;
        }
        let expected = trace.len() / 8;
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > expected / 3 && c < expected * 3, "session {s} got {c} of ~{expected}");
        }
        // Deterministic retag.
        let mut again = w.generate(Time::from_secs_f64(20.0), 4096);
        Workload::assign_sessions(&mut again, 8, 99);
        assert_eq!(trace, again);
    }

    #[test]
    fn thinning_preserves_subset_and_scales_rate() {
        let w = Workload::chatbot(80.0, 9);
        let trace = w.generate(Time::from_secs_f64(60.0), 4096);
        let half = Workload::thin_trace(&trace, 0.5, 0xBEEF);
        let rate = half.len() as f64 / trace.len() as f64;
        assert!((rate - 0.5).abs() < 0.05, "kept fraction {rate}");
        // Every survivor is an untouched member of the original, in order.
        let mut cursor = trace.iter();
        for kept in &half {
            assert!(cursor.any(|orig| orig == kept), "{:?} not in order", kept.id);
        }
        // Determinism, and the degenerate endpoints.
        assert_eq!(half, Workload::thin_trace(&trace, 0.5, 0xBEEF));
        assert_eq!(Workload::thin_trace(&trace, 1.0, 1).len(), trace.len());
        assert_eq!(Workload::thin_trace(&trace, 0.0, 1).len(), 0);
    }
}
