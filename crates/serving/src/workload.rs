//! Workload generation: request arrival processes, length distributions and
//! priority-class mixes.
//!
//! A [`Workload`] pairs an [`ArrivalProcess`] (when queries show up) with a
//! [`LengthSampler`] (how long their prompts and generations are) and a
//! [`ClassMix`] (which [`PriorityClass`] each request is tagged with) and
//! turns them into a concrete, reproducible trace of [`RequestSpec`]s for
//! the serving simulator. [`Workload::thin_trace`] derives lower-rate
//! Poisson traces from one generated trace, so sweeps pay trace generation
//! once per mix instead of once per operating point.

use cent_types::{Rng64, Time};

use crate::queue::{PriorityClass, RequestId, RequestSpec};

/// When requests arrive at the serving frontend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant average rate (queries/second) —
    /// the standard open-loop serving assumption.
    Poisson {
        /// Average arrival rate in queries per second.
        rate_qps: f64,
    },
    /// A two-state Markov-modulated Poisson process: the system alternates
    /// between a base rate and a burst rate, with exponentially distributed
    /// dwell times. Models diurnal/bursty production traffic.
    Bursty {
        /// Arrival rate outside bursts (queries/second).
        base_qps: f64,
        /// Arrival rate during bursts (queries/second).
        burst_qps: f64,
        /// Mean dwell time in each state, in seconds.
        mean_dwell_s: f64,
    },
}

impl ArrivalProcess {
    /// Long-run average rate in queries per second.
    pub fn mean_qps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_qps } => rate_qps,
            // Equal mean dwell in both states → rates average evenly.
            ArrivalProcess::Bursty { base_qps, burst_qps, .. } => 0.5 * (base_qps + burst_qps),
        }
    }

    /// Samples arrival instants over `[0, horizon)`.
    fn sample(&self, horizon: Time, rng: &mut Rng64) -> Vec<Time> {
        let horizon_s = horizon.as_secs();
        let mut out = Vec::new();
        match *self {
            ArrivalProcess::Poisson { rate_qps } => {
                assert!(rate_qps > 0.0, "Poisson rate must be positive");
                let mut t = 0.0;
                loop {
                    t += rng.exponential(rate_qps);
                    if t >= horizon_s {
                        break;
                    }
                    out.push(Time::from_secs_f64(t));
                }
            }
            ArrivalProcess::Bursty { base_qps, burst_qps, mean_dwell_s } => {
                assert!(base_qps > 0.0 && burst_qps > 0.0, "rates must be positive");
                assert!(mean_dwell_s > 0.0, "dwell must be positive");
                let mut t = 0.0;
                // The chain's stationary distribution is 50/50 (equal mean
                // dwell in both states), so the initial state is a fair,
                // seeded coin flip — always starting outside a burst would
                // bias short-horizon traces toward `base_qps`.
                let mut in_burst = rng.next_below(2) == 1;
                let mut state_end = rng.exponential(1.0 / mean_dwell_s);
                while t < horizon_s {
                    let rate = if in_burst { burst_qps } else { base_qps };
                    let dt = rng.exponential(rate);
                    if t + dt >= state_end {
                        // The state flips before this arrival would land;
                        // restart the (memoryless) draw in the new state.
                        t = state_end;
                        state_end += rng.exponential(1.0 / mean_dwell_s);
                        in_burst = !in_burst;
                        continue;
                    }
                    t += dt;
                    if t < horizon_s {
                        out.push(Time::from_secs_f64(t));
                    }
                }
            }
        }
        out
    }
}

/// How prompt and generation lengths are drawn for each request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LengthSampler {
    /// Every request has the same shape.
    Fixed {
        /// Prompt tokens.
        prompt: usize,
        /// Generated tokens.
        decode: usize,
    },
    /// The paper's chatbot mix: 512-token prompts, 3584 generated tokens
    /// (§7.1's QoS workload).
    Chatbot,
    /// Prompt and decode lengths uniform in the given inclusive ranges.
    Uniform {
        /// Minimum prompt tokens.
        prompt_min: usize,
        /// Maximum prompt tokens.
        prompt_max: usize,
        /// Minimum generated tokens.
        decode_min: usize,
        /// Maximum generated tokens.
        decode_max: usize,
    },
    /// ShareGPT-like log-normal lengths (mean input ≈ 160, output ≈ 210,
    /// heavy tail), matching `cent_baselines::sharegpt_lengths`.
    ShareGpt,
}

impl LengthSampler {
    /// Draws one (prompt, decode) pair, clamped so the total stays within
    /// `max_context`.
    pub fn sample(&self, max_context: usize, rng: &mut Rng64) -> (usize, usize) {
        let (prompt, decode) = match *self {
            LengthSampler::Fixed { prompt, decode } => (prompt, decode),
            LengthSampler::Chatbot => (512, 3584),
            LengthSampler::Uniform { prompt_min, prompt_max, decode_min, decode_max } => {
                let p = prompt_min + rng.next_below((prompt_max - prompt_min + 1) as u64) as usize;
                let d = decode_min + rng.next_below((decode_max - decode_min + 1) as u64) as usize;
                (p, d)
            }
            LengthSampler::ShareGpt => {
                let mut draw = |mu: f64, sigma: f64| {
                    ((mu + sigma * rng.normal()).exp() as usize).clamp(4, 2048)
                };
                (draw(4.6, 1.0), draw(5.0, 0.9))
            }
        };
        // A query's KV footprint is prompt + decode tokens; clamp to the
        // model's context window (treated as at least 2: one prompt token
        // plus one generated token), preserving at least one of each.
        let max_context = max_context.max(2);
        let prompt = prompt.clamp(1, max_context - 1);
        let decode = decode.clamp(1, max_context - prompt);
        (prompt, decode)
    }
}

/// How requests are assigned [`PriorityClass`] tags.
#[derive(Debug, Clone, PartialEq)]
pub enum ClassMix {
    /// Every request in one class. Consumes no randomness, so single-class
    /// traces are bit-identical to the pre-class-aware generator's.
    Single(PriorityClass),
    /// Weighted random assignment: each request draws a class with
    /// probability proportional to its weight.
    Weighted(Vec<(PriorityClass, f64)>),
}

impl Default for ClassMix {
    fn default() -> Self {
        ClassMix::Single(PriorityClass::default())
    }
}

impl ClassMix {
    /// A conventional two-tier mix: `interactive_fraction` of traffic in
    /// [`PriorityClass::INTERACTIVE`], the rest in [`PriorityClass::BATCH`].
    pub fn two_tier(interactive_fraction: f64) -> Self {
        ClassMix::Weighted(vec![
            (PriorityClass::INTERACTIVE, interactive_fraction),
            (PriorityClass::BATCH, 1.0 - interactive_fraction),
        ])
    }

    /// Draws one class tag.
    fn sample(&self, rng: &mut Rng64) -> PriorityClass {
        match self {
            ClassMix::Single(class) => *class,
            ClassMix::Weighted(weights) => {
                let total: f64 = weights.iter().map(|(_, w)| w.max(0.0)).sum();
                assert!(total > 0.0, "class mix needs positive weight");
                let mut draw = rng.next_f64() * total;
                for &(class, w) in weights {
                    draw -= w.max(0.0);
                    if draw < 0.0 {
                        return class;
                    }
                }
                weights.last().expect("non-empty mix").0
            }
        }
    }
}

/// A reproducible request workload: arrivals plus shapes plus class tags.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Length distribution.
    pub lengths: LengthSampler,
    /// PRNG seed; identical seeds generate identical traces.
    pub seed: u64,
    /// Priority-class assignment (default: everything in class 0).
    pub classes: ClassMix,
}

impl Workload {
    /// An open-loop Poisson workload with the paper's chatbot shape.
    pub fn chatbot(rate_qps: f64, seed: u64) -> Self {
        Workload {
            arrivals: ArrivalProcess::Poisson { rate_qps },
            lengths: LengthSampler::Chatbot,
            seed,
            classes: ClassMix::default(),
        }
    }

    /// Replaces the class mix.
    pub fn with_classes(mut self, classes: ClassMix) -> Self {
        self.classes = classes;
        self
    }

    /// Materialises the request trace over `[0, horizon)`.
    ///
    /// Requests are returned in arrival order with sequential ids.
    pub fn generate(&self, horizon: Time, max_context: usize) -> Vec<RequestSpec> {
        let mut rng = Rng64::seed(self.seed);
        let arrivals = self.arrivals.sample(horizon, &mut rng);
        arrivals
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| {
                let (prompt, decode) = self.lengths.sample(max_context, &mut rng);
                let class = self.classes.sample(&mut rng);
                RequestSpec { id: RequestId(i as u64), arrival, prompt, decode, class }
            })
            .collect()
    }

    /// Deterministic Poisson thinning: keeps each request of `trace`
    /// independently with probability `keep`. Thinning a rate-λ Poisson
    /// trace yields an exact rate-`λ·keep` Poisson trace, so one max-rate
    /// trace generated per sweep serves every lower operating point —
    /// shapes, classes and relative arrival order are preserved, and
    /// identical `(trace, keep, seed)` inputs always select the same
    /// subset.
    pub fn thin_trace(trace: &[RequestSpec], keep: f64, seed: u64) -> Vec<RequestSpec> {
        assert!((0.0..=1.0).contains(&keep), "keep probability {keep} outside [0, 1]");
        let mut rng = Rng64::seed(seed);
        trace.iter().filter(|_| rng.next_f64() < keep).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_respected() {
        let w = Workload::chatbot(100.0, 1);
        let reqs = w.generate(Time::from_secs_f64(50.0), 4096);
        let rate = reqs.len() as f64 / 50.0;
        assert!((rate - 100.0).abs() / 100.0 < 0.1, "rate {rate}");
        // Arrival order, monotone times.
        for pair in reqs.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
    }

    #[test]
    fn workload_is_reproducible() {
        let w = Workload::chatbot(20.0, 42);
        let a = w.generate(Time::from_secs_f64(10.0), 4096);
        let b = w.generate(Time::from_secs_f64(10.0), 4096);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
    }

    #[test]
    fn bursty_mean_rate_between_base_and_burst() {
        let w = Workload {
            arrivals: ArrivalProcess::Bursty {
                base_qps: 10.0,
                burst_qps: 100.0,
                mean_dwell_s: 2.0,
            },
            lengths: LengthSampler::Chatbot,
            seed: 3,
            classes: ClassMix::default(),
        };
        let reqs = w.generate(Time::from_secs_f64(200.0), 4096);
        let rate = reqs.len() as f64 / 200.0;
        assert!(rate > 20.0 && rate < 90.0, "rate {rate}");
    }

    #[test]
    fn bursty_short_horizons_start_in_stationary_state() {
        // Dwell (5 s) far exceeds the horizon (1 s), so each trace mostly
        // stays in its initial state. Drawn from the stationary 50/50
        // distribution, the across-seed mean rate sits near the process
        // mean (55 q/s); the old always-start-in-base behaviour would pin
        // it near 10 q/s.
        let mut total = 0usize;
        for seed in 0..40 {
            let w = Workload {
                arrivals: ArrivalProcess::Bursty {
                    base_qps: 10.0,
                    burst_qps: 100.0,
                    mean_dwell_s: 5.0,
                },
                lengths: LengthSampler::Fixed { prompt: 4, decode: 4 },
                seed,
                classes: ClassMix::default(),
            };
            total += w.generate(Time::from_secs_f64(1.0), 4096).len();
        }
        let rate = total as f64 / 40.0;
        assert!((30.0..80.0).contains(&rate), "short-horizon mean rate {rate} is biased");
    }

    #[test]
    fn lengths_respect_context_window() {
        let mut rng = Rng64::seed(9);
        for sampler in [
            LengthSampler::Chatbot,
            LengthSampler::ShareGpt,
            LengthSampler::Uniform {
                prompt_min: 1,
                prompt_max: 4000,
                decode_min: 1,
                decode_max: 4000,
            },
            LengthSampler::Fixed { prompt: 9999, decode: 9999 },
        ] {
            for _ in 0..200 {
                let (p, d) = sampler.sample(2048, &mut rng);
                assert!(p >= 1 && d >= 1 && p + d <= 2048, "{sampler:?}: {p}+{d}");
            }
        }
    }

    #[test]
    fn degenerate_context_windows_do_not_panic() {
        let mut rng = Rng64::seed(11);
        for max_context in [0usize, 1, 2] {
            let (p, d) = LengthSampler::Chatbot.sample(max_context, &mut rng);
            assert_eq!((p, d), (1, 1), "context {max_context}");
        }
    }

    #[test]
    fn chatbot_mix_matches_paper_shape() {
        let mut rng = Rng64::seed(0);
        assert_eq!(LengthSampler::Chatbot.sample(4096, &mut rng), (512, 3584));
    }

    #[test]
    fn single_class_mix_leaves_traces_unchanged() {
        // A single-class mix consumes no randomness, so the trace (ids,
        // arrivals, shapes) is bit-identical regardless of which class it
        // pins — only the tag differs.
        let base = Workload::chatbot(20.0, 42);
        let tagged = base.clone().with_classes(ClassMix::Single(PriorityClass::BATCH));
        let a = base.generate(Time::from_secs_f64(10.0), 4096);
        let b = tagged.generate(Time::from_secs_f64(10.0), 4096);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.id, x.arrival, x.prompt, x.decode),
                (y.id, y.arrival, y.prompt, y.decode)
            );
            assert_eq!(x.class, PriorityClass::INTERACTIVE);
            assert_eq!(y.class, PriorityClass::BATCH);
        }
    }

    #[test]
    fn weighted_mix_tracks_its_fractions() {
        let w = Workload::chatbot(50.0, 7).with_classes(ClassMix::two_tier(0.25));
        let trace = w.generate(Time::from_secs_f64(40.0), 4096);
        let interactive =
            trace.iter().filter(|s| s.class == PriorityClass::INTERACTIVE).count() as f64;
        let fraction = interactive / trace.len() as f64;
        assert!((fraction - 0.25).abs() < 0.07, "interactive fraction {fraction}");
        // Reproducible tags.
        let again = w.generate(Time::from_secs_f64(40.0), 4096);
        assert_eq!(trace, again);
    }

    #[test]
    fn thinning_preserves_subset_and_scales_rate() {
        let w = Workload::chatbot(80.0, 9);
        let trace = w.generate(Time::from_secs_f64(60.0), 4096);
        let half = Workload::thin_trace(&trace, 0.5, 0xBEEF);
        let rate = half.len() as f64 / trace.len() as f64;
        assert!((rate - 0.5).abs() < 0.05, "kept fraction {rate}");
        // Every survivor is an untouched member of the original, in order.
        let mut cursor = trace.iter();
        for kept in &half {
            assert!(cursor.any(|orig| orig == kept), "{:?} not in order", kept.id);
        }
        // Determinism, and the degenerate endpoints.
        assert_eq!(half, Workload::thin_trace(&trace, 0.5, 0xBEEF));
        assert_eq!(Workload::thin_trace(&trace, 1.0, 1).len(), trace.len());
        assert_eq!(Workload::thin_trace(&trace, 0.0, 1).len(), 0);
    }
}
