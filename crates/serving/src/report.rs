//! Serving-level SLO metrics: latency distributions, throughput,
//! utilization, eviction (recompute and swap-to-CXL) and goodput — global
//! and per priority class — for one simulated run.

use cent_types::{SortedSamples, Time, TimeHistogram};

use crate::queue::{PriorityClass, RequestRecord};

/// Summary statistics of one latency population.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Arithmetic mean.
    pub mean: Time,
    /// Median.
    pub p50: Time,
    /// 95th percentile.
    pub p95: Time,
    /// 99th percentile.
    pub p99: Time,
    /// Worst observed.
    pub max: Time,
}

impl LatencyStats {
    /// Computes the summary of `samples` (all zeros if empty).
    pub fn from_samples(samples: &[Time]) -> Self {
        Self::from_sorted(&SortedSamples::from_slice(samples))
    }

    /// Reads every summary statistic from one pre-sorted population — one
    /// sort per metric, shared across p50/p95/p99.
    pub fn from_sorted(sorted: &SortedSamples) -> Self {
        LatencyStats {
            mean: sorted.mean(),
            p50: sorted.percentile(0.50),
            p95: sorted.percentile(0.95),
            p99: sorted.percentile(0.99),
            max: sorted.max(),
        }
    }

    /// Summarises a streamed [`TimeHistogram`] (quantiles within the
    /// histogram's ~4.5% bucket resolution; mean and max are exact).
    pub fn from_histogram(h: &TimeHistogram) -> Self {
        LatencyStats {
            mean: h.mean(),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            max: h.max(),
        }
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {} | p50 {} | p95 {} | p99 {} | max {}",
            self.mean, self.p50, self.p95, self.p99, self.max
        )
    }
}

/// Exact integral of a piecewise-constant (staircase) occupancy quantity
/// over time, in integer `value · picosecond` units.
///
/// The event loops accumulate slot, device-KV and host-pool occupancy
/// through this type. Because every operation is exact integer arithmetic,
/// the final area is independent of how finely events subdivide time:
/// advancing `value` over `[a, b)` in one step equals advancing it over
/// any partition of `[a, b)` — which is what lets the span-fast-forward
/// engine replace thousands of per-tick samples with one
/// [`advance`](Self::advance) plus a closed-form
/// [`add_area`](Self::add_area) correction and still match the per-tick
/// engines bit for bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct StepIntegral {
    area: u128,
}

impl StepIntegral {
    /// Accumulates `value` held constant for `dt_ps` picoseconds.
    pub(crate) fn advance(&mut self, value: u128, dt_ps: u64) {
        self.area += value * u128::from(dt_ps);
    }

    /// Adds a pre-computed area (a closed-form span correction: the
    /// integral of the staircase *delta* above the value that
    /// [`advance`](Self::advance) already charged for the same window).
    pub(crate) fn add_area(&mut self, area: u128) {
        self.area += area;
    }

    /// The accumulated area in `value · ps` (tests only; the event loops
    /// read the area through [`fraction_of`](Self::fraction_of)).
    #[cfg(test)]
    pub(crate) fn area(&self) -> u128 {
        self.area
    }

    /// The area as a fraction of `capacity` held over `span_ps` (0.0 when
    /// the denominator is empty).
    pub(crate) fn fraction_of(&self, capacity: u128, span_ps: u64) -> f64 {
        let total = capacity * u128::from(span_ps);
        if total > 0 {
            self.area as f64 / total as f64
        } else {
            0.0
        }
    }
}

/// Run-level counters gathered by the event loop, handed to
/// [`ServingReport::from_records`] alongside the completed records.
#[derive(Debug, Clone)]
pub(crate) struct RunTotals {
    /// Mean offered load, queries/second.
    pub offered_qps: f64,
    /// Requests that arrived within the horizon.
    pub submitted: usize,
    /// Requests rejected up front (footprint exceeds a replica's budget).
    pub rejected: usize,
    /// Steady-state decode throughput of the deployment.
    pub steady_state_tokens_per_s: f64,
    /// Time-weighted fraction of decode slots occupied.
    pub slot_utilization: f64,
    /// Peak per-replica KV reservation as a fraction of the budget.
    pub peak_kv_fraction: f64,
    /// Time-weighted mean KV reservation as a fraction of the budget.
    pub kv_utilization: f64,
    /// Largest queue depth observed.
    pub peak_queue_depth: usize,
    /// Recompute-eviction events.
    pub preemptions: u64,
    /// Swap-to-CXL eviction events.
    pub swaps: u64,
    /// Total eviction-to-resume stall across recompute victims.
    pub recompute_stall: Time,
    /// Total eviction-to-resume stall across swap victims.
    pub swap_stall: Time,
    /// Configured CXL host-pool capacity in KV tokens.
    pub host_pool_tokens: u64,
    /// Largest host-pool occupancy observed, in KV tokens.
    pub host_kv_peak_tokens: u64,
    /// Time-weighted mean host-pool occupancy as a fraction of capacity.
    pub host_kv_utilization: f64,
    /// Per-gap time-between-tokens stream (one sample per generated token
    /// after a request's first, so long queries weigh proportionally).
    pub tbt: TimeHistogram,
    /// Arrivals per priority class (sorted by class; rejections included).
    pub submitted_by_class: Vec<(PriorityClass, usize)>,
    /// Per-class TBT streams, aligned with `submitted_by_class`.
    pub tbt_by_class: Vec<(PriorityClass, TimeHistogram)>,
    /// Latency SLO used for goodput accounting, if any.
    pub slo: Option<Time>,
}

/// Per-[`PriorityClass`] SLO metrics of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// The class these rows describe.
    pub class: PriorityClass,
    /// Requests of this class that arrived within the horizon (rejections
    /// included).
    pub submitted: usize,
    /// Requests of this class served to completion.
    pub completed: usize,
    /// Time-to-first-token distribution of the class.
    pub ttft: LatencyStats,
    /// End-to-end query latency distribution of the class.
    pub query_latency: LatencyStats,
    /// Time-between-tokens distribution of the class.
    pub tbt: LatencyStats,
    /// Completions of this class that met the SLO.
    pub deadline_hits: usize,
    /// SLO-meeting completions of this class per second, over the run's
    /// global makespan (so class goodputs are comparable and sum to the
    /// run's total goodput).
    pub goodput_qps: f64,
}

/// The result of one request-level serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Mean offered load of the workload, queries/second.
    pub offered_qps: f64,
    /// Requests that arrived within the horizon.
    pub submitted: usize,
    /// Requests served to completion.
    pub completed: usize,
    /// Requests rejected (KV footprint larger than a replica's budget).
    pub rejected: usize,
    /// First arrival to last completion.
    pub makespan: Time,
    /// Total generated (decode) tokens.
    pub decode_tokens: u64,
    /// Total prompt (prefill) tokens processed.
    pub prefill_tokens: u64,
    /// Achieved decode throughput over the makespan, tokens/second.
    pub tokens_per_s: f64,
    /// The steady-state decode throughput of the underlying deployment
    /// (`cent_sim::evaluate`), for convergence comparison.
    pub steady_state_tokens_per_s: f64,
    /// Time-to-first-token distribution.
    pub ttft: LatencyStats,
    /// End-to-end query latency distribution.
    pub query_latency: LatencyStats,
    /// Queue-wait distribution.
    pub queue_wait: LatencyStats,
    /// Time-between-tokens distribution (decode cadence): one sample per
    /// generated token after a request's first — preemption stalls appear
    /// as outlier gaps — streamed through a [`TimeHistogram`] so
    /// long-horizon runs stay constant-memory.
    pub tbt: LatencyStats,
    /// Time-weighted fraction of decode slots occupied.
    pub slot_utilization: f64,
    /// Peak per-replica KV reservation as a fraction of the budget.
    pub peak_kv_fraction: f64,
    /// Time-weighted mean KV reservation as a fraction of the total budget
    /// (peak tells you the worst instant; this tells you how well the pool
    /// is actually used).
    pub kv_utilization: f64,
    /// Largest queue depth observed.
    pub peak_queue_depth: usize,
    /// Recompute evictions (a request evicted mid-decode for KV
    /// reclamation, its context later re-prefilled).
    pub preemptions: u64,
    /// Swap evictions (a request's KV paged out to CXL host memory and
    /// paged back before decode resumed).
    pub swaps: u64,
    /// Total eviction-to-resume stall time across recompute victims (from
    /// eviction to the end of the resumed re-prefill, queue wait included).
    pub recompute_stall: Time,
    /// Total eviction-to-resume stall time across swap victims (from
    /// eviction to the end of the page-in transfer, queue wait included).
    pub swap_stall: Time,
    /// Configured CXL host-pool capacity in KV tokens (zero when the swap
    /// tier is disabled).
    pub host_pool_tokens: u64,
    /// Largest host-pool occupancy observed, in KV tokens.
    pub host_kv_peak_tokens: u64,
    /// Time-weighted mean host-pool occupancy as a fraction of capacity
    /// (zero when the swap tier is disabled).
    pub host_kv_utilization: f64,
    /// Per-class SLO metrics, sorted by class (one entry per class that
    /// submitted at least one request).
    pub classes: Vec<ClassReport>,
    /// Latency SLO the run was judged against, if any.
    pub slo: Option<Time>,
    /// Completed requests whose end-to-end latency met the SLO (equals
    /// `completed` when no SLO is set).
    pub deadline_hits: usize,
    /// SLO-meeting completions per second over the makespan — the paper's
    /// QoS lens on throughput.
    pub goodput_qps: f64,
}

impl ServingReport {
    /// Builds the report from completed request records and run-level
    /// counters gathered by the event loop.
    pub(crate) fn from_records(records: &[RequestRecord], totals: RunTotals) -> Self {
        let first_arrival = records.iter().map(|r| r.spec.arrival).min().unwrap_or(Time::ZERO);
        let last_finish = records.iter().map(|r| r.finished).max().unwrap_or(Time::ZERO);
        let makespan = last_finish.saturating_sub(first_arrival);
        let decode_tokens: u64 = records.iter().map(|r| r.spec.decode as u64).sum();
        let prefill_tokens: u64 = records.iter().map(|r| r.spec.prompt as u64).sum();
        let tokens_per_s =
            if makespan > Time::ZERO { decode_tokens as f64 / makespan.as_secs() } else { 0.0 };
        // Each latency population is sorted exactly once; p50/p95/p99 and
        // max all read from the same sorted storage.
        let ttfts = SortedSamples::new(records.iter().map(|r| r.ttft()).collect());
        let latencies = SortedSamples::new(records.iter().map(|r| r.query_latency()).collect());
        let waits = SortedSamples::new(records.iter().map(|r| r.queue_wait()).collect());
        let deadline_hits = match totals.slo {
            Some(slo) => records.iter().filter(|r| r.query_latency() <= slo).count(),
            None => records.len(),
        };
        let goodput_qps =
            if makespan > Time::ZERO { deadline_hits as f64 / makespan.as_secs() } else { 0.0 };
        let classes = totals
            .submitted_by_class
            .iter()
            .map(|&(class, submitted)| {
                let of_class: Vec<&RequestRecord> =
                    records.iter().filter(|r| r.spec.class == class).collect();
                let ttfts = SortedSamples::new(of_class.iter().map(|r| r.ttft()).collect());
                let lats = SortedSamples::new(of_class.iter().map(|r| r.query_latency()).collect());
                let hits = match totals.slo {
                    Some(slo) => of_class.iter().filter(|r| r.query_latency() <= slo).count(),
                    None => of_class.len(),
                };
                let tbt = totals
                    .tbt_by_class
                    .iter()
                    .find(|(c, _)| *c == class)
                    .map(|(_, h)| LatencyStats::from_histogram(h))
                    .unwrap_or_default();
                ClassReport {
                    class,
                    submitted,
                    completed: of_class.len(),
                    ttft: LatencyStats::from_sorted(&ttfts),
                    query_latency: LatencyStats::from_sorted(&lats),
                    tbt,
                    deadline_hits: hits,
                    goodput_qps: if makespan > Time::ZERO {
                        hits as f64 / makespan.as_secs()
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        ServingReport {
            offered_qps: totals.offered_qps,
            submitted: totals.submitted,
            completed: records.len(),
            rejected: totals.rejected,
            makespan,
            decode_tokens,
            prefill_tokens,
            tokens_per_s,
            steady_state_tokens_per_s: totals.steady_state_tokens_per_s,
            ttft: LatencyStats::from_sorted(&ttfts),
            query_latency: LatencyStats::from_sorted(&latencies),
            queue_wait: LatencyStats::from_sorted(&waits),
            tbt: LatencyStats::from_histogram(&totals.tbt),
            slot_utilization: totals.slot_utilization,
            peak_kv_fraction: totals.peak_kv_fraction,
            kv_utilization: totals.kv_utilization,
            peak_queue_depth: totals.peak_queue_depth,
            preemptions: totals.preemptions,
            swaps: totals.swaps,
            recompute_stall: totals.recompute_stall,
            swap_stall: totals.swap_stall,
            host_pool_tokens: totals.host_pool_tokens,
            host_kv_peak_tokens: totals.host_kv_peak_tokens,
            host_kv_utilization: totals.host_kv_utilization,
            classes,
            slo: totals.slo,
            deadline_hits,
            goodput_qps,
        }
    }

    /// Total eviction-to-resume stall time across both victim kinds — the
    /// quantity the cost-driven spill mode minimises.
    pub fn eviction_stall(&self) -> Time {
        self.recompute_stall + self.swap_stall
    }

    /// Achieved throughput as a fraction of the steady-state oracle.
    pub fn throughput_fraction(&self) -> f64 {
        if self.steady_state_tokens_per_s > 0.0 {
            self.tokens_per_s / self.steady_state_tokens_per_s
        } else {
            0.0
        }
    }

    /// Fraction of completed requests that met the SLO (1.0 when no SLO).
    pub fn slo_attainment(&self) -> f64 {
        if self.completed > 0 {
            self.deadline_hits as f64 / self.completed as f64
        } else {
            0.0
        }
    }

    /// Renders the report as one hand-rolled JSON object (no serde in the
    /// workspace) — the schema documented in `docs/SCHEMAS.md`. Latency
    /// distributions serialize as `{mean, p50, p95, p99, max}` objects in
    /// seconds; `slo_s` is `null` when no SLO was set.
    pub fn to_json(&self) -> String {
        fn stats(s: &LatencyStats) -> String {
            format!(
                "{{\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                s.mean.as_secs(),
                s.p50.as_secs(),
                s.p95.as_secs(),
                s.p99.as_secs(),
                s.max.as_secs()
            )
        }
        let classes: Vec<String> = self
            .classes
            .iter()
            .map(|c| {
                format!(
                    "{{\"class\":{},\"submitted\":{},\"completed\":{},\"ttft\":{},\
                     \"latency\":{},\"tbt\":{},\"deadline_hits\":{},\"goodput_qps\":{}}}",
                    c.class.0,
                    c.submitted,
                    c.completed,
                    stats(&c.ttft),
                    stats(&c.query_latency),
                    stats(&c.tbt),
                    c.deadline_hits,
                    c.goodput_qps
                )
            })
            .collect();
        let slo = match self.slo {
            Some(slo) => format!("{}", slo.as_secs()),
            None => "null".to_owned(),
        };
        format!(
            "{{\"offered_qps\":{},\"submitted\":{},\"completed\":{},\"rejected\":{},\
             \"makespan_s\":{},\"decode_tokens\":{},\"prefill_tokens\":{},\"tokens_per_s\":{},\
             \"steady_state_tokens_per_s\":{},\"ttft_s\":{},\"latency_s\":{},\"queue_wait_s\":{},\
             \"tbt_s\":{},\"slot_utilization\":{},\"peak_kv_fraction\":{},\"kv_utilization\":{},\
             \"peak_queue_depth\":{},\"preemptions\":{},\"swaps\":{},\"recompute_stall_s\":{},\
             \"swap_stall_s\":{},\"host_pool_tokens\":{},\"host_kv_peak_tokens\":{},\
             \"host_kv_utilization\":{},\"classes\":[{}],\"slo_s\":{},\"deadline_hits\":{},\
             \"goodput_qps\":{}}}",
            self.offered_qps,
            self.submitted,
            self.completed,
            self.rejected,
            self.makespan.as_secs(),
            self.decode_tokens,
            self.prefill_tokens,
            self.tokens_per_s,
            self.steady_state_tokens_per_s,
            stats(&self.ttft),
            stats(&self.query_latency),
            stats(&self.queue_wait),
            stats(&self.tbt),
            self.slot_utilization,
            self.peak_kv_fraction,
            self.kv_utilization,
            self.peak_queue_depth,
            self.preemptions,
            self.swaps,
            self.recompute_stall.as_secs(),
            self.swap_stall.as_secs(),
            self.host_pool_tokens,
            self.host_kv_peak_tokens,
            self.host_kv_utilization,
            classes.join(","),
            slo,
            self.deadline_hits,
            self.goodput_qps
        )
    }
}

impl std::fmt::Display for ServingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "offered {:.2} q/s | served {}/{} ({} rejected) over {}",
            self.offered_qps, self.completed, self.submitted, self.rejected, self.makespan
        )?;
        writeln!(
            f,
            "decode {:.0} tok/s ({:.0}% of steady state) | slots {:.0}% busy | KV peak {:.0}% / mean {:.0}% | peak queue {}",
            self.tokens_per_s,
            100.0 * self.throughput_fraction(),
            100.0 * self.slot_utilization,
            100.0 * self.peak_kv_fraction,
            100.0 * self.kv_utilization,
            self.peak_queue_depth,
        )?;
        if let Some(slo) = self.slo {
            writeln!(
                f,
                "goodput {:.3} q/s ({:.0}% within the {slo} SLO) | {} preemptions",
                self.goodput_qps,
                100.0 * self.slo_attainment(),
                self.preemptions,
            )?;
        } else if self.preemptions > 0 || self.swaps > 0 {
            writeln!(f, "preemptions: {} | swaps: {}", self.preemptions, self.swaps)?;
        }
        if self.swaps > 0 {
            writeln!(
                f,
                "swap tier: {} swaps (stall {}) vs {} recomputes (stall {}) | host pool peak \
                 {}/{} tokens ({:.0}% mean)",
                self.swaps,
                self.swap_stall,
                self.preemptions,
                self.recompute_stall,
                self.host_kv_peak_tokens,
                self.host_pool_tokens,
                100.0 * self.host_kv_utilization,
            )?;
        }
        if self.classes.len() > 1 {
            for c in &self.classes {
                writeln!(
                    f,
                    "class {}: {}/{} done | TTFT p99 {} | TBT mean {} | goodput {:.3} q/s",
                    c.class, c.completed, c.submitted, c.ttft.p99, c.tbt.mean, c.goodput_qps,
                )?;
            }
        }
        writeln!(f, "TTFT:    {}", self.ttft)?;
        writeln!(f, "latency: {}", self.query_latency)?;
        writeln!(f, "wait:    {}", self.queue_wait)?;
        write!(f, "mean time between tokens: {}", self.tbt.mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{RequestId, RequestSpec};

    #[test]
    fn step_integral_is_partition_independent() {
        // One advance over [0, 10) at value 7 equals any subdivision, and a
        // staircase accumulated per segment equals the same staircase
        // accumulated as base + closed-form delta area.
        let mut whole = StepIntegral::default();
        whole.advance(7, 10);
        let mut split = StepIntegral::default();
        split.advance(7, 3);
        split.advance(7, 7);
        assert_eq!(whole.area(), split.area());
        // Staircase 5,6,7 over three unit segments...
        let mut per_segment = StepIntegral::default();
        per_segment.advance(5, 1);
        per_segment.advance(6, 1);
        per_segment.advance(7, 1);
        // ...equals base value 5 over the window plus the delta area
        // (0·1 + 1·1 + 2·1 = 3).
        let mut spanned = StepIntegral::default();
        spanned.advance(5, 3);
        spanned.add_area(3);
        assert_eq!(per_segment.area(), spanned.area());
        assert!((spanned.fraction_of(9, 3) - 18.0 / 27.0).abs() < 1e-15);
        assert_eq!(StepIntegral::default().fraction_of(0, 0), 0.0);
    }

    #[test]
    fn stats_from_empty_are_zero() {
        let s = LatencyStats::from_samples(&[]);
        assert_eq!(s.p99, Time::ZERO);
        assert_eq!(s.mean, Time::ZERO);
        assert_eq!(s.max, Time::ZERO);
    }

    #[test]
    fn stats_percentiles_are_ordered() {
        let samples: Vec<Time> = (1..=1000).map(Time::from_us).collect();
        let s = LatencyStats::from_samples(&samples);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert_eq!(s.max, Time::from_us(1000));
    }

    fn record(id: u64, arrival_us: u64, finished_us: u64, class: u8) -> RequestRecord {
        RequestRecord {
            spec: RequestSpec {
                id: RequestId(id),
                arrival: Time::from_us(arrival_us),
                prompt: 8,
                decode: 4,
                class: PriorityClass(class),
                session: crate::queue::SessionId(id),
            },
            admitted: Time::from_us(arrival_us),
            first_token: Time::from_us(arrival_us + 10),
            finished: Time::from_us(finished_us),
            replica: 0,
            preemptions: 0,
        }
    }

    fn totals(slo: Option<Time>, by_class: &[(u8, usize)]) -> RunTotals {
        RunTotals {
            offered_qps: 1.0,
            submitted: by_class.iter().map(|&(_, n)| n).sum(),
            rejected: 0,
            steady_state_tokens_per_s: 100.0,
            slot_utilization: 0.5,
            peak_kv_fraction: 0.5,
            kv_utilization: 0.25,
            peak_queue_depth: 1,
            preemptions: 0,
            swaps: 0,
            recompute_stall: Time::ZERO,
            swap_stall: Time::ZERO,
            host_pool_tokens: 0,
            host_kv_peak_tokens: 0,
            host_kv_utilization: 0.0,
            tbt: TimeHistogram::new(),
            submitted_by_class: by_class.iter().map(|&(c, n)| (PriorityClass(c), n)).collect(),
            tbt_by_class: Vec::new(),
            slo,
        }
    }

    #[test]
    fn goodput_counts_only_slo_hits() {
        // Request 0 finishes 50 us after arrival, request 1 takes 500 us.
        let records = [record(0, 0, 50, 0), record(1, 100, 600, 0)];
        let slo = Some(Time::from_us(100));
        let report = ServingReport::from_records(&records, totals(slo, &[(0, 2)]));
        assert_eq!(report.deadline_hits, 1);
        assert!((report.slo_attainment() - 0.5).abs() < 1e-12);
        // Goodput = 1 hit over the 600 us makespan.
        assert!((report.goodput_qps - 1.0 / 600e-6).abs() < 1e-3);
        // Without an SLO every completion counts.
        let report = ServingReport::from_records(&records, totals(None, &[(0, 2)]));
        assert_eq!(report.deadline_hits, 2);
        assert_eq!(report.slo_attainment(), 1.0);
    }

    #[test]
    fn per_class_rows_partition_the_run() {
        // Interactive request 0 meets the SLO; background 1 and 2 miss it.
        let records = [record(0, 0, 50, 0), record(1, 100, 600, 1), record(2, 120, 700, 1)];
        let slo = Some(Time::from_us(100));
        let report = ServingReport::from_records(&records, totals(slo, &[(0, 1), (1, 2)]));
        assert_eq!(report.classes.len(), 2);
        let (hi, lo) = (&report.classes[0], &report.classes[1]);
        assert_eq!(
            (hi.class, hi.submitted, hi.completed, hi.deadline_hits),
            (PriorityClass(0), 1, 1, 1)
        );
        assert_eq!(
            (lo.class, lo.submitted, lo.completed, lo.deadline_hits),
            (PriorityClass(1), 2, 2, 0)
        );
        // Class goodputs sum to the run's total.
        let sum: f64 = report.classes.iter().map(|c| c.goodput_qps).sum();
        assert!((sum - report.goodput_qps).abs() < 1e-9);
        // Per-class TTFT populations are the class's own records.
        assert_eq!(hi.ttft.max, Time::from_us(10));
        assert_eq!(lo.query_latency.max, Time::from_us(580));
        assert_eq!(report.eviction_stall(), Time::ZERO);
    }
}
