//! Pluggable admission-ordering policies for the continuous-batching
//! scheduler.
//!
//! The scheduler repeatedly asks its [`SchedulingPolicy`] which waiting
//! request to admit next; admission stops at the first pick that fits no
//! replica (head-of-line blocking on the *policy's* order, which keeps
//! saturation behaviour fair and deterministic). Policies are pure ranking
//! functions over [`QueuedRequest`]s, so preemption and KV accounting stay
//! in the scheduler while service order is swappable per run.
//!
//! A request's [`PriorityClass`](crate::PriorityClass) dominates the policy
//! order: the scheduler keys admission on `(class, policy priority, arrival,
//! id)`, so a policy reorders traffic *within* a class but background tiers
//! never overtake interactive ones. Single-class workloads reduce to the
//! pure policy order.

use cent_types::Time;

use crate::queue::QueuedRequest;

/// Information available to a policy when ranking waiting requests.
///
/// `now` and `token_interval` are shared by every candidate at one
/// admission instant, so policies may use them to convert remaining work
/// into time without breaking determinism.
#[derive(Debug, Clone, Copy)]
pub struct PolicyContext {
    /// The admission instant.
    pub now: Time,
    /// Steady-state interval between a resident query's tokens.
    pub token_interval: Time,
}

/// Ranks waiting requests for admission.
///
/// Lower priority values are served first; the scheduler breaks ties by
/// arrival time and then request id, so any policy yields a total,
/// reproducible order. Policies are `Send + Sync` so sweeps can fan
/// operating points out across threads, and boxed policies are [`Clone`]
/// (via [`clone_box`](Self::clone_box)) so one
/// [`ServeOptions`](crate::ServeOptions) can be reused across points.
///
/// Priorities must be *stable between admission instants*: a request's key
/// may depend on its own state (arrival, remaining work) and on constants
/// from the context, but not on `ctx.now` itself. The scheduler's blocked-
/// head fast path relies on this — a pick that lost the capacity race is
/// assumed to stay the front-runner until a lease is released or a
/// better-keyed request arrives.
pub trait SchedulingPolicy: std::fmt::Debug + Send + Sync {
    /// Short human-readable name (used in sweep tables).
    fn name(&self) -> &'static str;

    /// Priority key of `req`; lower is served first.
    fn priority(&self, req: &QueuedRequest, ctx: &PolicyContext) -> i128;

    /// Boxed copy of this policy, so containers of `Box<dyn
    /// SchedulingPolicy>` can implement [`Clone`].
    fn clone_box(&self) -> Box<dyn SchedulingPolicy>;
}

impl Clone for Box<dyn SchedulingPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// First-in, first-out by arrival time — the paper's implicit baseline and
/// the fairest order under saturation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl SchedulingPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn priority(&self, req: &QueuedRequest, _ctx: &PolicyContext) -> i128 {
        i128::from(req.spec.arrival.as_ps())
    }

    fn clone_box(&self) -> Box<dyn SchedulingPolicy> {
        Box::new(*self)
    }
}

/// Shortest-remaining-decode first: favours requests with the fewest
/// tokens left to generate (resumed preempted requests count only their
/// remaining work). Minimises mean latency at the cost of starving long
/// generations under overload.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestRemainingDecode;

impl SchedulingPolicy for ShortestRemainingDecode {
    fn name(&self) -> &'static str {
        "srd"
    }

    fn priority(&self, req: &QueuedRequest, _ctx: &PolicyContext) -> i128 {
        req.remaining_decode() as i128
    }

    fn clone_box(&self) -> Box<dyn SchedulingPolicy> {
        Box::new(*self)
    }
}

/// Deadline-aware (least-slack-first) ordering: every request implicitly
/// carries the deadline `arrival + slo` on its end-to-end latency, and the
/// policy serves the request whose slack — deadline minus estimated
/// remaining service time — is smallest. With a uniform SLO this departs
/// from FIFO exactly when lengths vary: a long generation close to its
/// deadline jumps the queue.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineAware {
    /// Target end-to-end query latency (the SLO each request must meet).
    pub slo: Time,
}

impl SchedulingPolicy for DeadlineAware {
    fn name(&self) -> &'static str {
        "deadline"
    }

    fn priority(&self, req: &QueuedRequest, ctx: &PolicyContext) -> i128 {
        let deadline = i128::from((req.spec.arrival + self.slo).as_ps());
        let remaining = i128::from(ctx.token_interval.as_ps()) * req.remaining_decode() as i128;
        deadline - remaining
    }

    fn clone_box(&self) -> Box<dyn SchedulingPolicy> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{PriorityClass, RequestId, RequestSpec};

    fn queued(id: u64, arrival_us: u64, decode: usize, progress: usize) -> QueuedRequest {
        let mut q = QueuedRequest::fresh(RequestSpec {
            id: RequestId(id),
            arrival: Time::from_us(arrival_us),
            prompt: 16,
            decode,
            class: PriorityClass::default(),
            session: crate::queue::SessionId(id),
        });
        q.progress = progress;
        q
    }

    fn ctx() -> PolicyContext {
        PolicyContext { now: Time::from_us(100), token_interval: Time::from_us(10) }
    }

    #[test]
    fn fifo_orders_by_arrival() {
        let (a, b) = (queued(0, 5, 100, 0), queued(1, 3, 1, 0));
        assert!(Fifo.priority(&b, &ctx()) < Fifo.priority(&a, &ctx()));
    }

    #[test]
    fn srd_counts_only_remaining_work() {
        let fresh_long = queued(0, 1, 100, 0);
        let resumed_long = queued(1, 2, 100, 95);
        let fresh_short = queued(2, 3, 10, 0);
        let c = ctx();
        let p = ShortestRemainingDecode;
        assert!(p.priority(&resumed_long, &c) < p.priority(&fresh_short, &c));
        assert!(p.priority(&fresh_short, &c) < p.priority(&fresh_long, &c));
    }

    #[test]
    fn deadline_prefers_least_slack() {
        let p = DeadlineAware { slo: Time::from_us(1000) };
        let c = ctx();
        // Same arrival: the longer generation has less slack.
        let long = queued(0, 50, 80, 0);
        let short = queued(1, 50, 8, 0);
        assert!(p.priority(&long, &c) < p.priority(&short, &c));
        // Same length: the earlier arrival has the earlier deadline.
        let early = queued(2, 10, 8, 0);
        assert!(p.priority(&early, &c) < p.priority(&short, &c));
    }
}
