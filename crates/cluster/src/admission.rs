//! Router-level admission control at fleet saturation.
//!
//! When offered load outruns the alive capacity — a mass crash, a diurnal
//! peak, a standby-depleted fleet — queueing delay compounds and every
//! class's TTFT tail collapses together. An [`AdmissionPolicy`] lets the
//! fleet degrade *by class* instead: at each arrival the driver computes a
//! fleet-wide **saturation** figure (the worst of queue pressure, KV
//! pressure and — in a disaggregated fleet — shared-pool pressure, each
//! normalised against the *alive* groups) and sheds the request outright
//! when its class's threshold is reached. A shed request never enters a
//! group; it is counted per class in the degraded section and in the
//! extended conservation invariant
//! `completed + rejected + dropped + shed = offered`.
//!
//! The policy is pure data evaluated single-threaded at epoch stops, so it
//! composes with the determinism contract like every other fleet knob.

use crate::router::GroupLoad;
use cent_serving::PriorityClass;

/// Per-class shed thresholds against fleet saturation (see module docs).
///
/// A threshold is a saturation level in `[0, ∞)`: class `c` is shed when
/// `saturation >= threshold(c)`. Classes without an explicit entry use the
/// default threshold; [`AdmissionPolicy::admit_all`] (the `Default`) sets
/// the default to infinity, which never sheds and keeps the driver on the
/// no-policy path bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionPolicy {
    /// Explicit per-class thresholds, sorted by class.
    thresholds: Vec<(PriorityClass, f64)>,
    default_threshold: f64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy::admit_all()
    }
}

impl AdmissionPolicy {
    /// The no-op policy: every class admitted at any saturation.
    pub fn admit_all() -> Self {
        AdmissionPolicy { thresholds: Vec::new(), default_threshold: f64::INFINITY }
    }

    /// Sheds every class once saturation reaches `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or NaN.
    pub fn shed_above(threshold: f64) -> Self {
        assert!(threshold >= 0.0, "shed threshold must be >= 0, got {threshold}");
        AdmissionPolicy { thresholds: Vec::new(), default_threshold: threshold }
    }

    /// Overrides the threshold for one class (e.g. shed batch at 0.9
    /// saturation while interactive rides to 1.2).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or NaN.
    pub fn with_class(mut self, class: PriorityClass, threshold: f64) -> Self {
        assert!(threshold >= 0.0, "shed threshold must be >= 0, got {threshold}");
        self.thresholds.retain(|(c, _)| *c != class);
        self.thresholds.push((class, threshold));
        self.thresholds.sort_by_key(|(c, _)| *c);
        self
    }

    /// Whether any class can ever be shed — `false` keeps the driver on
    /// the no-policy path.
    pub fn is_active(&self) -> bool {
        self.default_threshold.is_finite() || self.thresholds.iter().any(|(_, t)| t.is_finite())
    }

    /// The shed threshold applying to `class`.
    pub fn threshold(&self, class: PriorityClass) -> f64 {
        self.thresholds
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, t)| *t)
            .unwrap_or(self.default_threshold)
    }

    /// Whether a request of `class` is admitted at `saturation`.
    pub fn admits(&self, class: PriorityClass, saturation: f64) -> bool {
        saturation < self.threshold(class)
    }
}

/// Fleet-wide saturation: the worst of queue pressure (outstanding over
/// alive slots), KV pressure (reserved tokens over alive budget) and, when
/// a shared pool is present, pool pressure (`used / capacity`). `loads`
/// must already be restricted to the alive groups; an empty slice (whole
/// fleet down) saturates at infinity.
pub fn fleet_saturation(
    loads: &[GroupLoad],
    slots_per_group: u64,
    kv_budget_per_group: u64,
    pool: Option<(u64, u64)>,
) -> f64 {
    if loads.is_empty() {
        return f64::INFINITY;
    }
    let alive = loads.len() as f64;
    let outstanding: u64 = loads.iter().map(|l| l.outstanding).sum();
    let kv: u64 = loads.iter().map(|l| l.kv_tokens).sum();
    let queue = outstanding as f64 / (alive * slots_per_group as f64);
    let kv_pressure = kv as f64 / (alive * kv_budget_per_group as f64);
    let pool_pressure = match pool {
        Some((used, capacity)) => used as f64 / capacity as f64,
        None => 0.0,
    };
    queue.max(kv_pressure).max(pool_pressure)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(group: usize, outstanding: u64, kv_tokens: u64) -> GroupLoad {
        GroupLoad { group, outstanding, kv_tokens }
    }

    #[test]
    fn thresholds_resolve_per_class_with_default_fallback() {
        let policy = AdmissionPolicy::shed_above(1.2).with_class(PriorityClass::BATCH, 0.8);
        assert_eq!(policy.threshold(PriorityClass::BATCH), 0.8);
        assert_eq!(policy.threshold(PriorityClass::INTERACTIVE), 1.2);
        assert!(policy.admits(PriorityClass::INTERACTIVE, 1.0));
        assert!(!policy.admits(PriorityClass::BATCH, 1.0));
        assert!(!policy.admits(PriorityClass::BATCH, 0.8), "threshold itself sheds");
        assert!(policy.is_active());
        assert!(!AdmissionPolicy::admit_all().is_active());
        assert!(AdmissionPolicy::admit_all().admits(PriorityClass::BATCH, 1e9));
    }

    #[test]
    fn saturation_is_the_worst_pressure_over_alive_groups() {
        let loads = [load(0, 8, 1000), load(2, 0, 3000)];
        // Queue: 8 / (2 × 4) = 1.0; KV: 4000 / (2 × 16000) = 0.125.
        let s = fleet_saturation(&loads, 4, 16_000, None);
        assert!((s - 1.0).abs() < 1e-12);
        // A nearly full pool dominates both.
        let s = fleet_saturation(&loads, 4, 16_000, Some((1500, 1000)));
        assert!((s - 1.5).abs() < 1e-12);
        // Whole fleet down: infinitely saturated, everything sheds.
        assert!(fleet_saturation(&[], 4, 16_000, None).is_infinite());
    }
}
