//! Deterministic fault injection for the fleet: crash/recover windows,
//! host-link degradation and stragglers, plus the seeded chaos generator.
//!
//! A [`FaultSchedule`] is plain data — a validated list of [`FaultSpec`]s —
//! consumed by the epoch driver in [`fleet`](crate::fleet): every fault
//! instant is aligned to the driver's epoch grid and applied from a single
//! thread in a fixed order, so a schedule perturbs *what* the fleet
//! simulates, never the determinism contract (bit-identical
//! [`FleetReport`](crate::FleetReport) across worker-thread counts).
//! [`FaultPlan::chaos`] draws a schedule from the in-tree SplitMix64, so a
//! `(seed, rates)` pair names one reproducible bad day.

use crate::disagg::GroupRole;
use cent_types::{Rng64, Time};

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// Group `group` dies at `at`: its device KV (and any pages it parked
    /// in the host pool) is lost, in-flight and queued requests are
    /// orphaned back to the router, and the group leaves the load index.
    /// With `recover_after = Some(d)` it rejoins — empty and cold — `d`
    /// later; `None` is a permanent failure.
    GroupCrash {
        /// Fleet-wide group index.
        group: usize,
        /// Crash instant (aligned up to the next epoch boundary).
        at: Time,
        /// Outage duration before the group rejoins; `None` never rejoins.
        recover_after: Option<Time>,
    },
    /// The CXL host link degrades fleet-wide for `duration`:
    /// `bandwidth_factor` multiplies the healthy link bandwidth (0.25 =
    /// four times slower), which shifts the `CostDriven` spill comparator
    /// toward recompute for the window. Overlapping windows apply the most
    /// severe factor.
    HostLinkDegrade {
        /// Window start (aligned up to the next epoch boundary).
        at: Time,
        /// Window length (at least one epoch once aligned).
        duration: Time,
        /// Multiplier on the healthy host-link bandwidth, in `(0, 1]`.
        bandwidth_factor: f64,
    },
    /// Group `group` runs `slowdown`× slower for the whole run (thermal
    /// throttling, a flaky device retrying): token interval stretched,
    /// prefill and steady-state rates divided.
    Straggler {
        /// Fleet-wide group index.
        group: usize,
        /// Uniform slowdown factor, at least `1.0`.
        slowdown: f64,
    },
    /// The switch-attached pool links degrade for `duration`:
    /// `bandwidth_factor` multiplies the healthy handoff bandwidth (the
    /// `KvSwapCost::with_switch_hops` cost of publishing and claiming
    /// contexts), stretching every transfer scheduled inside the window.
    /// Overlapping windows apply the most severe factor; the window ends
    /// by restoring the healthy cost model exactly (no float round trip).
    /// Only the disaggregated driver has a pool — the colocated driver
    /// ignores these specs.
    PoolLinkDegrade {
        /// Window start (aligned up to the next epoch boundary).
        at: Time,
        /// Window length (at least one epoch once aligned).
        duration: Time,
        /// Multiplier on the healthy pool-link bandwidth, in `(0, 1]`.
        bandwidth_factor: f64,
    },
}

/// A validated list of [`FaultSpec`]s for one fleet run.
///
/// Construction checks every spec once so the driver can consume them
/// unchecked; specs need no particular order (the driver compiles them
/// onto the epoch grid and sorts deterministically).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    specs: Vec<FaultSpec>,
}

impl FaultSchedule {
    /// A schedule with no faults: the driver degenerates to the healthy
    /// path bit for bit.
    pub fn empty() -> Self {
        FaultSchedule::default()
    }

    /// Wraps and validates a list of fault specs.
    ///
    /// # Panics
    ///
    /// Panics if a crash recovers after a non-positive delay, a degrade
    /// window is empty or its factor outside `(0, 1]`, or a straggler
    /// slowdown is below `1.0` (or any factor is non-finite).
    pub fn new(specs: Vec<FaultSpec>) -> Self {
        for spec in &specs {
            match *spec {
                FaultSpec::GroupCrash { recover_after, .. } => {
                    if let Some(d) = recover_after {
                        assert!(d > Time::ZERO, "recovery delay must be positive");
                    }
                }
                FaultSpec::HostLinkDegrade { duration, bandwidth_factor, .. }
                | FaultSpec::PoolLinkDegrade { duration, bandwidth_factor, .. } => {
                    assert!(duration > Time::ZERO, "degrade window must be non-empty");
                    assert!(
                        bandwidth_factor.is_finite()
                            && bandwidth_factor > 0.0
                            && bandwidth_factor <= 1.0,
                        "bandwidth factor must lie in (0, 1], got {bandwidth_factor}"
                    );
                }
                FaultSpec::Straggler { slowdown, .. } => {
                    assert!(
                        slowdown.is_finite() && slowdown >= 1.0,
                        "straggler slowdown must be >= 1.0, got {slowdown}"
                    );
                }
            }
        }
        FaultSchedule { specs }
    }

    /// Whether the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The validated specs, in construction order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Largest group index any spec references, if any spec does.
    pub fn max_group(&self) -> Option<usize> {
        self.specs
            .iter()
            .filter_map(|s| match *s {
                FaultSpec::GroupCrash { group, .. } | FaultSpec::Straggler { group, .. } => {
                    Some(group)
                }
                FaultSpec::HostLinkDegrade { .. } | FaultSpec::PoolLinkDegrade { .. } => None,
            })
            .max()
    }
}

/// How a crashed group comes back — and with how much of its state.
///
/// Applies per fleet run (a [`FleetOptions`](crate::FleetOptions) field),
/// to every crash-with-recovery in the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RecoveryMode {
    /// The group rejoins empty: every orphan re-prefills (or is rescued
    /// from the shared pool in a disaggregated fleet). The PR 8 behaviour
    /// and the default.
    #[default]
    Cold,
    /// Partial recovery: the group retained `retained_fraction` of the KV
    /// contexts it was serving (device memory survived the control-plane
    /// restart). The retained subset is deterministic — the first
    /// `⌊fraction × orphans⌋` of the crash's `(arrival, id)`-sorted orphan
    /// list — and is re-seeded warm (no re-prefill, no transfer) when the
    /// group rejoins; the rest take the cold path.
    Warm {
        /// Fraction of each crash's orphans retained, in `[0, 1]`.
        retained_fraction: f64,
    },
    /// Warm standby: the last `spares` groups of the fleet start outside
    /// the load index as idle spares. A crash promotes the lowest-indexed
    /// available spare (role-matched in a disaggregated fleet) at the
    /// crash instant, and the crashed group — once recovered — joins the
    /// spare reserve instead of the serving set. Orphans still take the
    /// cold path (the spare has none of their state).
    Standby {
        /// Groups reserved as idle spares, at least 1.
        spares: usize,
    },
}

impl RecoveryMode {
    /// Validates the mode's parameters.
    ///
    /// # Panics
    ///
    /// Panics if a warm fraction is outside `[0, 1]` or a standby reserve
    /// is empty.
    pub fn validate(&self) {
        match *self {
            RecoveryMode::Cold => {}
            RecoveryMode::Warm { retained_fraction } => {
                assert!(
                    retained_fraction.is_finite() && (0.0..=1.0).contains(&retained_fraction),
                    "warm retained fraction must lie in [0, 1], got {retained_fraction}"
                );
            }
            RecoveryMode::Standby { spares } => {
                assert!(spares >= 1, "a standby reserve needs at least one spare");
            }
        }
    }
}

/// Bounded deterministic redispatch policy for crash orphans.
///
/// A request's first dispatch counts as attempt one; each crash that
/// orphans it consumes one attempt, and once `max_attempts` dispatches
/// have been burned the request is reported dropped instead of retried.
/// The `n`-th redispatch is delayed by `n × backoff` from the crash
/// instant (then aligned up to the epoch grid), so retry storms after a
/// mass failure spread out deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total dispatches a request may consume (the original dispatch
    /// included) before it is dropped. At least 1.
    pub max_attempts: u32,
    /// Linear backoff unit: the `n`-th redispatch waits `n × backoff`.
    pub backoff: Time,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, backoff: Time::ZERO }
    }
}

/// Event rates for [`FaultPlan::chaos`]. All processes are Poisson with
/// exponential durations, drawn from the in-tree SplitMix64.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosRates {
    /// Mean crashes per group per simulated second (0 disables crashes).
    pub crash_rate: f64,
    /// Mean outage before a crashed group rejoins, seconds.
    pub mean_outage_s: f64,
    /// Mean fleet-wide host-link degradations per second (0 disables).
    pub degrade_rate: f64,
    /// Mean degradation-window length, seconds.
    pub mean_degrade_s: f64,
    /// Bandwidth factor applied inside a degradation window, in `(0, 1]`.
    pub degrade_factor: f64,
    /// Probability each group is a straggler for the whole run.
    pub straggler_probability: f64,
    /// Slowdown applied to straggler groups, at least `1.0`.
    pub straggler_slowdown: f64,
    /// Mean pool-link degradations per second (0 disables). Only
    /// [`FaultPlan::chaos_disagg`] reads this — [`FaultPlan::chaos`]
    /// ignores the disagg fields entirely, so schedules drawn by it are
    /// byte-identical to those drawn before the fields existed.
    pub pool_degrade_rate: f64,
    /// Mean pool-link degradation-window length, seconds.
    pub mean_pool_degrade_s: f64,
    /// Bandwidth factor inside a pool-link window, in `(0, 1]`.
    pub pool_degrade_factor: f64,
    /// Multiplier on `crash_rate` for prefill-tier groups (disagg only).
    pub prefill_crash_mult: f64,
    /// Multiplier on `crash_rate` for decode-tier groups (disagg only).
    pub decode_crash_mult: f64,
}

impl Default for ChaosRates {
    /// A plausible bad hour: a group crashes about every 200 s of
    /// group-time and stays down ~10 s, the host link loses 3/4 of its
    /// bandwidth about once a minute for ~5 s, and one group in sixteen
    /// runs 30% slow. In a disaggregated fleet the pool links additionally
    /// lose half their bandwidth about every two minutes for ~5 s, with
    /// both tiers crashing at the base rate.
    fn default() -> Self {
        ChaosRates {
            crash_rate: 1.0 / 200.0,
            mean_outage_s: 10.0,
            degrade_rate: 1.0 / 60.0,
            mean_degrade_s: 5.0,
            degrade_factor: 0.25,
            straggler_probability: 1.0 / 16.0,
            straggler_slowdown: 1.3,
            pool_degrade_rate: 1.0 / 120.0,
            mean_pool_degrade_s: 5.0,
            pool_degrade_factor: 0.5,
            prefill_crash_mult: 1.0,
            decode_crash_mult: 1.0,
        }
    }
}

/// Namespace for fault-schedule generators.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan;

/// Stream-splitting constant (the SplitMix64 golden-gamma), so per-group
/// chaos streams decorrelate from each other and from the degrade stream.
const STREAM_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl FaultPlan {
    /// Draws a chaos schedule over `groups` groups and `[0, horizon)`.
    ///
    /// Each group gets its own SplitMix64 stream derived from `seed`, so
    /// the schedule for group `g` does not change when `groups` grows.
    /// Crash windows are sequential per group (a group cannot crash while
    /// it is already down); degrade windows are a single fleet-wide
    /// sequential process.
    ///
    /// # Panics
    ///
    /// Panics if a rate or factor is out of range (via
    /// [`FaultSchedule::new`]) or `horizon` is zero.
    pub fn chaos(seed: u64, groups: usize, horizon: Time, rates: &ChaosRates) -> FaultSchedule {
        assert!(horizon > Time::ZERO, "chaos needs a positive horizon");
        let mut specs = Vec::new();
        for group in 0..groups {
            Self::group_stream(seed, group, rates.crash_rate, horizon, rates, &mut specs);
        }
        Self::host_degrade_stream(seed, horizon, rates, &mut specs);
        FaultSchedule::new(specs)
    }

    /// Draws a chaos schedule for a disaggregated fleet whose group `g`
    /// plays `roles[g]`: per-tier crash weighting (`crash_rate` scaled by
    /// `prefill_crash_mult` / `decode_crash_mult`) plus a pool-link
    /// degradation process alongside the host-link one. The per-group and
    /// host-link streams draw exactly as [`chaos`](Self::chaos) does, so
    /// with unit multipliers and a zero pool rate the two generators
    /// produce the same schedule (modulo the added pool windows).
    ///
    /// # Panics
    ///
    /// Panics if a rate, factor or multiplier is out of range or
    /// `horizon` is zero.
    pub fn chaos_disagg(
        seed: u64,
        roles: &[GroupRole],
        horizon: Time,
        rates: &ChaosRates,
    ) -> FaultSchedule {
        assert!(horizon > Time::ZERO, "chaos needs a positive horizon");
        for mult in [rates.prefill_crash_mult, rates.decode_crash_mult] {
            assert!(mult.is_finite() && mult >= 0.0, "crash multiplier must be >= 0, got {mult}");
        }
        let horizon_s = horizon.as_secs();
        let mut specs = Vec::new();
        for (group, role) in roles.iter().enumerate() {
            let crash_rate = rates.crash_rate
                * match role {
                    GroupRole::Colocated => 1.0,
                    GroupRole::Prefill => rates.prefill_crash_mult,
                    GroupRole::Decode => rates.decode_crash_mult,
                };
            Self::group_stream(seed, group, crash_rate, horizon, rates, &mut specs);
        }
        Self::host_degrade_stream(seed, horizon, rates, &mut specs);
        if rates.pool_degrade_rate > 0.0 {
            let mut rng = Rng64::seed(seed.wrapping_add(STREAM_GAMMA.wrapping_mul(2)));
            let mut t = rng.exponential(rates.pool_degrade_rate);
            while t < horizon_s {
                let duration = rng.exponential(1.0 / rates.mean_pool_degrade_s).max(1e-6);
                specs.push(FaultSpec::PoolLinkDegrade {
                    at: Time::from_secs_f64(t),
                    duration: Time::from_secs_f64(duration),
                    bandwidth_factor: rates.pool_degrade_factor,
                });
                t += duration + rng.exponential(rates.pool_degrade_rate);
            }
        }
        FaultSchedule::new(specs)
    }

    /// One group's crash-and-straggler stream, appended to `specs`. The
    /// stream derivation and draw order match the original `chaos`
    /// generator exactly — `chaos_disagg` only varies `crash_rate`.
    fn group_stream(
        seed: u64,
        group: usize,
        crash_rate: f64,
        horizon: Time,
        rates: &ChaosRates,
        specs: &mut Vec<FaultSpec>,
    ) {
        let horizon_s = horizon.as_secs();
        let mut rng = Rng64::seed(seed ^ (group as u64 + 1).wrapping_mul(STREAM_GAMMA));
        if crash_rate > 0.0 {
            let mut t = rng.exponential(crash_rate);
            while t < horizon_s {
                let outage = rng.exponential(1.0 / rates.mean_outage_s).max(1e-6);
                specs.push(FaultSpec::GroupCrash {
                    group,
                    at: Time::from_secs_f64(t),
                    recover_after: Some(Time::from_secs_f64(outage)),
                });
                t += outage + rng.exponential(crash_rate);
            }
        }
        if rates.straggler_probability > 0.0
            && rng.next_f64() < rates.straggler_probability
            && rates.straggler_slowdown > 1.0
        {
            specs.push(FaultSpec::Straggler { group, slowdown: rates.straggler_slowdown });
        }
    }

    /// The fleet-wide host-link degradation stream, appended to `specs`.
    fn host_degrade_stream(
        seed: u64,
        horizon: Time,
        rates: &ChaosRates,
        specs: &mut Vec<FaultSpec>,
    ) {
        let horizon_s = horizon.as_secs();
        if rates.degrade_rate > 0.0 {
            let mut rng = Rng64::seed(seed.wrapping_add(STREAM_GAMMA));
            let mut t = rng.exponential(rates.degrade_rate);
            while t < horizon_s {
                let duration = rng.exponential(1.0 / rates.mean_degrade_s).max(1e-6);
                specs.push(FaultSpec::HostLinkDegrade {
                    at: Time::from_secs_f64(t),
                    duration: Time::from_secs_f64(duration),
                    bandwidth_factor: rates.degrade_factor,
                });
                t += duration + rng.exponential(rates.degrade_rate);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_is_deterministic_and_respects_group_streams() {
        let rates = ChaosRates::default();
        let horizon = Time::from_secs_f64(600.0);
        let a = FaultPlan::chaos(42, 8, horizon, &rates);
        let b = FaultPlan::chaos(42, 8, horizon, &rates);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, FaultPlan::chaos(43, 8, horizon, &rates), "seeds diverge");
        // Growing the fleet only appends faults for the new groups: the
        // per-group streams of the first 8 groups are untouched.
        let wider = FaultPlan::chaos(42, 16, horizon, &rates);
        let of_first_8 = |s: &FaultSchedule| -> Vec<FaultSpec> {
            s.specs()
                .iter()
                .filter(|f| match **f {
                    FaultSpec::GroupCrash { group, .. } | FaultSpec::Straggler { group, .. } => {
                        group < 8
                    }
                    FaultSpec::HostLinkDegrade { .. } | FaultSpec::PoolLinkDegrade { .. } => true,
                })
                .copied()
                .collect()
        };
        assert_eq!(of_first_8(&a), of_first_8(&wider));
    }

    #[test]
    fn chaos_crash_windows_do_not_overlap_per_group() {
        let rates =
            ChaosRates { crash_rate: 1.0 / 20.0, mean_outage_s: 15.0, ..Default::default() };
        let schedule = FaultPlan::chaos(7, 4, Time::from_secs_f64(1200.0), &rates);
        for group in 0..4 {
            let mut windows: Vec<(Time, Time)> = schedule
                .specs()
                .iter()
                .filter_map(|s| match *s {
                    FaultSpec::GroupCrash { group: g, at, recover_after } if g == group => {
                        Some((at, at + recover_after.expect("chaos always recovers")))
                    }
                    _ => None,
                })
                .collect();
            assert!(!windows.is_empty(), "20 s crash rate over 20 min must fire");
            windows.sort_unstable();
            for pair in windows.windows(2) {
                assert!(pair[0].1 <= pair[1].0, "group {group} crashed while down: {pair:?}");
            }
        }
    }

    #[test]
    fn chaos_disagg_extends_chaos_without_perturbing_it() {
        let rates = ChaosRates::default();
        let horizon = Time::from_secs_f64(600.0);
        let base = FaultPlan::chaos(42, 6, horizon, &rates);
        let roles = [
            GroupRole::Prefill,
            GroupRole::Prefill,
            GroupRole::Prefill,
            GroupRole::Decode,
            GroupRole::Decode,
            GroupRole::Decode,
        ];
        let disagg = FaultPlan::chaos_disagg(42, &roles, horizon, &rates);
        // Unit tier multipliers: everything but the pool windows matches
        // the colocated generator draw for draw.
        let non_pool: Vec<FaultSpec> = disagg
            .specs()
            .iter()
            .filter(|s| !matches!(s, FaultSpec::PoolLinkDegrade { .. }))
            .copied()
            .collect();
        assert_eq!(non_pool, base.specs());
        assert!(
            disagg.specs().iter().any(|s| matches!(s, FaultSpec::PoolLinkDegrade { .. })),
            "default pool-degrade rate over 10 min must fire"
        );
        // Disabling the pool process and immunising a tier changes only
        // what it should: no pool windows, no prefill-tier crashes.
        let quiet = ChaosRates { pool_degrade_rate: 0.0, prefill_crash_mult: 0.0, ..rates };
        let immune = FaultPlan::chaos_disagg(42, &roles, horizon, &quiet);
        assert!(!immune.specs().iter().any(|s| matches!(s, FaultSpec::PoolLinkDegrade { .. })));
        assert!(!immune
            .specs()
            .iter()
            .any(|s| matches!(s, FaultSpec::GroupCrash { group, .. } if *group < 3)));
        assert!(immune
            .specs()
            .iter()
            .any(|s| matches!(s, FaultSpec::GroupCrash { group, .. } if *group >= 3)));
    }

    #[test]
    fn recovery_mode_validation() {
        RecoveryMode::Cold.validate();
        RecoveryMode::Warm { retained_fraction: 0.5 }.validate();
        RecoveryMode::Standby { spares: 1 }.validate();
        for bad in [
            RecoveryMode::Warm { retained_fraction: -0.1 },
            RecoveryMode::Warm { retained_fraction: 1.5 },
            RecoveryMode::Standby { spares: 0 },
        ] {
            assert!(
                std::panic::catch_unwind(|| bad.validate()).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn schedule_validation_rejects_bad_specs() {
        let bad = [
            FaultSpec::HostLinkDegrade {
                at: Time::ZERO,
                duration: Time::from_secs_f64(1.0),
                bandwidth_factor: 1.5,
            },
            FaultSpec::PoolLinkDegrade {
                at: Time::ZERO,
                duration: Time::ZERO,
                bandwidth_factor: 0.5,
            },
            FaultSpec::Straggler { group: 0, slowdown: 0.5 },
            FaultSpec::GroupCrash { group: 0, at: Time::ZERO, recover_after: Some(Time::ZERO) },
        ];
        for spec in bad {
            let result = std::panic::catch_unwind(|| FaultSchedule::new(vec![spec]));
            assert!(result.is_err(), "{spec:?} must be rejected");
        }
        assert!(FaultSchedule::empty().is_empty());
        assert_eq!(
            FaultSchedule::new(vec![FaultSpec::Straggler { group: 5, slowdown: 2.0 }]).max_group(),
            Some(5)
        );
    }
}
