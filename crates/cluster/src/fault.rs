//! Deterministic fault injection for the fleet: crash/recover windows,
//! host-link degradation and stragglers, plus the seeded chaos generator.
//!
//! A [`FaultSchedule`] is plain data — a validated list of [`FaultSpec`]s —
//! consumed by the epoch driver in [`fleet`](crate::fleet): every fault
//! instant is aligned to the driver's epoch grid and applied from a single
//! thread in a fixed order, so a schedule perturbs *what* the fleet
//! simulates, never the determinism contract (bit-identical
//! [`FleetReport`](crate::FleetReport) across worker-thread counts).
//! [`FaultPlan::chaos`] draws a schedule from the in-tree SplitMix64, so a
//! `(seed, rates)` pair names one reproducible bad day.

use cent_types::{Rng64, Time};

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// Group `group` dies at `at`: its device KV (and any pages it parked
    /// in the host pool) is lost, in-flight and queued requests are
    /// orphaned back to the router, and the group leaves the load index.
    /// With `recover_after = Some(d)` it rejoins — empty and cold — `d`
    /// later; `None` is a permanent failure.
    GroupCrash {
        /// Fleet-wide group index.
        group: usize,
        /// Crash instant (aligned up to the next epoch boundary).
        at: Time,
        /// Outage duration before the group rejoins; `None` never rejoins.
        recover_after: Option<Time>,
    },
    /// The CXL host link degrades fleet-wide for `duration`:
    /// `bandwidth_factor` multiplies the healthy link bandwidth (0.25 =
    /// four times slower), which shifts the `CostDriven` spill comparator
    /// toward recompute for the window. Overlapping windows apply the most
    /// severe factor.
    HostLinkDegrade {
        /// Window start (aligned up to the next epoch boundary).
        at: Time,
        /// Window length (at least one epoch once aligned).
        duration: Time,
        /// Multiplier on the healthy host-link bandwidth, in `(0, 1]`.
        bandwidth_factor: f64,
    },
    /// Group `group` runs `slowdown`× slower for the whole run (thermal
    /// throttling, a flaky device retrying): token interval stretched,
    /// prefill and steady-state rates divided.
    Straggler {
        /// Fleet-wide group index.
        group: usize,
        /// Uniform slowdown factor, at least `1.0`.
        slowdown: f64,
    },
}

/// A validated list of [`FaultSpec`]s for one fleet run.
///
/// Construction checks every spec once so the driver can consume them
/// unchecked; specs need no particular order (the driver compiles them
/// onto the epoch grid and sorts deterministically).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    specs: Vec<FaultSpec>,
}

impl FaultSchedule {
    /// A schedule with no faults: the driver degenerates to the healthy
    /// path bit for bit.
    pub fn empty() -> Self {
        FaultSchedule::default()
    }

    /// Wraps and validates a list of fault specs.
    ///
    /// # Panics
    ///
    /// Panics if a crash recovers after a non-positive delay, a degrade
    /// window is empty or its factor outside `(0, 1]`, or a straggler
    /// slowdown is below `1.0` (or any factor is non-finite).
    pub fn new(specs: Vec<FaultSpec>) -> Self {
        for spec in &specs {
            match *spec {
                FaultSpec::GroupCrash { recover_after, .. } => {
                    if let Some(d) = recover_after {
                        assert!(d > Time::ZERO, "recovery delay must be positive");
                    }
                }
                FaultSpec::HostLinkDegrade { duration, bandwidth_factor, .. } => {
                    assert!(duration > Time::ZERO, "degrade window must be non-empty");
                    assert!(
                        bandwidth_factor.is_finite()
                            && bandwidth_factor > 0.0
                            && bandwidth_factor <= 1.0,
                        "bandwidth factor must lie in (0, 1], got {bandwidth_factor}"
                    );
                }
                FaultSpec::Straggler { slowdown, .. } => {
                    assert!(
                        slowdown.is_finite() && slowdown >= 1.0,
                        "straggler slowdown must be >= 1.0, got {slowdown}"
                    );
                }
            }
        }
        FaultSchedule { specs }
    }

    /// Whether the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The validated specs, in construction order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Largest group index any spec references, if any spec does.
    pub fn max_group(&self) -> Option<usize> {
        self.specs
            .iter()
            .filter_map(|s| match *s {
                FaultSpec::GroupCrash { group, .. } | FaultSpec::Straggler { group, .. } => {
                    Some(group)
                }
                FaultSpec::HostLinkDegrade { .. } => None,
            })
            .max()
    }
}

/// Bounded deterministic redispatch policy for crash orphans.
///
/// A request's first dispatch counts as attempt one; each crash that
/// orphans it consumes one attempt, and once `max_attempts` dispatches
/// have been burned the request is reported dropped instead of retried.
/// The `n`-th redispatch is delayed by `n × backoff` from the crash
/// instant (then aligned up to the epoch grid), so retry storms after a
/// mass failure spread out deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total dispatches a request may consume (the original dispatch
    /// included) before it is dropped. At least 1.
    pub max_attempts: u32,
    /// Linear backoff unit: the `n`-th redispatch waits `n × backoff`.
    pub backoff: Time,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, backoff: Time::ZERO }
    }
}

/// Event rates for [`FaultPlan::chaos`]. All processes are Poisson with
/// exponential durations, drawn from the in-tree SplitMix64.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosRates {
    /// Mean crashes per group per simulated second (0 disables crashes).
    pub crash_rate: f64,
    /// Mean outage before a crashed group rejoins, seconds.
    pub mean_outage_s: f64,
    /// Mean fleet-wide host-link degradations per second (0 disables).
    pub degrade_rate: f64,
    /// Mean degradation-window length, seconds.
    pub mean_degrade_s: f64,
    /// Bandwidth factor applied inside a degradation window, in `(0, 1]`.
    pub degrade_factor: f64,
    /// Probability each group is a straggler for the whole run.
    pub straggler_probability: f64,
    /// Slowdown applied to straggler groups, at least `1.0`.
    pub straggler_slowdown: f64,
}

impl Default for ChaosRates {
    /// A plausible bad hour: a group crashes about every 200 s of
    /// group-time and stays down ~10 s, the host link loses 3/4 of its
    /// bandwidth about once a minute for ~5 s, and one group in sixteen
    /// runs 30% slow.
    fn default() -> Self {
        ChaosRates {
            crash_rate: 1.0 / 200.0,
            mean_outage_s: 10.0,
            degrade_rate: 1.0 / 60.0,
            mean_degrade_s: 5.0,
            degrade_factor: 0.25,
            straggler_probability: 1.0 / 16.0,
            straggler_slowdown: 1.3,
        }
    }
}

/// Namespace for fault-schedule generators.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan;

/// Stream-splitting constant (the SplitMix64 golden-gamma), so per-group
/// chaos streams decorrelate from each other and from the degrade stream.
const STREAM_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl FaultPlan {
    /// Draws a chaos schedule over `groups` groups and `[0, horizon)`.
    ///
    /// Each group gets its own SplitMix64 stream derived from `seed`, so
    /// the schedule for group `g` does not change when `groups` grows.
    /// Crash windows are sequential per group (a group cannot crash while
    /// it is already down); degrade windows are a single fleet-wide
    /// sequential process.
    ///
    /// # Panics
    ///
    /// Panics if a rate or factor is out of range (via
    /// [`FaultSchedule::new`]) or `horizon` is zero.
    pub fn chaos(seed: u64, groups: usize, horizon: Time, rates: &ChaosRates) -> FaultSchedule {
        assert!(horizon > Time::ZERO, "chaos needs a positive horizon");
        let horizon_s = horizon.as_secs();
        let mut specs = Vec::new();
        for group in 0..groups {
            let mut rng = Rng64::seed(seed ^ (group as u64 + 1).wrapping_mul(STREAM_GAMMA));
            if rates.crash_rate > 0.0 {
                let mut t = rng.exponential(rates.crash_rate);
                while t < horizon_s {
                    let outage = rng.exponential(1.0 / rates.mean_outage_s).max(1e-6);
                    specs.push(FaultSpec::GroupCrash {
                        group,
                        at: Time::from_secs_f64(t),
                        recover_after: Some(Time::from_secs_f64(outage)),
                    });
                    t += outage + rng.exponential(rates.crash_rate);
                }
            }
            if rates.straggler_probability > 0.0
                && rng.next_f64() < rates.straggler_probability
                && rates.straggler_slowdown > 1.0
            {
                specs.push(FaultSpec::Straggler { group, slowdown: rates.straggler_slowdown });
            }
        }
        if rates.degrade_rate > 0.0 {
            let mut rng = Rng64::seed(seed.wrapping_add(STREAM_GAMMA));
            let mut t = rng.exponential(rates.degrade_rate);
            while t < horizon_s {
                let duration = rng.exponential(1.0 / rates.mean_degrade_s).max(1e-6);
                specs.push(FaultSpec::HostLinkDegrade {
                    at: Time::from_secs_f64(t),
                    duration: Time::from_secs_f64(duration),
                    bandwidth_factor: rates.degrade_factor,
                });
                t += duration + rng.exponential(rates.degrade_rate);
            }
        }
        FaultSchedule::new(specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_is_deterministic_and_respects_group_streams() {
        let rates = ChaosRates::default();
        let horizon = Time::from_secs_f64(600.0);
        let a = FaultPlan::chaos(42, 8, horizon, &rates);
        let b = FaultPlan::chaos(42, 8, horizon, &rates);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, FaultPlan::chaos(43, 8, horizon, &rates), "seeds diverge");
        // Growing the fleet only appends faults for the new groups: the
        // per-group streams of the first 8 groups are untouched.
        let wider = FaultPlan::chaos(42, 16, horizon, &rates);
        let of_first_8 = |s: &FaultSchedule| -> Vec<FaultSpec> {
            s.specs()
                .iter()
                .filter(|f| match **f {
                    FaultSpec::GroupCrash { group, .. } | FaultSpec::Straggler { group, .. } => {
                        group < 8
                    }
                    FaultSpec::HostLinkDegrade { .. } => true,
                })
                .copied()
                .collect()
        };
        assert_eq!(of_first_8(&a), of_first_8(&wider));
    }

    #[test]
    fn chaos_crash_windows_do_not_overlap_per_group() {
        let rates =
            ChaosRates { crash_rate: 1.0 / 20.0, mean_outage_s: 15.0, ..Default::default() };
        let schedule = FaultPlan::chaos(7, 4, Time::from_secs_f64(1200.0), &rates);
        for group in 0..4 {
            let mut windows: Vec<(Time, Time)> = schedule
                .specs()
                .iter()
                .filter_map(|s| match *s {
                    FaultSpec::GroupCrash { group: g, at, recover_after } if g == group => {
                        Some((at, at + recover_after.expect("chaos always recovers")))
                    }
                    _ => None,
                })
                .collect();
            assert!(!windows.is_empty(), "20 s crash rate over 20 min must fire");
            windows.sort_unstable();
            for pair in windows.windows(2) {
                assert!(pair[0].1 <= pair[1].0, "group {group} crashed while down: {pair:?}");
            }
        }
    }

    #[test]
    fn schedule_validation_rejects_bad_specs() {
        let bad = [
            FaultSpec::HostLinkDegrade {
                at: Time::ZERO,
                duration: Time::from_secs_f64(1.0),
                bandwidth_factor: 1.5,
            },
            FaultSpec::Straggler { group: 0, slowdown: 0.5 },
            FaultSpec::GroupCrash { group: 0, at: Time::ZERO, recover_after: Some(Time::ZERO) },
        ];
        for spec in bad {
            let result = std::panic::catch_unwind(|| FaultSchedule::new(vec![spec]));
            assert!(result.is_err(), "{spec:?} must be rejected");
        }
        assert!(FaultSchedule::empty().is_empty());
        assert_eq!(
            FaultSchedule::new(vec![FaultSpec::Straggler { group: 5, slowdown: 2.0 }]).max_group(),
            Some(5)
        );
    }
}
