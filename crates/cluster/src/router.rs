//! Cluster-level request routing across replica groups.
//!
//! The router sits in front of the per-group continuous-batching schedulers
//! and assigns each arriving request to one group, using only the O(1)
//! per-group [`GroupLoad`] index the fleet driver maintains. Policies are
//! deliberately *stateful objects* (`&mut self`) so round-robin counters
//! and seeded PRNG draws are part of the policy, not hidden globals — two
//! runs with equal seeds make identical decisions.

use cent_serving::RequestSpec;
use cent_types::Rng64;

/// O(1)-maintained load index of one replica group, as the router sees it.
///
/// During an epoch the fleet driver bumps these optimistically at every
/// assignment (outstanding + full KV footprint) and re-reads the true
/// scheduler state at the next epoch boundary, so routing never inspects —
/// and never depends on — mid-epoch simulation progress.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupLoad {
    /// Requests routed to the group and not yet finished.
    pub outstanding: u64,
    /// KV tokens reserved on the group (plus the full footprint of
    /// requests routed this epoch).
    pub kv_tokens: u64,
}

impl GroupLoad {
    /// Total order used by load-comparing policies: outstanding requests
    /// first, KV pressure second, group index last (so ties are stable).
    fn key(&self, idx: usize) -> (u64, u64, usize) {
        (self.outstanding, self.kv_tokens, idx)
    }
}

/// Assigns arriving requests to replica groups.
///
/// `route` must return an index `< loads.len()`. Policies may keep state;
/// the fleet driver calls them from a single thread in arrival order, so
/// determinism only requires that the policy itself is deterministic.
pub trait RoutingPolicy: std::fmt::Debug + Send {
    /// Short human-readable name (used in sweep tables and benches).
    fn name(&self) -> &'static str;

    /// Picks the group for `spec` given the current load index.
    fn route(&mut self, spec: &RequestSpec, loads: &[GroupLoad]) -> usize;
}

/// Join-shortest-queue: the group with the fewest outstanding requests
/// (ties broken by KV pressure, then group index). The strongest
/// load-balancer here, at the cost of reading every group's load.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinShortestQueue;

impl RoutingPolicy for JoinShortestQueue {
    fn name(&self) -> &'static str {
        "jsq"
    }

    fn route(&mut self, _spec: &RequestSpec, loads: &[GroupLoad]) -> usize {
        loads
            .iter()
            .enumerate()
            .min_by_key(|(i, l)| l.key(*i))
            .map(|(i, _)| i)
            .expect("route over a non-empty fleet")
    }
}

/// Power-of-two-choices: sample two distinct groups with the in-tree
/// SplitMix64 PRNG and send the request to the less loaded of the pair —
/// the classic two-probe balancer that gets most of JSQ's tail benefit
/// with O(1) probes. Seeded, so a run is reproducible.
#[derive(Debug, Clone)]
pub struct PowerOfTwoChoices {
    rng: Rng64,
}

impl PowerOfTwoChoices {
    /// A router whose probe sequence is fully determined by `seed`.
    pub fn seeded(seed: u64) -> Self {
        PowerOfTwoChoices { rng: Rng64::seed(seed) }
    }
}

impl RoutingPolicy for PowerOfTwoChoices {
    fn name(&self) -> &'static str {
        "p2c"
    }

    fn route(&mut self, _spec: &RequestSpec, loads: &[GroupLoad]) -> usize {
        let n = loads.len() as u64;
        assert!(n > 0, "route over a non-empty fleet");
        if n == 1 {
            return 0;
        }
        let a = self.rng.next_below(n) as usize;
        // Second probe over the remaining n-1 groups, shifted past the
        // first so the pair is always distinct.
        let b = self.rng.next_below(n - 1) as usize;
        let b = if b >= a { b + 1 } else { b };
        if loads[b].key(b) < loads[a].key(a) {
            b
        } else {
            a
        }
    }
}

/// Round-robin: groups in cyclic order, ignoring load. The baseline the
/// load-aware policies are judged against.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoutingPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "rr"
    }

    fn route(&mut self, _spec: &RequestSpec, loads: &[GroupLoad]) -> usize {
        let g = self.next % loads.len();
        self.next = (g + 1) % loads.len();
        g
    }
}

/// Session affinity: a pure hash of [`RequestSpec::session`] onto the
/// fleet, so every request of a session lands on the same group and its
/// KV prefix could be reused there. Load-blind by construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionAffinity;

impl RoutingPolicy for SessionAffinity {
    fn name(&self) -> &'static str {
        "session"
    }

    fn route(&mut self, spec: &RequestSpec, loads: &[GroupLoad]) -> usize {
        // One SplitMix64 scramble of the session key is a high-quality
        // stateless hash; `next_below` maps it onto the fleet without
        // modulo bias.
        Rng64::seed(spec.session.0).next_below(loads.len() as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cent_serving::{PriorityClass, RequestId, SessionId};
    use cent_types::Time;

    fn spec(id: u64, session: u64) -> RequestSpec {
        RequestSpec {
            id: RequestId(id),
            arrival: Time::from_us(id),
            prompt: 8,
            decode: 8,
            class: PriorityClass::default(),
            session: SessionId(session),
        }
    }

    fn loads(outstanding: &[u64]) -> Vec<GroupLoad> {
        outstanding.iter().map(|&o| GroupLoad { outstanding: o, kv_tokens: 0 }).collect()
    }

    #[test]
    fn jsq_picks_least_loaded_with_stable_ties() {
        let mut jsq = JoinShortestQueue;
        assert_eq!(jsq.route(&spec(0, 0), &loads(&[3, 1, 2])), 1);
        assert_eq!(jsq.route(&spec(1, 0), &loads(&[2, 2, 2])), 0, "ties break on index");
        let mut l = loads(&[1, 1]);
        l[0].kv_tokens = 500;
        assert_eq!(jsq.route(&spec(2, 0), &l), 1, "ties break on KV pressure");
    }

    #[test]
    fn round_robin_cycles_through_groups() {
        let mut rr = RoundRobin::default();
        let l = loads(&[0, 0, 0]);
        let picks: Vec<usize> = (0..7).map(|i| rr.route(&spec(i, 0), &l)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn p2c_is_deterministic_per_seed_and_never_repeats_a_probe() {
        let l = loads(&[5, 5, 5, 5, 5, 5, 5, 5]);
        let run = |seed: u64| -> Vec<usize> {
            let mut p = PowerOfTwoChoices::seeded(seed);
            (0..200).map(|i| p.route(&spec(i, 0), &l)).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge");
        // The pair is distinct, so on a two-group fleet with one group
        // heavily loaded every pick lands on the light one.
        let skew = loads(&[1_000, 0]);
        let mut p = PowerOfTwoChoices::seeded(3);
        for i in 0..50 {
            assert_eq!(p.route(&spec(i, 0), &skew), 1);
        }
    }

    #[test]
    fn session_affinity_is_pure_and_load_blind() {
        let mut s = SessionAffinity;
        let light = loads(&[0, 0, 0, 0]);
        let heavy = loads(&[9, 9, 9, 9]);
        for session in 0..64 {
            let g = s.route(&spec(0, session), &light);
            assert_eq!(g, s.route(&spec(1, session), &heavy), "load must not move a session");
            assert!(g < 4);
        }
        // Different sessions spread (not all on one group).
        let picks: Vec<usize> = (0..64).map(|k| s.route(&spec(0, k), &light)).collect();
        assert!(picks.iter().any(|&g| g != picks[0]));
    }
}
