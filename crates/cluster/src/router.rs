//! Cluster-level request routing across replica groups.
//!
//! The router sits in front of the per-group continuous-batching schedulers
//! and assigns each arriving request to one group, using only the O(1)
//! per-group [`GroupLoad`] index the fleet driver maintains. Policies are
//! deliberately *stateful objects* (`&mut self`) so round-robin counters
//! and seeded PRNG draws are part of the policy, not hidden globals — two
//! runs with equal seeds make identical decisions.

use cent_serving::RequestSpec;
use cent_types::Rng64;

/// O(1)-maintained load index of one replica group, as the router sees it.
///
/// During an epoch the fleet driver bumps these optimistically at every
/// assignment (outstanding + full KV footprint) and re-reads the true
/// scheduler state at the next epoch boundary, so routing never inspects —
/// and never depends on — mid-epoch simulation progress.
///
/// `group` is the group's fleet-wide identity. The slice handed to
/// [`RoutingPolicy::route`] may cover only the *healthy subset* of the
/// fleet (dead groups leave the index while they are down), so a load's
/// position in the slice and its group id are distinct things: policies
/// hash and tie-break on `group`, never on slice position.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupLoad {
    /// Fleet-wide identity of the group this load describes.
    pub group: usize,
    /// Requests routed to the group and not yet finished.
    pub outstanding: u64,
    /// KV tokens reserved on the group (plus the full footprint of
    /// requests routed this epoch).
    pub kv_tokens: u64,
}

impl GroupLoad {
    /// Total order used by load-comparing policies: outstanding requests
    /// first, KV pressure second, group identity last (so ties are stable
    /// for any healthy subset the slice covers).
    fn key(&self) -> (u64, u64, usize) {
        (self.outstanding, self.kv_tokens, self.group)
    }
}

/// Assigns arriving requests to replica groups.
///
/// `route` returns a *position* into `loads` (`< loads.len()`); the caller
/// maps it to a group id through [`GroupLoad::group`]. The slice may cover
/// only the healthy subset of the fleet, so policies must key any hashing
/// or tie-breaking on `GroupLoad::group`, not on slice position. Policies
/// may keep state; the fleet driver calls them from a single thread in
/// arrival order, so determinism only requires that the policy itself is
/// deterministic.
pub trait RoutingPolicy: std::fmt::Debug + Send {
    /// Short human-readable name (used in sweep tables and benches).
    fn name(&self) -> &'static str;

    /// Picks the position in `loads` for `spec` given the current load
    /// index.
    fn route(&mut self, spec: &RequestSpec, loads: &[GroupLoad]) -> usize;
}

/// Join-shortest-queue: the group with the fewest outstanding requests
/// (ties broken by KV pressure, then group index). The strongest
/// load-balancer here, at the cost of reading every group's load.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinShortestQueue;

impl RoutingPolicy for JoinShortestQueue {
    fn name(&self) -> &'static str {
        "jsq"
    }

    fn route(&mut self, _spec: &RequestSpec, loads: &[GroupLoad]) -> usize {
        loads
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.key())
            .map(|(i, _)| i)
            .expect("route over a non-empty fleet")
    }
}

/// Power-of-two-choices: sample two distinct groups with the in-tree
/// SplitMix64 PRNG and send the request to the less loaded of the pair —
/// the classic two-probe balancer that gets most of JSQ's tail benefit
/// with O(1) probes. Seeded, so a run is reproducible.
#[derive(Debug, Clone)]
pub struct PowerOfTwoChoices {
    rng: Rng64,
}

impl PowerOfTwoChoices {
    /// A router whose probe sequence is fully determined by `seed`.
    pub fn seeded(seed: u64) -> Self {
        PowerOfTwoChoices { rng: Rng64::seed(seed) }
    }
}

impl RoutingPolicy for PowerOfTwoChoices {
    fn name(&self) -> &'static str {
        "p2c"
    }

    fn route(&mut self, _spec: &RequestSpec, loads: &[GroupLoad]) -> usize {
        let n = loads.len() as u64;
        assert!(n > 0, "route over a non-empty fleet");
        if n == 1 {
            return 0;
        }
        let a = self.rng.next_below(n) as usize;
        // Second probe over the remaining n-1 groups, shifted past the
        // first so the pair is always distinct.
        let b = self.rng.next_below(n - 1) as usize;
        let b = if b >= a { b + 1 } else { b };
        if loads[b].key() < loads[a].key() {
            b
        } else {
            a
        }
    }
}

/// Round-robin: groups in cyclic order, ignoring load. The baseline the
/// load-aware policies are judged against.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoutingPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "rr"
    }

    fn route(&mut self, _spec: &RequestSpec, loads: &[GroupLoad]) -> usize {
        let g = self.next % loads.len();
        self.next = (g + 1) % loads.len();
        g
    }
}

/// Session affinity: a pure hash of [`RequestSpec::session`] onto the
/// fleet, so every request of a session lands on the same group and its
/// KV prefix could be reused there. Load-blind by construction.
///
/// Uses rendezvous (highest-random-weight) hashing over
/// [`GroupLoad::group`]: each live group is scored with a stateless
/// SplitMix64 hash of `(session, group)` and the maximum wins. A session
/// therefore keeps its home group under *any* healthy subset that still
/// contains it, and when the home group dies the session re-hashes
/// deterministically onto a survivor — hashing the session straight onto
/// `loads.len()` would instead reshuffle every session whenever the
/// subset shrinks.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionAffinity;

/// Stateless rendezvous weight of `(session, group)`: one SplitMix64
/// scramble of the two keys mixed with the generator's own increment, so
/// nearby sessions and groups decorrelate fully.
fn rendezvous_weight(session: u64, group: usize) -> u64 {
    Rng64::seed(session ^ (group as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

impl RoutingPolicy for SessionAffinity {
    fn name(&self) -> &'static str {
        "session"
    }

    fn route(&mut self, spec: &RequestSpec, loads: &[GroupLoad]) -> usize {
        assert!(!loads.is_empty(), "route over a non-empty fleet");
        let mut best = 0usize;
        let mut best_w = rendezvous_weight(spec.session.0, loads[0].group);
        for (pos, l) in loads.iter().enumerate().skip(1) {
            let w = rendezvous_weight(spec.session.0, l.group);
            // Strict `>` keeps ties on the earlier slice position, which
            // is the smaller group id (the driver lists groups in order).
            if w > best_w {
                best = pos;
                best_w = w;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cent_serving::{PriorityClass, RequestId, SessionId};
    use cent_types::Time;

    fn spec(id: u64, session: u64) -> RequestSpec {
        RequestSpec {
            id: RequestId(id),
            arrival: Time::from_us(id),
            prompt: 8,
            decode: 8,
            class: PriorityClass::default(),
            session: SessionId(session),
        }
    }

    fn loads(outstanding: &[u64]) -> Vec<GroupLoad> {
        outstanding
            .iter()
            .enumerate()
            .map(|(g, &o)| GroupLoad { group: g, outstanding: o, kv_tokens: 0 })
            .collect()
    }

    #[test]
    fn jsq_picks_least_loaded_with_stable_ties() {
        let mut jsq = JoinShortestQueue;
        assert_eq!(jsq.route(&spec(0, 0), &loads(&[3, 1, 2])), 1);
        assert_eq!(jsq.route(&spec(1, 0), &loads(&[2, 2, 2])), 0, "ties break on index");
        let mut l = loads(&[1, 1]);
        l[0].kv_tokens = 500;
        assert_eq!(jsq.route(&spec(2, 0), &l), 1, "ties break on KV pressure");
    }

    #[test]
    fn round_robin_cycles_through_groups() {
        let mut rr = RoundRobin::default();
        let l = loads(&[0, 0, 0]);
        let picks: Vec<usize> = (0..7).map(|i| rr.route(&spec(i, 0), &l)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn p2c_is_deterministic_per_seed_and_never_repeats_a_probe() {
        let l = loads(&[5, 5, 5, 5, 5, 5, 5, 5]);
        let run = |seed: u64| -> Vec<usize> {
            let mut p = PowerOfTwoChoices::seeded(seed);
            (0..200).map(|i| p.route(&spec(i, 0), &l)).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge");
        // The pair is distinct, so on a two-group fleet with one group
        // heavily loaded every pick lands on the light one.
        let skew = loads(&[1_000, 0]);
        let mut p = PowerOfTwoChoices::seeded(3);
        for i in 0..50 {
            assert_eq!(p.route(&spec(i, 0), &skew), 1);
        }
    }

    #[test]
    fn session_affinity_is_pure_and_load_blind() {
        let mut s = SessionAffinity;
        let light = loads(&[0, 0, 0, 0]);
        let heavy = loads(&[9, 9, 9, 9]);
        for session in 0..64 {
            let g = s.route(&spec(0, session), &light);
            assert_eq!(g, s.route(&spec(1, session), &heavy), "load must not move a session");
            assert!(g < 4);
        }
        // Different sessions spread (not all on one group).
        let picks: Vec<usize> = (0..64).map(|k| s.route(&spec(0, k), &light)).collect();
        assert!(picks.iter().any(|&g| g != picks[0]));
    }

    #[test]
    fn session_affinity_survives_subset_restriction() {
        let mut s = SessionAffinity;
        let full = loads(&[0; 8]);
        for session in 0..256 {
            let home = full[s.route(&spec(0, session), &full)].group;
            // Removing any *other* group never moves a pinned session.
            for dead in (0..8).filter(|&d| d != home) {
                let subset: Vec<GroupLoad> =
                    full.iter().copied().filter(|l| l.group != dead).collect();
                let g = subset[s.route(&spec(1, session), &subset)].group;
                assert_eq!(g, home, "session {session} moved when group {dead} died");
            }
            // Removing the home group re-hashes onto a deterministic
            // survivor.
            let survivors: Vec<GroupLoad> =
                full.iter().copied().filter(|l| l.group != home).collect();
            let a = survivors[s.route(&spec(2, session), &survivors)].group;
            let b = survivors[s.route(&spec(3, session), &survivors)].group;
            assert_eq!(a, b);
            assert_ne!(a, home);
        }
    }

    #[test]
    fn session_affinity_orphans_spread_over_survivors() {
        // Kill one group and check its orphaned sessions do not all pile
        // onto a single survivor (the modulus-over-subset failure mode).
        let mut s = SessionAffinity;
        let full = loads(&[0; 8]);
        let dead = 3usize;
        let survivors: Vec<GroupLoad> = full.iter().copied().filter(|l| l.group != dead).collect();
        let orphans: Vec<u64> =
            (0..512).filter(|&k| full[s.route(&spec(0, k), &full)].group == dead).collect();
        assert!(orphans.len() > 16, "hash should spread sessions over 8 groups");
        let mut landed: Vec<usize> =
            orphans.iter().map(|&k| survivors[s.route(&spec(1, k), &survivors)].group).collect();
        landed.sort_unstable();
        landed.dedup();
        assert!(landed.len() > 3, "orphans landed on only {landed:?}");
    }
}
