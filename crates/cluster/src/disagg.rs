//! Disaggregated prefill/decode fleets over a shared CXL KV pool.
//!
//! The base driver ([`simulate_fleet`](crate::simulate_fleet)) treats
//! every group as a colocated full-service deployment. This module breaks
//! that "identical groups" assumption: groups take a [`GroupRole`] —
//! *prefill-specialized* or *decode-specialized* — and a finished prompt's
//! KV pages travel between them through the bounded, switch-attached
//! [`SharedKvPool`] of `cent-cxl`, at a price set by a
//! [`KvSwapCost`] carrying the extra switch-hop term
//! ([`KvSwapCost::with_switch_hops`]).
//!
//! # Request lifecycle
//!
//! 1. The router dispatches every **arrival** onto a *prefill* group
//!    (load-snapshot routing, exactly as in the base driver, restricted to
//!    the prefill subset). The prefill group runs the prompt — chunked
//!    ([`ServeOptions::with_prefill_chunk`]) so long prompts interleave —
//!    and emits the request's *first token*, so TTFT is owned end to end
//!    by the prefill tier.
//! 2. On completion the driver **publishes** the context (prompt + first
//!    token) into the shared pool over the group's egress link: capacity
//!    is reserved up front, the transfer serializes per link, and a
//!    publish that does not fit is *deferred* and retried once claims
//!    free capacity (counted in [`DisaggLog::deferred`]). One-token
//!    requests never touch the pool ([`DisaggLog::singles`]).
//! 3. When the publish transfer completes, a *decode* group **claims** the
//!    entry at the next epoch stop: the router picks the decode home from
//!    a load snapshot, but a *drained* decode group (zero outstanding
//!    work) **steals** the claim whenever the router's pick still has work
//!    queued ([`DisaggLog::steals`]) — pool entries are fabric-visible, so
//!    an idle group can take them without involving the publisher. The
//!    claiming group pays the same transfer again (pool → device) through
//!    [`GroupSim::push_handoff`], then streams the remaining tokens.
//!
//! All cross-group logic — harvest, publish, claim, steal, routing — runs
//! single-threaded at epoch stops, so the result is bit-identical across
//! worker-thread counts just like the base driver. An all-
//! [`Colocated`](GroupRole::Colocated) configuration delegates to
//! [`simulate_fleet_instrumented`](crate::simulate_fleet_instrumented) verbatim and reproduces its
//! [`FleetReport`] exactly (enforced by `tests/cluster_props.rs`).
//!
//! # Faults and recovery
//!
//! A [`FaultSchedule`](crate::FaultSchedule) on `fleet.faults` injects the
//! base driver's crash/degrade/straggler events into the split fleet, plus
//! [`PoolLinkDegrade`](FaultSpec::PoolLinkDegrade) windows that rescale
//! the switch-hop handoff cost for publishes and rescues issued inside the
//! window (the healthy cost is restored *exactly* when the window lifts).
//! Tier crashes differ by role:
//!
//! * A **prefill** crash orphans incomplete prompts; completed publishes
//!   are durable — the pool entry, its in-flight transfer and its visible
//!   instant all survive the publisher, so downstream claims proceed
//!   untouched. Orphans retry through the prefill tier under the
//!   [`RetryPolicy`](crate::RetryPolicy).
//! * A **decode** crash orphans claimed contexts. With a *durable pool*
//!   (the default), every claim leaves a capacity-free *parked copy*
//!   behind ([`SharedKvPool::park`]); an orphan whose copy survives is
//!   **rescued** — redispatched onto an alive decode group at switch-hop
//!   cost instead of re-prefilling ([`FaultLog::pool_rescued`]). A copy
//!   that was evicted (or a [`DisaggConfig::with_volatile_pool`] fleet)
//!   falls back to a bounded re-prefill through the prefill tier
//!   ([`FaultLog::pool_lost`]).
//!
//! [`RecoveryMode`](crate::RecoveryMode) (warm retention, per-tier standby
//! reserves with role-matched promotion) and the saturation
//! [`AdmissionPolicy`](crate::AdmissionPolicy) — fed by both tiers' loads
//! *and* pool occupancy — compose exactly as in the base driver, and the
//! extended conservation invariant
//! `completed + rejected + dropped + shed = offered` holds. A zero-fault
//! schedule with an inactive admission policy reproduces the healthy
//! split driver bit for bit (the pool never parks copies on that path).

use std::collections::{BTreeMap, BTreeSet};

use cent_cost::KvSwapCost;
use cent_cxl::SharedKvPool;
use cent_serving::{
    GroupOutcome, GroupSim, PriorityClass, RequestRecord, RequestSpec, ServingSystem,
};
use cent_types::Time;

use crate::admission::fleet_saturation;
use crate::fault::{FaultSpec, RecoveryMode};
use crate::fleet::{
    advance_groups, compile_faults, epoch_ceil, finish_groups, CompiledKind, FaultLog, FleetOptions,
};
use crate::report::FleetReport;
use crate::router::{GroupLoad, RoutingPolicy};

/// What one replica group does in a (possibly) disaggregated fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupRole {
    /// Full-service: prefill and decode on the same group (the base
    /// driver's only mode).
    Colocated,
    /// Prompt processing only: receives arrivals, emits the first token,
    /// publishes the KV context into the shared pool.
    Prefill,
    /// Token streaming only: claims published contexts from the pool and
    /// generates the remaining tokens.
    Decode,
}

/// Configuration of the disaggregation layer: per-group roles, the shared
/// pool bound, and the cost of moving a KV context through the switch.
#[derive(Debug, Clone)]
pub struct DisaggConfig {
    /// Role of each group, in group order (length must equal
    /// `FleetOptions::groups`). Either all `Colocated` or a mix of
    /// `Prefill`/`Decode` with at least one of each.
    pub roles: Vec<GroupRole>,
    /// Capacity bound of the shared switch-attached pool, in KV tokens.
    pub pool_tokens: u64,
    /// Cost model of one context transfer (prefill group → pool, and pool
    /// → decode group — each direction pays it once). Build it with
    /// [`KvSwapCost::with_switch_hops`] to include the extra switch
    /// traversals a pool-resident page takes versus a direct host link.
    pub handoff_cost: KvSwapCost,
    /// Prefill chunk size applied to prefill-role groups (`None` = serial
    /// whole-prompt prefill). See `ServeOptions::with_prefill_chunk`.
    pub prefill_chunk: Option<u64>,
    /// Whether claims leave a capacity-free parked copy in the pool that a
    /// decode-tier crash can rescue (see the module docs). Only read on
    /// the faulted path; the default is `true`.
    pub durable_pool: bool,
}

impl DisaggConfig {
    /// The degenerate colocated configuration: `groups` full-service
    /// groups, no pool. [`simulate_fleet_disagg`] with this config
    /// reproduces [`simulate_fleet_instrumented`](crate::simulate_fleet_instrumented) bit for bit.
    pub fn colocated(groups: usize) -> Self {
        assert!(groups > 0, "a fleet needs at least one group");
        DisaggConfig {
            roles: vec![GroupRole::Colocated; groups],
            pool_tokens: 0,
            handoff_cost: KvSwapCost::cent(cent_types::ByteSize::bytes(1)),
            prefill_chunk: None,
            durable_pool: true,
        }
    }

    /// A split fleet: the first `prefill` groups are prefill-specialized,
    /// the next `decode` groups decode-specialized, handing off through a
    /// `pool_tokens`-bounded shared pool at `handoff_cost` per direction.
    ///
    /// # Panics
    ///
    /// Panics if either tier is empty or the pool has no capacity.
    pub fn split(
        prefill: usize,
        decode: usize,
        pool_tokens: u64,
        handoff_cost: KvSwapCost,
    ) -> Self {
        assert!(prefill > 0, "a split fleet needs a prefill tier");
        assert!(decode > 0, "a split fleet needs a decode tier");
        assert!(pool_tokens > 0, "a split fleet needs pool capacity");
        let mut roles = vec![GroupRole::Prefill; prefill];
        roles.resize(prefill + decode, GroupRole::Decode);
        DisaggConfig { roles, pool_tokens, handoff_cost, prefill_chunk: None, durable_pool: true }
    }

    /// Sets the prefill chunk size for prefill-role groups.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn with_prefill_chunk(mut self, chunk: u64) -> Self {
        assert!(chunk > 0, "prefill chunk must be positive");
        self.prefill_chunk = Some(chunk);
        self
    }

    /// Disables parked copies: a decode-tier crash always loses the pool
    /// copy and falls back to re-prefill (the ablation baseline for the
    /// durability study).
    pub fn with_volatile_pool(mut self) -> Self {
        self.durable_pool = false;
        self
    }

    /// True when every group is [`Colocated`](GroupRole::Colocated).
    pub fn is_colocated(&self) -> bool {
        self.roles.iter().all(|r| *r == GroupRole::Colocated)
    }
}

/// What the disaggregation machinery did during one run — the raw
/// material for the report's `disagg` section, exposed for property
/// tests. All counters are zero for a colocated configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DisaggLog {
    /// Contexts handed prefill → pool → decode (claims completed).
    pub handoffs: u64,
    /// Requests that finished entirely on their prefill group because
    /// they decode a single token — nothing left to hand off.
    pub singles: u64,
    /// Claims diverted from the router's pick to a drained decode group.
    pub steals: u64,
    /// Publish attempts refused for pool capacity and deferred to a later
    /// epoch stop (one per refused attempt).
    pub deferred: u64,
    /// Pool capacity bound, KV tokens.
    pub pool_capacity_tokens: u64,
    /// Largest pool reservation level observed, KV tokens.
    pub pool_peak_tokens: u64,
    /// Accumulated pool occupancy in token-seconds (entries charged over
    /// `[visible, claim)`).
    pub pool_occupancy_token_s: f64,
}

/// Everything one disaggregated fleet run produced.
#[derive(Debug, Clone)]
pub struct DisaggOutcome {
    /// The merged fleet report; `report.disagg` is `Some` iff the
    /// configuration was actually split.
    pub report: FleetReport,
    /// Per-group outcomes, indexed by group. Prefill-role groups hold the
    /// prompt phase of each request (one decode token); decode-role
    /// groups hold the remainder.
    pub groups: Vec<GroupOutcome>,
    /// Group index each trace entry's *prompt* was *first* dispatched to,
    /// aligned with the trace (`usize::MAX` for requests never dispatched:
    /// shed by admission, or dropped with the prefill tier down for good).
    pub routed: Vec<usize>,
    /// What the disaggregation machinery did.
    pub log: DisaggLog,
    /// What the fault machinery did (default for a fault-free schedule).
    pub faults: FaultLog,
}

/// Simulates `trace` over a role-split fleet (see the module docs). With
/// an all-colocated `disagg` config this is exactly
/// [`simulate_fleet_instrumented`](crate::simulate_fleet_instrumented); with a prefill/decode split, prompts
/// are routed to the prefill tier, contexts hand off through the shared
/// pool, and the report grows handoff/pool/steal rows
/// ([`FleetReport::disagg`]). A non-empty `fleet.faults` schedule (or an
/// active admission policy) additionally produces the degraded-mode
/// section with pool-rescue and shed accounting.
///
/// # Panics
///
/// Panics if `disagg.roles` does not cover `fleet.groups` exactly, mixes
/// `Colocated` with specialized roles, lacks a prefill or decode group in
/// split mode, if a standby reserve does not leave both tiers a serving
/// group, or if a single context exceeds the pool bound (it could never
/// publish).
pub fn simulate_fleet_disagg(
    system: &ServingSystem,
    trace: &[RequestSpec],
    offered_qps: f64,
    router: &mut dyn RoutingPolicy,
    fleet: &FleetOptions,
    disagg: &DisaggConfig,
) -> DisaggOutcome {
    assert_eq!(disagg.roles.len(), fleet.groups, "roles must cover every group of the fleet");
    if disagg.is_colocated() {
        let base =
            crate::fleet::simulate_fleet_instrumented(system, trace, offered_qps, router, fleet);
        return DisaggOutcome {
            report: base.report,
            groups: base.groups,
            routed: base.routed,
            log: DisaggLog::default(),
            faults: base.faults,
        };
    }
    assert!(
        disagg.roles.iter().all(|r| *r != GroupRole::Colocated),
        "a split fleet cannot mix colocated groups with specialized ones"
    );
    let prefill_ids: Vec<usize> =
        (0..fleet.groups).filter(|&g| disagg.roles[g] == GroupRole::Prefill).collect();
    let decode_ids: Vec<usize> =
        (0..fleet.groups).filter(|&g| disagg.roles[g] == GroupRole::Decode).collect();
    assert!(!prefill_ids.is_empty(), "a split fleet needs a prefill tier");
    assert!(!decode_ids.is_empty(), "a split fleet needs a decode tier");
    if let Some(g) = fleet.faults.max_group() {
        assert!(
            g < fleet.groups,
            "fault schedule names group {g} of a {}-group fleet",
            fleet.groups
        );
    }
    assert!(fleet.retry.max_attempts > 0, "a request needs at least one attempt");
    fleet.recovery.validate();
    let epoch_ps = fleet.epoch.as_ps().max(1);

    // Stragglers are construction-time, exactly as in the base driver.
    let mut slowdowns = vec![1.0f64; fleet.groups];
    for spec in fleet.faults.specs() {
        if let FaultSpec::Straggler { group, slowdown } = *spec {
            slowdowns[group] = slowdowns[group].max(slowdown);
        }
    }
    let mut sims: Vec<GroupSim> = disagg
        .roles
        .iter()
        .zip(slowdowns.iter())
        .map(|(role, &s)| {
            let serve = match (role, disagg.prefill_chunk) {
                (GroupRole::Prefill, Some(chunk)) => fleet.serve.clone().with_prefill_chunk(chunk),
                _ => fleet.serve.clone(),
            };
            if s > 1.0 {
                GroupSim::new(&system.slowed(s), serve)
            } else {
                GroupSim::new(system, serve)
            }
        })
        .collect();

    let mut pool = SharedKvPool::new(disagg.pool_tokens, prefill_ids.len());
    // Egress link of each prefill group: its rank within the prefill tier.
    let link_of: BTreeMap<usize, usize> =
        prefill_ids.iter().enumerate().map(|(link, &g)| (g, link)).collect();
    let mut log = DisaggLog { pool_capacity_tokens: disagg.pool_tokens, ..DisaggLog::default() };

    // Fault machinery, mirroring the base driver (shared compiled events).
    let events = compile_faults(&fleet.faults, epoch_ps);
    let faulty = !fleet.faults.is_empty();
    let shedding = fleet.admission.is_active();
    let track = faulty || shedding;
    // Parked copies engage only on the faulted durable path — the healthy
    // driver never parks, keeping the zero-fault run bit-identical.
    let park_copies = faulty && disagg.durable_pool;
    let mut next_event = 0usize;
    let mut alive = vec![true; fleet.groups];
    let mut down_since: Vec<Option<Time>> = vec![None; fleet.groups];
    let mut active_degrades: Vec<f64> = Vec::new();
    let mut effective_factor = 1.0f64;
    // Pool-link windows rescale the switch-hop handoff cost; the healthy
    // cost is restored exactly (no float round trip) when none is active.
    let mut pool_degrades: Vec<f64> = Vec::new();
    let mut cur_handoff: KvSwapCost = disagg.handoff_cost;
    let mut flog = FaultLog::default();
    let mut retries_by_class: BTreeMap<PriorityClass, u64> = BTreeMap::new();
    // Prefill-tier dispatch counts per raw id (arrivals + redispatches).
    let mut attempts: BTreeMap<u64, u32> = BTreeMap::new();
    // Re-prefill queue holding ORIGINAL specs, in `(ready, arrival, id)`
    // order: crash orphans waiting out their backoff, and arrivals that
    // found the prefill tier down.
    let mut pending_prefill: BTreeMap<(Time, Time, u64), RequestSpec> = BTreeMap::new();
    // Orphans of a decode crash whose parked pool copy survived, keyed
    // `(crash instant, id)`: value is the decode-phase spec and the parked
    // token count, redispatched at switch-hop cost at the next stop with a
    // live decode group.
    let mut rescue_queue: BTreeMap<(Time, u64), (RequestSpec, u64)> = BTreeMap::new();
    // Warm retention, per crashed group (see the base driver).
    let mut retained: BTreeMap<usize, Vec<RequestSpec>> = BTreeMap::new();
    let id_to_index: BTreeMap<u64, usize> = if faulty {
        trace.iter().enumerate().map(|(i, s)| (s.id.0, i)).collect()
    } else {
        BTreeMap::new()
    };
    // Standby reserves are per tier: the last `spares` groups of each role
    // idle outside the serving set, and promotion is role-matched.
    let mut in_service = vec![true; fleet.groups];
    let mut spare_pool: BTreeSet<usize> = BTreeSet::new();
    if let RecoveryMode::Standby { spares } = fleet.recovery {
        assert!(
            spares < prefill_ids.len() && spares < decode_ids.len(),
            "a standby reserve of {spares} spares needs more than {spares} groups in each tier"
        );
        for tier in [&prefill_ids, &decode_ids] {
            for &g in tier.iter().rev().take(spares) {
                in_service[g] = false;
                spare_pool.insert(g);
            }
        }
    }
    let slots_per_group = system.total_slots() as u64;
    let kv_budget_per_group = system.kv_budget_tokens() * system.replicas() as u64;

    // Original specs awaiting their decode phase, by raw id.
    let mut pending_decode: BTreeMap<u64, RequestSpec> = BTreeMap::new();
    // Publishes refused for capacity, retried in `(finished, id)` order.
    let mut backlog: BTreeMap<(Time, u64), usize> = BTreeMap::new();
    // Published entries awaiting a claim, in `(visible, id)` order; the
    // value is the pool → device transfer the claiming group will pay.
    let mut ready_claims: BTreeMap<(Time, u64), Time> = BTreeMap::new();
    let mut cursors = vec![0usize; fleet.groups];
    let mut routed = vec![usize::MAX; trace.len()];
    let mut prefill_loads: Vec<GroupLoad> = Vec::with_capacity(prefill_ids.len());
    let mut decode_loads: Vec<GroupLoad> = Vec::with_capacity(decode_ids.len());
    let mut cursor = 0usize;
    let mut now = Time::ZERO;
    loop {
        debug_assert!(
            cursor == 0
                || cursor >= trace.len()
                || trace[cursor - 1].arrival <= trace[cursor].arrival,
            "trace must be sorted by arrival"
        );
        // Candidate stops, all on the epoch grid: the epoch of the next
        // arrival, the next fault event, the first claimable pool entry or
        // pending rescue (only while a decode group serves — while the
        // whole tier is down, only a fault event can unblock them), the
        // next re-prefill ready instant (likewise gated on the prefill
        // tier), and — while the prefill tier still owes completions or
        // the backlog holds deferred publishes — the next grid instant, so
        // harvest keeps polling. A decode tier that is down with no fault
        // event left can never drain the pipeline: the driver stops
        // polling (`stalled`) and the leftovers are accounted as drops.
        let decode_up = decode_ids.iter().any(|&g| alive[g] && in_service[g]);
        let prefill_up = prefill_ids.iter().any(|&g| alive[g] && in_service[g]);
        let arrival_stop =
            trace.get(cursor).map(|s| Time::from_ps((s.arrival.as_ps() / epoch_ps) * epoch_ps));
        let fault_stop = events.get(next_event).map(|e| e.at);
        let claim_stop = if decode_up {
            let claim = ready_claims.keys().next().map(|&(vis, _)| epoch_ceil(vis, epoch_ps));
            let rescue = rescue_queue.keys().next().map(|&(at, _)| epoch_ceil(at, epoch_ps));
            [claim, rescue].into_iter().flatten().min()
        } else {
            None
        };
        let retry_stop = if prefill_up {
            pending_prefill.keys().next().map(|&(ready, _, _)| epoch_ceil(ready, epoch_ps))
        } else {
            None
        };
        let stalled = !decode_up && next_event >= events.len();
        let busy = !stalled
            && (!backlog.is_empty() || prefill_ids.iter().any(|&g| sims[g].outstanding() > 0));
        let busy_stop = busy.then(|| {
            Time::from_ps(
                (now.as_ps() / epoch_ps + 1)
                    .checked_mul(epoch_ps)
                    .expect("epoch grid instant overflows Time"),
            )
        });
        let Some(stop) = [arrival_stop, fault_stop, claim_stop, retry_stop, busy_stop]
            .into_iter()
            .flatten()
            .min()
        else {
            break;
        };
        // A publish can land with `visible` already in the past (the
        // prompt finished early in the epoch and the transfer is short),
        // which would put `claim_stop` behind the fleet. The driver never
        // rewinds: such claims are taken at the current stop instead.
        let t = stop.max(now);
        now = t;
        advance_groups(&mut sims, t, fleet.threads);

        // Fault phase: apply every event due at this stop, in compiled
        // order, from this single thread (before any cross-group logic, so
        // claims, publishes and routing at this stop see the new state).
        while next_event < events.len() && events[next_event].at == t {
            let e = events[next_event];
            next_event += 1;
            match e.kind {
                CompiledKind::Crash { recovers } => {
                    if !alive[e.group] {
                        continue;
                    }
                    alive[e.group] = false;
                    down_since[e.group] = Some(t);
                    flog.crashes += 1;
                    let was_serving = in_service[e.group];
                    spare_pool.remove(&e.group);
                    let role = disagg.roles[e.group];
                    let orphans = sims[e.group].crash(t);
                    let keep = match fleet.recovery {
                        RecoveryMode::Warm { retained_fraction } if recovers => {
                            (retained_fraction * orphans.len() as f64).floor() as usize
                        }
                        _ => 0,
                    };
                    for (i, spec) in orphans.into_iter().enumerate() {
                        flog.orphaned.push((spec.id, t));
                        if i < keep {
                            // Warm retention: the KV survived on the group
                            // and re-seeds at recovery (a decode orphan's
                            // parked copy stays parked until completion).
                            retained.entry(e.group).or_default().push(spec);
                            continue;
                        }
                        let id = spec.id.0;
                        if role == GroupRole::Decode {
                            if park_copies {
                                if let Some(tokens) = pool.rescue(id) {
                                    rescue_queue.insert((t, id), (spec, tokens));
                                    flog.pool_rescued.push((spec.id, t));
                                    continue;
                                }
                            }
                            // Copy evicted or pool volatile: the context
                            // only survives as its prompt — re-prefill.
                            flog.pool_lost += 1;
                        }
                        let orig = trace[*id_to_index.get(&id).expect("orphan is in the trace")];
                        let n = *attempts.get(&id).expect("orphan was dispatched");
                        if n >= fleet.retry.max_attempts {
                            flog.dropped.push((spec.id, spec.class));
                            pending_decode.remove(&id);
                        } else {
                            let ready = t + fleet.retry.backoff.times(u64::from(n));
                            pending_prefill.insert((ready, orig.arrival, id), orig);
                            // Re-inserted when the re-prefill dispatches.
                            pending_decode.remove(&id);
                        }
                    }
                    // Role-matched standby promotion.
                    if was_serving {
                        if let Some(&spare) = spare_pool.iter().find(|&&s| disagg.roles[s] == role)
                        {
                            spare_pool.remove(&spare);
                            in_service[spare] = true;
                            flog.promotions += 1;
                        }
                    }
                }
                CompiledKind::Recover => {
                    if alive[e.group] {
                        continue;
                    }
                    alive[e.group] = true;
                    flog.recoveries += 1;
                    let start = down_since[e.group].take().expect("recovering group was down");
                    flog.down_windows.push((e.group, start, Some(t)));
                    match fleet.recovery {
                        RecoveryMode::Standby { .. } => {
                            in_service[e.group] = false;
                            spare_pool.insert(e.group);
                            let role = disagg.roles[e.group];
                            let serving = (0..fleet.groups)
                                .any(|g| disagg.roles[g] == role && alive[g] && in_service[g]);
                            if !serving {
                                let &spare = spare_pool
                                    .iter()
                                    .find(|&&s| disagg.roles[s] == role)
                                    .expect("just inserted a spare of this role");
                                spare_pool.remove(&spare);
                                in_service[spare] = true;
                                flog.promotions += 1;
                            }
                        }
                        RecoveryMode::Warm { .. } => match retained.remove(&e.group) {
                            Some(kept) if !kept.is_empty() => {
                                flog.warm_rejoins += 1;
                                for spec in kept {
                                    sims[e.group].push_warm(spec, t);
                                }
                            }
                            _ => flog.cold_rejoins += 1,
                        },
                        RecoveryMode::Cold => flog.cold_rejoins += 1,
                    }
                }
                CompiledKind::DegradeStart { factor } => {
                    active_degrades.push(factor);
                    let eff = active_degrades.iter().copied().fold(1.0, f64::min);
                    if eff != effective_factor {
                        effective_factor = eff;
                        for sim in sims.iter_mut() {
                            sim.set_host_link_factor(eff);
                        }
                    }
                }
                CompiledKind::DegradeEnd { factor } => {
                    let pos = active_degrades
                        .iter()
                        .position(|&f| f == factor)
                        .expect("degrade window was active");
                    active_degrades.swap_remove(pos);
                    let eff = active_degrades.iter().copied().fold(1.0, f64::min);
                    if eff != effective_factor {
                        effective_factor = eff;
                        for sim in sims.iter_mut() {
                            sim.set_host_link_factor(eff);
                        }
                    }
                }
                CompiledKind::PoolDegradeStart { factor } => {
                    pool_degrades.push(factor);
                    let eff = pool_degrades.iter().copied().fold(1.0, f64::min);
                    cur_handoff = if eff == 1.0 {
                        disagg.handoff_cost
                    } else {
                        disagg.handoff_cost.with_bandwidth_factor(eff)
                    };
                }
                CompiledKind::PoolDegradeEnd { factor } => {
                    let pos = pool_degrades
                        .iter()
                        .position(|&f| f == factor)
                        .expect("pool degrade window was active");
                    pool_degrades.swap_remove(pos);
                    let eff = pool_degrades.iter().copied().fold(1.0, f64::min);
                    cur_handoff = if eff == 1.0 {
                        disagg.handoff_cost
                    } else {
                        disagg.handoff_cost.with_bandwidth_factor(eff)
                    };
                }
            }
        }

        // Tier status after this stop's fault events.
        let decode_up = decode_ids.iter().any(|&g| alive[g] && in_service[g]);
        let prefill_up = prefill_ids.iter().any(|&g| alive[g] && in_service[g]);

        // Harvest phase: newly completed prefill phases, merged across
        // the tier in `(finished, group, id)` order. A single-token
        // request is finished outright; everything else queues for
        // publish. Crash-surviving records stay in a group's tail, so
        // cursors keep working across outages.
        let mut finished: Vec<(Time, usize, u64)> = Vec::new();
        for &g in &prefill_ids {
            let new = sims[g].completions_since(cursors[g]);
            cursors[g] += new.len();
            finished.extend(new.iter().map(|r| (r.finished, g, r.spec.id.0)));
        }
        finished.sort_unstable();
        // Decode-tier completions retire their parked pool copies.
        if park_copies {
            for &g in &decode_ids {
                let new = sims[g].completions_since(cursors[g]);
                cursors[g] += new.len();
                for r in new {
                    pool.discard_parked(r.spec.id.0);
                }
            }
        }

        // Claim phase first: claims free pool capacity, so this stop's
        // deferred publishes can retry into the space. The decode load
        // snapshot is taken once over the serving subset, then bumped
        // optimistically per claim; pool rescues dispatch after the
        // regular claims, in `(crash instant, id)` order.
        if decode_up {
            decode_loads.clear();
            for &g in &decode_ids {
                if alive[g] && in_service[g] {
                    decode_loads.push(GroupLoad {
                        group: g,
                        outstanding: sims[g].outstanding(),
                        kv_tokens: sims[g].kv_reserved(),
                    });
                }
            }
            while let Some((&(visible, id), &transfer)) = ready_claims.iter().next() {
                if epoch_ceil(visible, epoch_ps) > t {
                    break;
                }
                ready_claims.remove(&(visible, id));
                pool.claim(id, t);
                let spec = pending_decode.remove(&id).expect("claimed context was pending");
                if park_copies {
                    // The claim freed the capacity; a capacity-free copy
                    // stays behind for crash rescue.
                    pool.park(id, (spec.prompt + 1) as u64, t);
                }
                // The decode phase resumes from the published context:
                // prompt + the first token, remaining tokens to stream.
                let decode_spec =
                    RequestSpec { prompt: spec.prompt + 1, decode: spec.decode - 1, ..spec };
                let mut pos = router.route(&decode_spec, &decode_loads);
                assert!(
                    pos < decode_loads.len(),
                    "router chose position {pos} of {}",
                    decode_loads.len()
                );
                // Steal-from-pool: a drained decode group takes the claim
                // whenever the router's pick still has work queued.
                if decode_loads[pos].outstanding > 0 {
                    if let Some(idle) = decode_loads.iter().position(|l| l.outstanding == 0) {
                        pos = idle;
                        log.steals += 1;
                    }
                }
                let g = decode_loads[pos].group;
                sims[g].push_handoff(decode_spec, t, visible, transfer);
                decode_loads[pos].outstanding += 1;
                decode_loads[pos].kv_tokens += decode_spec.kv_tokens();
                log.handoffs += 1;
            }
            while let Some((&(crashed, id), &(decode_spec, tokens))) = rescue_queue.iter().next() {
                rescue_queue.remove(&(crashed, id));
                // The copy streams out of the pool at the current
                // (possibly degraded) switch-hop cost; it is re-parked so
                // a repeated crash can rescue it again.
                let transfer = cur_handoff.transfer_time(tokens);
                pool.park(id, tokens, t);
                let mut pos = router.route(&decode_spec, &decode_loads);
                assert!(
                    pos < decode_loads.len(),
                    "router chose position {pos} of {}",
                    decode_loads.len()
                );
                if decode_loads[pos].outstanding > 0 {
                    if let Some(idle) = decode_loads.iter().position(|l| l.outstanding == 0) {
                        pos = idle;
                        log.steals += 1;
                    }
                }
                let g = decode_loads[pos].group;
                sims[g].push_handoff(decode_spec, t, t, transfer);
                decode_loads[pos].outstanding += 1;
                decode_loads[pos].kv_tokens += decode_spec.kv_tokens();
                log.handoffs += 1;
            }
        }

        // Publish phase: deferred publishes retry first (oldest first),
        // then this stop's fresh completions, all in deterministic order.
        // Publishes inside a pool-degrade window pay the degraded cost.
        let publish = |id: u64,
                       group: usize,
                       ready: Time,
                       pending: &BTreeMap<u64, RequestSpec>,
                       pool: &mut SharedKvPool,
                       ready_claims: &mut BTreeMap<(Time, u64), Time>,
                       cost: &KvSwapCost|
         -> bool {
            let spec = pending.get(&id).expect("publishing context is pending");
            let tokens = (spec.prompt + 1) as u64;
            assert!(
                tokens <= disagg.pool_tokens,
                "context of {tokens} tokens can never fit a {}-token pool",
                disagg.pool_tokens
            );
            let transfer = cost.transfer_time(tokens);
            let link = link_of[&group];
            match pool.try_publish(id, tokens, ready, link, transfer) {
                Some(visible) => {
                    ready_claims.insert((visible, id), transfer);
                    true
                }
                None => false,
            }
        };
        let retries: Vec<((Time, u64), usize)> = backlog.iter().map(|(&k, &g)| (k, g)).collect();
        for ((first_finished, id), group) in retries {
            if publish(id, group, t, &pending_decode, &mut pool, &mut ready_claims, &cur_handoff) {
                backlog.remove(&(first_finished, id));
            }
        }
        for (finish_t, group, id) in finished {
            let spec = pending_decode.get(&id).expect("completed prompt was pending");
            if spec.decode <= 1 {
                log.singles += 1;
                pending_decode.remove(&id);
                continue;
            }
            if !publish(
                id,
                group,
                finish_t,
                &pending_decode,
                &mut pool,
                &mut ready_claims,
                &cur_handoff,
            ) {
                log.deferred += 1;
                backlog.insert((finish_t, id), group);
            }
        }

        // Prefill-tier load snapshot over the serving subset, shared by
        // the redispatch and arrival phases (bumped continuously).
        prefill_loads.clear();
        for &g in &prefill_ids {
            if alive[g] && in_service[g] {
                prefill_loads.push(GroupLoad {
                    group: g,
                    outstanding: sims[g].outstanding(),
                    kv_tokens: sims[g].kv_reserved(),
                });
            }
        }

        // Redispatch phase: pending re-prefills whose ready instant has
        // aligned to this stop (or earlier), in `(ready, arrival, id)`
        // order, routed over the serving prefill subset with their
        // ORIGINAL specs — the whole pipeline reruns from the prompt.
        if prefill_up && !prefill_loads.is_empty() {
            while let Some((&key, _)) = pending_prefill.iter().next() {
                if epoch_ceil(key.0, epoch_ps) > t {
                    break;
                }
                let spec = pending_prefill.remove(&key).expect("peeked entry exists");
                let fits = spec.kv_tokens() <= sims[prefill_ids[0]].kv_budget_tokens();
                let prefill_spec = if fits { RequestSpec { decode: 1, ..spec } } else { spec };
                let pos = router.route(&prefill_spec, &prefill_loads);
                assert!(
                    pos < prefill_loads.len(),
                    "router chose position {pos} of {}",
                    prefill_loads.len()
                );
                let g = prefill_loads[pos].group;
                sims[g].push_redispatch(prefill_spec, t);
                prefill_loads[pos].outstanding += 1;
                prefill_loads[pos].kv_tokens += prefill_spec.kv_tokens();
                let n = attempts.entry(spec.id.0).or_insert(0);
                if *n > 0 {
                    flog.retries += 1;
                    *retries_by_class.entry(spec.class).or_insert(0) += 1;
                }
                *n += 1;
                if fits {
                    pending_decode.insert(spec.id.0, spec);
                }
                let idx = *id_to_index.get(&spec.id.0).expect("pending spec is in the trace");
                if routed[idx] == usize::MAX {
                    routed[idx] = g;
                }
            }
        }

        // Arrival phase: the epoch's arrivals route over the prefill
        // tier's boundary snapshot, bumped optimistically. The prefill
        // phase runs the prompt and emits the first token (`decode: 1`),
        // so TTFT lands on the prefill group. Admission sheds first —
        // against both tiers' loads plus pool occupancy — then a down
        // prefill tier defers what remains.
        let epoch_end =
            Time::from_ps(t.as_ps().checked_add(epoch_ps).expect("epoch end overflows Time"));
        while cursor < trace.len() && trace[cursor].arrival < epoch_end {
            let spec = trace[cursor];
            let idx = cursor;
            cursor += 1;
            assert!(spec.decode >= 1, "a request generates at least its first token");
            if shedding {
                let mut combined = prefill_loads.clone();
                for &g in &decode_ids {
                    if alive[g] && in_service[g] {
                        combined.push(GroupLoad {
                            group: g,
                            outstanding: sims[g].outstanding(),
                            kv_tokens: sims[g].kv_reserved(),
                        });
                    }
                }
                let sat = fleet_saturation(
                    &combined,
                    slots_per_group,
                    kv_budget_per_group,
                    Some((pool.used_tokens(), disagg.pool_tokens)),
                );
                if !fleet.admission.admits(spec.class, sat) {
                    flog.shed.push((spec.id, spec.class));
                    continue;
                }
            }
            if prefill_loads.is_empty() {
                pending_prefill.insert((spec.arrival, spec.arrival, spec.id.0), spec);
                continue;
            }
            // A footprint no replica budget can hold is rejected with its
            // *full* spec on the prefill group (as a colocated fleet
            // would), so its truncated prompt phase never runs.
            let fits = spec.kv_tokens() <= sims[prefill_ids[0]].kv_budget_tokens();
            let prefill_spec = if fits { RequestSpec { decode: 1, ..spec } } else { spec };
            let pos = router.route(&prefill_spec, &prefill_loads);
            assert!(
                pos < prefill_loads.len(),
                "router chose position {pos} of {}",
                prefill_loads.len()
            );
            let g = prefill_loads[pos].group;
            sims[g].push_arrival(prefill_spec);
            prefill_loads[pos].outstanding += 1;
            prefill_loads[pos].kv_tokens += prefill_spec.kv_tokens();
            routed[idx] = g;
            if faulty {
                *attempts.entry(spec.id.0).or_insert(0) += 1;
            }
            if fits {
                pending_decode.insert(spec.id.0, spec);
            }
        }
    }
    debug_assert!(faulty || ready_claims.is_empty(), "every published context was claimed");
    log.pool_peak_tokens = pool.peak_tokens();
    log.pool_occupancy_token_s = pool.occupancy_token_seconds();

    // On the faulted path the pipeline can end with work stranded behind
    // a tier that never came back: undispatchable re-prefills, rescues
    // with no decode group left, and prompts whose context was never
    // claimed. All of them are drops (a true single still completes
    // entirely on its prefill group, so it is not one).
    if faulty {
        for (_, spec) in pending_prefill {
            flog.dropped.push((spec.id, spec.class));
        }
        for (_, (spec, _)) in rescue_queue {
            flog.dropped.push((spec.id, spec.class));
        }
        for (_, spec) in pending_decode.iter() {
            if spec.decode > 1 {
                flog.dropped.push((spec.id, spec.class));
            }
        }
        debug_assert!(retained.is_empty(), "every warm retention rejoined");
    } else {
        debug_assert!(pending_decode.is_empty(), "every admitted prompt resolved its decode phase");
    }
    for (g, since) in down_since.iter().enumerate() {
        if let Some(start) = *since {
            flog.down_windows.push((g, start, None));
        }
    }
    flog.retries_by_class = retries_by_class.into_iter().collect();
    if track {
        flog.horizon = trace.last().map(|s| s.arrival).unwrap_or(Time::ZERO);
    }

    let per_group_qps = offered_qps / fleet.groups as f64;
    let outcomes = finish_groups(sims, per_group_qps, fleet.threads);
    let report = FleetReport::from_outcomes_disagg(
        offered_qps,
        &outcomes,
        &disagg.roles,
        &log,
        if track { Some(&flog) } else { None },
        fleet.serve.slo,
    );
    debug_assert!(
        report.completed + report.rejected + flog.dropped.len() + flog.shed.len() == trace.len(),
        "conservation: {} completed + {} rejected + {} dropped + {} shed != {} offered",
        report.completed,
        report.rejected,
        flog.dropped.len(),
        flog.shed.len(),
        trace.len()
    );
    DisaggOutcome { report, groups: outcomes, routed, log, faults: flog }
}

/// Joins each handed-off request's prefill- and decode-phase records, by
/// id (both slices sorted by id after `finish`).
pub(crate) fn join_phases<'a>(
    prefill: &'a [&'a RequestRecord],
    decode: &'a [&'a RequestRecord],
) -> Vec<(&'a RequestRecord, &'a RequestRecord)> {
    let mut joined = Vec::with_capacity(decode.len());
    for d in decode {
        if let Ok(pos) = prefill.binary_search_by_key(&d.spec.id.0, |r| r.spec.id.0) {
            joined.push((prefill[pos], *d));
        }
    }
    joined
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::JoinShortestQueue;
    use cent_model::ModelConfig;
    use cent_serving::{KvBudget, KvMode, SchedulerConfig, Workload};
    use cent_types::ByteSize;

    fn tiny_system() -> ServingSystem {
        ServingSystem::from_parts(
            &ModelConfig::llama2_7b(),
            SchedulerConfig {
                replicas: 1,
                slots_per_replica: 4,
                kv_budget: KvBudget::tokens(4000),
                kv: KvMode::FullReservation,
            },
            Time::from_us(1000),
            1000.0,
            4000.0,
        )
    }

    fn trace(qps: f64, seed: u64, horizon_s: f64) -> Vec<RequestSpec> {
        let w = Workload {
            lengths: cent_serving::LengthSampler::Fixed { prompt: 100, decode: 40 },
            ..Workload::chatbot(qps, seed)
        };
        w.generate(Time::from_secs_f64(horizon_s), 4096)
    }

    fn handoff_cost() -> KvSwapCost {
        KvSwapCost::cent(ByteSize::bytes(512))
            .with_switch_hops(2, &cent_cxl::FabricConfig::cent(32))
    }

    #[test]
    fn colocated_config_is_the_base_driver_bit_for_bit() {
        let sys = tiny_system();
        let trace = trace(60.0, 11, 2.0);
        let opts = FleetOptions::new(4).with_epoch(Time::from_secs_f64(0.05));
        let base = crate::fleet::simulate_fleet_instrumented(
            &sys,
            &trace,
            60.0,
            &mut JoinShortestQueue,
            &opts,
        );
        let disagg = simulate_fleet_disagg(
            &sys,
            &trace,
            60.0,
            &mut JoinShortestQueue,
            &opts,
            &DisaggConfig::colocated(4),
        );
        assert_eq!(disagg.report, base.report);
        assert_eq!(disagg.routed, base.routed);
        assert_eq!(disagg.log, DisaggLog::default());
        assert_eq!(disagg.report.disagg, None);
    }

    #[test]
    fn split_fleet_serves_everything_through_the_pool() {
        let sys = tiny_system();
        let trace = trace(80.0, 7, 2.0);
        let opts = FleetOptions::new(4).with_epoch(Time::from_secs_f64(0.05));
        let cfg = DisaggConfig::split(2, 2, 64_000, handoff_cost()).with_prefill_chunk(32);
        let out = simulate_fleet_disagg(&sys, &trace, 80.0, &mut JoinShortestQueue, &opts, &cfg);
        assert_eq!(out.report.completed, trace.len());
        assert_eq!(out.report.submitted, trace.len());
        assert_eq!(out.log.handoffs, trace.len() as u64, "every 40-token decode hands off");
        assert_eq!(out.log.singles, 0);
        assert!(out.log.pool_peak_tokens <= cfg.pool_tokens);
        assert!(out.log.pool_peak_tokens > 0);
        // Arrivals only land on the prefill tier; decode groups only see
        // handoffs.
        assert!(out.routed.iter().all(|&g| g < 2));
        assert_eq!(out.groups[0].report.submitted + out.groups[1].report.submitted, trace.len());
        assert_eq!(
            out.groups[2].report.submitted + out.groups[3].report.submitted,
            out.log.handoffs as usize
        );
        let d = out.report.disagg.as_ref().expect("split run reports disagg");
        assert_eq!(d.handoffs, out.log.handoffs);
        assert_eq!((d.prefill_groups, d.decode_groups), (2, 2));
        assert!(d.handoff_latency.mean > Time::ZERO);
        assert!(d.pool_occupancy > 0.0);
        // Decode-token conservation across the phase split.
        assert_eq!(out.report.decode_tokens, trace.len() as u64 * 40);
        assert_eq!(out.report.prefill_tokens, trace.len() as u64 * 100);
    }

    #[test]
    fn split_fleet_is_thread_invariant() {
        let sys = tiny_system();
        let trace = trace(80.0, 19, 1.5);
        let cfg = DisaggConfig::split(2, 2, 32_000, handoff_cost()).with_prefill_chunk(64);
        let run = |threads: usize| {
            let opts =
                FleetOptions::new(4).with_epoch(Time::from_secs_f64(0.05)).with_threads(threads);
            simulate_fleet_disagg(&sys, &trace, 80.0, &mut JoinShortestQueue, &opts, &cfg)
        };
        let one = run(1);
        let four = run(4);
        assert!(one.log.handoffs > 0);
        assert_eq!(one.report, four.report);
        assert_eq!(one.routed, four.routed);
        assert_eq!(one.log, four.log);
    }

    #[test]
    fn tiny_pool_defers_publishes_but_loses_nothing() {
        let sys = tiny_system();
        let trace = trace(100.0, 3, 1.5);
        let opts = FleetOptions::new(4).with_epoch(Time::from_secs_f64(0.05));
        // Room for barely more than one context at a time.
        let cfg = DisaggConfig::split(2, 2, 150, handoff_cost());
        let out = simulate_fleet_disagg(&sys, &trace, 100.0, &mut JoinShortestQueue, &opts, &cfg);
        assert_eq!(out.report.completed, trace.len());
        assert!(out.log.deferred > 0, "a 150-token pool must backpressure");
        assert!(out.log.pool_peak_tokens <= 150);
    }

    #[test]
    fn drained_decode_groups_steal_claims() {
        let sys = tiny_system();
        // Long decodes under load-blind round-robin: claims pile onto a
        // busy pick while another decode group sits drained.
        let w = Workload {
            lengths: cent_serving::LengthSampler::Fixed { prompt: 100, decode: 400 },
            ..Workload::chatbot(30.0, 29)
        };
        let trace = w.generate(Time::from_secs_f64(2.0), 4096);
        let opts = FleetOptions::new(5).with_epoch(Time::from_secs_f64(0.05));
        let mut roles = vec![GroupRole::Prefill; 2];
        roles.extend_from_slice(&[GroupRole::Decode; 3]);
        let cfg = DisaggConfig {
            roles,
            pool_tokens: 64_000,
            handoff_cost: handoff_cost(),
            prefill_chunk: None,
            durable_pool: true,
        };
        let mut rr = crate::router::RoundRobin::default();
        let out = simulate_fleet_disagg(&sys, &trace, 30.0, &mut rr, &opts, &cfg);
        assert_eq!(out.report.completed, trace.len());
        assert!(out.log.steals > 0, "round-robin decode routing must leave a drained group");
    }
}
