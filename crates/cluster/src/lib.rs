//! Fleet-level simulation for CENT deployments: a cluster router over N
//! independent [`ServingSystem`](cent_serving::ServingSystem) replica
//! groups, sharded across worker threads inside one simulation.
//!
//! The ASPLOS'25 paper evaluates one CENT deployment; serving "millions of
//! users" takes a *fleet* of them behind a request router — the setting
//! the CXL-PIM scale-out literature (Sangam's switch-fabric clusters, the
//! 1M-token CXL-PNM work) presupposes. This crate closes that gap:
//!
//! * [`RoutingPolicy`] — pluggable cluster routing over an O(1)-maintained
//!   per-group [`GroupLoad`] index: [`JoinShortestQueue`],
//!   [`PowerOfTwoChoices`] (seeded SplitMix64, deterministic),
//!   [`RoundRobin`] and [`SessionAffinity`] (pure hash of
//!   [`RequestSpec::session`](cent_serving::RequestSpec));
//! * [`simulate_fleet`] — the epoch-based driver: arrivals are routed
//!   against load snapshots taken at epoch boundaries, each group's
//!   span-fast-forward engine ([`GroupSim`](cent_serving::GroupSim)) is
//!   advanced through the epoch by one of `threads` scoped workers, and a
//!   deterministic merge folds the per-group outcomes — so the result is
//!   bit-identical across worker-thread counts;
//! * [`FleetReport`] — fleet-wide p50/p95/p99 TTFT/TBT/latency, per-class
//!   rows, per-group utilization spread and router-imbalance metrics,
//!   with a stable JSON serialisation ([`FleetReport::to_json`]);
//! * [`FaultSchedule`] / [`FaultPlan::chaos`] — deterministic fault
//!   injection: seeded group crashes (KV state lost, in-flight requests
//!   redispatched under a bounded [`RetryPolicy`]), host-link degradation
//!   windows that rescale spill costs mid-run, and per-group stragglers;
//!   degraded-mode metrics (availability, failover latency, goodput in
//!   and out of outage windows) land in [`DegradedReport`];
//! * [`simulate_fleet_disagg`] / [`GroupRole`] — disaggregated
//!   prefill/decode serving: prompts route to prefill-specialized groups
//!   (chunked prefill), finished contexts publish into the bounded
//!   switch-attached `SharedKvPool` of `cent-cxl` at a costed switch-hop
//!   price, and decode-specialized groups claim them (stealing from the
//!   pool when drained); handoff latency percentiles, pool occupancy and
//!   steal counts land in [`DisaggReport`];
//! * **survivable disaggregation** — the fault machinery composes with
//!   the split fleet: the durable pool parks copies of claimed contexts
//!   (capacity-free, evicted oldest-first) so a decode-tier crash
//!   *rescues* orphans at switch-hop cost instead of re-prefilling them,
//!   [`FaultSpec::PoolLinkDegrade`] / [`FaultPlan::chaos_disagg`] fault
//!   the pool fabric itself, [`RecoveryMode`] picks how crashed groups
//!   rejoin (cold, warm with retained contexts, or promoted standby
//!   spares), and [`AdmissionPolicy`] sheds arrivals by priority class
//!   against [`fleet_saturation`] — conservation stays exact:
//!   `completed + rejected + dropped + shed = offered`.
//!
//! Pair with [`LoadCurve`](cent_serving::LoadCurve) diurnal modulation
//! (`Workload::generate_modulated`) for multi-hour fleet traces; a
//! 1000-group, million-request day-in-the-life run completes in seconds.
//!
//! # Examples
//!
//! ```
//! use cent_cluster::{simulate_fleet, FleetOptions, JoinShortestQueue};
//! use cent_serving::{
//!     KvBudget, KvMode, SchedulerConfig, ServingSystem, Workload,
//! };
//! use cent_types::Time;
//!
//! let cfg = cent_model::ModelConfig::llama2_7b();
//! let system = ServingSystem::from_parts(
//!     &cfg,
//!     SchedulerConfig {
//!         replicas: 1,
//!         slots_per_replica: 4,
//!         kv_budget: KvBudget::tokens(4000),
//!         kv: KvMode::FullReservation,
//!     },
//!     Time::from_us(1000),
//!     1000.0,
//!     4000.0,
//! );
//! let workload = Workload {
//!     lengths: cent_serving::LengthSampler::Fixed { prompt: 16, decode: 32 },
//!     ..Workload::chatbot(60.0, 7)
//! };
//! let trace = workload.generate(Time::from_secs_f64(1.0), 4096);
//! let report = simulate_fleet(
//!     &system,
//!     &trace,
//!     60.0,
//!     &mut JoinShortestQueue,
//!     &FleetOptions::new(8).with_threads(2),
//! );
//! assert_eq!(report.completed, trace.len());
//! println!("{report}");
//! ```

#![forbid(unsafe_code)]

mod admission;
mod disagg;
mod fault;
mod fleet;
mod report;
mod router;

pub use admission::{fleet_saturation, AdmissionPolicy};
pub use disagg::{simulate_fleet_disagg, DisaggConfig, DisaggLog, DisaggOutcome, GroupRole};
pub use fault::{ChaosRates, FaultPlan, FaultSchedule, FaultSpec, RecoveryMode, RetryPolicy};
pub use fleet::{
    simulate_fleet, simulate_fleet_instrumented, FaultLog, FleetOptions, FleetOutcome,
};
pub use report::{
    DegradedReport, DisaggReport, FleetReport, GroupRow, RouterImbalance, UtilizationSpread,
};
pub use router::{
    GroupLoad, JoinShortestQueue, PowerOfTwoChoices, RoundRobin, RoutingPolicy, SessionAffinity,
};
