//! Fleet-wide SLO reporting: the deterministic merge of per-group serving
//! outcomes into one [`FleetReport`].
//!
//! The merge is pure bookkeeping over [`GroupOutcome`]s in fixed group
//! order — latency populations are concatenated and re-sorted, streamed
//! histograms are folded with the order-independent
//! [`TimeHistogram::merge`], counters are summed — so the report is a
//! function of the per-group outcomes alone, never of how many worker
//! threads produced them.

use std::collections::{BTreeMap, BTreeSet};

use cent_serving::{
    ClassReport, GroupOutcome, LatencyStats, PriorityClass, RequestId, RequestRecord,
};
use cent_types::{SortedSamples, Time, TimeHistogram};

use crate::disagg::{join_phases, DisaggLog, GroupRole};
use crate::fleet::FaultLog;

/// Spread of a per-group utilization metric across the fleet.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UtilizationSpread {
    /// Least-utilized group.
    pub min: f64,
    /// Unweighted mean across groups.
    pub mean: f64,
    /// Most-utilized group.
    pub max: f64,
}

impl UtilizationSpread {
    fn over(values: impl Iterator<Item = f64> + Clone) -> Self {
        let mut n = 0usize;
        let (mut min, mut max, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
        for v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
            n += 1;
        }
        if n == 0 {
            return UtilizationSpread::default();
        }
        UtilizationSpread { min, mean: sum / n as f64, max }
    }
}

/// How unevenly the router spread arrivals over the fleet, as each group's
/// share of the mean per-group arrival count. A perfect balance is
/// `min_share = max_share = 1.0`; a group that received double its fair
/// share shows `max_share = 2.0`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RouterImbalance {
    /// Smallest per-group submitted count over the fleet mean.
    pub min_share: f64,
    /// Largest per-group submitted count over the fleet mean.
    pub max_share: f64,
}

/// One group's row in the fleet report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GroupRow {
    /// Requests the router sent to this group.
    pub submitted: usize,
    /// Requests the group served to completion.
    pub completed: usize,
    /// Time-weighted fraction of the group's decode slots occupied.
    pub slot_utilization: f64,
    /// Time-weighted mean KV reservation as a fraction of the budget.
    pub kv_utilization: f64,
    /// Largest wait-queue depth the group observed.
    pub peak_queue_depth: usize,
}

/// Degraded-mode metrics of a fleet run under a fault schedule.
///
/// Present on [`FleetReport::degraded`] whenever the run carried a
/// non-empty [`FaultSchedule`](crate::FaultSchedule) — even one whose
/// faults never fired, in which case availability is `1.0` and every
/// counter zero — or an active [`AdmissionPolicy`](crate::AdmissionPolicy)
/// (which breaks the everything-completes invariant the same way).
/// Availability is measured in group-time over `[0, max(last completion,
/// last offered arrival)]`; goodput is completions per second of makespan,
/// with the `clean` variant excluding completions (and wall-clock) inside
/// the union of the fleet's outage windows.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedReport {
    /// Crash events applied.
    pub crashes: u64,
    /// Recovery events applied.
    pub recoveries: u64,
    /// Group-seconds up over total group-seconds, in `[0, 1]`.
    pub availability: f64,
    /// Total group-seconds of outage (clipped to the run).
    pub down_group_seconds: f64,
    /// Orphaning events (one per request per crash it was evicted by).
    pub orphaned: usize,
    /// Redispatches of crash orphans.
    pub retries: u64,
    /// Requests dropped (out of attempts, or the fleet never recovered).
    pub drops: usize,
    /// Redispatch counts per priority class, sorted by class.
    pub retries_by_class: Vec<(PriorityClass, u64)>,
    /// Drop counts per priority class, sorted by class.
    pub drops_by_class: Vec<(PriorityClass, usize)>,
    /// Recoveries that re-seeded warm-retained contexts
    /// ([`RecoveryMode::Warm`](crate::RecoveryMode)).
    pub warm_rejoins: u64,
    /// Recoveries that rejoined the serving set empty.
    pub cold_rejoins: u64,
    /// Standby spares promoted into the serving set.
    pub promotions: u64,
    /// Decode-crash orphans rescued from the shared pool's parked copies
    /// (disaggregated fleets only).
    pub pool_rescued: usize,
    /// Decode-crash orphans whose pool copy was gone — fell back to
    /// re-prefill.
    pub pool_lost: u64,
    /// Rescue latency: decode-crash instant to the rescued context's first
    /// token on its new decode group, over rescues that completed.
    pub rescue_latency: LatencyStats,
    /// Arrivals shed by the admission policy.
    pub shed: usize,
    /// Shed counts per priority class, sorted by class.
    pub shed_by_class: Vec<(PriorityClass, usize)>,
    /// Failover latency: crash instant to the victim's first token on its
    /// new group, over orphaning events whose request completed.
    pub failover_latency: LatencyStats,
    /// Completions per second over the whole makespan.
    pub goodput_qps: f64,
    /// Completions per second outside the fleet's outage windows.
    pub goodput_clean_qps: f64,
}

/// Disaggregation metrics of a role-split fleet run.
///
/// Present on [`FleetReport::disagg`] whenever the run used a
/// prefill/decode split ([`DisaggConfig`](crate::DisaggConfig) with
/// specialized roles); colocated runs leave it `None` so they compare
/// equal to base-driver reports.
#[derive(Debug, Clone, PartialEq)]
pub struct DisaggReport {
    /// Prefill-specialized groups in the fleet.
    pub prefill_groups: usize,
    /// Decode-specialized groups in the fleet.
    pub decode_groups: usize,
    /// Contexts handed prefill → pool → decode.
    pub handoffs: u64,
    /// Requests finished entirely on the prefill tier (single-token
    /// decodes — nothing left to hand off).
    pub singles: u64,
    /// Claims diverted from the router's pick to a drained decode group.
    pub steals: u64,
    /// Publish attempts refused for pool capacity and deferred.
    pub deferred_publishes: u64,
    /// Handoff latency distribution: prompt completion on the prefill
    /// group to first decode-tier token, per handed-off request (publish
    /// serialization + both transfers + decode admission).
    pub handoff_latency: LatencyStats,
    /// Shared-pool capacity bound, KV tokens.
    pub pool_capacity_tokens: u64,
    /// Largest pool reservation level observed, KV tokens — never above
    /// the capacity bound by construction.
    pub pool_peak_tokens: u64,
    /// Time-weighted mean pool occupancy as a fraction of capacity over
    /// the run's makespan (the pool's occupancy integral normalised by
    /// `capacity × makespan`).
    pub pool_occupancy: f64,
}

/// The result of one fleet simulation: fleet-wide SLO metrics plus the
/// per-group spread the router is judged by.
///
/// Deliberately carries no record of the worker-thread count: two runs
/// that differ only in `threads` produce `==` reports (enforced by
/// `tests/cluster_props.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Replica groups behind the router.
    pub groups: usize,
    /// Mean offered load across the fleet, queries/second.
    pub offered_qps: f64,
    /// Requests that arrived within the horizon, fleet-wide.
    pub submitted: usize,
    /// Requests served to completion, fleet-wide.
    pub completed: usize,
    /// Requests rejected up front (footprint exceeds a replica's budget).
    pub rejected: usize,
    /// First arrival to last completion anywhere in the fleet.
    pub makespan: Time,
    /// Total generated (decode) tokens.
    pub decode_tokens: u64,
    /// Total prompt (prefill) tokens processed.
    pub prefill_tokens: u64,
    /// Achieved fleet decode throughput over the makespan, tokens/second.
    pub tokens_per_s: f64,
    /// Fleet-wide time-to-first-token distribution.
    pub ttft: LatencyStats,
    /// Fleet-wide end-to-end query latency distribution.
    pub query_latency: LatencyStats,
    /// Fleet-wide queue-wait distribution.
    pub queue_wait: LatencyStats,
    /// Fleet-wide time-between-tokens distribution (merged histograms).
    pub tbt: LatencyStats,
    /// Per-class fleet metrics, sorted by class.
    pub classes: Vec<ClassReport>,
    /// Recompute evictions across the fleet.
    pub preemptions: u64,
    /// Swap evictions across the fleet.
    pub swaps: u64,
    /// Largest wait-queue depth observed on any group.
    pub peak_queue_depth: usize,
    /// Spread of per-group slot utilization.
    pub slot_utilization: UtilizationSpread,
    /// Spread of per-group time-weighted KV utilization.
    pub kv_utilization: UtilizationSpread,
    /// Router arrival-count imbalance.
    pub imbalance: RouterImbalance,
    /// One row per group, in group order.
    pub per_group: Vec<GroupRow>,
    /// Degraded-mode section; `None` iff the run carried no fault
    /// schedule, so fault-free reports compare equal to pre-fault ones.
    pub degraded: Option<DegradedReport>,
    /// Disaggregation section; `None` iff the run used no prefill/decode
    /// split, so colocated reports compare equal to base-driver ones.
    pub disagg: Option<DisaggReport>,
}

impl FleetReport {
    /// Folds per-group outcomes (in group order) into the fleet view.
    pub fn from_outcomes(offered_qps: f64, outcomes: &[GroupOutcome]) -> Self {
        let submitted: usize = outcomes.iter().map(|o| o.report.submitted).sum();
        let completed: usize = outcomes.iter().map(|o| o.report.completed).sum();
        let rejected: usize = outcomes.iter().map(|o| o.report.rejected).sum();
        let records = || outcomes.iter().flat_map(|o| o.records.iter());
        let first_arrival = records().map(|r| r.spec.arrival).min().unwrap_or(Time::ZERO);
        let last_finish = records().map(|r| r.finished).max().unwrap_or(Time::ZERO);
        let makespan = last_finish.saturating_sub(first_arrival);
        let decode_tokens: u64 = records().map(|r| r.spec.decode as u64).sum();
        let prefill_tokens: u64 = records().map(|r| r.spec.prompt as u64).sum();
        let tokens_per_s =
            if makespan > Time::ZERO { decode_tokens as f64 / makespan.as_secs() } else { 0.0 };
        let ttfts = SortedSamples::new(records().map(|r| r.ttft()).collect());
        let latencies = SortedSamples::new(records().map(|r| r.query_latency()).collect());
        let waits = SortedSamples::new(records().map(|r| r.queue_wait()).collect());
        let mut tbt = TimeHistogram::new();
        for o in outcomes {
            tbt.merge(&o.tbt);
        }

        // Per-class fleet rows: counters and histograms merge per class
        // key; the latency populations come from the concatenated records.
        let mut class_keys: Vec<PriorityClass> =
            outcomes.iter().flat_map(|o| o.submitted_by_class.iter().map(|&(c, _)| c)).collect();
        class_keys.sort_unstable();
        class_keys.dedup();
        let classes = class_keys
            .iter()
            .map(|&class| {
                let submitted = outcomes
                    .iter()
                    .flat_map(|o| &o.submitted_by_class)
                    .filter(|(c, _)| *c == class)
                    .map(|(_, n)| n)
                    .sum();
                let of_class = || records().filter(move |r| r.spec.class == class);
                let ttfts = SortedSamples::new(of_class().map(|r| r.ttft()).collect());
                let lats = SortedSamples::new(of_class().map(|r| r.query_latency()).collect());
                let mut class_tbt = TimeHistogram::new();
                for o in outcomes {
                    if let Some((_, h)) = o.tbt_by_class.iter().find(|(c, _)| *c == class) {
                        class_tbt.merge(h);
                    }
                }
                let row = |o: &GroupOutcome| {
                    o.report.classes.iter().find(|c| c.class == class).map(|c| c.deadline_hits)
                };
                let deadline_hits: usize = outcomes.iter().filter_map(row).sum();
                ClassReport {
                    class,
                    submitted,
                    completed: of_class().count(),
                    ttft: LatencyStats::from_sorted(&ttfts),
                    query_latency: LatencyStats::from_sorted(&lats),
                    tbt: LatencyStats::from_histogram(&class_tbt),
                    deadline_hits,
                    goodput_qps: if makespan > Time::ZERO {
                        deadline_hits as f64 / makespan.as_secs()
                    } else {
                        0.0
                    },
                }
            })
            .collect();

        let per_group: Vec<GroupRow> = outcomes
            .iter()
            .map(|o| GroupRow {
                submitted: o.report.submitted,
                completed: o.report.completed,
                slot_utilization: o.report.slot_utilization,
                kv_utilization: o.report.kv_utilization,
                peak_queue_depth: o.report.peak_queue_depth,
            })
            .collect();
        let mean_share = submitted as f64 / outcomes.len().max(1) as f64;
        let imbalance = if mean_share > 0.0 {
            RouterImbalance {
                min_share: per_group.iter().map(|g| g.submitted).min().unwrap_or(0) as f64
                    / mean_share,
                max_share: per_group.iter().map(|g| g.submitted).max().unwrap_or(0) as f64
                    / mean_share,
            }
        } else {
            RouterImbalance::default()
        };

        FleetReport {
            groups: outcomes.len(),
            offered_qps,
            submitted,
            completed,
            rejected,
            makespan,
            decode_tokens,
            prefill_tokens,
            tokens_per_s,
            ttft: LatencyStats::from_sorted(&ttfts),
            query_latency: LatencyStats::from_sorted(&latencies),
            queue_wait: LatencyStats::from_sorted(&waits),
            tbt: LatencyStats::from_histogram(&tbt),
            classes,
            preemptions: outcomes.iter().map(|o| o.report.preemptions).sum(),
            swaps: outcomes.iter().map(|o| o.report.swaps).sum(),
            peak_queue_depth: outcomes.iter().map(|o| o.report.peak_queue_depth).max().unwrap_or(0),
            slot_utilization: UtilizationSpread::over(
                outcomes.iter().map(|o| o.report.slot_utilization),
            ),
            kv_utilization: UtilizationSpread::over(
                outcomes.iter().map(|o| o.report.kv_utilization),
            ),
            imbalance,
            per_group,
            degraded: None,
            disagg: None,
        }
    }

    /// [`from_outcomes`](Self::from_outcomes) plus the degraded-mode
    /// section derived from the driver's [`FaultLog`]. Used whenever the
    /// run carried a fault schedule, even one that never fired.
    pub fn from_outcomes_faulted(
        offered_qps: f64,
        outcomes: &[GroupOutcome],
        log: &FaultLog,
    ) -> Self {
        let mut report = Self::from_outcomes(offered_qps, outcomes);
        let records = || outcomes.iter().flat_map(|o| o.records.iter());
        let first_tokens = records().map(|r| (r.spec.id.0, r.first_token)).collect();
        let completions: Vec<Time> = records().map(|r| r.finished).collect();
        report.degraded = Some(degraded_section(
            log,
            first_tokens,
            &completions,
            report.makespan,
            outcomes.len(),
        ));
        report
    }

    /// Folds the outcomes of a role-split fleet into the end-to-end view,
    /// joining each handed-off request's prefill-phase record (prompt +
    /// first token, on a [`GroupRole::Prefill`] group) with its
    /// decode-phase record (the remaining tokens) by request id.
    ///
    /// The corrected metrics: `submitted` counts prefill-tier arrivals
    /// (not decode-tier re-submissions), `completed` counts requests whose
    /// *final* phase finished (excluding fault-dropped requests),
    /// `prefill_tokens` counts prompt tokens per prefill pass (a
    /// crash-redispatched prompt is genuinely reprocessed by the tier),
    /// latency runs from the original arrival to the decode-phase finish,
    /// TTFT/queue-wait come from the prefill tier (which owns the first
    /// token) and router imbalance is judged over the prefill tier (the
    /// only tier the router spreads arrivals across). TBT merges the
    /// per-group histograms, so the prefill→decode handoff gap itself is
    /// not a TBT sample — it is reported separately as
    /// [`DisaggReport::handoff_latency`].
    ///
    /// `faults` carries the driver's [`FaultLog`] whenever the run tracked
    /// faults or admission shedding; it adds the degraded section (with
    /// completions counted over joined requests, not phase records).
    pub fn from_outcomes_disagg(
        offered_qps: f64,
        outcomes: &[GroupOutcome],
        roles: &[GroupRole],
        log: &DisaggLog,
        faults: Option<&FaultLog>,
        slo: Option<Time>,
    ) -> Self {
        assert_eq!(roles.len(), outcomes.len(), "one role per group");
        let mut report = Self::from_outcomes(offered_qps, outcomes);
        let of_role = |role: GroupRole| {
            outcomes.iter().zip(roles).filter(move |(_, r)| **r == role).map(|(o, _)| o)
        };
        // Records of each tier, sorted by id for the phase join.
        let mut prefill_records: Vec<&RequestRecord> =
            of_role(GroupRole::Prefill).flat_map(|o| o.records.iter()).collect();
        prefill_records.sort_unstable_by_key(|r| (r.spec.id.0, r.finished));
        let mut decode_records: Vec<&RequestRecord> =
            of_role(GroupRole::Decode).flat_map(|o| o.records.iter()).collect();
        decode_records.sort_unstable_by_key(|r| r.spec.id.0);
        // A request redispatched through the prefill tier after a decode
        // crash leaves several prefill records. The earliest-finished one
        // carries the user-visible first token (TTFT, queue wait); the
        // latest-finished one published the context the decode tier
        // finally claimed, so it anchors the phase join.
        let mut prefill_first: Vec<&RequestRecord> = Vec::with_capacity(prefill_records.len());
        let mut prefill_last: Vec<&RequestRecord> = Vec::with_capacity(prefill_records.len());
        for &r in &prefill_records {
            match prefill_last.last_mut() {
                Some(last) if last.spec.id == r.spec.id => *last = r,
                _ => {
                    prefill_first.push(r);
                    prefill_last.push(r);
                }
            }
        }
        let joined = join_phases(&prefill_last, &decode_records);
        debug_assert_eq!(joined.len(), decode_records.len(), "every decode phase has a prompt");
        // Prefill records without a decode phase finished outright on the
        // prefill tier (single-token decodes) — unless the fault path
        // dropped the request after its prompt completed.
        let dropped: BTreeSet<u64> = match faults {
            Some(f) => f.dropped.iter().map(|&(id, _)| id.0).collect(),
            None => BTreeSet::new(),
        };
        let singles: Vec<&RequestRecord> = prefill_first
            .iter()
            .filter(|r| {
                decode_records.binary_search_by_key(&r.spec.id.0, |d| d.spec.id.0).is_err()
                    && !dropped.contains(&r.spec.id.0)
            })
            .copied()
            .collect();

        report.submitted = of_role(GroupRole::Prefill).map(|o| o.report.submitted).sum();
        report.completed = singles.len() + joined.len();
        report.prefill_tokens = prefill_records.iter().map(|r| r.spec.prompt as u64).sum();
        report.tokens_per_s = if report.makespan > Time::ZERO {
            report.decode_tokens as f64 / report.makespan.as_secs()
        } else {
            0.0
        };
        // End-to-end latency: arrival to the *final* phase's completion.
        let end_latency = |prefill: &RequestRecord, decode: Option<&RequestRecord>| {
            decode.unwrap_or(prefill).finished.saturating_sub(prefill.spec.arrival)
        };
        let latencies = SortedSamples::new(
            joined
                .iter()
                .map(|&(p, d)| end_latency(p, Some(d)))
                .chain(singles.iter().map(|&p| end_latency(p, None)))
                .collect(),
        );
        report.query_latency = LatencyStats::from_sorted(&latencies);
        report.ttft = LatencyStats::from_sorted(&SortedSamples::new(
            prefill_first.iter().map(|r| r.ttft()).collect(),
        ));
        report.queue_wait = LatencyStats::from_sorted(&SortedSamples::new(
            prefill_first.iter().map(|r| r.queue_wait()).collect(),
        ));
        let handoff_latency = LatencyStats::from_sorted(&SortedSamples::new(
            joined.iter().map(|&(p, d)| d.first_token.saturating_sub(p.finished)).collect(),
        ));

        // Per-class rows over the joined populations. Submissions come
        // from the prefill tier (the only tier arrivals reach).
        let mut class_keys: Vec<PriorityClass> = of_role(GroupRole::Prefill)
            .flat_map(|o| o.submitted_by_class.iter().map(|&(c, _)| c))
            .collect();
        class_keys.sort_unstable();
        class_keys.dedup();
        let makespan_s = report.makespan.as_secs();
        report.classes = class_keys
            .iter()
            .map(|&class| {
                let submitted = of_role(GroupRole::Prefill)
                    .flat_map(|o| &o.submitted_by_class)
                    .filter(|(c, _)| *c == class)
                    .map(|(_, n)| n)
                    .sum();
                let raw: Vec<Time> = joined
                    .iter()
                    .filter(|(p, _)| p.spec.class == class)
                    .map(|&(p, d)| end_latency(p, Some(d)))
                    .chain(
                        singles
                            .iter()
                            .filter(|p| p.spec.class == class)
                            .map(|&p| end_latency(p, None)),
                    )
                    .collect();
                let deadline_hits = match slo {
                    Some(slo) => raw.iter().filter(|&&l| l <= slo).count(),
                    None => raw.len(),
                };
                let lats = SortedSamples::new(raw);
                let ttfts = SortedSamples::new(
                    prefill_first
                        .iter()
                        .filter(|r| r.spec.class == class)
                        .map(|r| r.ttft())
                        .collect(),
                );
                let mut class_tbt = TimeHistogram::new();
                for o in outcomes {
                    if let Some((_, h)) = o.tbt_by_class.iter().find(|(c, _)| *c == class) {
                        class_tbt.merge(h);
                    }
                }
                ClassReport {
                    class,
                    submitted,
                    completed: lats.len(),
                    ttft: LatencyStats::from_sorted(&ttfts),
                    query_latency: LatencyStats::from_sorted(&lats),
                    tbt: LatencyStats::from_histogram(&class_tbt),
                    deadline_hits,
                    goodput_qps: if makespan_s > 0.0 {
                        deadline_hits as f64 / makespan_s
                    } else {
                        0.0
                    },
                }
            })
            .collect();

        // The router only spreads arrivals over the prefill tier; judge
        // its imbalance there.
        let prefill_submitted: Vec<usize> =
            of_role(GroupRole::Prefill).map(|o| o.report.submitted).collect();
        let mean_share = report.submitted as f64 / prefill_submitted.len().max(1) as f64;
        report.imbalance = if mean_share > 0.0 {
            RouterImbalance {
                min_share: prefill_submitted.iter().copied().min().unwrap_or(0) as f64 / mean_share,
                max_share: prefill_submitted.iter().copied().max().unwrap_or(0) as f64 / mean_share,
            }
        } else {
            RouterImbalance::default()
        };

        let pool_occupancy = if log.pool_capacity_tokens > 0 && makespan_s > 0.0 {
            log.pool_occupancy_token_s / (log.pool_capacity_tokens as f64 * makespan_s)
        } else {
            0.0
        };
        report.disagg = Some(DisaggReport {
            prefill_groups: roles.iter().filter(|r| **r == GroupRole::Prefill).count(),
            decode_groups: roles.iter().filter(|r| **r == GroupRole::Decode).count(),
            handoffs: log.handoffs,
            singles: log.singles,
            steals: log.steals,
            deferred_publishes: log.deferred,
            handoff_latency,
            pool_capacity_tokens: log.pool_capacity_tokens,
            pool_peak_tokens: log.pool_peak_tokens,
            pool_occupancy,
        });

        if let Some(flog) = faults {
            let first_tokens = outcomes
                .iter()
                .flat_map(|o| o.records.iter())
                .map(|r| (r.spec.id.0, r.first_token))
                .collect();
            // Completions are joined *requests* (plus singles), not phase
            // records, so goodput matches the corrected `completed`.
            let completions: Vec<Time> = joined
                .iter()
                .map(|&(_, d)| d.finished)
                .chain(singles.iter().map(|&p| p.finished))
                .collect();
            report.degraded = Some(degraded_section(
                flog,
                first_tokens,
                &completions,
                report.makespan,
                outcomes.len(),
            ));
        }
        report
    }

    /// Serialises the report as one JSON object (schema documented in
    /// `docs/SCHEMAS.md`). Times are seconds.
    pub fn to_json(&self) -> String {
        fn stats(s: &LatencyStats) -> String {
            format!(
                "{{\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                s.mean.as_secs(),
                s.p50.as_secs(),
                s.p95.as_secs(),
                s.p99.as_secs(),
                s.max.as_secs()
            )
        }
        let classes: Vec<String> = self
            .classes
            .iter()
            .map(|c| {
                format!(
                    "{{\"class\":{},\"submitted\":{},\"completed\":{},\"ttft\":{},\
                     \"latency\":{},\"tbt\":{},\"deadline_hits\":{},\"goodput_qps\":{}}}",
                    c.class.0,
                    c.submitted,
                    c.completed,
                    stats(&c.ttft),
                    stats(&c.query_latency),
                    stats(&c.tbt),
                    c.deadline_hits,
                    c.goodput_qps
                )
            })
            .collect();
        let per_group: Vec<String> = self
            .per_group
            .iter()
            .map(|g| {
                format!(
                    "{{\"submitted\":{},\"completed\":{},\"slot_utilization\":{},\
                     \"kv_utilization\":{},\"peak_queue_depth\":{}}}",
                    g.submitted,
                    g.completed,
                    g.slot_utilization,
                    g.kv_utilization,
                    g.peak_queue_depth
                )
            })
            .collect();
        let degraded = match &self.degraded {
            None => String::new(),
            Some(d) => {
                let retries_by_class: Vec<String> = d
                    .retries_by_class
                    .iter()
                    .map(|(c, n)| format!("{{\"class\":{},\"retries\":{}}}", c.0, n))
                    .collect();
                let drops_by_class: Vec<String> = d
                    .drops_by_class
                    .iter()
                    .map(|(c, n)| format!("{{\"class\":{},\"drops\":{}}}", c.0, n))
                    .collect();
                let shed_by_class: Vec<String> = d
                    .shed_by_class
                    .iter()
                    .map(|(c, n)| format!("{{\"class\":{},\"shed\":{}}}", c.0, n))
                    .collect();
                format!(
                    ",\"degraded\":{{\"crashes\":{},\"recoveries\":{},\"availability\":{},\
                     \"down_group_seconds\":{},\"orphaned\":{},\"retries\":{},\"drops\":{},\
                     \"retries_by_class\":[{}],\"drops_by_class\":[{}],\"warm_rejoins\":{},\
                     \"cold_rejoins\":{},\"promotions\":{},\"pool_rescued\":{},\"pool_lost\":{},\
                     \"rescue_s\":{},\"shed\":{},\"shed_by_class\":[{}],\"failover_s\":{},\
                     \"goodput_qps\":{},\"goodput_clean_qps\":{}}}",
                    d.crashes,
                    d.recoveries,
                    d.availability,
                    d.down_group_seconds,
                    d.orphaned,
                    d.retries,
                    d.drops,
                    retries_by_class.join(","),
                    drops_by_class.join(","),
                    d.warm_rejoins,
                    d.cold_rejoins,
                    d.promotions,
                    d.pool_rescued,
                    d.pool_lost,
                    stats(&d.rescue_latency),
                    d.shed,
                    shed_by_class.join(","),
                    stats(&d.failover_latency),
                    d.goodput_qps,
                    d.goodput_clean_qps
                )
            }
        };
        let disagg = match &self.disagg {
            None => String::new(),
            Some(d) => format!(
                ",\"disagg\":{{\"prefill_groups\":{},\"decode_groups\":{},\"handoffs\":{},\
                 \"singles\":{},\"steals\":{},\"deferred_publishes\":{},\"handoff_s\":{},\
                 \"pool_capacity_tokens\":{},\"pool_peak_tokens\":{},\"pool_occupancy\":{}}}",
                d.prefill_groups,
                d.decode_groups,
                d.handoffs,
                d.singles,
                d.steals,
                d.deferred_publishes,
                stats(&d.handoff_latency),
                d.pool_capacity_tokens,
                d.pool_peak_tokens,
                d.pool_occupancy
            ),
        };
        format!(
            "{{\"groups\":{},\"offered_qps\":{},\"submitted\":{},\"completed\":{},\
             \"rejected\":{},\"makespan_s\":{},\"decode_tokens\":{},\"prefill_tokens\":{},\
             \"tokens_per_s\":{},\"ttft_s\":{},\"latency_s\":{},\"queue_wait_s\":{},\
             \"tbt_s\":{},\"preemptions\":{},\"swaps\":{},\"peak_queue_depth\":{},\
             \"slot_utilization\":{{\"min\":{},\"mean\":{},\"max\":{}}},\
             \"kv_utilization\":{{\"min\":{},\"mean\":{},\"max\":{}}},\
             \"imbalance\":{{\"min_share\":{},\"max_share\":{}}},\
             \"classes\":[{}],\"per_group\":[{}]{}{}}}",
            self.groups,
            self.offered_qps,
            self.submitted,
            self.completed,
            self.rejected,
            self.makespan.as_secs(),
            self.decode_tokens,
            self.prefill_tokens,
            self.tokens_per_s,
            stats(&self.ttft),
            stats(&self.query_latency),
            stats(&self.queue_wait),
            stats(&self.tbt),
            self.preemptions,
            self.swaps,
            self.peak_queue_depth,
            self.slot_utilization.min,
            self.slot_utilization.mean,
            self.slot_utilization.max,
            self.kv_utilization.min,
            self.kv_utilization.mean,
            self.kv_utilization.max,
            self.imbalance.min_share,
            self.imbalance.max_share,
            classes.join(","),
            per_group.join(","),
            degraded,
            disagg
        )
    }
}

/// Builds the degraded-mode section shared by the colocated and
/// disaggregated faulted paths.
///
/// `first_tokens` holds one `(id, first token)` entry per *record* — a
/// request redispatched through the prefill tier leaves several — and the
/// failover/rescue joins pick, per event, the earliest first token at or
/// after the crash instant. `completions` holds the completion instant of
/// each completed *request* (phase records already joined on the disagg
/// path), so goodput counts requests, not phases.
fn degraded_section(
    log: &FaultLog,
    mut first_tokens: Vec<(u64, Time)>,
    completions: &[Time],
    makespan: Time,
    groups: usize,
) -> DegradedReport {
    // The run extends at least to the last offered arrival: a fleet that
    // died early and served nothing afterwards was still *down* while
    // requests kept arriving.
    let last_finish = completions.iter().copied().max().unwrap_or(Time::ZERO).max(log.horizon);

    // Outage windows, clipped to the run. Group-time accounting uses every
    // window; wall-clock accounting uses their union.
    let mut down_group_seconds = 0.0;
    let mut clipped: Vec<(Time, Time)> = Vec::new();
    for &(_, start, end) in &log.down_windows {
        let end = end.unwrap_or(last_finish).min(last_finish);
        let start = start.min(end);
        down_group_seconds += end.saturating_sub(start).as_secs();
        if end > start {
            clipped.push((start, end));
        }
    }
    let total_group_seconds = groups as f64 * last_finish.as_secs();
    let availability = if total_group_seconds > 0.0 {
        (1.0 - down_group_seconds / total_group_seconds).max(0.0)
    } else {
        1.0
    };
    clipped.sort_unstable();
    let mut union: Vec<(Time, Time)> = Vec::new();
    for (start, end) in clipped {
        match union.last_mut() {
            Some(last) if start <= last.1 => last.1 = last.1.max(end),
            _ => union.push((start, end)),
        }
    }
    let mut union_seconds = 0.0;
    for &(start, end) in &union {
        union_seconds += end.saturating_sub(start).as_secs();
    }

    // Recovery joins: for each event whose request later emitted a token,
    // the crash instant to its first token at or after it. A request can
    // leave several records (re-prefills), so pick the earliest qualifying
    // token rather than assuming one record per id.
    first_tokens.sort_unstable();
    let join = |events: &[(RequestId, Time)]| -> LatencyStats {
        let mut samples = Vec::with_capacity(events.len());
        for &(id, crash_t) in events {
            let pos = first_tokens.partition_point(|&(i, ft)| (i, ft) < (id.0, crash_t));
            if let Some(&(i, ft)) = first_tokens.get(pos) {
                if i == id.0 {
                    samples.push(ft.saturating_sub(crash_t));
                }
            }
        }
        LatencyStats::from_sorted(&SortedSamples::new(samples))
    };
    let failover_latency = join(&log.orphaned);
    let rescue_latency = join(&log.pool_rescued);

    let makespan_s = makespan.as_secs();
    let goodput_qps = if makespan_s > 0.0 { completions.len() as f64 / makespan_s } else { 0.0 };
    let in_outage = |t: Time| -> bool {
        let pos = union.partition_point(|&(start, _)| start <= t);
        pos > 0 && union[pos - 1].1 > t
    };
    let clean_completed = completions.iter().filter(|&&t| !in_outage(t)).count();
    let clean_seconds = (last_finish.as_secs() - union_seconds).max(0.0);
    let goodput_clean_qps =
        if clean_seconds > 0.0 { clean_completed as f64 / clean_seconds } else { 0.0 };

    let mut drops_by_class: BTreeMap<PriorityClass, usize> = BTreeMap::new();
    for &(_, class) in &log.dropped {
        *drops_by_class.entry(class).or_insert(0) += 1;
    }
    let mut shed_by_class: BTreeMap<PriorityClass, usize> = BTreeMap::new();
    for &(_, class) in &log.shed {
        *shed_by_class.entry(class).or_insert(0) += 1;
    }

    DegradedReport {
        crashes: log.crashes,
        recoveries: log.recoveries,
        availability,
        down_group_seconds,
        orphaned: log.orphaned.len(),
        retries: log.retries,
        drops: log.dropped.len(),
        retries_by_class: log.retries_by_class.clone(),
        drops_by_class: drops_by_class.into_iter().collect(),
        warm_rejoins: log.warm_rejoins,
        cold_rejoins: log.cold_rejoins,
        promotions: log.promotions,
        pool_rescued: log.pool_rescued.len(),
        pool_lost: log.pool_lost,
        rescue_latency,
        shed: log.shed.len(),
        shed_by_class: shed_by_class.into_iter().collect(),
        failover_latency,
        goodput_qps,
        goodput_clean_qps,
    }
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fleet of {} groups | offered {:.2} q/s | served {}/{} ({} rejected) over {}",
            self.groups,
            self.offered_qps,
            self.completed,
            self.submitted,
            self.rejected,
            self.makespan
        )?;
        writeln!(
            f,
            "decode {:.0} tok/s | slots {:.0}–{:.0}% busy (mean {:.0}%) | arrivals/group \
             {:.2}–{:.2}× fair share | peak queue {}",
            self.tokens_per_s,
            100.0 * self.slot_utilization.min,
            100.0 * self.slot_utilization.max,
            100.0 * self.slot_utilization.mean,
            self.imbalance.min_share,
            self.imbalance.max_share,
            self.peak_queue_depth,
        )?;
        writeln!(f, "TTFT:    {}", self.ttft)?;
        writeln!(f, "latency: {}", self.query_latency)?;
        write!(f, "TBT:     {}", self.tbt)?;
        if let Some(d) = &self.degraded {
            writeln!(f)?;
            writeln!(
                f,
                "degraded: availability {:.3}% | {} crashes / {} recoveries | {} orphaned, {} \
                 retried, {} dropped",
                100.0 * d.availability,
                d.crashes,
                d.recoveries,
                d.orphaned,
                d.retries,
                d.drops,
            )?;
            writeln!(
                f,
                "recovery: {} warm / {} cold rejoins, {} promotions | pool rescued {} ({} \
                 lost) | {} shed",
                d.warm_rejoins, d.cold_rejoins, d.promotions, d.pool_rescued, d.pool_lost, d.shed,
            )?;
            writeln!(f, "rescue:  {}", d.rescue_latency)?;
            write!(
                f,
                "failover: {} | goodput {:.2} q/s ({:.2} q/s outside outages)",
                d.failover_latency, d.goodput_qps, d.goodput_clean_qps
            )?;
        }
        if let Some(d) = &self.disagg {
            writeln!(f)?;
            writeln!(
                f,
                "disagg: {}P/{}D groups | {} handoffs ({} singles, {} steals, {} deferred)",
                d.prefill_groups,
                d.decode_groups,
                d.handoffs,
                d.singles,
                d.steals,
                d.deferred_publishes,
            )?;
            write!(
                f,
                "handoff: {} | pool peak {}/{} tokens ({:.1}% mean occupancy)",
                d.handoff_latency,
                d.pool_peak_tokens,
                d.pool_capacity_tokens,
                100.0 * d.pool_occupancy,
            )?;
        }
        Ok(())
    }
}
