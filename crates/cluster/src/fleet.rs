//! The sharded fleet driver: epoch-based routing over N replica groups,
//! fanned out across `std::thread::scope` workers inside one simulation —
//! with deterministic fault injection, failover and retry on top.
//!
//! # Determinism contract
//!
//! The trace is partitioned into fixed-width time *epochs*. The driver
//! stops at epoch-grid instants — the epoch holding the next arrival, the
//! next fault event (crash/recover/degrade instants are aligned up to the
//! grid), or the next retry-ready instant. At each stop it advances every
//! group to the stop instant, applies due fault events from a single
//! thread in a fixed `(instant, kind, group)` order, refreshes the
//! per-group [`GroupLoad`] index from true scheduler state (dead groups
//! leave the index), and then routes redispatches and the epoch's arrivals
//! against that snapshot (bumping the index optimistically per
//! assignment). Routing and fault handling therefore depend only on
//! (trace, fault schedule, router state, epoch length) — never on worker
//! interleaving — and each group's simulation is single-threaded and
//! deterministic, so the merged [`FleetReport`] is bit-identical across
//! worker-thread counts *for any fault schedule*. Epochs with no work are
//! coalesced: the driver jumps straight to the next stop.
//!
//! # Failure semantics
//!
//! A [`GroupCrash`](FaultSpec::GroupCrash) tears the group down: its
//! in-flight and queued requests are orphaned (device KV and host-pool
//! pages are lost, so a redispatch re-prefills from scratch while TTFT
//! keeps running from the original arrival), and the [`RetryPolicy`]
//! decides whether each orphan is redispatched — onto the healthy subset,
//! after its backoff — or dropped. How a group *rejoins* is set by
//! [`RecoveryMode`]: cold (empty, the default), warm (a deterministic
//! fraction of each crash's orphans kept their KV and re-seed without
//! re-prefilling when the group recovers) or standby (idle spare groups
//! promoted at crash time, recovered groups joining the spare reserve).
//! While *no* group is alive, arrivals are deferred and dispatched at the
//! next recovery; if the fleet never recovers they are dropped. An
//! [`AdmissionPolicy`] additionally sheds arrivals by class once fleet
//! saturation crosses the class's threshold, extending conservation to
//! `completed + rejected + dropped + shed = offered`.

use std::collections::{BTreeMap, BTreeSet};

use cent_serving::ServingSystem;
use cent_serving::{GroupOutcome, GroupSim, PriorityClass, RequestId, RequestSpec, ServeOptions};
use cent_types::Time;

use crate::admission::{fleet_saturation, AdmissionPolicy};
use crate::fault::{FaultSchedule, FaultSpec, RecoveryMode, RetryPolicy};
use crate::report::FleetReport;
use crate::router::{GroupLoad, RoutingPolicy};

/// Fleet-level knobs: group count, worker threads, epoch width, the
/// per-group serving options, and the fault schedule, retry policy,
/// recovery mode and admission policy.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Independent replica groups behind the router.
    pub groups: usize,
    /// Worker threads sharding the groups (1 = fully inline). Any value
    /// yields the same [`FleetReport`]; this only trades wall-clock.
    pub threads: usize,
    /// Epoch width: the granularity at which the router's load index is
    /// refreshed from true group state (and onto which fault events are
    /// aligned). Smaller epochs mean fresher load signals and more
    /// synchronization barriers.
    pub epoch: Time,
    /// Serving options applied to every group.
    pub serve: ServeOptions,
    /// Faults injected into the run (empty = the healthy path, bit for
    /// bit).
    pub faults: FaultSchedule,
    /// Redispatch policy for crash orphans.
    pub retry: RetryPolicy,
    /// How crashed groups rejoin (cold, warm, or via a standby reserve).
    pub recovery: RecoveryMode,
    /// Saturation-based admission control
    /// ([`AdmissionPolicy::admit_all`] = the no-shed path, bit for bit).
    pub admission: AdmissionPolicy,
}

impl FleetOptions {
    /// `groups` groups, one worker thread, a 100 ms epoch, default serving
    /// options, no faults.
    pub fn new(groups: usize) -> Self {
        assert!(groups > 0, "a fleet needs at least one group");
        FleetOptions {
            groups,
            threads: 1,
            epoch: Time::from_secs_f64(0.1),
            serve: ServeOptions::default(),
            faults: FaultSchedule::empty(),
            retry: RetryPolicy::default(),
            recovery: RecoveryMode::Cold,
            admission: AdmissionPolicy::admit_all(),
        }
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the epoch width.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is zero.
    pub fn with_epoch(mut self, epoch: Time) -> Self {
        assert!(epoch > Time::ZERO, "epoch must be positive");
        self.epoch = epoch;
        self
    }

    /// Sets the per-group serving options.
    pub fn with_serve(mut self, serve: ServeOptions) -> Self {
        self.serve = serve;
        self
    }

    /// Sets the fault schedule.
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the retry policy for crash orphans.
    ///
    /// # Panics
    ///
    /// Panics if `retry.max_attempts` is zero.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        assert!(retry.max_attempts > 0, "a request needs at least one attempt");
        self.retry = retry;
        self
    }

    /// Sets the recovery mode for crashed groups.
    ///
    /// # Panics
    ///
    /// Panics if the mode's parameters are out of range (see
    /// [`RecoveryMode::validate`]).
    pub fn with_recovery(mut self, recovery: RecoveryMode) -> Self {
        recovery.validate();
        self.recovery = recovery;
        self
    }

    /// Sets the saturation admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }
}

/// What the fault machinery did during one fleet run — the raw material
/// for the report's degraded-mode section, exposed for property tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultLog {
    /// Crash events applied (a crash aligned into an existing outage is
    /// skipped, not double-counted).
    pub crashes: u64,
    /// Recovery events applied.
    pub recoveries: u64,
    /// Per-group outage windows `(group, down_from, up_at)`; `None` means
    /// the group never rejoined.
    pub down_windows: Vec<(usize, Time, Option<Time>)>,
    /// One entry per orphaning: the request and the crash instant that
    /// evicted it (a request appears once per crash it survives).
    pub orphaned: Vec<(RequestId, Time)>,
    /// Redispatches of crash orphans (deferred first dispatches of
    /// arrivals that found no live group are not retries).
    pub retries: u64,
    /// Redispatch counts per priority class.
    pub retries_by_class: Vec<(PriorityClass, u64)>,
    /// Requests dropped — out of attempts, or undispatchable because the
    /// fleet never recovered.
    pub dropped: Vec<(RequestId, PriorityClass)>,
    /// Recoveries that re-seeded at least one warm-retained context
    /// ([`RecoveryMode::Warm`]).
    pub warm_rejoins: u64,
    /// Recoveries that rejoined the serving set empty (every recovery
    /// under [`RecoveryMode::Cold`]; a warm recovery whose crash orphaned
    /// nothing). Standby recoveries join the spare reserve and count under
    /// neither.
    pub cold_rejoins: u64,
    /// Spare groups promoted into the serving set at crash instants
    /// ([`RecoveryMode::Standby`]).
    pub promotions: u64,
    /// Contexts a crashed decode group had claimed that were rescued from
    /// the shared pool's parked copies instead of re-prefilled, with the
    /// crash instant (disaggregated fleets only).
    pub pool_rescued: Vec<(RequestId, Time)>,
    /// Handed-off contexts whose pool copy was gone at crash time (evicted
    /// or volatile pool) — they fell back to re-prefill.
    pub pool_lost: u64,
    /// Arrivals shed by the admission policy, never dispatched.
    pub shed: Vec<(RequestId, PriorityClass)>,
    /// Last offered arrival — the availability horizon extends at least
    /// this far even if the fleet died long before serving it.
    pub horizon: Time,
}

/// Everything one fleet run produced: the merged report, the per-group
/// outcomes (in group order), the routing decision per trace entry and the
/// fault log.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The merged fleet-wide report.
    pub report: FleetReport,
    /// Per-group outcomes, indexed by group.
    pub groups: Vec<GroupOutcome>,
    /// Group index each trace entry was *first* dispatched to, aligned
    /// with the trace (`usize::MAX` for requests never dispatched: shed by
    /// admission, or dropped because the whole fleet was down on arrival
    /// and never recovered).
    pub routed: Vec<usize>,
    /// What the fault machinery did (empty for a fault-free schedule).
    pub faults: FaultLog,
}

/// A fault event compiled onto the epoch grid. At one instant, recoveries
/// apply before degrade-window edges before crashes (rank order), and
/// within a kind events apply in compiled order — a fixed, thread-free
/// total order. Shared with the disaggregated driver.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledFault {
    pub(crate) at: Time,
    pub(crate) rank: u8,
    pub(crate) group: usize,
    pub(crate) kind: CompiledKind,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum CompiledKind {
    Recover,
    DegradeEnd { factor: f64 },
    DegradeStart { factor: f64 },
    PoolDegradeEnd { factor: f64 },
    PoolDegradeStart { factor: f64 },
    Crash { recovers: bool },
}

/// Aligns `t` up to the next epoch-grid instant.
pub(crate) fn epoch_ceil(t: Time, epoch_ps: u64) -> Time {
    Time::from_ps(
        t.as_ps()
            .div_ceil(epoch_ps)
            .checked_mul(epoch_ps)
            .expect("epoch grid instant overflows Time"),
    )
}

/// Compiles the schedule onto the epoch grid: every instant is aligned up,
/// every window spans at least one epoch, and the result is sorted by
/// `(instant, rank, group)` with compiled order breaking residual ties
/// (stable sort). Shared with the disaggregated driver; the colocated
/// driver treats pool-degrade edges as no-ops.
pub(crate) fn compile_faults(schedule: &FaultSchedule, epoch_ps: u64) -> Vec<CompiledFault> {
    let mut events = Vec::new();
    for spec in schedule.specs() {
        match *spec {
            FaultSpec::GroupCrash { group, at, recover_after } => {
                let crash_at = epoch_ceil(at, epoch_ps);
                events.push(CompiledFault {
                    at: crash_at,
                    rank: 3,
                    group,
                    kind: CompiledKind::Crash { recovers: recover_after.is_some() },
                });
                if let Some(d) = recover_after {
                    let floor = Time::from_ps(
                        crash_at.as_ps().checked_add(epoch_ps).expect("recovery floor overflows"),
                    );
                    let recover_at = epoch_ceil(at + d, epoch_ps).max(floor);
                    events.push(CompiledFault {
                        at: recover_at,
                        rank: 0,
                        group,
                        kind: CompiledKind::Recover,
                    });
                }
            }
            FaultSpec::HostLinkDegrade { at, duration, bandwidth_factor } => {
                let start = epoch_ceil(at, epoch_ps);
                let floor = Time::from_ps(
                    start.as_ps().checked_add(epoch_ps).expect("degrade window end overflows"),
                );
                let end = epoch_ceil(at + duration, epoch_ps).max(floor);
                events.push(CompiledFault {
                    at: start,
                    rank: 2,
                    group: 0,
                    kind: CompiledKind::DegradeStart { factor: bandwidth_factor },
                });
                events.push(CompiledFault {
                    at: end,
                    rank: 1,
                    group: 0,
                    kind: CompiledKind::DegradeEnd { factor: bandwidth_factor },
                });
            }
            FaultSpec::PoolLinkDegrade { at, duration, bandwidth_factor } => {
                let start = epoch_ceil(at, epoch_ps);
                let floor = Time::from_ps(
                    start.as_ps().checked_add(epoch_ps).expect("degrade window end overflows"),
                );
                let end = epoch_ceil(at + duration, epoch_ps).max(floor);
                events.push(CompiledFault {
                    at: start,
                    rank: 2,
                    group: 0,
                    kind: CompiledKind::PoolDegradeStart { factor: bandwidth_factor },
                });
                events.push(CompiledFault {
                    at: end,
                    rank: 1,
                    group: 0,
                    kind: CompiledKind::PoolDegradeEnd { factor: bandwidth_factor },
                });
            }
            // Stragglers are construction-time, not events.
            FaultSpec::Straggler { .. } => {}
        }
    }
    events.sort_by_key(|e| (e.at, e.rank, e.group));
    events
}

/// Simulates `trace` over a fleet of identical replica groups and returns
/// the merged fleet report. See the module docs for the determinism
/// contract; `trace` must be sorted by arrival time (as
/// [`Workload::generate`](cent_serving::Workload::generate) produces).
pub fn simulate_fleet(
    system: &ServingSystem,
    trace: &[RequestSpec],
    offered_qps: f64,
    router: &mut dyn RoutingPolicy,
    options: &FleetOptions,
) -> FleetReport {
    simulate_fleet_instrumented(system, trace, offered_qps, router, options).report
}

/// [`simulate_fleet`], additionally returning per-group outcomes, the
/// per-request routing decisions and the fault log (property tests,
/// router and failover studies).
pub fn simulate_fleet_instrumented(
    system: &ServingSystem,
    trace: &[RequestSpec],
    offered_qps: f64,
    router: &mut dyn RoutingPolicy,
    options: &FleetOptions,
) -> FleetOutcome {
    let epoch_ps = options.epoch.as_ps().max(1);
    if let Some(g) = options.faults.max_group() {
        assert!(
            g < options.groups,
            "fault schedule names group {g} of a {}-group fleet",
            options.groups
        );
    }
    assert!(options.retry.max_attempts > 0, "a request needs at least one attempt");
    options.recovery.validate();

    // Stragglers are a property of the group, not an event: build the
    // affected groups from a uniformly slowed system (worst slowdown wins
    // if a group is named twice).
    let mut slowdowns = vec![1.0f64; options.groups];
    for spec in options.faults.specs() {
        if let FaultSpec::Straggler { group, slowdown } = *spec {
            slowdowns[group] = slowdowns[group].max(slowdown);
        }
    }
    let mut sims: Vec<GroupSim> = slowdowns
        .iter()
        .map(|&s| {
            if s > 1.0 {
                GroupSim::new(&system.slowed(s), options.serve.clone())
            } else {
                GroupSim::new(system, options.serve.clone())
            }
        })
        .collect();

    let events = compile_faults(&options.faults, epoch_ps);
    let faulty = !options.faults.is_empty();
    let shedding = options.admission.is_active();
    // Tracking (attempt counts, horizon, the faulted report path) engages
    // for a fault schedule OR an active admission policy — either breaks
    // the everything-completes invariant of the healthy path.
    let track = faulty || shedding;
    let mut next_event = 0usize;
    let mut alive = vec![true; options.groups];
    let mut down_since: Vec<Option<Time>> = vec![None; options.groups];
    let mut active_degrades: Vec<f64> = Vec::new();
    let mut effective_factor = 1.0f64;
    let mut log = FaultLog::default();
    let mut retries_by_class: BTreeMap<PriorityClass, u64> = BTreeMap::new();

    // Standby reserve: the last `spares` groups start outside the serving
    // set and are promoted (lowest index first) when a serving group
    // crashes; recovered groups refill the reserve. Under Cold/Warm every
    // group serves from the start.
    let mut in_service = vec![true; options.groups];
    let mut spare_pool: BTreeSet<usize> = BTreeSet::new();
    if let RecoveryMode::Standby { spares } = options.recovery {
        assert!(
            spares < options.groups,
            "standby reserve of {spares} spares needs a fleet larger than {spares}"
        );
        for (g, serving) in in_service.iter_mut().enumerate().skip(options.groups - spares) {
            *serving = false;
            spare_pool.insert(g);
        }
    }
    // Warm retention: per crashed group, the orphans that kept their KV
    // and re-seed (skipping re-prefill) when the group rejoins.
    let mut retained: BTreeMap<usize, Vec<RequestSpec>> = BTreeMap::new();

    // Dispatch bookkeeping, touched only on the faulty path: attempts per
    // request id, the pending set keyed by `(ready, arrival, id)` (the
    // deterministic redispatch order), and the id → trace-index map that
    // backfills `routed` for out-of-order dispatches.
    let mut attempts: BTreeMap<u64, u32> = BTreeMap::new();
    let mut pending: BTreeMap<(Time, Time, u64), RequestSpec> = BTreeMap::new();
    let id_to_index: BTreeMap<u64, usize> = if faulty {
        trace.iter().enumerate().map(|(i, s)| (s.id.0, i)).collect()
    } else {
        BTreeMap::new()
    };

    let mut loads: Vec<GroupLoad> = Vec::with_capacity(options.groups);
    let mut routed = vec![usize::MAX; trace.len()];
    let mut cursor = 0usize;
    loop {
        debug_assert!(
            cursor == 0
                || cursor >= trace.len()
                || trace[cursor - 1].arrival <= trace[cursor].arrival,
            "trace must be sorted by arrival"
        );
        // Candidate stops, all on the epoch grid. Retry-ready instants
        // only count while some group is alive — while the whole fleet is
        // down, only a recovery (a fault stop) can unblock them.
        let arrival_stop =
            trace.get(cursor).map(|s| Time::from_ps((s.arrival.as_ps() / epoch_ps) * epoch_ps));
        let fault_stop = events.get(next_event).map(|e| e.at);
        let retry_stop = if alive.iter().zip(in_service.iter()).any(|(&a, &s)| a && s) {
            pending.keys().next().map(|&(ready, _, _)| epoch_ceil(ready, epoch_ps))
        } else {
            None
        };
        let Some(t) = [arrival_stop, fault_stop, retry_stop].into_iter().flatten().min() else {
            break;
        };
        advance_groups(&mut sims, t, options.threads);

        // Fault phase: apply every event due at this stop, in compiled
        // order, from this single thread.
        while next_event < events.len() && events[next_event].at == t {
            let e = events[next_event];
            next_event += 1;
            match e.kind {
                CompiledKind::Crash { recovers } => {
                    if !alive[e.group] {
                        // Grid alignment folded this crash into an outage
                        // already in progress.
                        continue;
                    }
                    alive[e.group] = false;
                    down_since[e.group] = Some(t);
                    log.crashes += 1;
                    let was_serving = in_service[e.group];
                    spare_pool.remove(&e.group);
                    let orphans = sims[e.group].crash(t);
                    // Warm recovery deterministically retains the first
                    // `retained_fraction` of the (arrival, id)-sorted
                    // orphans on the crashed group: their KV survives and
                    // re-seeds at recovery instead of re-prefilling. A
                    // crash that never recovers retains nothing.
                    let keep = match options.recovery {
                        RecoveryMode::Warm { retained_fraction } if recovers => {
                            (retained_fraction * orphans.len() as f64).floor() as usize
                        }
                        _ => 0,
                    };
                    for (i, spec) in orphans.into_iter().enumerate() {
                        log.orphaned.push((spec.id, t));
                        if i < keep {
                            retained.entry(e.group).or_default().push(spec);
                            continue;
                        }
                        let n = *attempts.get(&spec.id.0).expect("orphan was dispatched");
                        if n >= options.retry.max_attempts {
                            log.dropped.push((spec.id, spec.class));
                        } else {
                            let ready = t + options.retry.backoff.times(u64::from(n));
                            pending.insert((ready, spec.arrival, spec.id.0), spec);
                        }
                    }
                    // Standby: backfill the serving set from the reserve,
                    // lowest spare index first.
                    if was_serving {
                        if let Some(&spare) = spare_pool.iter().next() {
                            spare_pool.remove(&spare);
                            in_service[spare] = true;
                            log.promotions += 1;
                        }
                    }
                }
                CompiledKind::Recover => {
                    if alive[e.group] {
                        continue;
                    }
                    alive[e.group] = true;
                    log.recoveries += 1;
                    let start = down_since[e.group].take().expect("recovering group was down");
                    log.down_windows.push((e.group, start, Some(t)));
                    match options.recovery {
                        RecoveryMode::Standby { .. } => {
                            // Rejoin the spare reserve, not the serving
                            // set (neither warm nor cold counted) — unless
                            // the serving set is empty, in which case the
                            // lowest spare is promoted immediately.
                            in_service[e.group] = false;
                            spare_pool.insert(e.group);
                            let serving =
                                alive.iter().zip(in_service.iter()).any(|(&a, &s)| a && s);
                            if !serving {
                                let &spare =
                                    spare_pool.iter().next().expect("just inserted a spare");
                                spare_pool.remove(&spare);
                                in_service[spare] = true;
                                log.promotions += 1;
                            }
                        }
                        RecoveryMode::Warm { .. } => match retained.remove(&e.group) {
                            Some(kept) if !kept.is_empty() => {
                                log.warm_rejoins += 1;
                                for spec in kept {
                                    sims[e.group].push_warm(spec, t);
                                }
                            }
                            _ => log.cold_rejoins += 1,
                        },
                        RecoveryMode::Cold => log.cold_rejoins += 1,
                    }
                }
                CompiledKind::DegradeStart { factor } => {
                    active_degrades.push(factor);
                    let eff = active_degrades.iter().copied().fold(1.0, f64::min);
                    if eff != effective_factor {
                        effective_factor = eff;
                        for sim in sims.iter_mut() {
                            sim.set_host_link_factor(eff);
                        }
                    }
                }
                CompiledKind::DegradeEnd { factor } => {
                    let pos = active_degrades
                        .iter()
                        .position(|&f| f == factor)
                        .expect("degrade window was active");
                    active_degrades.swap_remove(pos);
                    let eff = active_degrades.iter().copied().fold(1.0, f64::min);
                    if eff != effective_factor {
                        effective_factor = eff;
                        for sim in sims.iter_mut() {
                            sim.set_host_link_factor(eff);
                        }
                    }
                }
                // Pool-link windows only affect the shared-pool handoff
                // path of the disaggregated driver; a colocated fleet has
                // no pool to degrade.
                CompiledKind::PoolDegradeStart { .. } | CompiledKind::PoolDegradeEnd { .. } => {}
            }
        }

        // Load snapshot over the healthy, in-service subset, in group
        // order (standby spares idle outside the serving set).
        loads.clear();
        for (g, sim) in sims.iter().enumerate() {
            if alive[g] && in_service[g] {
                loads.push(GroupLoad {
                    group: g,
                    outstanding: sim.outstanding(),
                    kv_tokens: sim.kv_reserved(),
                });
            }
        }

        // Redispatch phase: pending requests whose ready instant has
        // aligned to this stop (or earlier), in `(ready, arrival, id)`
        // order, routed over the healthy subset.
        if !loads.is_empty() {
            while let Some((&key, _)) = pending.iter().next() {
                if epoch_ceil(key.0, epoch_ps) > t {
                    break;
                }
                let spec = pending.remove(&key).expect("peeked entry exists");
                let pos = router.route(&spec, &loads);
                assert!(pos < loads.len(), "router chose position {pos} of {}", loads.len());
                let g = loads[pos].group;
                sims[g].push_redispatch(spec, t);
                loads[pos].outstanding += 1;
                loads[pos].kv_tokens += spec.kv_tokens();
                let n = attempts.entry(spec.id.0).or_insert(0);
                if *n > 0 {
                    log.retries += 1;
                    *retries_by_class.entry(spec.class).or_insert(0) += 1;
                }
                *n += 1;
                let idx = *id_to_index.get(&spec.id.0).expect("pending spec is in the trace");
                if routed[idx] == usize::MAX {
                    routed[idx] = g;
                }
            }
        }

        // Arrival phase: route every arrival of the epoch starting at `t`
        // against the boundary snapshot, bumping the index optimistically
        // so intra-epoch bursts still spread. Saturation-shed arrivals
        // never dispatch; with no live group the rest are deferred until
        // the next recovery.
        let epoch_end =
            Time::from_ps(t.as_ps().checked_add(epoch_ps).expect("epoch end overflows Time"));
        while cursor < trace.len() && trace[cursor].arrival < epoch_end {
            let spec = trace[cursor];
            let idx = cursor;
            cursor += 1;
            if shedding {
                let sat = fleet_saturation(
                    &loads,
                    system.total_slots() as u64,
                    system.kv_budget_tokens() * system.replicas() as u64,
                    None,
                );
                if !options.admission.admits(spec.class, sat) {
                    log.shed.push((spec.id, spec.class));
                    continue;
                }
            }
            if loads.is_empty() {
                pending.insert((spec.arrival, spec.arrival, spec.id.0), spec);
                continue;
            }
            let pos = router.route(&spec, &loads);
            assert!(pos < loads.len(), "router chose position {pos} of {}", loads.len());
            let g = loads[pos].group;
            sims[g].push_arrival(spec);
            loads[pos].outstanding += 1;
            loads[pos].kv_tokens += spec.kv_tokens();
            routed[idx] = g;
            if faulty {
                *attempts.entry(spec.id.0).or_insert(0) += 1;
            }
        }
    }
    // Anything still pending is undispatchable: the fleet died and never
    // recovered.
    for (_, spec) in pending {
        log.dropped.push((spec.id, spec.class));
    }
    for (g, since) in down_since.iter().enumerate() {
        if let Some(start) = *since {
            log.down_windows.push((g, start, None));
        }
    }
    log.retries_by_class = retries_by_class.into_iter().collect();
    if track {
        log.horizon = trace.last().map(|s| s.arrival).unwrap_or(Time::ZERO);
    }

    let per_group_qps = offered_qps / options.groups as f64;
    let outcomes = finish_groups(sims, per_group_qps, options.threads);
    let report = if track {
        FleetReport::from_outcomes_faulted(offered_qps, &outcomes, &log)
    } else {
        FleetReport::from_outcomes(offered_qps, &outcomes)
    };
    debug_assert!(
        !track
            || report.completed + report.rejected + log.dropped.len() + log.shed.len()
                == trace.len(),
        "conservation: {} completed + {} rejected + {} dropped + {} shed != {} offered",
        report.completed,
        report.rejected,
        log.dropped.len(),
        log.shed.len(),
        trace.len()
    );
    FleetOutcome { report, groups: outcomes, routed, faults: log }
}

/// Advances every group to `limit`, sharding contiguous chunks across
/// worker threads. Groups are independent, so any sharding computes the
/// same per-group state.
pub(crate) fn advance_groups(sims: &mut [GroupSim], limit: Time, threads: usize) {
    if threads <= 1 || sims.len() <= 1 {
        for sim in sims.iter_mut() {
            sim.advance_to(limit);
        }
        return;
    }
    let chunk = sims.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for part in sims.chunks_mut(chunk) {
            scope.spawn(move || {
                for sim in part {
                    sim.advance_to(limit);
                }
            });
        }
    });
}

/// Drains every group to completion and collects outcomes in group order.
pub(crate) fn finish_groups(sims: Vec<GroupSim>, qps: f64, threads: usize) -> Vec<GroupOutcome> {
    let mut sims: Vec<Option<GroupSim>> = sims.into_iter().map(Some).collect();
    let mut out: Vec<Option<GroupOutcome>> = sims.iter().map(|_| None).collect();
    if threads <= 1 || sims.len() <= 1 {
        for (sim, slot) in sims.iter_mut().zip(out.iter_mut()) {
            *slot = Some(sim.take().expect("group not yet finished").finish(qps));
        }
    } else {
        let chunk = sims.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (sim_part, out_part) in sims.chunks_mut(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (sim, slot) in sim_part.iter_mut().zip(out_part.iter_mut()) {
                        *slot = Some(sim.take().expect("group not yet finished").finish(qps));
                    }
                });
            }
        });
    }
    out.into_iter().map(|o| o.expect("every group finished")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{JoinShortestQueue, PowerOfTwoChoices, RoundRobin};
    use cent_model::ModelConfig;
    use cent_serving::{KvBudget, KvMode, SchedulerConfig, Workload};

    fn tiny_system() -> ServingSystem {
        ServingSystem::from_parts(
            &ModelConfig::llama2_7b(),
            SchedulerConfig {
                replicas: 1,
                slots_per_replica: 4,
                kv_budget: KvBudget::tokens(4000),
                kv: KvMode::FullReservation,
            },
            Time::from_us(1000),
            1000.0,
            4000.0,
        )
    }

    fn trace(qps: f64, seed: u64, horizon_s: f64) -> Vec<RequestSpec> {
        let w = Workload {
            lengths: cent_serving::LengthSampler::Fixed { prompt: 10, decode: 40 },
            ..Workload::chatbot(qps, seed)
        };
        w.generate(Time::from_secs_f64(horizon_s), 4096)
    }

    /// Long-decode trace: ~half-second service times keep every group
    /// busy, so a mid-run crash is guaranteed to strand in-flight work.
    fn heavy_trace(qps: f64, seed: u64, horizon_s: f64) -> Vec<RequestSpec> {
        let w = Workload {
            lengths: cent_serving::LengthSampler::Fixed { prompt: 10, decode: 400 },
            ..Workload::chatbot(qps, seed)
        };
        w.generate(Time::from_secs_f64(horizon_s), 4096)
    }

    #[test]
    fn fleet_of_one_matches_the_single_system_run() {
        // With one group every router is the identity, so the group's
        // outcome must equal a direct ServingSystem run bit for bit.
        let sys = tiny_system();
        let trace = trace(30.0, 11, 2.0);
        let (solo, _) = sys.serve_trace_instrumented(&trace, 30.0, ServeOptions::default());
        let mut router = JoinShortestQueue;
        let fleet =
            simulate_fleet_instrumented(&sys, &trace, 30.0, &mut router, &FleetOptions::new(1));
        assert_eq!(fleet.groups[0].report, solo);
        assert_eq!(fleet.report.completed, solo.completed);
        assert_eq!(fleet.report.ttft, solo.ttft);
        assert_eq!(fleet.report.query_latency, solo.query_latency);
        assert!(fleet.routed.iter().all(|&g| g == 0));
        assert_eq!(fleet.faults, FaultLog::default());
        assert_eq!(fleet.report.degraded, None);
    }

    #[test]
    fn every_request_is_served_exactly_once() {
        let sys = tiny_system();
        let trace = trace(100.0, 3, 2.0);
        for router in [
            &mut RoundRobin::default() as &mut dyn RoutingPolicy,
            &mut JoinShortestQueue,
            &mut PowerOfTwoChoices::seeded(5),
        ] {
            let fleet = simulate_fleet_instrumented(
                &sys,
                &trace,
                100.0,
                router,
                &FleetOptions::new(4).with_epoch(Time::from_secs_f64(0.05)),
            );
            assert_eq!(fleet.routed.len(), trace.len());
            assert_eq!(fleet.report.submitted, trace.len());
            assert_eq!(fleet.report.completed, trace.len());
            let mut ids: Vec<u64> =
                fleet.groups.iter().flat_map(|o| o.records.iter().map(|r| r.spec.id.0)).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..trace.len() as u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn jsq_balances_better_than_round_robin_never_worse() {
        let sys = tiny_system();
        let trace = trace(120.0, 9, 3.0);
        let opts = FleetOptions::new(4).with_epoch(Time::from_secs_f64(0.02));
        let jsq = simulate_fleet(&sys, &trace, 120.0, &mut JoinShortestQueue, &opts);
        assert!(jsq.imbalance.max_share < 1.5, "JSQ spread {:?}", jsq.imbalance);
        assert!(jsq.imbalance.min_share > 0.5);
    }

    #[test]
    fn epoch_width_changes_routing_but_not_accounting() {
        // Different epochs may route differently (fresher load signals),
        // but conservation holds and the report stays self-consistent.
        let sys = tiny_system();
        let trace = trace(80.0, 21, 2.0);
        for epoch_s in [0.01, 0.1, 1.0] {
            let fleet = simulate_fleet(
                &sys,
                &trace,
                80.0,
                &mut JoinShortestQueue,
                &FleetOptions::new(3).with_epoch(Time::from_secs_f64(epoch_s)),
            );
            assert_eq!(fleet.completed, trace.len(), "epoch {epoch_s}");
            assert_eq!(fleet.per_group.iter().map(|g| g.submitted).sum::<usize>(), trace.len());
        }
    }

    #[test]
    fn crash_orphans_are_retried_on_survivors() {
        let sys = tiny_system();
        let trace = heavy_trace(60.0, 13, 2.0);
        let faults = FaultSchedule::new(vec![FaultSpec::GroupCrash {
            group: 0,
            at: Time::from_secs_f64(0.5),
            recover_after: Some(Time::from_secs_f64(0.8)),
        }]);
        let opts = FleetOptions::new(3).with_epoch(Time::from_secs_f64(0.05)).with_faults(faults);
        let fleet = simulate_fleet_instrumented(&sys, &trace, 60.0, &mut JoinShortestQueue, &opts);
        assert_eq!(fleet.faults.crashes, 1);
        assert_eq!(fleet.faults.recoveries, 1);
        assert!(!fleet.faults.orphaned.is_empty(), "a loaded group must have had work");
        assert_eq!(fleet.faults.retries, fleet.faults.orphaned.len() as u64);
        assert!(fleet.faults.dropped.is_empty(), "one crash cannot exhaust 3 attempts");
        // Every request still completes exactly once.
        assert_eq!(fleet.report.completed, trace.len());
        let mut ids: Vec<u64> =
            fleet.groups.iter().flat_map(|o| o.records.iter().map(|r| r.spec.id.0)).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..trace.len() as u64).collect::<Vec<_>>());
        let degraded = fleet.report.degraded.as_ref().expect("faulted run reports degraded mode");
        assert!(degraded.availability < 1.0);
        assert!(degraded.availability > 0.0);
        assert_eq!(degraded.retries, fleet.faults.retries);
    }

    #[test]
    fn permanent_fleet_death_drops_requests() {
        // Both groups die early and never recover: everything not already
        // completed is dropped, and conservation still holds.
        let sys = tiny_system();
        let trace = trace(40.0, 17, 2.0);
        let faults = FaultSchedule::new(
            (0..2)
                .map(|g| FaultSpec::GroupCrash {
                    group: g,
                    at: Time::from_secs_f64(0.3),
                    recover_after: None,
                })
                .collect(),
        );
        let opts = FleetOptions::new(2).with_epoch(Time::from_secs_f64(0.05)).with_faults(faults);
        let fleet = simulate_fleet_instrumented(&sys, &trace, 40.0, &mut JoinShortestQueue, &opts);
        assert_eq!(fleet.faults.crashes, 2);
        assert_eq!(fleet.faults.recoveries, 0);
        assert!(!fleet.faults.dropped.is_empty());
        assert_eq!(
            fleet.report.completed + fleet.report.rejected + fleet.faults.dropped.len(),
            trace.len()
        );
        // Down windows stay open.
        assert!(fleet.faults.down_windows.iter().all(|&(_, _, up)| up.is_none()));
        let degraded = fleet.report.degraded.as_ref().expect("degraded section present");
        assert_eq!(degraded.drops, fleet.faults.dropped.len());
        assert!(degraded.availability < 1.0);
    }

    #[test]
    fn straggler_group_attracts_less_jsq_traffic() {
        let sys = tiny_system();
        let trace = trace(100.0, 23, 3.0);
        let faults = FaultSchedule::new(vec![FaultSpec::Straggler { group: 0, slowdown: 3.0 }]);
        let opts = FleetOptions::new(3).with_epoch(Time::from_secs_f64(0.02)).with_faults(faults);
        let fleet = simulate_fleet_instrumented(&sys, &trace, 100.0, &mut JoinShortestQueue, &opts);
        assert_eq!(fleet.report.completed, trace.len());
        let slow = fleet.report.per_group[0].submitted;
        let healthy = fleet.report.per_group[1].submitted.min(fleet.report.per_group[2].submitted);
        assert!(slow < healthy, "JSQ should shed load off the 3x straggler: {slow} vs {healthy}");
    }

    #[test]
    fn zero_fault_schedule_is_bit_identical_to_the_healthy_path() {
        let sys = tiny_system();
        let trace = trace(90.0, 29, 2.0);
        let base = FleetOptions::new(4).with_epoch(Time::from_secs_f64(0.05));
        let healthy =
            simulate_fleet_instrumented(&sys, &trace, 90.0, &mut JoinShortestQueue, &base);
        let scheduled = simulate_fleet_instrumented(
            &sys,
            &trace,
            90.0,
            &mut JoinShortestQueue,
            &base.clone().with_faults(FaultSchedule::empty()),
        );
        assert_eq!(healthy.report, scheduled.report);
        assert_eq!(healthy.routed, scheduled.routed);
    }
}
