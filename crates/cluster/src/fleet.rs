//! The sharded fleet driver: epoch-based routing over N replica groups,
//! fanned out across `std::thread::scope` workers inside one simulation.
//!
//! # Determinism contract
//!
//! The trace is partitioned into fixed-width time *epochs*. At each epoch
//! boundary the driver advances every group to the boundary instant,
//! refreshes the per-group [`GroupLoad`] index from true scheduler state,
//! and then routes every arrival of the epoch against that snapshot
//! (bumping the index optimistically per assignment). Routing therefore
//! depends only on (trace, router state, epoch length) — never on worker
//! interleaving — and each group's simulation is single-threaded and
//! deterministic, so the merged [`FleetReport`] is bit-identical across
//! worker-thread counts. Epochs with no arrivals are coalesced: refreshing
//! a load snapshot nobody reads is a no-op, so jumping straight to the
//! next arrival's epoch is observationally identical and makes sparse
//! multi-hour traces cheap.

use cent_serving::{GroupOutcome, GroupSim, RequestSpec, ServeOptions, ServingSystem};
use cent_types::Time;

use crate::report::FleetReport;
use crate::router::{GroupLoad, RoutingPolicy};

/// Fleet-level knobs: group count, worker threads, epoch width and the
/// per-group serving options.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Independent replica groups behind the router.
    pub groups: usize,
    /// Worker threads sharding the groups (1 = fully inline). Any value
    /// yields the same [`FleetReport`]; this only trades wall-clock.
    pub threads: usize,
    /// Epoch width: the granularity at which the router's load index is
    /// refreshed from true group state. Smaller epochs mean fresher load
    /// signals and more synchronization barriers.
    pub epoch: Time,
    /// Serving options applied to every group.
    pub serve: ServeOptions,
}

impl FleetOptions {
    /// `groups` groups, one worker thread, a 100 ms epoch and default
    /// serving options.
    pub fn new(groups: usize) -> Self {
        assert!(groups > 0, "a fleet needs at least one group");
        FleetOptions {
            groups,
            threads: 1,
            epoch: Time::from_secs_f64(0.1),
            serve: ServeOptions::default(),
        }
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the epoch width.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is zero.
    pub fn with_epoch(mut self, epoch: Time) -> Self {
        assert!(epoch > Time::ZERO, "epoch must be positive");
        self.epoch = epoch;
        self
    }

    /// Sets the per-group serving options.
    pub fn with_serve(mut self, serve: ServeOptions) -> Self {
        self.serve = serve;
        self
    }
}

/// Everything one fleet run produced: the merged report, the per-group
/// outcomes (in group order) and the routing decision per trace entry.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The merged fleet-wide report.
    pub report: FleetReport,
    /// Per-group outcomes, indexed by group.
    pub groups: Vec<GroupOutcome>,
    /// Group index each trace entry was routed to, aligned with the trace.
    pub routed: Vec<usize>,
}

/// Simulates `trace` over a fleet of identical replica groups and returns
/// the merged fleet report. See the module docs for the determinism
/// contract; `trace` must be sorted by arrival time (as
/// [`Workload::generate`](cent_serving::Workload::generate) produces).
pub fn simulate_fleet(
    system: &ServingSystem,
    trace: &[RequestSpec],
    offered_qps: f64,
    router: &mut dyn RoutingPolicy,
    options: &FleetOptions,
) -> FleetReport {
    simulate_fleet_instrumented(system, trace, offered_qps, router, options).report
}

/// [`simulate_fleet`], additionally returning per-group outcomes and the
/// per-request routing decisions (property tests and router studies).
pub fn simulate_fleet_instrumented(
    system: &ServingSystem,
    trace: &[RequestSpec],
    offered_qps: f64,
    router: &mut dyn RoutingPolicy,
    options: &FleetOptions,
) -> FleetOutcome {
    let epoch_ps = options.epoch.as_ps().max(1);
    let mut sims: Vec<GroupSim> =
        (0..options.groups).map(|_| GroupSim::new(system, options.serve.clone())).collect();
    let mut loads = vec![GroupLoad::default(); options.groups];
    let mut routed = Vec::with_capacity(trace.len());
    let mut cursor = 0;
    while cursor < trace.len() {
        let arrival = trace[cursor].arrival;
        debug_assert!(
            cursor == 0 || trace[cursor - 1].arrival <= arrival,
            "trace must be sorted by arrival"
        );
        // Coalesced jump to the epoch holding the next arrival.
        let epoch_start = Time::from_ps((arrival.as_ps() / epoch_ps) * epoch_ps);
        let epoch_end = Time::from_ps(epoch_start.as_ps().saturating_add(epoch_ps));
        advance_groups(&mut sims, epoch_start, options.threads);
        for (g, (load, sim)) in loads.iter_mut().zip(&sims).enumerate() {
            *load = GroupLoad {
                group: g,
                outstanding: sim.outstanding(),
                kv_tokens: sim.kv_reserved(),
            };
        }
        // Route the whole epoch against the boundary snapshot, bumping the
        // index optimistically so intra-epoch bursts still spread.
        while cursor < trace.len() && trace[cursor].arrival < epoch_end {
            let spec = trace[cursor];
            let pos = router.route(&spec, &loads);
            assert!(pos < loads.len(), "router chose position {pos} of {}", loads.len());
            let g = loads[pos].group;
            sims[g].push_arrival(spec);
            loads[pos].outstanding += 1;
            loads[pos].kv_tokens += spec.kv_tokens();
            routed.push(g);
            cursor += 1;
        }
    }
    let per_group_qps = offered_qps / options.groups as f64;
    let outcomes = finish_groups(sims, per_group_qps, options.threads);
    let report = FleetReport::from_outcomes(offered_qps, &outcomes);
    FleetOutcome { report, groups: outcomes, routed }
}

/// Advances every group to `limit`, sharding contiguous chunks across
/// worker threads. Groups are independent, so any sharding computes the
/// same per-group state.
fn advance_groups(sims: &mut [GroupSim], limit: Time, threads: usize) {
    if threads <= 1 || sims.len() <= 1 {
        for sim in sims.iter_mut() {
            sim.advance_to(limit);
        }
        return;
    }
    let chunk = sims.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for part in sims.chunks_mut(chunk) {
            scope.spawn(move || {
                for sim in part {
                    sim.advance_to(limit);
                }
            });
        }
    });
}

/// Drains every group to completion and collects outcomes in group order.
fn finish_groups(sims: Vec<GroupSim>, qps: f64, threads: usize) -> Vec<GroupOutcome> {
    let mut sims: Vec<Option<GroupSim>> = sims.into_iter().map(Some).collect();
    let mut out: Vec<Option<GroupOutcome>> = sims.iter().map(|_| None).collect();
    if threads <= 1 || sims.len() <= 1 {
        for (sim, slot) in sims.iter_mut().zip(out.iter_mut()) {
            *slot = Some(sim.take().expect("group not yet finished").finish(qps));
        }
    } else {
        let chunk = sims.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (sim_part, out_part) in sims.chunks_mut(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (sim, slot) in sim_part.iter_mut().zip(out_part.iter_mut()) {
                        *slot = Some(sim.take().expect("group not yet finished").finish(qps));
                    }
                });
            }
        });
    }
    out.into_iter().map(|o| o.expect("every group finished")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{JoinShortestQueue, PowerOfTwoChoices, RoundRobin};
    use cent_model::ModelConfig;
    use cent_serving::{KvBudget, KvMode, SchedulerConfig, Workload};

    fn tiny_system() -> ServingSystem {
        ServingSystem::from_parts(
            &ModelConfig::llama2_7b(),
            SchedulerConfig {
                replicas: 1,
                slots_per_replica: 4,
                kv_budget: KvBudget::tokens(4000),
                kv: KvMode::FullReservation,
            },
            Time::from_us(1000),
            1000.0,
            4000.0,
        )
    }

    fn trace(qps: f64, seed: u64, horizon_s: f64) -> Vec<RequestSpec> {
        let w = Workload {
            lengths: cent_serving::LengthSampler::Fixed { prompt: 10, decode: 40 },
            ..Workload::chatbot(qps, seed)
        };
        w.generate(Time::from_secs_f64(horizon_s), 4096)
    }

    #[test]
    fn fleet_of_one_matches_the_single_system_run() {
        // With one group every router is the identity, so the group's
        // outcome must equal a direct ServingSystem run bit for bit.
        let sys = tiny_system();
        let trace = trace(30.0, 11, 2.0);
        let (solo, _) = sys.serve_trace_instrumented(&trace, 30.0, ServeOptions::default());
        let mut router = JoinShortestQueue;
        let fleet =
            simulate_fleet_instrumented(&sys, &trace, 30.0, &mut router, &FleetOptions::new(1));
        assert_eq!(fleet.groups[0].report, solo);
        assert_eq!(fleet.report.completed, solo.completed);
        assert_eq!(fleet.report.ttft, solo.ttft);
        assert_eq!(fleet.report.query_latency, solo.query_latency);
        assert!(fleet.routed.iter().all(|&g| g == 0));
    }

    #[test]
    fn every_request_is_served_exactly_once() {
        let sys = tiny_system();
        let trace = trace(100.0, 3, 2.0);
        for router in [
            &mut RoundRobin::default() as &mut dyn RoutingPolicy,
            &mut JoinShortestQueue,
            &mut PowerOfTwoChoices::seeded(5),
        ] {
            let fleet = simulate_fleet_instrumented(
                &sys,
                &trace,
                100.0,
                router,
                &FleetOptions::new(4).with_epoch(Time::from_secs_f64(0.05)),
            );
            assert_eq!(fleet.routed.len(), trace.len());
            assert_eq!(fleet.report.submitted, trace.len());
            assert_eq!(fleet.report.completed, trace.len());
            let mut ids: Vec<u64> =
                fleet.groups.iter().flat_map(|o| o.records.iter().map(|r| r.spec.id.0)).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..trace.len() as u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn jsq_balances_better_than_round_robin_never_worse() {
        let sys = tiny_system();
        let trace = trace(120.0, 9, 3.0);
        let opts = FleetOptions::new(4).with_epoch(Time::from_secs_f64(0.02));
        let jsq = simulate_fleet(&sys, &trace, 120.0, &mut JoinShortestQueue, &opts);
        assert!(jsq.imbalance.max_share < 1.5, "JSQ spread {:?}", jsq.imbalance);
        assert!(jsq.imbalance.min_share > 0.5);
    }

    #[test]
    fn epoch_width_changes_routing_but_not_accounting() {
        // Different epochs may route differently (fresher load signals),
        // but conservation holds and the report stays self-consistent.
        let sys = tiny_system();
        let trace = trace(80.0, 21, 2.0);
        for epoch_s in [0.01, 0.1, 1.0] {
            let fleet = simulate_fleet(
                &sys,
                &trace,
                80.0,
                &mut JoinShortestQueue,
                &FleetOptions::new(3).with_epoch(Time::from_secs_f64(epoch_s)),
            );
            assert_eq!(fleet.completed, trace.len(), "epoch {epoch_s}");
            assert_eq!(fleet.per_group.iter().map(|g| g.submitted).sum::<usize>(), trace.len());
        }
    }
}
