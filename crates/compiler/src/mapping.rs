//! System-level model mapping: PP, TP, hybrid TP-PP and DP (§5.1-5.3).

use cent_types::consts::{CHANNELS_PER_DEVICE, CHANNEL_CAPACITY};
use cent_types::{ByteSize, CentError, CentResult, DeviceId};

use cent_model::ModelConfig;

/// A parallelisation strategy for distributing the model over CXL devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Pipeline parallel: each transformer block is a pipeline stage mapped
    /// to channels of a single device; the batch equals the stage count
    /// (§5.1).
    PipelineParallel,
    /// Tensor parallel: every block is sharded across all devices; the
    /// attention layer stays on the master device (§5.2). Batch 1.
    TensorParallel,
    /// Hybrid: groups of `tp` consecutive devices shard each block; the
    /// pipeline runs across groups (§5.3).
    Hybrid {
        /// Devices per tensor-parallel group.
        tp: usize,
    },
    /// Data parallel over independent pipeline-parallel replicas (used in
    /// the Figure 19 scalability study).
    DataParallel {
        /// Number of PP replicas.
        replicas: usize,
    },
}

/// Assignment of blocks to one device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceAssignment {
    /// The device.
    pub device: DeviceId,
    /// Block indices hosted (pipeline stages for PP).
    pub blocks: Vec<usize>,
    /// Channels given to each hosted block.
    pub channels_per_block: usize,
}

/// A planned mapping of a model onto a CENT system.
#[derive(Debug, Clone)]
pub struct SystemMapping {
    /// The model.
    pub cfg: ModelConfig,
    /// The strategy.
    pub strategy: Strategy,
    /// Devices available.
    pub devices: usize,
    /// Devices actually used.
    pub used_devices: usize,
    /// Per-device block assignments (PP and hybrid; empty for pure TP).
    pub assignments: Vec<DeviceAssignment>,
    /// Blocks hosted per used device.
    pub blocks_per_device: usize,
    /// Channels per block (within one device or one TP shard).
    pub channels_per_block: usize,
    /// Concurrent queries in flight (PP: one per stage; TP: 1).
    pub batch: usize,
    /// Data-parallel replica count.
    pub replicas: usize,
    /// Tensor-parallel shard count per block.
    pub tp_degree: usize,
}

impl SystemMapping {
    /// Plans `cfg` over `devices` CXL devices with `strategy`.
    ///
    /// # Errors
    ///
    /// Fails if the model cannot fit the devices under the paper's rules
    /// (a stage never splits across devices; weights + KV caches must fit
    /// the channels assigned).
    pub fn plan(cfg: &ModelConfig, devices: usize, strategy: Strategy) -> CentResult<Self> {
        if devices == 0 {
            return Err(CentError::mapping("no devices"));
        }
        match strategy {
            Strategy::PipelineParallel => Self::plan_pp(cfg, devices, 1),
            Strategy::DataParallel { replicas } => {
                if replicas == 0 || !devices.is_multiple_of(replicas) {
                    return Err(CentError::mapping(format!(
                        "{devices} devices cannot host {replicas} equal replicas"
                    )));
                }
                let mut plan = Self::plan_pp(cfg, devices / replicas, replicas)?;
                plan.strategy = strategy;
                Ok(plan)
            }
            Strategy::TensorParallel => {
                let channels_per_block = CHANNELS_PER_DEVICE;
                let plan = Self {
                    cfg: cfg.clone(),
                    strategy,
                    devices,
                    used_devices: devices,
                    assignments: Vec::new(),
                    blocks_per_device: cfg.layers,
                    channels_per_block,
                    batch: 1,
                    replicas: 1,
                    tp_degree: devices,
                };
                plan.check_memory(cfg.layers, devices * CHANNELS_PER_DEVICE, 1)?;
                Ok(plan)
            }
            Strategy::Hybrid { tp } => {
                if tp == 0 || !devices.is_multiple_of(tp) {
                    return Err(CentError::mapping(format!(
                        "{devices} devices cannot form groups of {tp}"
                    )));
                }
                let groups = devices / tp;
                let mut plan = Self::plan_pp_groups(cfg, groups, tp)?;
                plan.strategy = strategy;
                plan.devices = devices;
                plan.tp_degree = tp;
                Ok(plan)
            }
        }
    }

    fn plan_pp(cfg: &ModelConfig, devices: usize, replicas: usize) -> CentResult<Self> {
        let mut plan = Self::plan_pp_groups(cfg, devices, 1)?;
        plan.replicas = replicas;
        plan.devices = devices * replicas;
        Ok(plan)
    }

    /// PP planning over `groups` pipeline units, each `tp` devices wide.
    fn plan_pp_groups(cfg: &ModelConfig, groups: usize, tp: usize) -> CentResult<Self> {
        let layers = cfg.layers;
        // Per the paper (§7.4): never split a block across pipeline units;
        // if blocks don't divide evenly, keep the same blocks-per-unit and
        // leave the remainder idle.
        let bpd = layers.div_ceil(groups);
        let used_groups = layers.div_ceil(bpd);
        let channels_per_block = CHANNELS_PER_DEVICE / bpd;
        if channels_per_block == 0 {
            return Err(CentError::mapping(format!(
                "{bpd} blocks per device exceed the 32 channels"
            )));
        }
        let batch = layers; // batch size = pipeline stages (§7.1)
        let mut plan = Self {
            cfg: cfg.clone(),
            strategy: Strategy::PipelineParallel,
            devices: groups * tp,
            used_devices: used_groups * tp,
            assignments: Vec::new(),
            blocks_per_device: bpd,
            channels_per_block,
            batch,
            replicas: 1,
            tp_degree: tp,
        };
        plan.check_memory(bpd, channels_per_block * bpd * tp, batch)?;
        let mut next_block = 0;
        for g in 0..used_groups {
            let blocks: Vec<usize> = (next_block..(next_block + bpd).min(layers)).collect();
            next_block += bpd;
            for d in 0..tp {
                plan.assignments.push(DeviceAssignment {
                    device: DeviceId((g * tp + d) as u16),
                    blocks: blocks.clone(),
                    channels_per_block,
                });
            }
        }
        Ok(plan)
    }

    /// Validates that `blocks` blocks of weights plus the KV caches of
    /// `batch` queries fit in `channels` channels.
    fn check_memory(&self, blocks: usize, channels: usize, batch: usize) -> CentResult<()> {
        let per_block = self.cfg.block_weight_bytes().as_bytes()
            + self.cfg.kv_bytes_per_token_per_block().as_bytes()
                * self.cfg.max_context as u64
                * batch as u64;
        let need = ByteSize::bytes(per_block * blocks as u64);
        let have = ByteSize::bytes(CHANNEL_CAPACITY.as_bytes() * channels as u64);
        if need.as_bytes() > have.as_bytes() {
            return Err(CentError::OutOfMemory(format!(
                "{blocks} block(s) need {need} but {channels} channels hold {have}",
            )));
        }
        Ok(())
    }

    /// Bytes of the embedding vector exchanged between pipeline stages
    /// (16 KB for Llama2-70B, §5.1).
    pub fn embedding_bytes(&self) -> ByteSize {
        ByteSize::bytes(self.cfg.hidden as u64 * 2)
    }

    /// CXL traffic per transformer block under TP: broadcast of the
    /// embedding plus gather of the partial FC results (§5.2 quotes 135 KB
    /// per block for Llama2-70B on 32 devices).
    pub fn tp_traffic_per_block(&self) -> ByteSize {
        let h = self.cfg.hidden as u64;
        let kv = self.cfg.kv_dim() as u64;
        let f = self.cfg.ffn_hidden as u64;
        let d = self.tp_degree.max(1) as u64;
        // Broadcasts: one embedding before QKV, one before FFN, one before Wo.
        let bcast = 3 * h * 2;
        // Gathers: each device returns its output-row shard of every FC.
        let gather = (h + 2 * kv + h + 2 * f + h) * 2;
        let _ = d;
        ByteSize::bytes(bcast + gather)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama70b_pp_matches_paper_deployment() {
        // 80 blocks on 32 devices → 3 per device, 27 devices used (§7.2).
        let plan = SystemMapping::plan(&ModelConfig::llama2_70b(), 32, Strategy::PipelineParallel)
            .unwrap();
        assert_eq!(plan.blocks_per_device, 3);
        assert_eq!(plan.used_devices, 27);
        assert_eq!(plan.channels_per_block, 10);
        assert_eq!(plan.batch, 80);
    }

    #[test]
    fn llama7b_on_8_devices() {
        // 32 blocks on 8 devices → 4 per device, batch 32 (Fig 13).
        let plan =
            SystemMapping::plan(&ModelConfig::llama2_7b(), 8, Strategy::PipelineParallel).unwrap();
        assert_eq!(plan.blocks_per_device, 4);
        assert_eq!(plan.used_devices, 8);
        assert_eq!(plan.channels_per_block, 8);
        assert_eq!(plan.batch, 32);
    }

    #[test]
    fn idle_devices_when_blocks_do_not_divide() {
        // §7.4: 80 blocks over 44 devices keeps the 40-device distribution.
        let plan = SystemMapping::plan(&ModelConfig::llama2_70b(), 44, Strategy::PipelineParallel)
            .unwrap();
        assert_eq!(plan.blocks_per_device, 2);
        assert_eq!(plan.used_devices, 40);
    }

    #[test]
    fn tensor_parallel_uses_all_devices_batch_one() {
        let plan =
            SystemMapping::plan(&ModelConfig::llama2_70b(), 32, Strategy::TensorParallel).unwrap();
        assert_eq!(plan.batch, 1);
        assert_eq!(plan.tp_degree, 32);
        assert!(plan.assignments.is_empty());
    }

    #[test]
    fn hybrid_splits_into_groups() {
        let plan = SystemMapping::plan(&ModelConfig::llama2_70b(), 32, Strategy::Hybrid { tp: 8 })
            .unwrap();
        // 4 pipeline groups of 8 devices.
        assert_eq!(plan.tp_degree, 8);
        assert_eq!(plan.blocks_per_device, 20);
        assert_eq!(plan.assignments.len(), 32);
    }

    #[test]
    fn data_parallel_replicates_pipelines() {
        let plan = SystemMapping::plan(
            &ModelConfig::llama2_70b(),
            80,
            Strategy::DataParallel { replicas: 2 },
        )
        .unwrap();
        assert_eq!(plan.replicas, 2);
        assert_eq!(plan.blocks_per_device, 2);
    }

    #[test]
    fn memory_overflow_is_detected() {
        // 70B on 2 devices: 40 blocks per device cannot fit 32 channels.
        let err = SystemMapping::plan(&ModelConfig::llama2_70b(), 2, Strategy::PipelineParallel)
            .unwrap_err();
        assert!(matches!(err, CentError::MappingFailed(_) | CentError::OutOfMemory(_)));
    }

    #[test]
    fn tp_traffic_is_around_135kb_for_70b() {
        let plan =
            SystemMapping::plan(&ModelConfig::llama2_70b(), 32, Strategy::TensorParallel).unwrap();
        let kb = plan.tp_traffic_per_block().as_bytes() as f64 / 1024.0;
        // §5.2 quotes 135 KB/block; our accounting lands in that band.
        assert!(kb > 100.0 && kb < 250.0, "{kb} KB");
        assert_eq!(plan.embedding_bytes(), ByteSize::kib(16));
    }
}
