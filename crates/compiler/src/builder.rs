//! Instruction-trace builder: compiles LLM operations to CENT instructions.
//!
//! [`TraceBuilder::gemv`] is the paper's Figure 11 compilation (vector to
//! Global Buffer, `WR_BIAS`/`MAC_ABK`/`RD_MAC` per matrix-row group),
//! generalised to:
//!
//! * multi-channel sharding with element-ordered Shared Buffer output;
//! * input tiling through the 64-slot Global Buffer;
//! * *chunked accumulation* for matrices whose output exceeds the
//!   32 accumulation registers × 16 banks budget: partials drain through
//!   `RD_MAC` and accumulate in the Shared Buffer via the PNM `ACC` units;
//! * input sourced either from the Shared Buffer (`WR_GB`) or directly from
//!   DRAM scratch banks (`COPY_BKGB`), which is how normalised vectors and
//!   FFN products flow without occupying Shared Buffer space.

use cent_types::consts::{ACC_REGS_PER_PU, COLS_PER_ROW, GLOBAL_BUFFER_SLOTS, LANES_PER_BEAT};
use cent_types::{
    AccRegId, BankId, CentError, CentResult, ChannelId, ChannelMask, ColAddr, RowAddr, SbSlot,
};

use cent_isa::{Instruction, MacOperand};

use crate::layout::GemvLayout;

/// Which block phase an instruction belongs to (latency attribution for the
/// tensor-parallel composition and Figure 14c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlockPhase {
    /// RMSNorm choreography (dot product, scale, element-wise multiply).
    Norm,
    /// Q/K/V projection GEMVs.
    FcQkv,
    /// Rotary-embedding products and combines.
    Rope,
    /// KV-cache appends.
    KvAppend,
    /// Attention scores, softmax and value accumulation.
    Attention,
    /// Output projection.
    FcWo,
    /// FFN matrices and gate products.
    FcFfn,
    /// Anything else (setup, communication).
    Other,
}

/// Well-known RISC-V routine PCs (mirrors `cent_device::riscv_pc`; duplicated
/// here so the compiler does not depend on the device crate).
pub mod pc {
    /// `1/sqrt(x)`.
    pub const RSQRT: u32 = 0x100;
    /// `1/x`.
    pub const RECIP: u32 = 0x200;
    /// RMSNorm scale.
    pub const RMSNORM_SCALE: u32 = 0x300;
    /// Rotary-embedding combine.
    pub const ROPE_COMBINE: u32 = 0x400;
    /// Vector add.
    pub const VEC_ADD: u32 = 0x500;
    /// Vector × scalar.
    pub const VEC_SCALE: u32 = 0x600;
    /// Even/odd deinterleave (RoPE complex transform).
    pub const DEINTERLEAVE: u32 = 0x700;
    /// Scalar minus a count (softmax padding correction).
    pub const SUB_COUNT: u32 = 0x800;
    /// Zero the tail lanes of one beat (softmax pad clearing).
    pub const ZERO_TAIL: u32 = 0x900;
}

/// Where a GEMV input vector comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VecSource {
    /// Contiguous Shared Buffer slots (loaded to the GB with `WR_GB`).
    Sb(SbSlot),
    /// DRAM scratch: the vector sits in `bank` of **every** matrix channel
    /// starting at `(row, col 0)`, beat-contiguous (loaded with `COPY_BKGB`).
    Scratch {
        /// Bank holding the vector in each channel.
        bank: BankId,
        /// First DRAM row.
        row: RowAddr,
    },
    /// DRAM scratch as produced by [`TraceBuilder::ew_mul_scratch`]: the
    /// vector is quartered across bank groups — quarter `g` lives in bank
    /// `4g+2` with `per_group` beats starting at `(row, col 0)`.
    ScratchQuartered {
        /// First DRAM row of every quarter.
        row: RowAddr,
        /// Beats per quarter (the stride returned by `ew_mul_scratch`).
        per_group: usize,
    },
}

/// A Shared Buffer bump allocator for one block trace.
#[derive(Debug, Clone)]
pub struct SbAllocator {
    next: usize,
    high_water: usize,
}

impl SbAllocator {
    /// Starts allocating at slot `base`.
    pub fn new(base: usize) -> Self {
        SbAllocator { next: base, high_water: base }
    }

    /// Reserves `n` slots.
    ///
    /// # Errors
    ///
    /// Fails when the 2048-slot Shared Buffer is exhausted.
    pub fn alloc(&mut self, n: usize) -> CentResult<SbSlot> {
        let base = self.next;
        if base + n > cent_types::consts::SHARED_BUFFER_SLOTS {
            return Err(CentError::OutOfMemory(format!(
                "shared buffer exhausted: {} + {n} slots",
                base
            )));
        }
        self.next += n;
        self.high_water = self.high_water.max(self.next);
        Ok(SbSlot(base as u16))
    }

    /// Releases everything allocated after `mark` (region stacking).
    pub fn reset_to(&mut self, mark: SbSlot) {
        self.next = mark.index();
    }

    /// Current allocation point (for `reset_to`).
    pub fn mark(&self) -> SbSlot {
        SbSlot(self.next as u16)
    }

    /// Peak slots ever allocated.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

/// Builds a CENT instruction trace.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    trace: Vec<Instruction>,
    tags: Vec<BlockPhase>,
    phase: BlockPhase,
    /// Slot holding an all-zero beat (host-initialised).
    pub zero_slot: SbSlot,
    /// Slot holding an all-ones beat (host-initialised).
    pub ones_slot: SbSlot,
    /// Scratch slot for the RMSNorm scale scalar; fixed directly after the
    /// ones beat so `VEC_SCALE`'s "scalar at `rs + stride`" convention finds
    /// it when replicating (`rs = ones`, n = 16 → stride = 1 slot).
    pub scale_slot: SbSlot,
    /// Bump allocator for the rest of the buffer.
    pub sb: SbAllocator,
}

impl Default for TraceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceBuilder {
    /// Creates a builder. Slots 0 and 1 are reserved for the zero/one
    /// constant beats.
    pub fn new() -> Self {
        TraceBuilder {
            trace: Vec::new(),
            tags: Vec::new(),
            phase: BlockPhase::Other,
            zero_slot: SbSlot(0),
            ones_slot: SbSlot(1),
            scale_slot: SbSlot(2),
            sb: SbAllocator::new(3),
        }
    }

    /// Appends a raw instruction, tagged with the current phase.
    pub fn emit(&mut self, inst: Instruction) {
        self.trace.push(inst);
        self.tags.push(self.phase);
    }

    /// Sets the phase tag applied to subsequently emitted instructions.
    pub fn set_phase(&mut self, phase: BlockPhase) {
        self.phase = phase;
    }

    /// Per-instruction phase tags (parallel to [`Self::trace`]).
    pub fn tags(&self) -> &[BlockPhase] {
        &self.tags
    }

    /// Consumes the builder, returning `(trace, tags)`.
    pub fn finish_tagged(self) -> (Vec<Instruction>, Vec<BlockPhase>) {
        (self.trace, self.tags)
    }

    /// The instructions emitted so far.
    pub fn trace(&self) -> &[Instruction] {
        &self.trace
    }

    /// Consumes the builder, returning the trace.
    pub fn finish(self) -> Vec<Instruction> {
        self.trace
    }

    /// Loads one input tile into the Global Buffers of `chmask`.
    pub(crate) fn load_tile(
        &mut self,
        chmask: ChannelMask,
        source: VecSource,
        tile: usize,
        beats: usize,
    ) {
        match source {
            VecSource::Sb(base) => self.emit(Instruction::WrGb {
                chmask,
                opsize: beats as u32,
                gb_slot: 0,
                rs: base.offset((tile * GLOBAL_BUFFER_SLOTS) as u16),
            }),
            VecSource::Scratch { bank, row } => {
                // Tile t occupies beats [t·64, t·64+beats) of the scratch
                // run; one DRAM row holds exactly one tile.
                self.emit(Instruction::CopyBkGb {
                    chmask,
                    opsize: beats as u32,
                    bank,
                    row: RowAddr(row.0 + tile as u32),
                    col: ColAddr(0),
                    gb_slot: 0,
                });
            }
            VecSource::ScratchQuartered { row, per_group } => {
                // Quarters live in banks 4g+2; a GB tile may straddle
                // quarter boundaries, so split the copy per quarter run.
                let mut beat = tile * GLOBAL_BUFFER_SLOTS;
                let tile_end = beat + beats;
                let mut gb = 0u8;
                while beat < tile_end {
                    let quarter = beat / per_group;
                    let qbeat = beat % per_group;
                    let run = (tile_end - beat)
                        .min(per_group - qbeat)
                        .min(COLS_PER_ROW - qbeat % COLS_PER_ROW);
                    self.emit(Instruction::CopyBkGb {
                        chmask,
                        opsize: run as u32,
                        bank: BankId((4 * quarter + 2) as u16),
                        row: RowAddr(row.0 + (qbeat / COLS_PER_ROW) as u32),
                        col: ColAddr((qbeat % COLS_PER_ROW) as u32),
                        gb_slot: gb,
                    });
                    gb += run as u8;
                    beat += run;
                }
            }
        }
    }

    /// Figure 11: full GEMV of `layout` with input `source`, writing the
    /// element-ordered result to `out` (`layout.out_slots()` slots).
    ///
    /// `af_id` optionally applies an activation function to every
    /// accumulator before read-out (used for the FFN's SiLU).
    ///
    /// Only valid when the matrix fits one pass per physical register set
    /// (`layout.passes ≤ 1`) — larger matrices must use
    /// [`Self::gemv_accumulate`]. Multi-pass single-shot is still allowed;
    /// each pass has exclusive use of the registers because its `RD_MAC`
    /// completes before the next pass starts.
    pub fn gemv(&mut self, layout: &GemvLayout, source: VecSource, out: SbSlot, af_id: Option<u8>) {
        let chmask = layout.chmask();
        let channels = layout.channels.len();
        for pass in 0..layout.passes {
            let regs = layout.regs_in_pass(pass);
            for tile in 0..layout.tiles {
                let beats = layout.tile_beats(tile);
                self.load_tile(chmask, source, tile, beats);
                for reg in 0..regs {
                    if tile == 0 {
                        self.emit(Instruction::WrBias {
                            chmask,
                            rs: self.zero_slot,
                            reg: AccRegId::new(reg as u8),
                        });
                    }
                    self.emit(Instruction::MacAbk {
                        chmask,
                        opsize: beats as u32,
                        row: layout.dram_row(pass, reg, tile),
                        col: ColAddr(0),
                        reg: AccRegId::new(reg as u8),
                        operand: MacOperand::GlobalBuffer { slot: 0 },
                    });
                }
            }
            for reg in 0..regs {
                if let Some(af) = af_id {
                    self.emit(Instruction::Af { chmask, af_id: af, reg: AccRegId::new(reg as u8) });
                }
                self.emit(Instruction::RdMac {
                    chmask,
                    rd: SbSlot((out.index() + layout.out_slot(0, pass, reg)) as u16),
                    reg: AccRegId::new(reg as u8),
                });
            }
            let _ = channels;
        }
    }

    /// Chunk-accumulating GEMV: computes `out += M · v[chunk]` for one input
    /// chunk covering elements `[elem_base, elem_base + chunk_len)`.
    ///
    /// Used when the full input vector is produced piecewise (FFN product
    /// chunks, per-head attention outputs). Registers are zeroed at chunk
    /// start, partials drain via `RD_MAC` into `tmp`
    /// (`layout.out_slots()` slots), then `ACC` folds them into `out`.
    pub fn gemv_accumulate(
        &mut self,
        layout: &GemvLayout,
        source: VecSource,
        elem_base: usize,
        chunk_len: usize,
        tmp: SbSlot,
        out: SbSlot,
    ) {
        let chmask = layout.chmask();
        debug_assert_eq!(elem_base % LANES_PER_BEAT, 0, "chunks are beat-aligned");
        let pass_slots = ACC_REGS_PER_PU * layout.channels.len();
        for pass in 0..layout.passes {
            let regs = layout.regs_in_pass(pass);
            // Zero the registers for this chunk/pass.
            for reg in 0..regs {
                self.emit(Instruction::WrBias {
                    chmask,
                    rs: self.zero_slot,
                    reg: AccRegId::new(reg as u8),
                });
            }
            // Stream the chunk in ≤64-beat sub-tiles, splitting at DRAM-row
            // (= 1024-element tile) boundaries of the matrix layout and at
            // quarter boundaries of quartered scratch sources.
            let mut elem = elem_base;
            let chunk_end = elem_base + chunk_len;
            while elem < chunk_end {
                let tile = elem / crate::layout::TILE_ELEMS;
                let within = elem % crate::layout::TILE_ELEMS;
                let mut run_elems = (chunk_end - elem)
                    .min(crate::layout::TILE_ELEMS - within)
                    .min(GLOBAL_BUFFER_SLOTS * LANES_PER_BEAT);
                if let VecSource::ScratchQuartered { per_group, .. } = source {
                    let quarter_elems = per_group * LANES_PER_BEAT;
                    let into_quarter = (elem - elem_base) % quarter_elems;
                    run_elems = run_elems.min(quarter_elems - into_quarter);
                }
                let beats = run_elems.div_ceil(LANES_PER_BEAT);
                // Load the sub-tile into the GB.
                let chunk_beat = (elem - elem_base) / LANES_PER_BEAT;
                match source {
                    VecSource::Sb(base) => self.emit(Instruction::WrGb {
                        chmask,
                        opsize: beats as u32,
                        gb_slot: 0,
                        rs: base.offset(chunk_beat as u16),
                    }),
                    VecSource::Scratch { bank, row } => {
                        self.emit(Instruction::CopyBkGb {
                            chmask,
                            opsize: beats as u32,
                            bank,
                            row: RowAddr(row.0 + (chunk_beat / COLS_PER_ROW) as u32),
                            col: ColAddr((chunk_beat % COLS_PER_ROW) as u32),
                            gb_slot: 0,
                        });
                    }
                    VecSource::ScratchQuartered { row, per_group } => {
                        let quarter = chunk_beat / per_group;
                        let qbeat = chunk_beat % per_group;
                        self.emit(Instruction::CopyBkGb {
                            chmask,
                            opsize: beats as u32,
                            bank: BankId((4 * quarter + 2) as u16),
                            row: RowAddr(row.0 + (qbeat / COLS_PER_ROW) as u32),
                            col: ColAddr((qbeat % COLS_PER_ROW) as u32),
                            gb_slot: 0,
                        });
                    }
                }
                for reg in 0..regs {
                    self.emit(Instruction::MacAbk {
                        chmask,
                        opsize: beats as u32,
                        row: layout.dram_row(pass, reg, tile),
                        col: ColAddr((within / LANES_PER_BEAT) as u32),
                        reg: AccRegId::new(reg as u8),
                        operand: MacOperand::GlobalBuffer { slot: 0 },
                    });
                }
                elem += run_elems;
            }
            // Drain into the pass-local tmp region and fold into `out`.
            for reg in 0..regs {
                let local = layout.out_slot(0, pass, reg) - pass * pass_slots;
                self.emit(Instruction::RdMac {
                    chmask,
                    rd: SbSlot((tmp.index() + local) as u16),
                    reg: AccRegId::new(reg as u8),
                });
            }
            let drained = regs * layout.channels.len();
            self.emit(Instruction::Acc {
                opsize: drained as u32,
                rd: SbSlot((out.index() + pass * pass_slots) as u16),
                rs: tmp,
            });
        }
    }

    /// GEMV that drains each pass into a ring region of
    /// `32 · channels` slots and hands control to `after_pass` before the
    /// ring is reused — the streaming form used when the full output vector
    /// would not fit the Shared Buffer (K/V/Q of large models).
    ///
    /// `after_pass(builder, pass)` sees the pass outputs in element order at
    /// `ring` (outputs `[pass · 512 · C, (pass+1) · 512 · C)`).
    pub fn gemv_ring(
        &mut self,
        layout: &GemvLayout,
        source: VecSource,
        ring: SbSlot,
        af_id: Option<u8>,
        mut after_pass: impl FnMut(&mut Self, usize),
    ) {
        let chmask = layout.chmask();
        let pass_slots = ACC_REGS_PER_PU * layout.channels.len();
        for pass in 0..layout.passes {
            let regs = layout.regs_in_pass(pass);
            for tile in 0..layout.tiles {
                let beats = layout.tile_beats(tile);
                self.load_tile(chmask, source, tile, beats);
                for reg in 0..regs {
                    if tile == 0 {
                        self.emit(Instruction::WrBias {
                            chmask,
                            rs: self.zero_slot,
                            reg: AccRegId::new(reg as u8),
                        });
                    }
                    self.emit(Instruction::MacAbk {
                        chmask,
                        opsize: beats as u32,
                        row: layout.dram_row(pass, reg, tile),
                        col: ColAddr(0),
                        reg: AccRegId::new(reg as u8),
                        operand: MacOperand::GlobalBuffer { slot: 0 },
                    });
                }
            }
            for reg in 0..regs {
                if let Some(af) = af_id {
                    self.emit(Instruction::Af { chmask, af_id: af, reg: AccRegId::new(reg as u8) });
                }
                let local = layout.out_slot(0, pass, reg) - pass * pass_slots;
                self.emit(Instruction::RdMac {
                    chmask,
                    rd: SbSlot((ring.index() + local) as u16),
                    reg: AccRegId::new(reg as u8),
                });
            }
            after_pass(self, pass);
        }
    }

    /// Self dot product `x · x` via neighbour-bank MAC (§5.4(b)): `x` is
    /// duplicated into both banks of the 8 bank pairs of `channel` at
    /// `scratch_row`, then one neighbour-mode `MAC_ABK` accumulates the 8
    /// partial dots into the even PUs; `RD_MAC` + `RED` produce the scalar
    /// at `out`.
    ///
    /// `x` is `beats` long at `x_slot`. Scratch rows consumed:
    /// `ceil(beats/8/64)`.
    pub fn dot_self(
        &mut self,
        channel: ChannelId,
        scratch_row: RowAddr,
        x_slot: SbSlot,
        beats: usize,
        partial_slot: SbSlot,
        out: SbSlot,
    ) {
        let per_pair = beats.div_ceil(8);
        for pair in 0..8u16 {
            let base = pair as usize * per_pair;
            if base >= beats {
                break;
            }
            let n = per_pair.min(beats - base);
            for bank in [BankId(2 * pair), BankId(2 * pair + 1)] {
                self.emit(Instruction::WrSbk {
                    ch: channel,
                    opsize: n as u32,
                    bank,
                    row: scratch_row,
                    col: ColAddr(0),
                    rs: x_slot.offset(base as u16),
                });
            }
        }
        let chmask = ChannelMask::single(channel);
        self.emit(Instruction::WrBias { chmask, rs: self.zero_slot, reg: AccRegId::new(0) });
        self.emit(Instruction::MacAbk {
            chmask,
            opsize: per_pair as u32,
            row: scratch_row,
            col: ColAddr(0),
            reg: AccRegId::new(0),
            operand: MacOperand::NeighbourBank,
        });
        self.emit(Instruction::RdMac { chmask, rd: partial_slot, reg: AccRegId::new(0) });
        // Sum the 8 partials (odd lanes are zero) into lane 0 of `out`.
        self.emit(Instruction::Red { opsize: 1, rd: out, rs: partial_slot });
    }

    /// Element-wise product of two vectors staged in DRAM scratch, leaving
    /// the result in the third bank of each group (replicated across
    /// `chmask` channels so it can feed `COPY_BKGB` GEMV tiles).
    ///
    /// `a` and `b` are `beats` long in the Shared Buffer. The vector is
    /// split in contiguous quarters across the four bank groups: quarter `g`
    /// goes to banks `4g` (a) and `4g+1` (b); the product lands in `4g+2`.
    /// Returns the per-quarter beat count (the scratch stride).
    pub fn ew_mul_scratch(
        &mut self,
        chmask: ChannelMask,
        scratch_row: RowAddr,
        a_slot: SbSlot,
        b_slot: SbSlot,
        beats: usize,
    ) -> usize {
        let per_group = beats.div_ceil(4);
        for ch in chmask.iter() {
            for g in 0..4u16 {
                let base = g as usize * per_group;
                if base >= beats {
                    break;
                }
                let n = per_group.min(beats - base);
                self.emit(Instruction::WrSbk {
                    ch,
                    opsize: n as u32,
                    bank: BankId(4 * g),
                    row: scratch_row,
                    col: ColAddr(0),
                    rs: a_slot.offset(base as u16),
                });
                self.emit(Instruction::WrSbk {
                    ch,
                    opsize: n as u32,
                    bank: BankId(4 * g + 1),
                    row: scratch_row,
                    col: ColAddr(0),
                    rs: b_slot.offset(base as u16),
                });
            }
        }
        self.emit(Instruction::EwMul {
            chmask,
            opsize: per_group as u32,
            row: scratch_row,
            col: ColAddr(0),
        });
        per_group
    }

    /// Reads a vector previously produced by [`Self::ew_mul_scratch`] back
    /// into the Shared Buffer from one channel.
    pub fn read_ew_product(
        &mut self,
        channel: ChannelId,
        scratch_row: RowAddr,
        beats: usize,
        per_group: usize,
        out: SbSlot,
    ) {
        for g in 0..4u16 {
            let base = g as usize * per_group;
            if base >= beats {
                break;
            }
            let n = per_group.min(beats - base);
            self.emit(Instruction::RdSbk {
                ch: channel,
                opsize: n as u32,
                bank: BankId(4 * g + 2),
                row: scratch_row,
                col: ColAddr(0),
                rd: out.offset(base as u16),
            });
        }
    }

    /// RMSNorm without the gain (which is folded into the following weight
    /// matrices at load time): computes `x · scale` where
    /// `scale = 1/sqrt(mean(x²)+eps)`, leaving the normalised vector in the
    /// scratch banks of every channel in `chmask` (bank `4g+2`, quartered),
    /// ready to feed GEMV tiles via `COPY_BKGB`.
    ///
    /// Returns the per-quarter stride in beats.
    ///
    /// Scratch usage: `dot_row` on the first channel; `scale_rows`/`ew_rows`
    /// on all channels.
    #[allow(clippy::too_many_arguments)]
    pub fn rmsnorm_to_scratch(
        &mut self,
        chmask: ChannelMask,
        dot_row: RowAddr,
        ew_row: RowAddr,
        x_slot: SbSlot,
        n_elems: usize,
        scratch: SbSlot,
    ) -> usize {
        let beats = n_elems.div_ceil(LANES_PER_BEAT);
        let first = chmask.iter().next().expect("non-empty mask");
        // 1. sum(x²) on the first channel.
        let partial = scratch;
        let sumsq = scratch.offset(1);
        self.dot_self(first, dot_row, x_slot, beats, partial, sumsq);
        // 2. scale = 1/sqrt(sum/n + eps) on a RISC-V core, written to the
        //    fixed scale slot (directly after the ones beat).
        self.emit(Instruction::Riscv {
            opsize: n_elems as u32,
            pc: pc::RMSNORM_SCALE,
            rd: self.scale_slot,
            rs: sumsq,
        });
        // 3. Replicate the scalar into a scale beat: ones ⊙ scale. With
        //    n = 16 the VEC_SCALE convention reads the scalar from
        //    `rs + 1 slot`, which is exactly the scale slot.
        let scale_vec = scratch.offset(2);
        self.emit(Instruction::Riscv {
            opsize: 16,
            pc: pc::VEC_SCALE,
            rd: scale_vec,
            rs: self.ones_slot,
        });
        // 4. Broadcast the scale beat through the GBs into bank 4g+1 of the
        //    scratch row, replicating it across the whole vector length.
        let per_group = beats.div_ceil(4);
        self.emit(Instruction::WrGb { chmask, opsize: 1, gb_slot: 0, rs: scale_vec });
        for g in 0..4u16 {
            let base = g as usize * per_group;
            if base >= beats {
                break;
            }
            let n = per_group.min(beats - base);
            for b in 0..n {
                // COPY_GBBK re-reads GB slot 0 for every beat by issuing
                // one-beat copies (the GB cursor walks otherwise).
                self.emit(Instruction::CopyGbBk {
                    chmask,
                    opsize: 1,
                    bank: BankId(4 * g + 1),
                    row: RowAddr(ew_row.0 + (b / COLS_PER_ROW) as u32),
                    col: ColAddr((b % COLS_PER_ROW) as u32),
                    gb_slot: 0,
                });
            }
        }
        // 5. x into bank 4g and multiply.
        for ch in chmask.iter() {
            for g in 0..4u16 {
                let base = g as usize * per_group;
                if base >= beats {
                    break;
                }
                let n = per_group.min(beats - base);
                self.emit(Instruction::WrSbk {
                    ch,
                    opsize: n as u32,
                    bank: BankId(4 * g),
                    row: ew_row,
                    col: ColAddr(0),
                    rs: x_slot.offset(base as u16),
                });
            }
        }
        self.emit(Instruction::EwMul {
            chmask,
            opsize: per_group as u32,
            row: ew_row,
            col: ColAddr(0),
        });
        per_group
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::GemvLayout;

    fn chans(n: u16) -> Vec<ChannelId> {
        (0..n).map(ChannelId).collect()
    }

    #[test]
    fn sb_allocator_stacks_and_resets() {
        let mut sb = SbAllocator::new(2);
        let a = sb.alloc(10).unwrap();
        assert_eq!(a, SbSlot(2));
        let mark = sb.mark();
        let b = sb.alloc(100).unwrap();
        assert_eq!(b, SbSlot(12));
        sb.reset_to(mark);
        let c = sb.alloc(5).unwrap();
        assert_eq!(c, SbSlot(12));
        assert_eq!(sb.high_water(), 112);
        assert!(sb.alloc(4096).is_err());
    }

    #[test]
    fn gemv_trace_matches_figure_11_structure() {
        // 32×64 on one channel: 1 pass, 1 tile, like the paper's listing.
        let layout = GemvLayout::plan(chans(1), RowAddr(0), 32, 64).unwrap();
        let mut b = TraceBuilder::new();
        let out = b.sb.alloc(layout.out_slots()).unwrap();
        b.gemv(&layout, VecSource::Sb(SbSlot(100)), out, None);
        let trace = b.finish();
        // WR_GB + one (WR_BIAS + MAC_ABK + RD_MAC) per used register:
        // a 32-row matrix = 2 output groups on one channel = 2 registers.
        let wr_gb = trace.iter().filter(|i| i.mnemonic() == "WR_GB").count();
        let bias = trace.iter().filter(|i| i.mnemonic() == "WR_BIAS").count();
        let mac = trace.iter().filter(|i| i.mnemonic() == "MAC_ABK").count();
        let rd = trace.iter().filter(|i| i.mnemonic() == "RD_MAC").count();
        assert_eq!((wr_gb, bias, mac, rd), (1, 2, 2, 2));
        // First instruction loads the vector, as in Figure 11 line 5.
        assert_eq!(trace[0].mnemonic(), "WR_GB");
    }

    #[test]
    fn gemv_tiles_large_inputs() {
        // n = 4096 → 4 tiles; vector reloaded per tile.
        let layout = GemvLayout::plan(chans(2), RowAddr(0), 64, 4096).unwrap();
        let mut b = TraceBuilder::new();
        let out = b.sb.alloc(layout.out_slots()).unwrap();
        b.gemv(&layout, VecSource::Sb(SbSlot(200)), out, None);
        let trace = b.finish();
        let wr_gb = trace.iter().filter(|i| i.mnemonic() == "WR_GB").count();
        assert_eq!(wr_gb, 4);
        // MAC opsize covers a full 64-beat tile.
        let first_mac = trace.iter().find(|i| i.mnemonic() == "MAC_ABK").unwrap();
        assert_eq!(first_mac.opsize(), 64);
    }

    #[test]
    fn gemv_af_applies_before_readout() {
        let layout = GemvLayout::plan(chans(1), RowAddr(0), 16, 64).unwrap();
        let mut b = TraceBuilder::new();
        let out = b.sb.alloc(layout.out_slots()).unwrap();
        b.gemv(&layout, VecSource::Sb(SbSlot(50)), out, Some(4));
        let trace = b.finish();
        let af_pos = trace.iter().position(|i| i.mnemonic() == "AF").unwrap();
        let rd_pos = trace.iter().position(|i| i.mnemonic() == "RD_MAC").unwrap();
        assert!(af_pos < rd_pos);
    }

    #[test]
    fn accumulating_gemv_zeroes_then_folds() {
        let layout = GemvLayout::plan(chans(1), RowAddr(0), 32, 2048).unwrap();
        let mut b = TraceBuilder::new();
        let tmp = b.sb.alloc(layout.out_slots()).unwrap();
        let out = b.sb.alloc(layout.out_slots()).unwrap();
        // Two chunks of 1024 elements.
        b.gemv_accumulate(&layout, VecSource::Sb(SbSlot(300)), 0, 1024, tmp, out);
        b.gemv_accumulate(&layout, VecSource::Sb(SbSlot(300)), 1024, 1024, tmp, out);
        let trace = b.finish();
        let acc = trace.iter().filter(|i| i.mnemonic() == "ACC").count();
        assert_eq!(acc, 2, "one fold per chunk per pass");
        // 32 rows = 2 registers, zeroed once per chunk.
        let bias = trace.iter().filter(|i| i.mnemonic() == "WR_BIAS").count();
        assert_eq!(bias, 4, "registers zeroed per chunk");
    }

    #[test]
    fn chunk_straddling_a_tile_boundary_splits_macs() {
        let layout = GemvLayout::plan(chans(1), RowAddr(0), 16, 2048).unwrap();
        let mut b = TraceBuilder::new();
        let tmp = b.sb.alloc(layout.out_slots()).unwrap();
        let out = b.sb.alloc(layout.out_slots()).unwrap();
        // Chunk elements [512, 1536): crosses the 1024-element row boundary.
        b.gemv_accumulate(&layout, VecSource::Sb(SbSlot(400)), 512, 1024, tmp, out);
        let trace = b.finish();
        let macs: Vec<_> = trace.iter().filter(|i| i.mnemonic() == "MAC_ABK").collect();
        // 1 register (16 rows) × 2 sub-runs either side of the boundary.
        assert_eq!(macs.len(), 2);
        // Second sub-run starts at column 0 of the next tile row.
        let loads = trace.iter().filter(|i| i.mnemonic() == "WR_GB").count();
        assert_eq!(loads, 2);
    }

    #[test]
    fn dot_self_uses_neighbour_mode() {
        let mut b = TraceBuilder::new();
        let partial = b.sb.alloc(1).unwrap();
        let out = b.sb.alloc(1).unwrap();
        b.dot_self(ChannelId(0), RowAddr(500), SbSlot(10), 32, partial, out);
        let trace = b.finish();
        let mac = trace.iter().find(|i| i.mnemonic() == "MAC_ABK").unwrap();
        match mac {
            Instruction::MacAbk { operand, opsize, .. } => {
                assert_eq!(*operand, MacOperand::NeighbourBank);
                assert_eq!(*opsize, 4); // 32 beats / 8 pairs
            }
            _ => unreachable!(),
        }
        // 16 bank writes (8 pairs × 2 banks).
        let writes = trace.iter().filter(|i| i.mnemonic() == "WR_SBK").count();
        assert_eq!(writes, 16);
        assert_eq!(trace.last().unwrap().mnemonic(), "RED");
    }

    #[test]
    fn ew_mul_quarters_the_vector() {
        let mut b = TraceBuilder::new();
        let per_group =
            b.ew_mul_scratch(ChannelMask::range(0, 2), RowAddr(600), SbSlot(0), SbSlot(64), 128);
        assert_eq!(per_group, 32);
        let trace = b.finish();
        // 2 channels × 4 groups × 2 operands = 16 bank writes.
        assert_eq!(trace.iter().filter(|i| i.mnemonic() == "WR_SBK").count(), 16);
        assert_eq!(trace.iter().filter(|i| i.mnemonic() == "EW_MUL").count(), 1);
    }

    #[test]
    fn rmsnorm_emits_riscv_scale_and_ewmul() {
        let mut b = TraceBuilder::new();
        let scratch = b.sb.alloc(8).unwrap();
        b.rmsnorm_to_scratch(
            ChannelMask::range(0, 1),
            RowAddr(700),
            RowAddr(701),
            SbSlot(100),
            256,
            scratch,
        );
        let trace = b.finish();
        let riscv: Vec<u32> = trace
            .iter()
            .filter_map(|i| match i {
                Instruction::Riscv { pc, .. } => Some(*pc),
                _ => None,
            })
            .collect();
        assert!(riscv.contains(&pc::RMSNORM_SCALE));
        assert!(riscv.contains(&pc::VEC_SCALE));
        assert_eq!(trace.iter().filter(|i| i.mnemonic() == "EW_MUL").count(), 1);
    }
}
