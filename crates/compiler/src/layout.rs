//! DRAM data layouts for CENT's PIM GEMV and KV caches.
//!
//! The paper's mapping (§5.4): "The matrix is partitioned along its rows and
//! distributed across all 16 banks. The vector is transferred to the Global
//! Buffer." This module pins down the exact placement:
//!
//! * A GEMV output group of 16 consecutive matrix rows lands in the 16 banks
//!   of one channel at one `(pass, reg)` coordinate, so `RD_MAC` streams
//!   results back to the Shared Buffer **in element order**;
//! * the input vector is tiled through the 2 KB Global Buffer in 64-beat
//!   (1024-element) tiles — one DRAM row per tile per matrix row;
//! * KV caches use a token-striped layout for keys (score GEMV) and a
//!   dimension-striped transposed layout for values (output GEMV), so both
//!   attention GEMVs hit the all-bank MAC path.

use cent_types::consts::{
    ACC_REGS_PER_PU, BANKS_PER_CHANNEL, COLS_PER_ROW, GLOBAL_BUFFER_SLOTS, LANES_PER_BEAT,
    ROWS_PER_BANK,
};
use cent_types::{BankId, CentError, CentResult, ChannelId, ChannelMask, ColAddr, RowAddr};

/// Elements of one GEMV input tile (one DRAM row: 64 beats × 16 lanes).
pub const TILE_ELEMS: usize = GLOBAL_BUFFER_SLOTS * LANES_PER_BEAT;

/// Outputs produced per channel per pass (16 banks × 32 accumulators).
pub const OUTPUTS_PER_PASS: usize = BANKS_PER_CHANNEL * ACC_REGS_PER_PU;

/// Placement of one matrix for all-bank GEMV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GemvLayout {
    /// Ordered channels holding the matrix (position = shard index).
    pub channels: Vec<ChannelId>,
    /// First DRAM row used in every bank of every listed channel.
    pub base_row: RowAddr,
    /// Output dimension (matrix rows).
    pub m: usize,
    /// Input dimension (matrix columns).
    pub n: usize,
    /// Input tiles (`ceil(n / 1024)`).
    pub tiles: usize,
    /// MAC passes (`ceil(output groups / (32 · channels))`).
    pub passes: usize,
}

impl GemvLayout {
    /// Plans a layout for an `m × n` matrix across `channels`, starting at
    /// `base_row`.
    ///
    /// # Errors
    ///
    /// Fails if no channels are given or the matrix exceeds the row budget.
    pub fn plan(
        channels: Vec<ChannelId>,
        base_row: RowAddr,
        m: usize,
        n: usize,
    ) -> CentResult<Self> {
        if channels.is_empty() {
            return Err(CentError::mapping("GEMV layout needs at least one channel"));
        }
        if m == 0 || n == 0 {
            return Err(CentError::mapping(format!("degenerate GEMV {m}x{n}")));
        }
        let tiles = n.div_ceil(TILE_ELEMS);
        let groups = m.div_ceil(LANES_PER_BEAT);
        let group_cols = groups.div_ceil(channels.len());
        let passes = group_cols.div_ceil(ACC_REGS_PER_PU);
        let layout = GemvLayout { channels, base_row, m, n, tiles, passes };
        if layout.end_row().index() > ROWS_PER_BANK {
            return Err(CentError::OutOfMemory(format!(
                "GEMV {m}x{n} needs rows {}..{} per bank",
                base_row.index(),
                layout.end_row().index()
            )));
        }
        Ok(layout)
    }

    /// Channel mask covering all shards.
    pub fn chmask(&self) -> ChannelMask {
        self.channels.iter().copied().collect()
    }

    /// DRAM rows consumed per bank.
    pub fn rows_per_bank(&self) -> usize {
        self.passes * ACC_REGS_PER_PU * self.tiles
    }

    /// First row past the layout.
    pub fn end_row(&self) -> RowAddr {
        RowAddr(self.base_row.0 + self.rows_per_bank() as u32)
    }

    /// The DRAM row of `(pass, reg, tile)` — identical in all banks/channels.
    pub fn dram_row(&self, pass: usize, reg: usize, tile: usize) -> RowAddr {
        RowAddr(self.base_row.0 + ((pass * ACC_REGS_PER_PU + reg) * self.tiles + tile) as u32)
    }

    /// Beats in input tile `tile` (the final tile may be short).
    pub fn tile_beats(&self, tile: usize) -> usize {
        let total_beats = self.n.div_ceil(LANES_PER_BEAT);
        (total_beats - tile * GLOBAL_BUFFER_SLOTS).min(GLOBAL_BUFFER_SLOTS)
    }

    /// Where matrix element `(row, elem)` lives:
    /// `(channel, bank, dram_row, col, lane)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates exceed the matrix dimensions.
    pub fn element_location(
        &self,
        row: usize,
        elem: usize,
    ) -> (ChannelId, BankId, RowAddr, ColAddr, usize) {
        assert!(
            row < self.m && elem < self.n,
            "element ({row},{elem}) out of {}x{}",
            self.m,
            self.n
        );
        let group = row / LANES_PER_BEAT;
        let bank = BankId((row % LANES_PER_BEAT) as u16);
        let c = self.channels.len();
        let ci = group % c;
        let pr = group / c;
        let pass = pr / ACC_REGS_PER_PU;
        let reg = pr % ACC_REGS_PER_PU;
        let tile = elem / TILE_ELEMS;
        let within = elem % TILE_ELEMS;
        let col = ColAddr((within / LANES_PER_BEAT) as u32);
        let lane = within % LANES_PER_BEAT;
        (self.channels[ci], bank, self.dram_row(pass, reg, tile), col, lane)
    }

    /// Output groups per channel (`(pass, reg)` coordinates in use).
    pub fn total_pr(&self) -> usize {
        self.m.div_ceil(LANES_PER_BEAT).div_ceil(self.channels.len())
    }

    /// Registers used in `pass` (all passes are full except the last).
    pub fn regs_in_pass(&self, pass: usize) -> usize {
        self.total_pr().saturating_sub(pass * ACC_REGS_PER_PU).min(ACC_REGS_PER_PU)
    }

    /// The Shared Buffer slot offset (relative to the output region base)
    /// where the outputs of `(channel_pos, pass, reg)` land, such that the
    /// overall output vector is in element order.
    pub fn out_slot(&self, channel_pos: usize, pass: usize, reg: usize) -> usize {
        (pass * ACC_REGS_PER_PU + reg) * self.channels.len() + channel_pos
    }

    /// Total Shared Buffer slots the in-order output region occupies
    /// (≥ `ceil(m / 16)` due to channel padding).
    pub fn out_slots(&self) -> usize {
        self.total_pr() * self.channels.len()
    }

    /// Shared Buffer slots one pass drains (the ring size).
    pub fn pass_slots(&self) -> usize {
        self.regs_in_pass(0) * self.channels.len()
    }
}

/// Per-channel KV-cache layout for one KV head (§5.4 attention mapping).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvLayout {
    /// The channel holding this head's cache.
    pub channel: ChannelId,
    /// First DRAM row of the key region.
    pub k_base: RowAddr,
    /// First DRAM row of the (transposed) value region.
    pub v_base: RowAddr,
    /// Dimension of one head.
    pub head_dim: usize,
    /// Maximum context supported by the allocation.
    pub max_context: usize,
}

impl KvLayout {
    /// Plans a KV region after `base_row`; returns the layout and the first
    /// free row after it.
    ///
    /// # Errors
    ///
    /// Fails if the context does not fit in the bank row budget.
    pub fn plan(
        channel: ChannelId,
        base_row: RowAddr,
        head_dim: usize,
        max_context: usize,
    ) -> CentResult<(Self, RowAddr)> {
        let k_rows = Self::key_rows(head_dim, max_context);
        let v_rows = Self::value_rows(head_dim, max_context);
        let end = base_row.0 as usize + k_rows + v_rows;
        if end > ROWS_PER_BANK {
            return Err(CentError::OutOfMemory(format!(
                "KV cache for ctx {max_context} needs rows up to {end}"
            )));
        }
        let layout = KvLayout {
            channel,
            k_base: base_row,
            v_base: RowAddr(base_row.0 + k_rows as u32),
            head_dim,
            max_context,
        };
        Ok((layout, RowAddr(end as u32)))
    }

    /// Key rows per bank: each bank holds `max_context / 16` key vectors of
    /// `head_dim` elements.
    pub fn key_rows(head_dim: usize, max_context: usize) -> usize {
        let per_bank = max_context.div_ceil(BANKS_PER_CHANNEL);
        (per_bank * head_dim).div_ceil(COLS_PER_ROW * LANES_PER_BEAT)
    }

    /// Value rows per bank: transposed layout, `head_dim / 16` dimension
    /// groups × `max_context` elements each.
    pub fn value_rows(head_dim: usize, max_context: usize) -> usize {
        let dim_groups = head_dim.div_ceil(LANES_PER_BEAT);
        dim_groups * max_context.div_ceil(COLS_PER_ROW * LANES_PER_BEAT)
    }

    /// Rows a value dimension-group occupies.
    pub fn rows_per_dim_group(&self) -> usize {
        self.max_context.div_ceil(COLS_PER_ROW * LANES_PER_BEAT)
    }

    /// Key location for token `t`: `(bank, dram_row, first_col)` — the
    /// `head_dim/16` beats of the key vector follow contiguously.
    ///
    /// Tokens stripe across banks (`t % 16`) so one `MAC_ABK` scores 16
    /// tokens at once.
    pub fn key_location(&self, t: usize) -> (BankId, RowAddr, ColAddr) {
        let bank = BankId((t % BANKS_PER_CHANNEL) as u16);
        let slot = t / BANKS_PER_CHANNEL; // key index within the bank
        let beats_per_key = self.head_dim / LANES_PER_BEAT;
        let keys_per_row = COLS_PER_ROW / beats_per_key;
        let row = RowAddr(self.k_base.0 + (slot / keys_per_row) as u32);
        let col = ColAddr(((slot % keys_per_row) * beats_per_key) as u32);
        (bank, row, col)
    }

    /// Value location for `(dim, token)` in the transposed layout:
    /// `(bank, dram_row, element_within_row)`.
    pub fn value_location(&self, dim: usize, t: usize) -> (BankId, RowAddr, usize) {
        let bank = BankId((dim % LANES_PER_BEAT) as u16);
        let dim_group = dim / LANES_PER_BEAT;
        let elems_per_row = COLS_PER_ROW * LANES_PER_BEAT;
        let row = RowAddr(
            self.v_base.0
                + (dim_group * self.rows_per_dim_group()) as u32
                + (t / elems_per_row) as u32,
        );
        (bank, row, t % elems_per_row)
    }
}

/// A bump allocator for DRAM rows within one channel set.
#[derive(Debug, Clone)]
pub struct RowAllocator {
    next: u32,
}

impl RowAllocator {
    /// Starts allocating at row 0.
    pub fn new() -> Self {
        RowAllocator { next: 0 }
    }

    /// Reserves `rows` rows, returning the base.
    ///
    /// # Errors
    ///
    /// Fails when the 16384-row bank budget is exhausted.
    pub fn alloc(&mut self, rows: usize) -> CentResult<RowAddr> {
        let base = self.next;
        let end = base as usize + rows;
        if end > ROWS_PER_BANK {
            return Err(CentError::OutOfMemory(format!(
                "row allocator exhausted: {end} > {ROWS_PER_BANK}"
            )));
        }
        self.next = end as u32;
        Ok(RowAddr(base))
    }

    /// Rows allocated so far.
    pub fn used(&self) -> usize {
        self.next as usize
    }
}

impl Default for RowAllocator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chans(n: u16) -> Vec<ChannelId> {
        (0..n).map(ChannelId).collect()
    }

    #[test]
    fn llama70b_w1_layout_fits() {
        // 28672 × 8192 over 10 channels.
        let l = GemvLayout::plan(chans(10), RowAddr(0), 28672, 8192).unwrap();
        assert_eq!(l.tiles, 8);
        // 1792 groups / 10 channels = 180 per channel → 6 passes.
        assert_eq!(l.passes, 6);
        assert_eq!(l.rows_per_bank(), 6 * 32 * 8);
    }

    #[test]
    fn element_locations_are_unique_and_in_range() {
        let l = GemvLayout::plan(chans(2), RowAddr(10), 64, 2048).unwrap();
        let mut seen = std::collections::HashSet::new();
        for row in 0..64 {
            for elem in (0..2048).step_by(97) {
                let loc = l.element_location(row, elem);
                assert!(seen.insert((loc.0, loc.1, loc.2, loc.3, loc.4)), "dup at ({row},{elem})");
                assert!(loc.2 >= RowAddr(10) && loc.2 < l.end_row());
            }
        }
    }

    #[test]
    fn out_slots_are_element_ordered() {
        let l = GemvLayout::plan(chans(2), RowAddr(0), 128, 1024).unwrap();
        // Output group g (16 outputs) must land at slot offset g.
        for row in (0..128).step_by(16) {
            let group = row / 16;
            let (ch, _, _, _, _) = l.element_location(row, 0);
            let ci = l.channels.iter().position(|c| *c == ch).unwrap();
            let pr = group / 2;
            let (pass, reg) = (pr / 32, pr % 32);
            assert_eq!(l.out_slot(ci, pass, reg), group);
        }
    }

    #[test]
    fn oversized_matrix_rejected() {
        // One channel, enormous m: passes × 32 × tiles rows must overflow.
        let err = GemvLayout::plan(chans(1), RowAddr(0), 3_000_000, 8192).unwrap_err();
        assert!(matches!(err, CentError::OutOfMemory(_)));
    }

    #[test]
    fn short_final_tile() {
        let l = GemvLayout::plan(chans(1), RowAddr(0), 16, 1100).unwrap();
        assert_eq!(l.tiles, 2);
        assert_eq!(l.tile_beats(0), 64);
        // 1100 - 1024 = 76 elements = 5 beats (ceil 76/16).
        assert_eq!(l.tile_beats(1), 5);
    }

    #[test]
    fn kv_key_striping() {
        let (kv, next) = KvLayout::plan(ChannelId(3), RowAddr(100), 128, 4096).unwrap();
        // Token 0 → bank 0, token 17 → bank 1 second key.
        let (b0, r0, c0) = kv.key_location(0);
        assert_eq!((b0, r0, c0), (BankId(0), RowAddr(100), ColAddr(0)));
        let (b17, r17, c17) = kv.key_location(17);
        assert_eq!(b17, BankId(1));
        assert_eq!(r17, RowAddr(100));
        assert_eq!(c17, ColAddr(8)); // second key of the bank: 8 beats in
                                     // 4096/16 = 256 keys per bank × 128 elems = 32 rows of keys.
        assert_eq!(kv.v_base, RowAddr(132));
        assert!(next > kv.v_base);
    }

    #[test]
    fn kv_value_transposition() {
        let (kv, _) = KvLayout::plan(ChannelId(0), RowAddr(0), 128, 2048).unwrap();
        // dim 5, token 9 → bank 5, first dim-group rows, element 9.
        let (b, r, e) = kv.value_location(5, 9);
        assert_eq!(b, BankId(5));
        assert_eq!(r, kv.v_base);
        assert_eq!(e, 9);
        // dim 21 (group 1) starts after rows_per_dim_group rows.
        let (b2, r2, _) = kv.value_location(21, 0);
        assert_eq!(b2, BankId(5));
        assert_eq!(r2.0, kv.v_base.0 + kv.rows_per_dim_group() as u32);
    }

    #[test]
    fn row_allocator_bumps_and_overflows() {
        let mut alloc = RowAllocator::new();
        assert_eq!(alloc.alloc(100).unwrap(), RowAddr(0));
        assert_eq!(alloc.alloc(50).unwrap(), RowAddr(100));
        assert_eq!(alloc.used(), 150);
        assert!(alloc.alloc(ROWS_PER_BANK).is_err());
    }
}
