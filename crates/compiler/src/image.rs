//! Weight image: materialises a block's parameters into bank writes.
//!
//! The CENT library "provides Python APIs to allocate memory space and load
//! model parameters according to the model mapping strategy" (§5.6); this is
//! the Rust equivalent. Two exact rewrites are folded in at load time:
//!
//! * RMSNorm gains are multiplied into the columns of the consuming
//!   matrices (`Wq/Wk/Wv` get `norm1`, `W1/W3` get `norm2`), so the runtime
//!   norm only applies the `1/rms` scalar;
//! * the attention `1/sqrt(head_dim)` scale is folded into `Wq`, so scores
//!   come out of the MAC trees pre-scaled.

use std::collections::BTreeMap;

use cent_types::{BankId, Beat, Bf16, ChannelId, ColAddr, RowAddr, ZERO_BEAT};

use cent_model::{BlockWeights, FfnKind, PositionalKind};

use crate::block::BlockPlacement;
use crate::layout::GemvLayout;

/// One beat destined for a DRAM bank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankWrite {
    /// Target channel.
    pub channel: ChannelId,
    /// Target bank.
    pub bank: BankId,
    /// Target row.
    pub row: RowAddr,
    /// Target 256-bit column.
    pub col: ColAddr,
    /// The data.
    pub beat: Beat,
}

#[derive(Default)]
struct ImageBuilder {
    // BTreeMap: `finish` emits writes in key order without a sort, and the
    // image is deterministic by construction.
    beats: BTreeMap<(ChannelId, BankId, RowAddr, ColAddr), Beat>,
}

impl ImageBuilder {
    fn set(
        &mut self,
        ch: ChannelId,
        bank: BankId,
        row: RowAddr,
        col: ColAddr,
        lane: usize,
        v: f32,
    ) {
        let beat = self.beats.entry((ch, bank, row, col)).or_insert(ZERO_BEAT);
        beat[lane] = Bf16::from_f32(v);
    }

    fn fill_matrix(&mut self, layout: &GemvLayout, mut get: impl FnMut(usize, usize) -> f32) {
        for r in 0..layout.m {
            for e in 0..layout.n {
                let v = get(r, e);
                if v == 0.0 {
                    continue;
                }
                let (ch, bank, row, col, lane) = layout.element_location(r, e);
                self.set(ch, bank, row, col, lane, v);
            }
        }
    }

    fn finish(self) -> Vec<BankWrite> {
        let mut out: Vec<BankWrite> = self
            .beats
            .into_iter()
            .map(|((channel, bank, row, col), beat)| BankWrite { channel, bank, row, col, beat })
            .collect();
        out.sort_by_key(|w| (w.channel, w.bank, w.row, w.col));
        out
    }
}

/// Builds the full weight image of one block: all matrices (with the folds
/// described in the module docs) plus the rotary cos/sin tables.
///
/// Intended for functional runs of small models; timing-only simulations
/// skip the image entirely.
pub fn weight_image(p: &BlockPlacement, w: &BlockWeights) -> Vec<BankWrite> {
    let cfg = &p.cfg;
    let hd = cfg.head_dim();
    let q_scale = 1.0 / (hd as f32).sqrt();
    let mut img = ImageBuilder::default();

    img.fill_matrix(&p.wq, |r, c| w.wq.row(r)[c] * w.norm1[c] * q_scale);
    img.fill_matrix(&p.wk, |r, c| w.wk.row(r)[c] * w.norm1[c]);
    img.fill_matrix(&p.wv, |r, c| w.wv.row(r)[c] * w.norm1[c]);
    img.fill_matrix(&p.wo, |r, c| w.wo.row(r)[c]);
    img.fill_matrix(&p.w1, |r, c| w.w1.row(r)[c] * w.norm2[c]);
    img.fill_matrix(&p.w2, |r, c| w.w2.row(r)[c]);
    if cfg.ffn == FfnKind::GatedSilu {
        let w3_layout = p.w3.as_ref().expect("gated FFN has w3");
        img.fill_matrix(w3_layout, |r, c| w.w3.row(r)[c] * w.norm2[c]);
    }

    // Rotary tables, replicated on every channel of the block: bank 1 holds
    // [cos | sin], bank 5 holds [sin | cos] (the EW_MUL operand banks of
    // groups 0 and 1).
    if cfg.positional == PositionalKind::Rotary {
        let pairs = hd / 2;
        for pos in 0..cfg.max_context {
            let (row, col) = p.rope_entry(pos);
            for pair in 0..pairs {
                let theta = (pos as f32) * f32::powf(10_000.0, -2.0 * (pair as f32) / (hd as f32));
                let (sin, cos) = theta.sin_cos();
                // Element index within the head run: cos half then sin half.
                let write = |img: &mut ImageBuilder, bank: BankId, idx: usize, v: f32| {
                    let beat_off = idx / 16;
                    let lane = idx % 16;
                    for &ch in &p.channels {
                        img.set(ch, bank, row, ColAddr(col.0 + beat_off as u32), lane, v);
                    }
                };
                write(&mut img, BankId(1), pair, cos);
                write(&mut img, BankId(1), pairs + pair, sin);
                write(&mut img, BankId(5), pair, sin);
                write(&mut img, BankId(5), pairs + pair, cos);
            }
        }
    }
    img.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cent_model::ModelConfig;

    #[test]
    fn tiny_image_covers_all_matrices() {
        let cfg = ModelConfig::tiny();
        let p = BlockPlacement::plan(&cfg, vec![ChannelId(0)]).unwrap();
        let w = BlockWeights::random(&cfg, 1);
        let image = weight_image(&p, &w);
        assert!(!image.is_empty());
        // Every write must target an allocated region (below the scratch).
        for wr in &image {
            assert!(wr.row < p.ffn_row, "write at {:?} beyond weights", wr.row);
        }
        // Rope tables present in banks 1 and 5.
        assert!(image.iter().any(|w| w.bank == BankId(1) && w.row >= p.rope_table));
        assert!(image.iter().any(|w| w.bank == BankId(5) && w.row >= p.rope_table));
    }

    #[test]
    fn rope_table_position_zero_is_identity_rotation() {
        let cfg = ModelConfig::tiny();
        let p = BlockPlacement::plan(&cfg, vec![ChannelId(0)]).unwrap();
        let w = BlockWeights::random(&cfg, 2);
        let image = weight_image(&p, &w);
        let (row, col) = p.rope_entry(0);
        // cos(0)=1 in the first half of bank 1's entry.
        let first = image
            .iter()
            .find(|w| w.bank == BankId(1) && w.row == row && w.col == col)
            .expect("rope entry exists");
        assert_eq!(first.beat[0].to_f32(), 1.0);
    }
}
