//! The CENT trace compiler: model mapping and instruction generation (§5).
//!
//! * [`GemvLayout`]/[`KvLayout`] — DRAM placements for all-bank GEMV and the
//!   attention KV caches;
//! * [`TraceBuilder`] — op-level compilation (Figure 11's GEMV, neighbour
//!   dot products, element-wise scratch products, RMSNorm choreography);
//! * [`BlockPlacement`]/[`compile_decode_step`] — a full transformer block
//!   as one CENT trace per token, with per-instruction phase tags;
//! * [`weight_image`] — parameter loading with the RMSNorm-gain and
//!   `1/sqrt(head_dim)` folds;
//! * [`SystemMapping`] — PP / TP / hybrid / DP distribution across CXL
//!   devices with the paper's placement rules.

#![forbid(unsafe_code)]

mod block;
mod builder;
mod image;
mod layout;
mod mapping;

pub use block::{
    compile_decode_step, max_feasible_channels, sb_demand, BlockPlacement, BlockStep,
    SEGMENT_TOKENS_MAX,
};
pub use builder::{pc, BlockPhase, SbAllocator, TraceBuilder, VecSource};
pub use image::{weight_image, BankWrite};
pub use layout::{GemvLayout, KvLayout, RowAllocator, OUTPUTS_PER_PASS, TILE_ELEMS};
pub use mapping::{DeviceAssignment, Strategy, SystemMapping};
